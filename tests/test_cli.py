"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _isolated_cwd(tmp_path, monkeypatch):
    """Run every CLI test from a scratch directory: the flight
    recorder (armed by default on chaos/sweep/fuzz) dumps relative to
    the CWD, and those artifacts must not land in the checkout.
    PYTHONPATH entries are absolutized first so subprocess tests
    (``python -m repro``) still resolve a relative ``src``."""
    import os

    paths = os.environ.get("PYTHONPATH", "")
    if paths:
        monkeypatch.setenv("PYTHONPATH", os.pathsep.join(
            os.path.abspath(p) for p in paths.split(os.pathsep) if p))
    monkeypatch.chdir(tmp_path)


class TestCli:
    def test_grid_static(self, capsys):
        assert main(["grid"]) == 0
        out = capsys.readouterr().out
        assert "Out-IE" in out and "inapplicable" in out

    def test_grid_live_agrees(self, capsys):
        assert main(["grid", "--live"]) == 0
        out = capsys.readouterr().out
        assert "all cells agree with Figure 10" in out
        assert out.count("DEAD") == 6

    def test_modes(self, capsys):
        assert main(["modes"]) == 0
        out = capsys.readouterr().out
        for mode in ("Out-IE", "Out-DE", "Out-DH", "Out-DT",
                     "In-IE", "In-DE", "In-DH", "In-DT"):
            assert mode in out
        assert "140B" in out and "120B" in out

    def test_topology(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "backbone:" in out
        assert "registered=True" in out

    def test_grid_live_counts_mismatches(self, capsys, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "_run_cell", lambda *a, **k: False)
        assert main(["grid", "--live"]) == 1
        out = capsys.readouterr().out
        # Figure 10 has 10 working cells; claiming every cell is dead
        # must mismatch exactly those 10 and report them.
        assert "10 mismatches!" in out
        assert out.count("MISMATCH") == 10
        assert "all cells agree" not in out

    def test_grid_live_runs_sixteen_cells(self, capsys, monkeypatch):
        import repro.cli as cli

        calls = []

        def fake_cell(in_mode, out_mode, args):
            calls.append((in_mode, out_mode))
            return cli.GRID.cell(in_mode, out_mode).works_with_tcp

        monkeypatch.setattr(cli, "_run_cell", fake_cell)
        assert main(["grid", "--live"]) == 0
        assert len(calls) == 16
        assert len(set(calls)) == 16

    def test_trace(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert out.count("reached") == 2
        assert "home-address path bends" in out

    def test_trace_prints_hop_lists(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        home_section = out.split("--- to the care-of address ---")[0]
        # The home-address path bends through the home domain...
        for hop in ("chdom-gw", "home-gw", "(mh)"):
            assert hop in home_section
        # ...and hops are numbered in order.
        assert home_section.index(" 1 ") < home_section.index("(mh)")

    def test_durability(self, capsys):
        assert main(["durability"]) == 0
        out = capsys.readouterr().out
        assert "survived" in out
        assert "broke" in out

    def test_seed_flag(self, capsys):
        assert main(["--seed", "7", "topology"]) == 0
        out = capsys.readouterr().out
        assert "care-of" in out

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestPolicySubcommand:
    def test_policy_lookup(self, tmp_path, capsys):
        config = tmp_path / "policy.conf"
        config.write_text(
            "default pessimistic\n10.1.0.0/16 home-only\n")
        assert main(["policy", str(config), "10.1.0.5", "8.8.8.8"]) == 0
        out = capsys.readouterr().out
        assert "10.1.0.5 -> home-only" in out
        assert "8.8.8.8 -> pessimistic" in out

    def test_policy_bad_config(self, tmp_path, capsys):
        config = tmp_path / "bad.conf"
        config.write_text("10.0.0.0/8 yolo\n")
        assert main(["policy", str(config)]) == 1
        assert "error" in capsys.readouterr().err

    def test_policy_missing_file(self, capsys):
        assert main(["policy", "/nonexistent/file"]) == 1

    def test_policy_bad_address(self, tmp_path, capsys):
        config = tmp_path / "policy.conf"
        config.write_text("default optimistic\n")
        assert main(["policy", str(config), "not-an-ip"]) == 1


class TestObsSubcommand:
    def test_obs_prints_summaries(self, capsys):
        assert main(["obs", "--datagrams", "10", "--duration", "2"]) == 0
        out = capsys.readouterr().out
        assert "per-mode datagram summary:" in out
        assert "conventional" in out
        assert "delivered=10" in out
        assert "latency mean=" in out
        assert "engine:" in out
        assert "peak_pending=" in out

    def test_obs_chrome_trace_export(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        assert main(["obs", "--datagrams", "5", "--duration", "1",
                     "--chrome-trace", str(path)]) == 0
        assert "wrote" in capsys.readouterr().out
        with open(path) as handle:
            trace = json.load(handle)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(spans) >= 5

    def test_obs_out_writes_report(self, tmp_path, capsys):
        import json

        path = tmp_path / "report.json"
        assert main(["--obs-out", str(path), "obs",
                     "--datagrams", "5", "--duration", "1"]) == 0
        assert f"observability report written to {path}" in \
            capsys.readouterr().out
        with open(path) as handle:
            report = json.load(handle)
        assert report["spans"]["count"] >= 5
        assert "node.packets_sent" in report["metrics"]
        assert report["engine"]["summary"]["samples"] >= 1

    def test_obs_out_on_topology(self, tmp_path, capsys):
        import json

        path = tmp_path / "report.json"
        assert main(["--obs-out", str(path), "topology"]) == 0
        with open(path) as handle:
            report = json.load(handle)
        # Registration traffic happened before obs attached; the
        # registry still reports it because metrics are pull-based.
        sent = {row["labels"]["node"]: row["value"]
                for row in report["metrics"]["node.packets_sent"]}
        assert sent["mh"] >= 1

    def test_no_obs_out_no_report(self, tmp_path, capsys):
        assert main(["topology"]) == 0
        assert "observability report" not in capsys.readouterr().out


class TestChaosSubcommand:
    def test_chaos_show_plan(self, capsys):
        assert main(["chaos", "--show-plan"]) == 0
        out = capsys.readouterr().out
        assert '"events"' in out
        assert "agent-restart" in out

    def test_chaos_short_run(self, capsys):
        assert main(["chaos", "--duration", "40"]) == 0
        out = capsys.readouterr().out
        assert "chaos run: seed=1996" in out  # the CLI's global default seed
        assert "faults applied" in out
        assert "loss-burst x1" in out
        assert "registered=True" in out

    def test_chaos_fault_script_and_json_out(self, tmp_path, capsys):
        import json

        from repro.netsim import FaultKind, FaultPlan

        script = tmp_path / "faults.json"
        script.write_text(
            FaultPlan().add(2.0, FaultKind.LINK_FLAP, "visited-lan",
                            duration=1.0).to_json()
        )
        report_path = tmp_path / "report.json"
        assert main(["--seed", "9", "chaos", "--fault-script", str(script),
                     "--duration", "20", "--json-out", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "chaos run: seed=9" in out
        with open(report_path) as handle:
            report = json.load(handle)
        assert report["seed"] == 9
        assert report["faults"] == {"link-flap": 1}
        assert report["digest"]

    def test_chaos_bad_script_errors(self, tmp_path, capsys):
        script = tmp_path / "bad.json"
        script.write_text('{"events": [{"time": 1.0}]}')
        assert main(["chaos", "--fault-script", str(script)]) == 1
        assert "error" in capsys.readouterr().err

    def test_chaos_unknown_target_errors(self, tmp_path, capsys):
        from repro.netsim import FaultKind, FaultPlan

        script = tmp_path / "ghost.json"
        script.write_text(
            FaultPlan().add(1.0, FaultKind.LINK_DOWN, "no-such-lan").to_json()
        )
        assert main(["chaos", "--fault-script", str(script)]) == 1
        assert "no segment named" in capsys.readouterr().err


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "grid"],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0
        assert "Out-IE" in result.stdout


class TestChaosExitCodes:
    def test_chaos_arms_invariants_and_reports_them(self, capsys):
        assert main(["chaos", "--duration", "40"]) == 0
        out = capsys.readouterr().out
        assert "invariants" in out
        assert "0 violations" in out

    def test_chaos_exits_nonzero_on_invariant_violation(
        self, capsys, monkeypatch
    ):
        from repro.netsim.router import Router

        monkeypatch.setattr(Router, "ttl_decrement", 0)
        assert main(["chaos", "--duration", "40"]) == 1
        captured = capsys.readouterr()
        assert "invariant violation" in captured.err


class TestFuzzSubcommand:
    def test_fuzz_clean_campaign_exits_zero(self, capsys):
        assert main(["fuzz", "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "no invariant violations" in out
        assert "seed=1996" in out  # the CLI's global default seed

    def test_fuzz_seed_flag_overrides_default(self, capsys):
        assert main(["fuzz", "--iterations", "1", "--seed", "9"]) == 0
        assert "seed=9" in capsys.readouterr().out

    def test_fuzz_exits_nonzero_and_writes_repro_on_violation(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        from repro.netsim.router import Router

        monkeypatch.setattr(Router, "ttl_decrement", 0)
        out_file = tmp_path / "repro.json"
        assert main(["fuzz", "--iterations", "2", "--no-shrink",
                     "--out", str(out_file)]) == 1
        captured = capsys.readouterr().out
        assert "FAILED" in captured
        payload = json.loads(out_file.read_text())
        assert payload["case"]
        # Replaying the repro (sabotage still in place) fails too…
        assert main(["fuzz", "--repro", str(out_file)]) == 1
        assert "ttl-decreases" in capsys.readouterr().out

    def test_fuzz_repro_of_clean_case_exits_zero(self, tmp_path, capsys):
        import json

        from repro.verify.fuzz import generate_case

        repro = tmp_path / "clean.json"
        repro.write_text(json.dumps(
            {"case": generate_case(4242).to_dict(), "violations": []}))
        assert main(["fuzz", "--repro", str(repro)]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_fuzz_missing_repro_errors(self, tmp_path, capsys):
        assert main(["fuzz", "--repro", str(tmp_path / "nope.json")]) == 1
        assert "error" in capsys.readouterr().err


class TestSweepSubcommand:
    def _grid_file(self, tmp_path, specs=2, datagrams=5):
        import json

        from repro.experiment import canonical_traffic_spec

        base = canonical_traffic_spec(datagrams=datagrams).to_dict()
        del base["label"]
        seeds = [1401, 1996, 7, 11][:specs]
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(
            {"base": base, "axes": {"seed": seeds}}))
        return str(path)

    def test_sweep_grid_runs_and_exits_zero(self, tmp_path, capsys):
        assert main(["sweep", "--grid", self._grid_file(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "sweep: 2 runs" in out
        assert "seed=1401" in out and "seed=1996" in out

    def test_sweep_json_out(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "results.json"
        assert main(["sweep", "--grid", self._grid_file(tmp_path),
                     "--json-out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["runs"] == 2
        assert all(r["digest"] for r in payload["results"])

    def test_sweep_parallel_matches_serial_digests(self, tmp_path, capsys):
        import json

        grid = self._grid_file(tmp_path, specs=3)
        serial_out = tmp_path / "serial.json"
        parallel_out = tmp_path / "parallel.json"
        assert main(["sweep", "--grid", grid, "--jobs", "1",
                     "--json-out", str(serial_out)]) == 0
        assert main(["sweep", "--grid", grid, "--jobs", "2",
                     "--json-out", str(parallel_out)]) == 0
        serial = json.loads(serial_out.read_text())
        parallel = json.loads(parallel_out.read_text())
        assert [r["digest"] for r in serial["results"]] == \
            [r["digest"] for r in parallel["results"]]

    def test_sweep_show_specs_prints_without_running(self, tmp_path, capsys):
        import json

        assert main(["sweep", "--grid", self._grid_file(tmp_path),
                     "--show-specs"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 2
        assert payload[0]["seed"] == 1401

    def test_sweep_single_spec_file(self, tmp_path, capsys):
        from repro.experiment import canonical_traffic_spec

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(canonical_traffic_spec(datagrams=5).to_json())
        assert main(["sweep", "--spec", str(spec_file)]) == 0
        assert "sweep: 1 runs" in capsys.readouterr().out

    def test_sweep_exits_nonzero_on_violation(self, tmp_path, capsys):
        from repro.experiment import canonical_traffic_spec

        spec_file = tmp_path / "violating.json"
        spec_file.write_text(canonical_traffic_spec(
            datagrams=5, arm_invariants=True,
            max_tunnel_depth=0).to_json())
        assert main(["sweep", "--spec", str(spec_file)]) == 1
        captured = capsys.readouterr()
        assert "invariant violation" in captured.err

    def test_sweep_replays_fuzz_repro(self, tmp_path, capsys, monkeypatch):
        from repro.netsim.router import Router

        monkeypatch.setattr(Router, "ttl_decrement", 0)
        out_file = tmp_path / "repro.json"
        assert main(["fuzz", "--iterations", "2", "--no-shrink",
                     "--out", str(out_file)]) == 1
        capsys.readouterr()
        # The repro's embedded spec arms invariants; the sabotage is
        # still in place, so the sweep replay reports the violation.
        assert main(["sweep", "--spec", str(out_file)]) == 1
        captured = capsys.readouterr()
        assert "invariant violation" in captured.err

    def test_sweep_spec_and_grid_are_exclusive(self, tmp_path, capsys):
        assert main(["sweep", "--spec", "a.json", "--grid", "b.json"]) == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_sweep_missing_grid_errors(self, tmp_path, capsys):
        assert main(["sweep", "--grid", str(tmp_path / "nope.json")]) == 1
        assert "error" in capsys.readouterr().err

    def test_sweep_bad_grid_is_a_spec_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"axes": {"warp_factor": [1]}}')
        assert main(["sweep", "--grid", str(bad)]) == 1
        assert "not an experiment-spec field" in capsys.readouterr().err

    def test_sweep_bad_jobs_errors(self, capsys):
        assert main(["sweep", "--jobs", "0"]) == 1
        assert "--jobs" in capsys.readouterr().err

    def test_sweep_bad_max_retries_errors(self, capsys):
        assert main(["sweep", "--max-retries", "-1"]) == 1
        assert "--max-retries" in capsys.readouterr().err

    def test_sweep_checkpoint_then_resume_round_trip(self, tmp_path, capsys):
        grid = self._grid_file(tmp_path)
        checkpoint = tmp_path / "ck.jsonl"
        assert main(["sweep", "--grid", grid, "--no-cache",
                     "--checkpoint", str(checkpoint)]) == 0
        captured = capsys.readouterr()
        assert "sweep checkpoint: 2 cell(s)" in captured.out
        assert main(["sweep", "--grid", grid, "--no-cache",
                     "--resume", str(checkpoint)]) == 0
        captured = capsys.readouterr()
        assert "resuming: 2 checkpointed cell(s)" in captured.err
        assert "sweep: 2 runs" in captured.out

    def test_sweep_resume_from_empty_checkpoint_runs_full_grid(
            self, tmp_path, capsys):
        checkpoint = tmp_path / "empty.jsonl"
        checkpoint.write_text("")
        assert main(["sweep", "--grid", self._grid_file(tmp_path),
                     "--no-cache", "--resume", str(checkpoint)]) == 0
        captured = capsys.readouterr()
        assert "no completed cells" in captured.err
        assert "sweep: 2 runs" in captured.out

    def test_sweep_quarantined_cell_warns_but_exits_zero(
            self, tmp_path, capsys, monkeypatch):
        from repro.experiment import FAULT_ENV

        monkeypatch.setenv(FAULT_ENV, "fail:seed=1401:99")
        assert main(["sweep", "--grid", self._grid_file(tmp_path),
                     "--no-cache", "--max-retries", "1",
                     "--retry-backoff", "0.05"]) == 0
        captured = capsys.readouterr()
        assert "warning: 1 cell(s) quarantined" in captured.err
        assert "quarantined: seed=1401" in captured.out

    def test_sweep_strict_cells_fails_the_run(
            self, tmp_path, capsys, monkeypatch):
        from repro.experiment import FAULT_ENV

        monkeypatch.setenv(FAULT_ENV, "fail:seed=1401:99")
        assert main(["sweep", "--grid", self._grid_file(tmp_path),
                     "--no-cache", "--strict-cells", "--max-retries", "0",
                     ]) == 1
        assert "seed=1401" in capsys.readouterr().err


class TestSweepProgress:
    def test_progress_streams_to_stderr(self, tmp_path, capsys):
        import json

        from repro.experiment import canonical_traffic_spec

        base = canonical_traffic_spec(datagrams=5).to_dict()
        del base["label"]
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps(
            {"base": base, "axes": {"seed": [1401, 1996]}}))
        assert main(["sweep", "--grid", str(grid), "--no-cache",
                     "--progress"]) == 0
        captured = capsys.readouterr()
        assert "[1/2]" in captured.err
        assert "[2/2]" in captured.err
        assert "cells/s" in captured.err
        # The status line stays off stdout (results remain pipeable).
        assert "cells/s" not in captured.out

    def test_sweep_ledger_flag_appends_records(self, tmp_path, capsys):
        from repro.experiment import canonical_traffic_spec
        from repro.obs.ledger import read_ledger

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(canonical_traffic_spec(datagrams=5).to_json())
        ledger = tmp_path / "ledger.jsonl"
        assert main(["sweep", "--spec", str(spec_file), "--no-cache",
                     "--ledger", str(ledger)]) == 0
        assert "run ledger: 3 record(s) appended" in capsys.readouterr().out
        records, skipped = read_ledger(str(ledger))
        assert skipped == 0
        assert [r["kind"] for r in records] == [
            "sweep-start", "run", "sweep-end"]


class TestFlightrecAcceptance:
    def test_violating_spec_sweep_dumps_the_flight_recorder(
        self, tmp_path, capsys
    ):
        # The PR's acceptance pin: sweeping examples/violating_spec.json
        # exits 1 and leaves flightrec.json in the CWD with the
        # violating datagram among the last-N ring entries.
        import json
        import pathlib

        spec = str(pathlib.Path(__file__).resolve().parents[1]
                   / "examples" / "violating_spec.json")
        assert main(["sweep", "--spec", spec, "--no-cache"]) == 1
        captured = capsys.readouterr()
        assert "flight recorder dumped to" in captured.out
        payload = json.loads(
            (pathlib.Path.cwd() / "flightrec.json").read_text())
        assert payload["reason"] == "invariant-violation"
        violating_ids = {v["trace_id"] for v in payload["violations"]}
        ring_ids = {e["trace_id"] for e in payload["entries"]}
        assert violating_ids & ring_ids

    def test_no_flightrec_suppresses_the_dump(self, tmp_path, capsys):
        import pathlib

        spec = str(pathlib.Path(__file__).resolve().parents[1]
                   / "examples" / "violating_spec.json")
        assert main(["sweep", "--spec", spec, "--no-cache",
                     "--no-flightrec"]) == 1
        assert not (pathlib.Path.cwd() / "flightrec.json").exists()


class TestReportSubcommand:
    def _ledger_file(self, tmp_path):
        from repro.experiment import Runner, canonical_traffic_spec
        from repro.obs.ledger import (
            RunLedger,
            run_record,
            sweep_end_record,
            sweep_start_record,
        )

        result = Runner().run(canonical_traffic_spec(datagrams=5))
        path = tmp_path / "ledger.jsonl"
        with RunLedger(str(path)) as ledger:
            ledger.append(sweep_start_record(total=1, jobs=1, cache=False))
            ledger.append(run_record(result))
            ledger.append(sweep_end_record(
                completed=1, total=1, elapsed=0.5, violation_count=0,
                cache=None))
        return path

    def test_report_renders_ledger_markdown(self, tmp_path, capsys):
        path = self._ledger_file(tmp_path)
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Run-ledger report")
        assert "## Phase-time breakdown" in out

    def test_report_json_summary(self, tmp_path, capsys):
        import json

        path = self._ledger_file(tmp_path)
        assert main(["report", str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["runs"] == 1
        assert summary["invalid_records"] == 0

    def test_report_out_writes_file(self, tmp_path, capsys):
        path = self._ledger_file(tmp_path)
        out_file = tmp_path / "report.md"
        assert main(["report", str(path), "--out", str(out_file)]) == 0
        assert "report written to" in capsys.readouterr().out
        assert out_file.read_text().startswith("# Run-ledger report")

    def test_report_strict_fails_on_garbage_line(self, tmp_path, capsys):
        path = self._ledger_file(tmp_path)
        with open(path, "a") as handle:
            handle.write("this is not json\n")
        assert main(["report", str(path)]) == 0
        assert "1 invalid or torn record(s)" in capsys.readouterr().out
        assert main(["report", str(path), "--strict"]) == 1
        captured = capsys.readouterr()
        assert "invalid ledger record" in captured.err

    def test_report_renders_bench_trajectory(self, capsys):
        import pathlib

        bench = str(pathlib.Path(__file__).resolve().parents[1]
                    / "BENCH_PR6.json")
        assert main(["report", bench]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Bench trajectory report")
        assert "## baseline" in out
        assert "## optimized" in out
        assert "x |" in out  # speedup column

    def test_report_missing_file_errors(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_report_unrecognized_json_errors(self, tmp_path, capsys):
        other = tmp_path / "other.json"
        other.write_text('{"hello": "world"}')
        assert main(["report", str(other)]) == 1
        assert "neither a run ledger nor a bench" in capsys.readouterr().err
