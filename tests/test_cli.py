"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_grid_static(self, capsys):
        assert main(["grid"]) == 0
        out = capsys.readouterr().out
        assert "Out-IE" in out and "inapplicable" in out

    def test_grid_live_agrees(self, capsys):
        assert main(["grid", "--live"]) == 0
        out = capsys.readouterr().out
        assert "all cells agree with Figure 10" in out
        assert out.count("DEAD") == 6

    def test_modes(self, capsys):
        assert main(["modes"]) == 0
        out = capsys.readouterr().out
        for mode in ("Out-IE", "Out-DE", "Out-DH", "Out-DT",
                     "In-IE", "In-DE", "In-DH", "In-DT"):
            assert mode in out
        assert "140B" in out and "120B" in out

    def test_topology(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "backbone:" in out
        assert "registered=True" in out

    def test_trace(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert out.count("reached") == 2
        assert "home-address path bends" in out

    def test_durability(self, capsys):
        assert main(["durability"]) == 0
        out = capsys.readouterr().out
        assert "survived" in out
        assert "broke" in out

    def test_seed_flag(self, capsys):
        assert main(["--seed", "7", "topology"]) == 0
        out = capsys.readouterr().out
        assert "care-of" in out

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestPolicySubcommand:
    def test_policy_lookup(self, tmp_path, capsys):
        config = tmp_path / "policy.conf"
        config.write_text(
            "default pessimistic\n10.1.0.0/16 home-only\n")
        assert main(["policy", str(config), "10.1.0.5", "8.8.8.8"]) == 0
        out = capsys.readouterr().out
        assert "10.1.0.5 -> home-only" in out
        assert "8.8.8.8 -> pessimistic" in out

    def test_policy_bad_config(self, tmp_path, capsys):
        config = tmp_path / "bad.conf"
        config.write_text("10.0.0.0/8 yolo\n")
        assert main(["policy", str(config)]) == 1
        assert "error" in capsys.readouterr().err

    def test_policy_missing_file(self, capsys):
        assert main(["policy", "/nonexistent/file"]) == 1

    def test_policy_bad_address(self, tmp_path, capsys):
        config = tmp_path / "policy.conf"
        config.write_text("default optimistic\n")
        assert main(["policy", str(config), "not-an-ip"]) == 1


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "grid"],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0
        assert "Out-IE" in result.stdout
