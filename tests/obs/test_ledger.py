"""Tests for the streaming run ledger (:mod:`repro.obs.ledger`)."""

import json

import pytest

from repro.experiment import Runner, canonical_traffic_spec
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    read_ledger,
    render_ledger_markdown,
    run_record,
    spec_content_digest,
    summarize_ledger,
    sweep_end_record,
    sweep_start_record,
    validate_record,
)


@pytest.fixture(scope="module")
def small_result():
    """One small live run, shared read-only across the module."""
    return Runner().run(canonical_traffic_spec(datagrams=5))


class TestRecordBuilders:
    def test_run_record_validates_and_carries_the_run(self, small_result):
        record = run_record(small_result)
        assert validate_record(record) == []
        assert record["schema"] == LEDGER_SCHEMA
        assert record["kind"] == "run"
        assert record["outcome"] == "ok"
        assert record["provenance"] == "run"
        assert record["digest"] == small_result.digest
        assert record["seed"] == small_result.seed
        assert set(record["timings"]) == {
            "build", "arm", "drive", "collect", "total"}
        assert record["spec_sha256"] == spec_content_digest(small_result.spec)
        assert record["deliverability"]["delivered"] > 0
        assert record["fast_forward"] is not None
        assert record["flightrec"] is None  # recorder was not armed

    def test_cache_provenance_and_timestamp_override(self, small_result):
        record = run_record(small_result, provenance="cache", ts=123.5)
        assert validate_record(record) == []
        assert record["provenance"] == "cache"
        assert record["ts"] == 123.5

    def test_sweep_bookend_records_validate(self):
        start = sweep_start_record(total=4, jobs=2, cache=True)
        end = sweep_end_record(
            completed=4, total=4, elapsed=1.5, violation_count=0, cache=None)
        assert validate_record(start) == []
        assert validate_record(end) == []
        assert start["kind"] == "sweep-start"
        assert end["kind"] == "sweep-end"

    def test_spec_content_digest_is_canonical(self):
        a = {"x": 1, "y": [2, 3]}
        b = {"y": [2, 3], "x": 1}
        assert spec_content_digest(a) == spec_content_digest(b)
        assert spec_content_digest(a) != spec_content_digest({"x": 2})
        assert len(spec_content_digest(a)) == 64


class TestValidation:
    def test_rejects_non_dict(self):
        assert validate_record([1, 2]) != []
        assert validate_record(None) != []

    def test_rejects_wrong_schema_and_unknown_kind(self):
        record = sweep_start_record(total=1, jobs=1, cache=False)
        record["schema"] = "something/else"
        assert any("schema" in e for e in validate_record(record))
        record = sweep_start_record(total=1, jobs=1, cache=False)
        record["kind"] = "mystery"
        assert any("kind" in e for e in validate_record(record))

    def test_reports_missing_and_mistyped_fields(self, small_result):
        record = run_record(small_result)
        del record["digest"]
        record["seed"] = "not-an-int"
        errors = validate_record(record)
        assert any("digest" in e for e in errors)
        assert any("seed" in e for e in errors)

    def test_bool_does_not_pass_as_int(self):
        # bool is an int subclass; the schema must still reject it
        # where an actual count is required.
        record = sweep_start_record(total=True, jobs=1, cache=False)
        assert any("total" in e for e in validate_record(record))

    def test_outcome_and_provenance_vocabulary(self, small_result):
        record = run_record(small_result)
        record["outcome"] = "meh"
        record["provenance"] = "psychic"
        errors = validate_record(record)
        assert any("outcome" in e for e in errors)
        assert any("provenance" in e for e in errors)

    def test_optional_fields_validate_when_present(self, small_result):
        # Fault-tolerance fields are schema-optional: pre-existing
        # ledgers without them stay valid, new ones are type-checked.
        record = run_record(small_result, attempts=2)
        record["failure"] = {"reason": "timeout"}
        assert validate_record(record) == []
        record["attempts"] = "two"
        assert any("attempts" in e for e in validate_record(record))
        record["attempts"] = True  # bool must not pass as int
        assert any("attempts" in e for e in validate_record(record))
        end = sweep_end_record(
            completed=1, total=2, elapsed=0.5, violation_count=0,
            cache=None, interrupted=True, failed=1)
        assert validate_record(end) == []
        assert end["interrupted"] is True
        assert end["failed"] == 1

    def test_failed_outcome_is_valid(self, small_result):
        record = run_record(small_result)
        record["outcome"] = "failed"
        assert validate_record(record) == []
        record["provenance"] = "checkpoint"
        assert validate_record(record) == []


class TestRunLedger:
    def test_append_read_round_trip(self, tmp_path, small_result):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(str(path)) as ledger:
            ledger.append(sweep_start_record(total=2, jobs=1, cache=False))
            ledger.append(run_record(small_result, ts=1.0))
            ledger.append(run_record(small_result, provenance="cache", ts=2.0))
            ledger.append(sweep_end_record(
                completed=2, total=2, elapsed=0.5, violation_count=0,
                cache=None))
            assert ledger.appended == 4
        records, skipped = read_ledger(str(path))
        assert skipped == 0
        assert [r["kind"] for r in records] == [
            "sweep-start", "run", "run", "sweep-end"]
        for record in records:
            assert validate_record(record) == []
        # Every line is one complete JSON document.
        assert len(path.read_text().strip().splitlines()) == 4

    def test_append_rejects_invalid_records(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(str(path)) as ledger:
            with pytest.raises(ValueError, match="invalid ledger record"):
                ledger.append({"kind": "run"})
        assert not path.exists() or path.read_text() == ""

    def test_appends_accumulate_across_reopens(self, tmp_path, small_result):
        path = tmp_path / "ledger.jsonl"
        for _ in range(2):
            with RunLedger(str(path)) as ledger:
                ledger.append(run_record(small_result))
        records, skipped = read_ledger(str(path))
        assert (len(records), skipped) == (2, 0)

    def test_reader_tolerates_torn_trailing_line(
        self, tmp_path, small_result
    ):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(str(path)) as ledger:
            ledger.append(run_record(small_result))
            ledger.append(run_record(small_result))
        # A SIGKILLed writer can leave a partial final line.
        with open(path, "a") as handle:
            handle.write('{"schema": "repro-mobility-ledger/v1", "kind": "ru')
        records, skipped = read_ledger(str(path))
        assert len(records) == 2
        assert skipped == 1
        assert all(validate_record(r) == [] for r in records)

    def test_creates_parent_directories(self, tmp_path, small_result):
        path = tmp_path / "deep" / "nested" / "ledger.jsonl"
        with RunLedger(str(path)) as ledger:
            ledger.append(run_record(small_result))
        assert path.exists()


class TestSummarizeAndRender:
    def _records(self, small_result):
        ok = run_record(small_result, ts=10.0)
        slow = run_record(small_result, provenance="cache", ts=11.0)
        bad = run_record(small_result, ts=12.0)
        bad["outcome"] = "violations"
        bad["violation_count"] = 2
        bad["violations"] = [
            {"invariant": "ttl-decreases", "time": 1.0, "node": "r1",
             "trace_id": 7, "message": "boom"},
            {"invariant": "ttl-decreases", "time": 2.0, "node": "r1",
             "trace_id": 8, "message": "boom"},
        ]
        bad["label"] = "bad-cell"
        return [
            sweep_start_record(total=3, jobs=1, cache=True, ts=9.5),
            ok, slow, bad,
            sweep_end_record(completed=3, total=3, elapsed=2.5,
                             violation_count=2, cache={"hits": 1}, ts=12.5),
        ]

    def test_summary_aggregates(self, small_result):
        summary = summarize_ledger(self._records(small_result))
        assert summary["records"] == 5
        assert summary["runs"] == 3
        assert summary["sweeps"] == 1
        assert summary["outcomes"] == {"ok": 2, "violations": 1, "failed": 0}
        assert summary["provenance"] == {"run": 2, "cache": 1,
                                         "checkpoint": 0}
        assert summary["failures"] == []
        assert summary["retries"] == 0
        assert summary["interrupted_sweeps"] == 0
        assert summary["cache_hit_rate"] == pytest.approx(1 / 3)
        assert summary["timed_runs"] == 3
        assert summary["phase_totals"]["total"] > 0
        assert summary["phase_means"]["drive"] > 0
        assert len(summary["slowest"]) == 3
        index = summary["violation_index"]
        assert index["ttl-decreases"]["count"] == 2
        assert index["ttl-decreases"]["labels"] == ["bad-cell"]
        assert summary["wall"]["elapsed"] == pytest.approx(3.0)

    def test_summary_of_empty_ledger(self):
        summary = summarize_ledger([])
        assert summary["runs"] == 0
        assert summary["cache_hit_rate"] == 0.0
        assert summary["slowest"] == []

    def test_markdown_rendering(self, small_result):
        summary = summarize_ledger(self._records(small_result))
        text = render_ledger_markdown(summary)
        assert text.startswith("# Run-ledger report")
        assert "## Phase-time breakdown" in text
        assert "## Slowest cells" in text
        assert "## Fast-forward / cache efficacy" in text
        assert "## Violation index" in text
        assert "`ttl-decreases`" in text
        # Markdown survives a JSON round trip (report --json contract).
        assert json.loads(json.dumps(summary)) == summary

    def test_markdown_without_violations(self, small_result):
        summary = summarize_ledger([run_record(small_result)])
        text = render_ledger_markdown(summary)
        assert "No invariant violations recorded." in text
