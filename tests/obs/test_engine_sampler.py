"""Tests for the engine sampler and the Observability facade."""

import json

import pytest

from repro.analysis import MH_HOME_ADDRESS, build_scenario
from repro.mobileip import Awareness
from repro.netsim.simulator import Simulator
from repro.obs import EngineSampler


class TestEngineSampler:
    def test_cadence_controls_sample_count(self):
        sim = Simulator(seed=3)
        sampler = EngineSampler(sim, cadence=0.5)
        sampler.start()
        sim.run(until=10.0)
        sampler.stop()
        assert len(sampler.samples) == 20
        times = [sample["time"] for sample in sampler.samples]
        assert times[0] == pytest.approx(0.5)
        assert times == sorted(times)

    def test_invalid_cadence_rejected(self):
        with pytest.raises(ValueError):
            EngineSampler(Simulator(seed=3), cadence=0.0)

    def test_sample_fields(self):
        scenario = build_scenario(seed=31, ch_awareness=Awareness.CONVENTIONAL)
        sampler = EngineSampler(scenario.sim, cadence=1.0)
        sampler.start()
        scenario.sim.run_for(3)
        sampler.stop()
        sample = sampler.samples[-1]
        assert set(sample) >= {"time", "pending", "heap", "cancelled",
                               "cancelled_ratio", "processed", "nodes", "links"}
        assert sample["pending"] == sample["heap"] - sample["cancelled"]
        assert "mh" in sample["nodes"]
        assert "reassembly_pending" in sample["nodes"]["mh"]
        assert any("utilization" in link for link in sample["links"].values())

    def test_link_utilization_reflects_traffic(self):
        scenario = build_scenario(seed=31, ch_awareness=Awareness.CONVENTIONAL)
        sampler = EngineSampler(scenario.sim, cadence=1.0)
        sampler.start()
        sock = scenario.mh.stack.udp_socket(7000)
        sock.on_receive(lambda *_: None)
        ch_sock = scenario.ch.stack.udp_socket()
        for index in range(20):
            scenario.sim.events.schedule(
                index * 0.05,
                lambda: ch_sock.sendto("x", 1000, MH_HOME_ADDRESS, 7000))
        scenario.sim.run_for(2)
        sampler.stop()
        peak = sampler.summary()["peak_link_utilization"]
        assert any(value > 0 for value in peak.values())

    def test_link_samples_carry_queue_fields(self):
        scenario = build_scenario(seed=31, ch_awareness=Awareness.CONVENTIONAL)
        sampler = EngineSampler(scenario.sim, cadence=1.0)
        sampler.start()
        scenario.sim.run_for(2)
        sampler.stop()
        for link in sampler.samples[-1]["links"].values():
            assert "queue_depth" in link
            assert "queue_dropped" in link

    def test_peak_queue_depth_reports_contended_segment(self):
        scenario = build_scenario(
            seed=31, ch_awareness=Awareness.CONVENTIONAL,
            link_bandwidths={"uplink-home": 1.5e6},
            queue_capacities={"uplink-home": 8})
        sampler = EngineSampler(scenario.sim, cadence=0.05)
        sampler.start()
        sock = scenario.mh.stack.udp_socket(7000)
        sock.on_receive(lambda *_: None)
        ch_sock = scenario.ch.stack.udp_socket()
        for index in range(40):
            scenario.sim.events.schedule(
                index * 0.001,
                lambda: ch_sock.sendto("x", 1000, MH_HOME_ADDRESS, 7000))
        scenario.sim.run_for(2)
        sampler.stop()
        peaks = sampler.summary()["peak_queue_depth"]
        assert peaks.get("uplink-home", 0) > 0
        # Uncontended segments are elided from the peak map entirely.
        assert all(depth > 0 for depth in peaks.values())

    def test_max_samples_stops_rescheduling(self):
        sim = Simulator(seed=3)
        sampler = EngineSampler(sim, cadence=0.1, max_samples=5)
        sampler.start()
        # Unbounded run: must terminate because the sampler caps itself.
        sim.run()
        assert len(sampler.samples) == 5

    def test_stop_cancels_timer(self):
        sim = Simulator(seed=3)
        sampler = EngineSampler(sim, cadence=0.5)
        sampler.start()
        sim.run(until=1.0)
        sampler.stop()
        count = len(sampler.samples)
        sim.run(until=5.0)
        assert len(sampler.samples) == count

    def test_empty_summary(self):
        sampler = EngineSampler(Simulator(seed=3), cadence=0.5)
        assert sampler.summary() == {"samples": 0}


class TestObservabilityFacade:
    def test_report_structure_and_write(self, tmp_path):
        scenario = build_scenario(seed=32, ch_awareness=Awareness.CONVENTIONAL)
        obs = scenario.sim.enable_observability()
        sock = scenario.mh.stack.udp_socket(7000)
        sock.on_receive(lambda *_: None)
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.sendto("x", 100, MH_HOME_ADDRESS, 7000)
        scenario.sim.run_for(3)
        obs.finish()
        report = obs.report()
        assert report["sim_time"] == scenario.sim.now
        assert report["spans"]["open"] == 0
        assert report["spans"]["count"] >= 1
        assert report["engine"]["summary"]["samples"] >= 1
        assert "node.packets_sent" in report["metrics"]

        path = tmp_path / "report.json"
        obs.write(path)
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["spans"]["count"] == report["spans"]["count"]

    def test_finish_is_idempotent(self):
        sim = Simulator(seed=3)
        obs = sim.enable_observability()
        sim.run(until=2.0)
        obs.finish()
        obs.finish()
        assert obs.report()["spans"]["count"] == 0

    def test_spans_disabled_export_raises(self):
        sim = Simulator(seed=3)
        obs = sim.enable_observability(spans=False)
        with pytest.raises(RuntimeError):
            obs.export_chrome_trace("/tmp/nope.json")
        assert "spans" not in obs.report()


class TestSamplerUnderFastForward:
    """The sampler must survive replayed cascades: its tick is
    ``ff_transparent`` (read-only), so the forwarder executes it
    benignly mid-replay instead of treating it as a world change —
    and the samples taken there are tagged."""

    def _run(self, fast_forward):
        import dataclasses

        from repro.experiment import Runner, canonical_traffic_spec

        spec = dataclasses.replace(
            canonical_traffic_spec(datagrams=60),
            fast_forward=fast_forward)
        samplers = []

        def driver(scenario, _spec):
            sampler = EngineSampler(scenario.sim, cadence=0.5)
            sampler.start()
            samplers.append(sampler)
            return None

        result = Runner().run(spec, driver=driver)
        return result, samplers[0]

    def test_digest_unchanged_and_samples_tagged(self):
        on, sampler_on = self._run(fast_forward=True)
        off, sampler_off = self._run(fast_forward=False)
        assert on.digest == off.digest
        assert on.metrics == off.metrics
        stats = on.extras["fast_forward"]
        assert stats["engaged_runs"] >= 1
        assert stats["replayed"] > 0
        # A transparent tick never counts as a world change.
        assert stats["world_changes"] == 0
        assert len(sampler_on.samples) == len(sampler_off.samples)
        tagged = [s for s in sampler_on.samples if s.get("fast_forwarded")]
        assert tagged, "no sample was taken during a replayed stretch"
        assert all(s["replayed_since_last"] >= 0 for s in tagged)
        assert not any(
            s.get("fast_forwarded") for s in sampler_off.samples)
        summary = sampler_on.summary()
        assert summary["fast_forwarded_samples"] == len(tagged)
        assert summary["replayed_in_samples"] <= stats["replayed"]
        assert "fast_forwarded_samples" not in sampler_off.summary()
