"""Tests for packet-lifecycle span recording."""

import pytest

from repro.analysis import MH_HOME_ADDRESS, build_scenario
from repro.mobileip import Awareness
from repro.netsim.simulator import Simulator


def _traffic_scenario(seed=901):
    scenario = build_scenario(seed=seed, ch_awareness=Awareness.CONVENTIONAL)
    obs = scenario.sim.enable_observability()
    return scenario, obs


class TestSpanRecorder:
    def test_root_span_per_datagram(self):
        scenario, obs = _traffic_scenario()
        sock = scenario.mh.stack.udp_socket(7000)
        sock.on_receive(lambda *_: None)
        ch_sock = scenario.ch.stack.udp_socket()
        for _ in range(5):
            ch_sock.sendto("x", 100, MH_HOME_ADDRESS, 7000)
            scenario.sim.run_for(1)
        obs.finish()
        roots = [span for span in obs.spans.roots()
                 if span.args.get("dst") == str(MH_HOME_ADDRESS)]
        assert len(roots) == 5
        for root in roots:
            assert root.parent_id is None
            assert root.args.get("delivered") is True
            assert root.end is not None and root.duration > 0

    def test_tunnel_span_nested_under_root(self):
        scenario, obs = _traffic_scenario()
        sock = scenario.mh.stack.udp_socket(7000)
        sock.on_receive(lambda *_: None)
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.sendto("x", 100, MH_HOME_ADDRESS, 7000)
        scenario.sim.run_for(5)
        obs.finish()
        root = [span for span in obs.spans.roots()
                if span.args.get("dst") == str(MH_HOME_ADDRESS)][0]
        tree = obs.spans.tree(root.trace_id)
        tunnels = [span for span in tree if span.name == "tunnel"]
        assert len(tunnels) == 1
        assert tunnels[0].parent_id == root.span_id
        assert tunnels[0].node == "ha"
        assert tunnels[0].end is not None
        # The tunnel leg lives inside the root interval.
        assert root.start <= tunnels[0].start <= tunnels[0].end <= root.end

    def test_outgoing_mode_tagging(self):
        scenario, obs = _traffic_scenario()
        ch_sock = scenario.ch.stack.udp_socket(6000)
        ch_sock.on_receive(lambda *_: None)
        mh_sock = scenario.mh.stack.udp_socket()
        mh_sock.sendto("y", 64, scenario.ch_ip, 6000)
        scenario.sim.run_for(5)
        obs.finish()
        modes = {span.args.get("mode") for span in obs.spans.roots()
                 if span.args.get("mode")}
        assert "Out-IE" in modes

    def test_max_bytes_tracks_encapsulation_overhead(self):
        scenario, obs = _traffic_scenario()
        sock = scenario.mh.stack.udp_socket(7000)
        sock.on_receive(lambda *_: None)
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.sendto("x", 100, MH_HOME_ADDRESS, 7000)
        scenario.sim.run_for(5)
        obs.finish()
        root = [span for span in obs.spans.roots()
                if span.args.get("dst") == str(MH_HOME_ADDRESS)][0]
        # IPIP adds one 20-byte outer header on the tunneled leg.
        assert root.args["max_bytes"] - root.args["base_bytes"] == 20

    def test_finish_marks_inflight_incomplete(self):
        scenario, obs = _traffic_scenario()
        sock = scenario.mh.stack.udp_socket(7000)
        sock.on_receive(lambda *_: None)
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.sendto("x", 100, MH_HOME_ADDRESS, 7000)
        # Stop mid-flight: not enough time to deliver.
        scenario.sim.run_for(0.001)
        obs.finish()
        roots = [span for span in obs.spans.roots()
                 if span.args.get("dst") == str(MH_HOME_ADDRESS)]
        assert roots and roots[0].args.get("incomplete") is True
        assert obs.spans.open_count == 0

    def test_summarize_per_mode(self):
        scenario, obs = _traffic_scenario()
        sock = scenario.mh.stack.udp_socket(7000)
        sock.on_receive(lambda *_: None)
        ch_sock = scenario.ch.stack.udp_socket()
        for _ in range(3):
            ch_sock.sendto("x", 100, MH_HOME_ADDRESS, 7000)
            scenario.sim.run_for(1)
        obs.finish()
        summary = obs.spans.summarize()
        conventional = summary["conventional"]
        assert conventional["delivered"] >= 3
        assert conventional["latency"]["count"] >= 3
        assert conventional["latency"]["mean"] > 0
        assert conventional["overhead_bytes"]["max"] >= 20

    def test_double_attach_rejected(self):
        sim = Simulator(seed=1)
        obs = sim.enable_observability()
        with pytest.raises(RuntimeError):
            obs.spans.attach(sim.trace)

    def test_enable_observability_twice_rejected(self):
        sim = Simulator(seed=1)
        sim.enable_observability()
        with pytest.raises(RuntimeError):
            sim.enable_observability()

    def test_detach_restores_note(self):
        sim = Simulator(seed=1)
        original = sim.trace.note
        obs = sim.enable_observability(engine_cadence=None)
        assert sim.trace.note != original
        obs.disable()
        assert sim.trace.note == original
        assert "note" not in sim.trace.__dict__

    def test_detach_restores_disabled_note(self):
        from repro.netsim.trace import TraceLog
        from repro.obs import SpanRecorder

        trace = TraceLog(enabled=False, aggregates=False)
        disabled = trace.note
        recorder = SpanRecorder()
        recorder.attach(trace)
        recorder.detach()
        assert trace.note == disabled


class TestGoldenTraceUnperturbed:
    def test_spans_do_not_change_the_trace(self):
        """Span recording must observe, never perturb, the event stream."""
        from repro.bench.golden import golden_trace_digest

        plain_digest, plain_count = golden_trace_digest(datagrams=20)

        from repro.analysis import scenarios as scenarios_mod
        original = scenarios_mod.build_scenario

        def build_with_obs(*args, **kwargs):
            scenario = original(*args, **kwargs)
            scenario.sim.enable_observability()
            return scenario

        # golden_trace_digest imports build_scenario from repro.analysis.
        import repro.analysis as analysis_mod
        analysis_mod.build_scenario = build_with_obs
        try:
            observed_digest, observed_count = golden_trace_digest(datagrams=20)
        finally:
            analysis_mod.build_scenario = original
        assert observed_digest == plain_digest
        assert observed_count == plain_count
