"""Tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_push_counter_increments(self):
        counter = Counter("c", {})
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_push_counter_rejects_decrease(self):
        counter = Counter("c", {})
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_pull_counter_reads_source(self):
        source = {"n": 0}
        counter = Counter("c", {}, read=lambda: source["n"])
        assert counter.value == 0
        source["n"] = 42
        assert counter.value == 42

    def test_pull_counter_rejects_push(self):
        counter = Counter("c", {}, read=lambda: 0)
        with pytest.raises(RuntimeError):
            counter.inc()


class TestGauge:
    def test_push_gauge_goes_up_and_down(self):
        gauge = Gauge("g", {})
        gauge.set(3.0)
        assert gauge.value == 3.0
        gauge.set(1.0)
        assert gauge.value == 1.0

    def test_pull_gauge_rejects_push(self):
        gauge = Gauge("g", {}, read=lambda: 7)
        assert gauge.value == 7
        with pytest.raises(RuntimeError):
            gauge.set(1.0)


class TestHistogram:
    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", {}, (1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", {}, ())

    def test_observe_and_stats(self):
        histogram = Histogram("h", {}, (1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 1.5, 10.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.min == 0.5
        assert histogram.max == 10.0
        assert histogram.mean == pytest.approx(13.5 / 4)
        # 0.5 -> bucket le=1.0; both 1.5 -> le=2.0; 10.0 -> overflow
        assert histogram.bucket_counts == [1, 2, 0, 1]

    def test_quantile_interpolates(self):
        histogram = Histogram("h", {}, (1.0, 2.0))
        for _ in range(10):
            histogram.observe(1.5)
        p50 = histogram.quantile(0.5)
        assert 1.0 <= p50 <= 2.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_quantile_empty_is_zero(self):
        assert Histogram("h", {}, (1.0,)).quantile(0.5) == 0.0

    def test_snapshot_shape(self):
        histogram = Histogram("h", {"mode": "x"}, (1.0, 2.0))
        histogram.observe(0.5)
        snap = histogram.snapshot()
        assert snap["count"] == 1
        assert snap["buckets"][-1]["le"] == "+Inf"
        assert len(snap["buckets"]) == 3
        assert set(snap) >= {"count", "sum", "mean", "min", "max", "p50", "p99"}

    def test_canonical_bucket_sets(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
        assert list(SIZE_BUCKETS) == sorted(SIZE_BUCKETS)


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c", node="a")
        second = registry.counter("c", node="a")
        assert first is second

    def test_same_name_different_labels_distinct(self):
        registry = MetricsRegistry()
        a = registry.counter("c", node="a")
        b = registry.counter("c", node="b")
        assert a is not b
        a.inc(2)
        b.inc(3)
        assert registry.total("c") == 5

    def test_reregistration_repoints_read(self):
        registry = MetricsRegistry()
        registry.counter("c", read=lambda: 1, node="a")
        registry.counter("c", read=lambda: 99, node="a")
        assert registry.value("c", node="a") == 99

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m", node="a")
        with pytest.raises(TypeError):
            registry.gauge("m", node="a")
        with pytest.raises(TypeError):
            registry.histogram("m", node="a")

    def test_value_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            MetricsRegistry().value("nope", node="a")

    def test_series_yields_labels_and_values(self):
        registry = MetricsRegistry()
        registry.counter("c", read=lambda: 4, node="a")
        registry.counter("c", read=lambda: 6, node="b")
        series = {labels["node"]: value for labels, value in registry.series("c")}
        assert series == {"a": 4, "b": 6}

    def test_family_read(self):
        registry = MetricsRegistry()
        data = {"ttl": 3}
        registry.family("drops", lambda: data)
        assert registry.read_family("drops") == {"ttl": 3}
        assert registry.read_family("missing") == {}

    def test_names_and_collect(self):
        registry = MetricsRegistry()
        registry.counter("z.count", node="a").inc()
        registry.gauge("a.depth", read=lambda: 2, node="a")
        registry.histogram("h.lat", bounds=(1.0,), mode="x").observe(0.5)
        registry.family("f.map", lambda: {"k": 1})
        assert registry.names() == ["a.depth", "f.map", "h.lat", "z.count"]
        collected = registry.collect()
        assert collected["z.count"][0]["kind"] == "counter"
        assert collected["z.count"][0]["value"] == 1
        assert collected["a.depth"][0]["value"] == 2
        assert collected["h.lat"][0]["count"] == 1
        assert collected["f.map"][0]["value"] == {"k": 1}

    def test_collect_is_json_serializable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c", node="a").inc()
        registry.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        json.dumps(registry.collect())
