"""Tests for the violation flight recorder (:mod:`repro.obs.flightrec`)."""

import json

import pytest

from repro.experiment import Runner, canonical_traffic_spec
from repro.obs.flightrec import (
    DEFAULT_FLIGHT_LIMIT,
    FLIGHTREC_SCHEMA,
    FlightRecorder,
)
from repro.obs.ledger import RunLedger

# The canonical-workload digest pinned by tests/experiment/test_runner
# and tests/netsim/test_golden_trace — telemetry must never move it.
GOLDEN_DIGEST = "6c91661118a78681dfe5624d953ae85bb5a3f6e3b7e88fc4d166a9a121cf8a8f"
GOLDEN_ENTRIES = 3618


class _FakePacket:
    def __init__(self, trace_id):
        self.trace_id = trace_id
        self.src = "10.0.0.1"
        self.dst = "10.0.0.2"
        self.wire_size = 120

    def record(self, *_args):
        """TraceLog.note mirrors every event onto the packet itself."""

    def __repr__(self):
        return f"<fake {self.trace_id}>"


class TestRing:
    def test_ring_is_bounded_and_keeps_the_tail(self, sim):
        recorder = FlightRecorder(sim, limit=4)
        recorder.attach(sim.trace)
        for index in range(10):
            sim.trace.note(float(index), "n", "send", _FakePacket(index))
        assert recorder.recorded == 10
        entries = recorder.entries()
        assert len(entries) == 4
        assert [e["trace_id"] for e in entries] == [6, 7, 8, 9]
        assert entries[-1]["packet"] == "<fake 9>"

    def test_limit_must_be_positive(self, sim):
        with pytest.raises(ValueError, match="limit"):
            FlightRecorder(sim, limit=0)

    def test_default_limit(self, sim):
        recorder = sim.enable_flight_recorder()
        assert recorder.limit == DEFAULT_FLIGHT_LIMIT

    def test_trace_stream_is_unmodified(self, sim):
        recorder = FlightRecorder(sim, limit=8)
        recorder.attach(sim.trace)
        sim.trace.note(1.0, "n", "send", _FakePacket(1), "hi")
        assert len(sim.trace.entries) == 1
        assert sim.trace.entries[0].detail == "hi"
        assert recorder.entries()[0]["detail"] == "hi"


class TestAttachment:
    def test_attach_detach_restores_class_method(self, sim):
        trace = sim.trace
        assert "note" not in trace.__dict__
        recorder = FlightRecorder(sim, limit=4)
        recorder.attach(trace)
        assert "note" in trace.__dict__
        recorder.detach()
        assert "note" not in trace.__dict__

    def test_attach_composes_with_an_existing_instance_wrap(self, sim):
        # Another observer (invariants, spans) may already have rebound
        # note on the instance; detach must restore *that*, not the
        # class method.
        trace = sim.trace
        seen = []
        original = trace.note

        def outer(time, node, action, packet, detail=""):
            seen.append(action)
            original(time, node, action, packet, detail)

        trace.note = outer
        recorder = FlightRecorder(sim, limit=4)
        recorder.attach(trace)
        trace.note(1.0, "n", "send", _FakePacket(1))
        assert seen == ["send"]
        assert recorder.recorded == 1
        recorder.detach()
        assert trace.__dict__["note"] is outer

    def test_double_attach_and_double_enable_raise(self, sim):
        recorder = sim.enable_flight_recorder(limit=4)
        with pytest.raises(RuntimeError):
            recorder.attach(sim.trace)
        with pytest.raises(RuntimeError, match="already enabled"):
            sim.enable_flight_recorder()

    def test_detach_is_idempotent(self, sim):
        recorder = FlightRecorder(sim, limit=4)
        recorder.attach(sim.trace)
        recorder.detach()
        recorder.detach()


class TestDump:
    def test_dump_payload_and_atomicity(self, tmp_path, sim):
        recorder = FlightRecorder(sim, limit=4)
        recorder.attach(sim.trace)
        sim.segment("lan")
        sim.trace.note(1.0, "n", "send", _FakePacket(3))
        path = tmp_path / "deep" / "flightrec.json"
        returned = recorder.dump(
            str(path), reason="unit-test",
            violations=[{"invariant": "x", "trace_id": 3}])
        assert returned == str(path)
        assert recorder.dumps == 1
        payload = json.loads(path.read_text())
        assert payload["schema"] == FLIGHTREC_SCHEMA
        assert payload["reason"] == "unit-test"
        assert payload["limit"] == 4
        assert payload["recorded"] == 1
        assert payload["entries"][-1]["trace_id"] == 3
        assert payload["violations"][0]["invariant"] == "x"
        engine = payload["engine"]
        assert set(engine) == {"clock", "events", "nodes", "segments"}
        assert engine["segments"]["lan"]["up"] is True
        # No leftover temp file from the write-then-rename.
        assert list(path.parent.iterdir()) == [path]


class TestRunnerIntegration:
    def test_violating_run_dumps_the_violating_datagram(self, tmp_path):
        path = tmp_path / "flightrec.json"
        spec = canonical_traffic_spec(
            datagrams=5, arm_invariants=True, max_tunnel_depth=0)
        runner = Runner(flightrec_path=str(path))
        result = runner.run(spec)
        info = result.extras["flightrec"]
        assert info["armed"] is True
        assert info["dumped"] is True
        assert info["reason"] == "invariant-violation"
        assert info["path"] == str(path)
        payload = json.loads(path.read_text())
        assert payload["reason"] == "invariant-violation"
        assert payload["violations"]
        # The ring's recent entries include the violating datagram.
        violating_ids = {v["trace_id"] for v in payload["violations"]}
        ring_ids = {e["trace_id"] for e in payload["entries"]}
        assert violating_ids & ring_ids
        # Engine state was captured live, with mobility bindings.
        assert payload["engine"]["nodes"]["ha"]["bindings"]

    def test_clean_run_arms_but_does_not_dump(self, tmp_path):
        path = tmp_path / "flightrec.json"
        runner = Runner(flightrec_path=str(path), flightrec_limit=32)
        result = runner.run(canonical_traffic_spec(datagrams=5))
        info = result.extras["flightrec"]
        assert info == {
            "armed": True, "limit": 32, "recorded": info["recorded"],
            "path": None, "dumped": False, "reason": None,
        }
        assert info["recorded"] > 0
        assert not path.exists()

    def test_fast_forwarder_stands_aside_when_armed(self, tmp_path):
        runner = Runner(flightrec_path=str(tmp_path / "fr.json"))
        result = runner.run(canonical_traffic_spec(datagrams=20))
        assert result.extras["fast_forward"]["engaged_runs"] == 0
        # The ring saw the live stream (replay would bypass note());
        # build-phase registration entries predate the attach, so the
        # count is bounded by, not equal to, the trace total.
        recorder = runner.scenario.sim.flightrec
        assert 0 < recorder.recorded <= result.trace_entries
        trace = runner.scenario.sim.trace
        last = recorder.entries()[-1]
        assert last["trace_id"] == trace.entries[-1].trace_id
        assert last["action"] == trace.entries[-1].action

    def test_digest_neutral_with_ledger_and_flightrec_armed(self, tmp_path):
        # The PR's acceptance pin: full telemetry on, canonical digest
        # byte-identical to the golden value.
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        with ledger:
            runner = Runner(
                ledger=ledger,
                flightrec_path=str(tmp_path / "flightrec.json"),
            )
            result = runner.run(canonical_traffic_spec())
        assert result.digest == GOLDEN_DIGEST
        assert result.trace_entries == GOLDEN_ENTRIES
        assert ledger.appended == 1
