"""Integration test: Chrome trace_event export of one encapsulated,
fragmented datagram, verified by loading the exported file.

The recipe: a conventional correspondent sends a UDP datagram of
data_size 1462, so the inner packet is 1490 bytes on the wire (20 IP +
8 UDP + 1462) — under the 1500-byte LAN MTU at the correspondent.  The
home agent captures it and IP-in-IP encapsulation adds 20 bytes,
pushing the outer packet to 1510 > 1500, so it fragments on the home
LAN's egress toward the backbone.  The datagram therefore travels
root -> tunnel -> fragmentation, which is exactly the parent/child
chain the exported trace must show.
"""

import json

from repro.analysis import MH_HOME_ADDRESS, build_scenario
from repro.mobileip import Awareness


def _run_fragmented_datagram(tmp_path):
    scenario = build_scenario(seed=424, ch_awareness=Awareness.CONVENTIONAL)
    obs = scenario.sim.enable_observability()
    sock = scenario.mh.stack.udp_socket(7000)
    sock.on_receive(lambda *_: None)
    ch_sock = scenario.ch.stack.udp_socket()
    ch_sock.sendto("big", 1462, MH_HOME_ADDRESS, 7000)
    scenario.sim.run_for(10)
    obs.finish()
    path = tmp_path / "trace.json"
    count = obs.export_chrome_trace(path)
    assert count == len(obs.spans.spans) + 1  # +1 metadata event
    return scenario, obs, path


class TestChromeTraceExport:
    def test_span_links_across_encapsulated_fragmented_datagram(self, tmp_path):
        scenario, obs, path = _run_fragmented_datagram(tmp_path)
        with open(path) as handle:
            trace = json.load(handle)

        events = trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"
        metadata = [e for e in events if e["ph"] == "M"]
        assert metadata and metadata[0]["name"] == "process_name"

        spans = [e for e in events if e["ph"] == "X"]
        by_id = {e["args"]["span_id"]: e for e in spans}

        # Find the big datagram's fragmentation span and walk up.
        frags = [e for e in spans if e["name"] == "fragmentation"]
        assert len(frags) == 1
        frag = frags[0]
        tunnel = by_id[frag["args"]["parent_id"]]
        assert tunnel["name"] == "tunnel"
        assert tunnel["cat"] == "encap"
        assert tunnel["args"]["node"] == "ha"
        root = by_id[tunnel["args"]["parent_id"]]
        assert root["name"].startswith("datagram-")
        assert root["args"]["parent_id"] is None
        assert root["args"]["delivered"] is True
        assert root["args"]["fragmented"] is True
        assert root["args"]["src"] == str(scenario.ch_ip)
        assert root["args"]["dst"] == str(MH_HOME_ADDRESS)

        # All three share the datagram's trace id as their thread id.
        assert frag["tid"] == tunnel["tid"] == root["tid"]

        # Complete-event timing invariants (microseconds, non-negative).
        for event in (root, tunnel, frag):
            assert event["pid"] == 1
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        # Children start no earlier than the root does.
        assert root["ts"] <= tunnel["ts"] <= frag["ts"]

    def test_overhead_recorded_in_root_args(self, tmp_path):
        _, obs, path = _run_fragmented_datagram(tmp_path)
        with open(path) as handle:
            trace = json.load(handle)
        roots = [e for e in trace["traceEvents"]
                 if e["ph"] == "X" and e["args"]["parent_id"] is None
                 and e["args"].get("fragmented")]
        assert len(roots) == 1
        args = roots[0]["args"]
        # 1490-byte inner plus the 20-byte IPIP outer header.
        assert args["base_bytes"] == 1490
        assert args["max_bytes"] == 1510

    def test_mode_summary_counts_fragmentation(self, tmp_path):
        _, obs, _ = _run_fragmented_datagram(tmp_path)
        summary = obs.spans.summarize()
        assert summary["conventional"]["fragmented"] >= 1
        assert summary["conventional"]["delivered"] >= 1
