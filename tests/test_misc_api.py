"""Coverage for small public APIs not exercised elsewhere."""

import pytest

from repro.core import GRID, CellClass, InMode
from repro.analysis import TextTable
from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.mobileip import Awareness
from repro.netsim import IPAddress, Network, Node


class TestAddressingHelpers:
    def test_in_network_mirrors_contains(self):
        net = Network("10.1.0.0/16")
        assert IPAddress("10.1.2.3").in_network(net)
        assert not IPAddress("10.2.0.1").in_network(net)

    def test_network_address_property(self):
        assert str(Network("10.1.0.0/16").network_address) == "10.1.0.0"


class TestGridHelpers:
    def test_cells_of_partitions_grid(self):
        total = sum(
            len(GRID.cells_of(cls)) for cls in CellClass
        )
        assert total == 16

    def test_ch_requirement_strings(self):
        assert "conventional" in InMode.IN_IE.ch_requirement
        assert "mobile-aware" in InMode.IN_DE.ch_requirement
        assert "same network segment" in InMode.IN_DH.ch_requirement
        assert "forgoing" in InMode.IN_DT.ch_requirement


class TestSegmentHelpers:
    def test_interface_with_ip(self, lan):
        _sim, segment, a, _b = lan
        found = segment.interface_with_ip(IPAddress("192.168.1.1"))
        assert found is a.interfaces["eth0"]
        assert segment.interface_with_ip(IPAddress("192.168.1.99")) is None


class TestSimulatorRegistry:
    def test_duplicate_node_name_rejected(self, sim):
        Node("dup", sim)
        with pytest.raises(ValueError):
            Node("dup", sim)

    def test_duplicate_segment_name_rejected(self, sim):
        sim.segment("seg")
        with pytest.raises(ValueError):
            sim.segment("seg")

    def test_node_lookup(self, sim):
        node = Node("findme", sim)
        assert sim.node("findme") is node

    def test_next_token_monotonic(self, sim):
        assert sim.next_token() < sim.next_token()

    def test_run_for_advances_relative(self, sim):
        sim.run_for(5.0)
        sim.run_for(5.0)
        assert sim.now == 10.0


class TestTopologyHelpers:
    def test_gateway_ip_is_boundary_inside_address(self, sim):
        from repro.netsim import Internet

        net = Internet(sim)
        domain = net.add_domain("d", "10.1.0.0/16")
        assert str(domain.gateway_ip) == "10.1.0.1"


class TestCorrespondentHelpers:
    def test_forget_binding_reverts_to_triangle(self):
        scenario = build_scenario(seed=951, ch_awareness=Awareness.MOBILE_AWARE)
        scenario.ch.learn_binding(MH_HOME_ADDRESS, scenario.mh.care_of, 300.0)
        scenario.ch.forget_binding(MH_HOME_ADDRESS)
        sock = scenario.mh.stack.udp_socket(7000)
        got = []
        sock.on_receive(lambda d, *a: got.append(d))
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.sendto("x", 50, MH_HOME_ADDRESS, 7000)
        scenario.sim.run_for(10)
        assert got == ["x"]
        assert scenario.ch.direct_tunneled == 0
        assert scenario.ha.packets_tunneled == 1


class TestReporting:
    def test_table_print_goes_to_stdout(self, capsys):
        table = TextTable("T", ["a"])
        table.add_row(1)
        table.print()
        out = capsys.readouterr().out
        assert "== T ==" in out
