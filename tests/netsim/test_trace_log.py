"""Tests for TraceLog's per-datagram index and JSONL round-tripping."""

from repro.netsim.addressing import IPAddress
from repro.netsim.packet import IPProto, Packet
from repro.netsim.trace import TraceLog


def _packet(payload_size=100):
    return Packet(
        src=IPAddress("10.3.0.10"),
        dst=IPAddress("10.1.0.10"),
        proto=IPProto.UDP,
        payload_size=payload_size,
    )


def _interleaved_log(datagrams=5, hops=4):
    """Several datagrams noted hop-by-hop in interleaved order."""
    log = TraceLog()
    packets = [_packet() for _ in range(datagrams)]
    for hop in range(hops):
        for index, packet in enumerate(packets):
            action = ("send" if hop == 0
                      else "deliver" if hop == hops - 1 and index % 2 == 0
                      else "drop" if hop == hops - 1
                      else "forward")
            detail = "ttl" if action == "drop" else ""
            log.note(float(hop), f"n{hop}", action, packet, detail)
    return log, packets


class TestEntriesIndex:
    def test_entries_for_matches_linear_scan(self):
        log, packets = _interleaved_log()
        for packet in packets:
            indexed = log.entries_for(packet.trace_id)
            scanned = [e for e in log.entries if e.trace_id == packet.trace_id]
            assert indexed == scanned
            assert len(indexed) == 4

    def test_entries_for_unknown_id_is_empty(self):
        log, _ = _interleaved_log()
        assert log.entries_for(999_999_999) == []

    def test_delivered_dropped_queries(self):
        log, packets = _interleaved_log()
        assert log.delivered(packets[0].trace_id)
        assert not log.delivered(packets[1].trace_id)
        assert log.dropped(packets[1].trace_id)
        assert log.drop_detail(packets[1].trace_id) == "ttl"
        assert log.drop_detail(packets[0].trace_id) is None

    def test_disabled_entries_keep_queries_empty(self):
        log = TraceLog(enabled=False)
        packet = _packet()
        log.note(0.0, "a", "send", packet)
        log.note(1.0, "b", "deliver", packet)
        assert log.entries == []
        assert log.entries_for(packet.trace_id) == []
        assert log.total_deliveries == 1  # aggregates still counted


class TestJsonlRoundTrip:
    def test_round_trip_rebuilds_everything(self, tmp_path):
        log, packets = _interleaved_log()
        path = tmp_path / "trace.jsonl"
        written = log.export_jsonl(path)
        assert written == len(log.entries) == 20

        imported = TraceLog.import_jsonl(path)
        assert imported.entries == log.entries
        assert imported.action_counts == log.action_counts
        assert imported.drops_by_reason == log.drops_by_reason
        for packet in packets:
            assert (imported.entries_for(packet.trace_id)
                    == log.entries_for(packet.trace_id))
            assert imported.delivered(packet.trace_id) == \
                log.delivered(packet.trace_id)
        assert imported.summary() == log.summary()

    def test_buffered_export_flushes_all_chunk_sizes(self, tmp_path):
        log, _ = _interleaved_log(datagrams=7, hops=3)
        for chunk in (1, 2, 1000):
            path = tmp_path / f"chunk{chunk}.jsonl"
            log.export_jsonl(path, chunk_lines=chunk)
            assert len(path.read_text().splitlines()) == len(log.entries)
            assert TraceLog.import_jsonl(path).entries == log.entries

    def test_import_skips_blank_lines(self, tmp_path):
        log, _ = _interleaved_log(datagrams=2, hops=2)
        path = tmp_path / "trace.jsonl"
        log.export_jsonl(path)
        path.write_text(path.read_text() + "\n\n")
        assert TraceLog.import_jsonl(path).entries == log.entries

    def test_export_empty_log(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert TraceLog().export_jsonl(path) == 0
        assert TraceLog.import_jsonl(path).entries == []
