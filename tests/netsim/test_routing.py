"""Tests for longest-prefix-match routing tables."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.addressing import IPAddress, Network
from repro.netsim.routing import RoutingError, RoutingTable


class TestLookup:
    def test_longest_prefix_wins(self):
        table = RoutingTable()
        table.add(Network("10.0.0.0/8"), "coarse")
        table.add(Network("10.1.0.0/16"), "fine")
        route = table.lookup(IPAddress("10.1.2.3"))
        assert route is not None and route.interface == "fine"

    def test_default_route_matches_everything(self):
        table = RoutingTable()
        table.add_default("uplink", IPAddress("192.0.2.1"))
        route = table.lookup(IPAddress("8.8.8.8"))
        assert route is not None and route.interface == "uplink"

    def test_specific_beats_default(self):
        table = RoutingTable()
        table.add_default("uplink", IPAddress("192.0.2.1"))
        table.add(Network("10.1.0.0/16"), "lan")
        assert table.lookup(IPAddress("10.1.0.5")).interface == "lan"
        assert table.lookup(IPAddress("11.0.0.1")).interface == "uplink"

    def test_metric_breaks_equal_length_ties(self):
        table = RoutingTable()
        table.add(Network("10.1.0.0/16"), "worse", metric=10)
        table.add(Network("10.1.0.0/16"), "better", metric=1)
        assert table.lookup(IPAddress("10.1.0.1")).interface == "better"

    def test_no_match_returns_none(self):
        table = RoutingTable()
        table.add(Network("10.1.0.0/16"), "lan")
        assert table.lookup(IPAddress("11.0.0.1")) is None

    def test_lookup_or_raise(self):
        table = RoutingTable()
        with pytest.raises(RoutingError):
            table.lookup_or_raise(IPAddress("1.2.3.4"))

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_chosen_route_always_contains_destination(self, value):
        table = RoutingTable()
        table.add(Network("0.0.0.0/0"), "default")
        table.add(Network("10.0.0.0/8"), "eight")
        table.add(Network("10.1.0.0/16"), "sixteen")
        table.add(Network("10.1.2.0/24"), "twentyfour")
        destination = IPAddress(value)
        route = table.lookup(destination)
        assert route is not None
        assert route.prefix.contains(destination)
        # And no other route is strictly longer while still matching.
        for other in table.routes:
            if other.prefix.contains(destination):
                assert other.prefix.prefix_len <= route.prefix.prefix_len


class TestMutation:
    def test_remove_prefix(self):
        table = RoutingTable()
        table.add(Network("10.1.0.0/16"), "a")
        table.add(Network("10.1.0.0/16"), "b", metric=5)
        table.add(Network("10.2.0.0/16"), "c")
        removed = table.remove_prefix(Network("10.1.0.0/16"))
        assert removed == 2
        assert len(table) == 1

    def test_clear(self):
        table = RoutingTable()
        table.add(Network("10.1.0.0/16"), "a")
        table.clear()
        assert len(table) == 0
        assert table.lookup(IPAddress("10.1.0.1")) is None

    def test_string_form_lists_routes(self):
        table = RoutingTable()
        table.add(Network("10.1.0.0/16"), "eth0", gateway=IPAddress("10.1.0.1"))
        rendered = str(table)
        assert "10.1.0.0/16" in rendered
        assert "via 10.1.0.1" in rendered

    def test_empty_table_renders_placeholder(self):
        assert "empty" in str(RoutingTable())
