"""Tests for the DF bit and path-MTU signalling (RFC 1191 style)."""

import pytest

from repro.netsim import Internet, Node, Simulator
from repro.netsim.icmp import IcmpType, UnreachableCode, UnreachableData
from repro.netsim.packet import IPProto, Packet


@pytest.fixture
def narrow_path():
    sim = Simulator(seed=55)
    net = Internet(sim, backbone_size=2)
    net.add_domain("a", "10.1.0.0/16", attach_at=0, source_filtering=False)
    net.add_domain("b", "10.2.0.0/16", attach_at=1, source_filtering=False)
    sim.segments["p2p-bb0-bb1"].mtu = 576
    a, b = Node("a1", sim), Node("b1", sim)
    ip_a = net.add_host("a", a)
    ip_b = net.add_host("b", b)
    return sim, a, ip_a, b, ip_b


class TestDontFragment:
    def test_df_packet_dropped_at_narrow_hop(self, narrow_path):
        sim, a, ip_a, b, ip_b = narrow_path
        b.proto_handlers[IPProto.UDP] = lambda p: pytest.fail("should not arrive")
        packet = Packet(src=ip_a, dst=ip_b, proto=IPProto.UDP,
                        payload="x", payload_size=1000, dont_fragment=True)
        a.ip_send(packet)
        sim.run(until=10)
        assert sim.trace.drops_by_reason.get("df-mtu-exceeded") == 1

    def test_frag_needed_icmp_reports_mtu(self, narrow_path):
        """The router tells the sender the narrow link's MTU."""
        sim, a, ip_a, b, ip_b = narrow_path
        reported = []

        def hook(packet, message):
            if message.icmp_type is IcmpType.DEST_UNREACHABLE:
                data = message.data
                if (isinstance(data, UnreachableData)
                        and data.code is UnreachableCode.FRAGMENTATION_NEEDED):
                    reported.append(data.mtu)

        a.icmp_hooks.append(hook)
        packet = Packet(src=ip_a, dst=ip_b, proto=IPProto.UDP,
                        payload="x", payload_size=1000, dont_fragment=True)
        a.ip_send(packet)
        sim.run(until=10)
        assert reported == [576]

    def test_df_packet_within_mtu_passes(self, narrow_path):
        sim, a, ip_a, b, ip_b = narrow_path
        seen = []
        b.proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
        packet = Packet(src=ip_a, dst=ip_b, proto=IPProto.UDP,
                        payload="x", payload_size=500, dont_fragment=True)
        a.ip_send(packet)
        sim.run(until=10)
        assert len(seen) == 1

    def test_sender_can_refragment_to_reported_mtu(self, narrow_path):
        """The full path-MTU discovery loop, done by hand: probe with
        DF, learn 576, resend without DF at the discovered size."""
        sim, a, ip_a, b, ip_b = narrow_path
        seen = []
        b.proto_handlers[IPProto.UDP] = lambda p: seen.append(p.inner_size)
        discovered = []

        def hook(packet, message):
            data = getattr(message, "data", None)
            if isinstance(data, UnreachableData) and data.mtu:
                discovered.append(data.mtu)
                # Resend in MTU-sized DF packets.
                remaining = 1000
                while remaining > 0:
                    chunk = min(data.mtu - 20, remaining)
                    remaining -= chunk
                    a.ip_send(Packet(src=ip_a, dst=ip_b, proto=IPProto.UDP,
                                     payload="x", payload_size=chunk,
                                     dont_fragment=True))

        a.icmp_hooks.append(hook)
        a.ip_send(Packet(src=ip_a, dst=ip_b, proto=IPProto.UDP,
                         payload="x", payload_size=1000, dont_fragment=True))
        sim.run(until=10)
        assert discovered == [576]
        assert sum(seen) == 1000
        assert all(size <= 556 for size in seen)


class TestIcmpFeedbackLoop:
    def test_frag_needed_feedback_is_visible_end_to_end_in_the_trace(
        self, narrow_path
    ):
        """The whole RFC 1191 exchange, verified from the global trace:
        the DF datagram dies at the narrow hop, the router's ICMP
        type-3 code-4 travels back and is *delivered* to the sender,
        and the sender's reaction (MTU-sized resends) reaches the
        destination."""
        sim, a, ip_a, b, ip_b = narrow_path
        delivered = []
        b.proto_handlers[IPProto.UDP] = lambda p: delivered.append(p)

        def react(packet, message):
            data = getattr(message, "data", None)
            if (isinstance(data, UnreachableData)
                    and data.code is UnreachableCode.FRAGMENTATION_NEEDED):
                a.ip_send(Packet(src=ip_a, dst=ip_b, proto=IPProto.UDP,
                                 payload="retry", payload_size=data.mtu - 20,
                                 dont_fragment=True))

        a.icmp_hooks.append(react)
        a.ip_send(Packet(src=ip_a, dst=ip_b, proto=IPProto.UDP,
                         payload="x", payload_size=1000, dont_fragment=True))
        sim.run(until=10)

        entries = sim.trace.entries
        # Act 1: the probe dies at the narrow hop, classified.
        drops = [e for e in entries
                 if e.action == "drop" and e.detail == "df-mtu-exceeded"]
        assert len(drops) == 1
        dropping_router = drops[0].node
        assert dropping_router.startswith("bb")
        # Act 2: that router's ICMP error is delivered back to the
        # sender — not just synthesized, but carried hop by hop.
        icmp_deliveries = [
            e for e in entries
            if e.action == "deliver" and e.node == "a1"
            and e.dst == str(ip_a) and e.time > drops[0].time
            and "ICMP" in e.packet_repr
        ]
        assert len(icmp_deliveries) == 1
        # Act 3: the sender reacted and the resized datagram made it.
        assert len(delivered) == 1
        assert delivered[0].payload == "retry"
        retry_deliveries = [
            e for e in entries
            if e.action == "deliver" and e.node == "b1"
            and e.time > icmp_deliveries[0].time
        ]
        assert len(retry_deliveries) == 1


class TestRefragmentation:
    def test_fragments_refragment_at_narrow_hop(self, narrow_path):
        """A 1500-MTU fragment meeting a 576-MTU link splits again and
        the destination still reassembles the original datagram."""
        sim, a, ip_a, b, ip_b = narrow_path
        seen = []
        b.proto_handlers[IPProto.UDP] = lambda p: seen.append(p.inner_size)
        a.ip_send(Packet(src=ip_a, dst=ip_b, proto=IPProto.UDP,
                         payload="x", payload_size=4000))
        sim.run(until=30)
        assert seen == [4000]
        # Fragmentation happened at least twice: once at the source LAN
        # boundary (>1500) and again entering the 576 link.
        assert sim.trace.action_counts["fragment"] >= 2
