"""Tests for the trace log and ICMP message construction rules."""


from repro.netsim.addressing import IPAddress
from repro.netsim.icmp import (
    CareOfAdvisory,
    EchoData,
    IcmpMessage,
    IcmpType,
    UnreachableCode,
    UnreachableData,
    make_icmp_packet,
    unreachable_for,
)
from repro.netsim.packet import IPProto, Packet
from repro.netsim.trace import TraceLog


def udp(src="1.1.1.1", dst="2.2.2.2"):
    return Packet(src=IPAddress(src), dst=IPAddress(dst), proto=IPProto.UDP,
                  payload="x", payload_size=50)


class TestTraceLog:
    def test_note_records_globally_and_on_packet(self):
        log = TraceLog()
        packet = udp()
        log.note(1.0, "n1", "send", packet)
        log.note(2.0, "n2", "deliver", packet)
        assert log.delivered(packet.trace_id)
        assert packet.path == ("n2",)
        assert log.total_deliveries == 1

    def test_drop_bookkeeping(self):
        log = TraceLog()
        packet = udp()
        log.note(1.0, "gw", "drop", packet, detail="filter")
        assert log.dropped(packet.trace_id)
        assert log.drop_detail(packet.trace_id) == "filter"
        assert log.drops_by_reason["filter"] == 1

    def test_delivery_ratio(self):
        log = TraceLog()
        packets = [udp() for _ in range(4)]
        for packet in packets[:3]:
            log.note(0.0, "n", "deliver", packet)
        ratio = log.delivery_ratio([p.trace_id for p in packets])
        assert ratio == 0.75

    def test_delivery_ratio_empty(self):
        assert TraceLog().delivery_ratio([]) == 0.0

    def test_path_of(self):
        log = TraceLog()
        packet = udp()
        log.note(0.0, "a", "send", packet)
        log.note(0.1, "r1", "forward", packet)
        log.note(0.2, "r2", "forward", packet)
        log.note(0.3, "b", "deliver", packet)
        assert log.path_of(packet.trace_id) == ("r1", "r2", "b")
        assert log.hop_counts()[packet.trace_id] == 2

    def test_disabled_log_keeps_aggregates(self):
        log = TraceLog(enabled=False)
        packet = udp()
        log.note(0.0, "n", "drop", packet, detail="x")
        assert log.entries == []
        assert log.total_drops == 1

    def test_link_bytes(self):
        log = TraceLog()
        log.note_link_bytes("lan", 100)
        log.note_link_bytes("lan", 50)
        assert log.bytes_by_link["lan"] == 150

    def test_summary_mentions_drops(self):
        log = TraceLog()
        log.note(0.0, "n", "drop", udp(), detail="why")
        assert "why" in log.summary()


class TestIcmpConstruction:
    def test_echo_packet_size(self):
        message = IcmpMessage(IcmpType.ECHO_REQUEST, EchoData(1, size=56))
        packet = make_icmp_packet(IPAddress("1.1.1.1"), IPAddress("2.2.2.2"), message)
        assert packet.wire_size == 20 + 8 + 56

    def test_advisory_carries_binding(self):
        advisory = CareOfAdvisory(IPAddress("10.1.0.10"), IPAddress("10.2.0.2"), 60.0)
        message = IcmpMessage(IcmpType.MOBILE_CARE_OF_ADVISORY, advisory)
        assert message.size == 20
        assert advisory.home_address == IPAddress("10.1.0.10")

    def test_unreachable_for_regular_packet(self):
        reply = unreachable_for(IPAddress("9.9.9.9"), udp(),
                                UnreachableCode.HOST_UNREACHABLE)
        assert reply is not None
        assert reply.dst == IPAddress("1.1.1.1")
        data = reply.payload.data
        assert isinstance(data, UnreachableData)
        assert data.code is UnreachableCode.HOST_UNREACHABLE

    def test_no_error_for_non_initial_fragment(self):
        packet = udp()
        packet.frag_offset = 64
        assert unreachable_for(IPAddress("9.9.9.9"), packet,
                               UnreachableCode.HOST_UNREACHABLE) is None

    def test_no_error_for_multicast(self):
        packet = udp(dst="224.0.0.1")
        assert unreachable_for(IPAddress("9.9.9.9"), packet,
                               UnreachableCode.HOST_UNREACHABLE) is None

    def test_no_error_about_an_error(self):
        original = unreachable_for(IPAddress("9.9.9.9"), udp(),
                                   UnreachableCode.HOST_UNREACHABLE)
        assert unreachable_for(IPAddress("8.8.8.8"), original,
                               UnreachableCode.HOST_UNREACHABLE) is None

    def test_error_about_echo_is_allowed(self):
        echo = make_icmp_packet(
            IPAddress("1.1.1.1"), IPAddress("2.2.2.2"),
            IcmpMessage(IcmpType.ECHO_REQUEST, EchoData(1)),
        )
        reply = unreachable_for(IPAddress("9.9.9.9"), echo,
                                UnreachableCode.HOST_UNREACHABLE)
        assert reply is not None


class TestTraceExport:
    def test_export_jsonl_roundtrips(self, tmp_path):
        import json

        log = TraceLog()
        packet = udp()
        log.note(0.5, "a", "send", packet)
        log.note(1.0, "b", "deliver", packet, detail="ok")
        out = tmp_path / "trace.jsonl"
        written = log.export_jsonl(out)
        assert written == 2
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert lines[0]["node"] == "a"
        assert lines[1]["action"] == "deliver"
        assert lines[1]["detail"] == "ok"
        assert lines[0]["trace_id"] == lines[1]["trace_id"]

    def test_export_empty_log(self, tmp_path):
        out = tmp_path / "empty.jsonl"
        assert TraceLog().export_jsonl(out) == 0
        assert out.read_text() == ""
