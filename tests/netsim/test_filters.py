"""Tests for the §3.1 filtering policies."""


from repro.netsim.addressing import IPAddress, Network
from repro.netsim.filters import (
    Direction,
    FilterEngine,
    FilterRule,
    Verdict,
    egress_source_filter,
    firewall_allow_only,
    ingress_spoof_filter,
    transit_traffic_filter,
)
from repro.netsim.packet import IPProto, Packet

INSIDE = Network("10.1.0.0/16")


def packet(src, dst, proto=IPProto.UDP):
    return Packet(src=IPAddress(src), dst=IPAddress(dst), proto=proto)


class TestIngressSpoofFilter:
    """Figure 2: inside-source packets arriving from outside are dropped."""

    def setup_method(self):
        self.engine = FilterEngine([ingress_spoof_filter(INSIDE)])

    def test_drops_spoofed_inside_source(self):
        verdict, reason = self.engine.evaluate(
            packet("10.1.0.10", "10.1.0.2"), Direction.INBOUND
        )
        assert verdict is Verdict.DROP
        assert "source-address-filter" in reason

    def test_accepts_outside_source(self):
        verdict, _ = self.engine.evaluate(
            packet("10.3.0.2", "10.1.0.2"), Direction.INBOUND
        )
        assert verdict is Verdict.ACCEPT

    def test_outbound_not_checked_by_ingress_rule(self):
        verdict, _ = self.engine.evaluate(
            packet("10.1.0.10", "10.3.0.2"), Direction.OUTBOUND
        )
        assert verdict is Verdict.ACCEPT

    def test_tunneled_packet_judged_by_outer_header_only(self):
        """Figure 3: 'the inner packets are protected from scrutiny'."""
        from repro.netsim.encap import encapsulate

        inner = packet("10.1.0.10", "10.3.0.2")       # would be dropped bare
        outer = encapsulate(inner, IPAddress("10.2.0.2"), IPAddress("10.1.0.1"))
        verdict, _ = self.engine.evaluate(outer, Direction.INBOUND)
        assert verdict is Verdict.ACCEPT


class TestEgressSourceFilter:
    """§3.1: packets leaving a site with a foreign source are dropped."""

    def setup_method(self):
        self.engine = FilterEngine([egress_source_filter(INSIDE)])

    def test_drops_foreign_source_leaving(self):
        verdict, reason = self.engine.evaluate(
            packet("10.9.0.10", "10.3.0.2"), Direction.OUTBOUND
        )
        assert verdict is Verdict.DROP
        assert "foreign-source" in reason

    def test_accepts_local_source_leaving(self):
        verdict, _ = self.engine.evaluate(
            packet("10.1.0.10", "10.3.0.2"), Direction.OUTBOUND
        )
        assert verdict is Verdict.ACCEPT

    def test_inbound_not_checked_by_egress_rule(self):
        verdict, _ = self.engine.evaluate(
            packet("10.9.0.10", "10.1.0.2"), Direction.INBOUND
        )
        assert verdict is Verdict.ACCEPT


class TestTransitFilter:
    def setup_method(self):
        self.engine = FilterEngine([transit_traffic_filter(INSIDE)])

    def test_drops_pure_transit(self):
        verdict, reason = self.engine.evaluate(
            packet("10.8.0.1", "10.9.0.1"), Direction.INBOUND
        )
        assert verdict is Verdict.DROP
        assert reason == "transit-traffic-forbidden"

    def test_accepts_traffic_to_site(self):
        verdict, _ = self.engine.evaluate(
            packet("10.8.0.1", "10.1.0.2"), Direction.INBOUND
        )
        assert verdict is Verdict.ACCEPT

    def test_accepts_traffic_from_site(self):
        verdict, _ = self.engine.evaluate(
            packet("10.1.0.2", "10.9.0.1"), Direction.OUTBOUND
        )
        assert verdict is Verdict.ACCEPT


class TestFirewall:
    def test_default_deny_except_allowed_protocol(self):
        rules = firewall_allow_only(INSIDE, allowed_protos=[IPProto.TCP])
        engine = FilterEngine(rules)
        verdict, _ = engine.evaluate(
            packet("10.9.0.1", "10.1.0.2", proto=IPProto.UDP), Direction.INBOUND
        )
        assert verdict is Verdict.DROP
        verdict, _ = engine.evaluate(
            packet("10.9.0.1", "10.1.0.2", proto=IPProto.TCP), Direction.INBOUND
        )
        assert verdict is Verdict.ACCEPT

    def test_allowed_host_bypasses_protocol_restriction(self):
        """§3.1: the firewall lets its resident home agent receive tunnels."""
        ha = IPAddress("10.1.0.1")
        rules = firewall_allow_only(INSIDE, allowed_protos=[], allowed_hosts=[ha])
        engine = FilterEngine(rules)
        verdict, _ = engine.evaluate(
            packet("10.9.0.1", str(ha), proto=IPProto.IPIP), Direction.INBOUND
        )
        assert verdict is Verdict.ACCEPT
        verdict, _ = engine.evaluate(
            packet("10.9.0.1", "10.1.0.2", proto=IPProto.IPIP), Direction.INBOUND
        )
        assert verdict is Verdict.DROP

    def test_firewall_still_blocks_spoofing(self):
        rules = firewall_allow_only(INSIDE, allowed_protos=[IPProto.TCP])
        engine = FilterEngine(rules)
        verdict, reason = engine.evaluate(
            packet("10.1.0.50", "10.1.0.2", proto=IPProto.TCP), Direction.INBOUND
        )
        assert verdict is Verdict.DROP
        assert "source-address-filter" in reason


class TestEngine:
    def test_first_match_wins(self):
        drop_all = FilterRule("drop-all", lambda p, d: True, Verdict.DROP, "wall")
        accept_all = FilterRule("accept-all", lambda p, d: True, Verdict.ACCEPT)
        engine = FilterEngine([accept_all, drop_all])
        verdict, _ = engine.evaluate(packet("1.1.1.1", "2.2.2.2"), Direction.INBOUND)
        assert verdict is Verdict.ACCEPT

    def test_default_verdict_when_nothing_matches(self):
        engine = FilterEngine(default=Verdict.DROP)
        verdict, reason = engine.evaluate(packet("1.1.1.1", "2.2.2.2"), Direction.INBOUND)
        assert verdict is Verdict.DROP
        assert reason == "default"

    def test_hit_counting(self):
        rule = ingress_spoof_filter(INSIDE)
        engine = FilterEngine([rule])
        for _ in range(3):
            engine.evaluate(packet("10.1.0.10", "10.1.0.2"), Direction.INBOUND)
        assert engine.hits[rule.name] == 3
