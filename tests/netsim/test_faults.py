"""Fault injection: plans, validation, and injector semantics."""

from __future__ import annotations

import pytest

from repro.netsim import (
    FaultError,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    Simulator,
)


class TestFaultEvent:
    def test_kind_coerced_from_string(self):
        event = FaultEvent(time=1.0, kind="link-down", target="lan")
        assert event.kind is FaultKind.LINK_DOWN

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultEvent(time=1.0, kind="meteor-strike", target="lan")

    def test_negative_time_rejected(self):
        with pytest.raises(FaultError, match="time must be"):
            FaultEvent(time=-0.5, kind=FaultKind.LINK_UP, target="lan")

    def test_missing_target_rejected(self):
        with pytest.raises(FaultError, match="needs a target"):
            FaultEvent(time=0.0, kind=FaultKind.LINK_DOWN, target="")

    def test_required_params_enforced(self):
        with pytest.raises(FaultError, match="requires param 'duration'"):
            FaultEvent(time=0.0, kind=FaultKind.LINK_FLAP, target="lan")
        with pytest.raises(FaultError, match="requires param"):
            FaultEvent(time=0.0, kind=FaultKind.LOSS_BURST, target="lan",
                       params={"duration": 1.0})

    def test_unknown_params_rejected(self):
        with pytest.raises(FaultError, match="does not take param"):
            FaultEvent(time=0.0, kind=FaultKind.LINK_DOWN, target="lan",
                       params={"duration": 1.0})

    def test_duration_and_loss_rate_bounds(self):
        with pytest.raises(FaultError, match="duration must be > 0"):
            FaultEvent(time=0.0, kind=FaultKind.LINK_FLAP, target="lan",
                       params={"duration": 0.0})
        with pytest.raises(FaultError, match="loss_rate must be in"):
            FaultEvent(time=0.0, kind=FaultKind.LOSS_BURST, target="lan",
                       params={"duration": 1.0, "loss_rate": 1.5})
        # The boundaries themselves are valid.
        FaultEvent(time=0.0, kind=FaultKind.LOSS_BURST, target="lan",
                   params={"duration": 1.0, "loss_rate": 1.0})
        FaultEvent(time=0.0, kind=FaultKind.LOSS_BURST, target="lan",
                   params={"duration": 1.0, "loss_rate": 0.0})


class TestFaultPlan:
    def test_events_kept_sorted_by_time(self):
        plan = FaultPlan()
        plan.add(5.0, FaultKind.LINK_UP, "lan")
        plan.add(1.0, FaultKind.LINK_DOWN, "lan")
        assert [event.time for event in plan] == [1.0, 5.0]
        assert len(plan) == 2

    def test_json_round_trip(self):
        plan = FaultPlan()
        plan.add(2.0, FaultKind.LOSS_BURST, "lan", duration=3.0, loss_rate=0.5)
        plan.add(1.0, FaultKind.FILTER_TOGGLE, "gw", source_filtering=True)
        text = plan.to_json()
        parsed = FaultPlan.from_json(text)
        assert parsed.to_dict() == plan.to_dict()
        assert parsed.events[0].kind is FaultKind.FILTER_TOGGLE
        assert parsed.events[1].params == {"duration": 3.0, "loss_rate": 0.5}

    def test_from_json_rejects_garbage(self):
        with pytest.raises(FaultError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(FaultError, match="'events' list"):
            FaultPlan.from_json('{"events": 3}')
        with pytest.raises(FaultError, match="missing"):
            FaultPlan.from_json('{"events": [{"time": 1.0}]}')

    def test_from_file(self, tmp_path):
        path = tmp_path / "faults.json"
        plan = FaultPlan().add(1.0, FaultKind.NODE_DOWN, "ha")
        path.write_text(plan.to_json())
        loaded = FaultPlan.from_file(str(path))
        assert loaded.to_dict() == plan.to_dict()


class TestFaultInjector:
    def test_link_down_up_and_flap(self, lan):
        sim, segment, host_a, host_b = lan
        injector = FaultInjector(sim)
        plan = FaultPlan()
        plan.add(1.0, FaultKind.LINK_DOWN, "lan")
        plan.add(2.0, FaultKind.LINK_UP, "lan")
        plan.add(3.0, FaultKind.LINK_FLAP, "lan", duration=0.5)
        assert injector.inject(plan) == 3
        sim.run(until=1.5)
        assert segment.up is False
        sim.run(until=2.5)
        assert segment.up is True
        sim.run(until=3.2)
        assert segment.up is False
        sim.run(until=4.0)
        assert segment.up is True
        assert injector.applied == {
            "link-down": 1, "link-up": 1, "link-flap": 1,
        }
        assert sim.metrics.get("fault.total").value == 3

    def test_loss_burst_restores_previous_rate(self, lan):
        sim, segment, *_ = lan
        segment.loss_rate = 0.05
        injector = FaultInjector(sim)
        plan = FaultPlan().add(1.0, FaultKind.LOSS_BURST, "lan",
                               duration=2.0, loss_rate=1.0)
        injector.inject(plan)
        sim.run(until=1.5)
        assert segment.loss_rate == 1.0
        sim.run(until=3.5)
        assert segment.loss_rate == 0.05

    def test_queue_shrink_drops_excess_and_restores(self, lan):
        sim, segment, host_a, host_b = lan
        segment.set_queue_capacity(8)
        injector = FaultInjector(sim)
        plan = FaultPlan().add(1.0, FaultKind.QUEUE_SHRINK, "lan",
                               queue_capacity=1, duration=2.0)
        injector.inject(plan)
        sim.run(until=1.5)
        assert segment.queue_capacity == 1
        sim.run(until=3.5)
        # The previous capacity (8, from before the fault) comes back.
        assert segment.queue_capacity == 8
        assert injector.applied == {"queue-shrink": 1}

    def test_queue_shrink_validates_capacity(self):
        with pytest.raises(FaultError, match="queue_capacity"):
            FaultEvent(1.0, FaultKind.QUEUE_SHRINK, "lan",
                       params={"queue_capacity": -1})
        with pytest.raises(FaultError, match="queue_capacity"):
            FaultEvent(1.0, FaultKind.QUEUE_SHRINK, "lan",
                       params={"queue_capacity": True})
        with pytest.raises(FaultError):
            FaultEvent(1.0, FaultKind.QUEUE_SHRINK, "lan", params={})

    def test_unknown_segment_rejected_at_inject_time(self, sim):
        injector = FaultInjector(sim)
        plan = FaultPlan().add(1.0, FaultKind.LINK_DOWN, "nope")
        with pytest.raises(FaultError, match="no segment named"):
            injector.inject(plan)
        # Eager validation: nothing was scheduled.
        assert sim.events.pending == 0

    def test_unknown_node_rejected(self, sim):
        injector = FaultInjector(sim)
        plan = FaultPlan().add(1.0, FaultKind.NODE_DOWN, "ghost")
        with pytest.raises(FaultError, match="no node named"):
            injector.inject(plan)

    def test_filter_toggle_requires_boundary_router(self, lan):
        sim, segment, host_a, host_b = lan
        injector = FaultInjector(sim)
        plan = FaultPlan().add(1.0, FaultKind.FILTER_TOGGLE, "lan-a",
                               source_filtering=True)
        with pytest.raises(FaultError, match="not a boundary router"):
            injector.inject(plan)

    def test_node_down_up_toggles_interfaces(self, lan):
        sim, segment, host_a, host_b = lan
        injector = FaultInjector(sim)
        plan = FaultPlan()
        plan.add(1.0, FaultKind.NODE_DOWN, "lan-a")
        plan.add(2.0, FaultKind.NODE_UP, "lan-a")
        injector.inject(plan)
        sim.run(until=1.5)
        assert all(not iface.up for iface in host_a.interfaces.values())
        sim.run(until=2.5)
        assert all(iface.up for iface in host_a.interfaces.values())

    def test_move_requires_net(self, sim):
        from repro.netsim import Internet, Network
        from repro.mobileip.mobile_host import MobileHost

        net = Internet(sim, backbone_size=2)
        net.add_domain("home", "10.1.0.0/16", attach_at=0)
        net.add_domain("away", "10.2.0.0/16", attach_at=1)
        mh = MobileHost(
            "mh", sim,
            home_address="10.1.0.10",
            home_network=Network("10.1.0.0/16"),
            home_agent_address="10.1.0.1",
        )
        mh.attach_home(net, "home")
        injector = FaultInjector(sim)  # no net
        plan = FaultPlan().add(1.0, FaultKind.MOVE, "mh", domain="away")
        with pytest.raises(FaultError, match="without an Internet"):
            injector.inject(plan)
        # With the net supplied the same plan schedules and applies.
        injector = FaultInjector(sim, net=net)
        injector.inject(plan)
        sim.run(until=5.0)
        assert mh.current_domain == "away"
        assert mh.care_of is not None

    def test_filter_toggle_applies_posture(self, sim):
        from repro.netsim import Internet

        net = Internet(sim, backbone_size=2)
        domain = net.add_domain("site", "10.9.0.0/16", attach_at=0,
                                source_filtering=False, forbid_transit=False)
        injector = FaultInjector(sim)
        plan = FaultPlan().add(1.0, FaultKind.FILTER_TOGGLE, "site-gw",
                               source_filtering=True)
        injector.inject(plan)
        sim.run(until=2.0)
        assert domain.boundary.source_filtering is True
        assert domain.boundary.forbid_transit is False  # None leaves as-is
        assert domain.boundary.posture_changes == 1

    def test_same_plan_same_seed_identical_traces(self):
        from repro.bench.golden import trace_digest
        from repro.netsim import IPAddress, Internet, Node
        from repro.netsim.packet import IPProto
        from repro.transport.sockets import TransportStack

        def run():
            sim = Simulator(seed=909)
            net = Internet(sim, backbone_size=2)
            net.add_domain("a", "10.1.0.0/16", attach_at=0,
                           source_filtering=False)
            net.add_domain("b", "10.2.0.0/16", attach_at=1,
                           source_filtering=False)
            a, b = Node("a1", sim), Node("b1", sim)
            ip_a, ip_b = net.add_host("a", a), net.add_host("b", b)
            sim.segments["p2p-bb0-bb1"].loss_rate = 0.2
            seen = []
            b.proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
            stack = TransportStack(a)
            sock = stack.udp_socket()
            for index in range(50):
                sim.events.schedule(
                    index * 0.05, lambda: sock.sendto("x", 80, ip_b, 9000)
                )
            plan = FaultPlan()
            plan.add(0.7, FaultKind.LINK_FLAP, "p2p-bb0-bb1", duration=0.4)
            plan.add(1.6, FaultKind.LOSS_BURST, "p2p-bb0-bb1",
                     duration=0.3, loss_rate=1.0)
            FaultInjector(sim).inject(plan)
            sim.run(until=10.0)
            return trace_digest(sim.trace)

        assert run() == run()
