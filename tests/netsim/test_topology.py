"""Tests for the Internet topology builder."""

import pytest

from repro.netsim import Internet, IPAddress, Node, Simulator
from repro.netsim.packet import IPProto


class TestConstruction:
    def test_backbone_chain(self, sim):
        net = Internet(sim, backbone_size=4)
        assert len(net.backbone) == 4
        # 3 p2p links between 4 routers
        assert sum(1 for name in sim.segments if name.startswith("p2p")) == 3

    def test_backbone_needs_a_router(self, sim):
        with pytest.raises(ValueError):
            Internet(sim, backbone_size=0)

    def test_duplicate_domain_rejected(self, sim):
        net = Internet(sim)
        net.add_domain("a", "10.1.0.0/16")
        with pytest.raises(ValueError):
            net.add_domain("a", "10.5.0.0/16")

    def test_overlapping_prefix_rejected(self, sim):
        net = Internet(sim)
        net.add_domain("a", "10.0.0.0/8")
        with pytest.raises(ValueError):
            net.add_domain("b", "10.1.0.0/16")

    def test_domain_distance(self, sim):
        net = Internet(sim, backbone_size=5)
        net.add_domain("a", "10.1.0.0/16", attach_at=0)
        net.add_domain("b", "10.2.0.0/16", attach_at=4)
        assert net.domain_distance("a", "b") == 4

    def test_domain_of(self, sim):
        net = Internet(sim)
        net.add_domain("a", "10.1.0.0/16")
        assert net.domain_of(IPAddress("10.1.2.3")).name == "a"
        assert net.domain_of(IPAddress("11.0.0.1")) is None


class TestConnectivity:
    @pytest.mark.parametrize("size,positions", [(1, (0, 0)), (3, (0, 2)), (6, (2, 5))])
    def test_cross_domain_reachability(self, size, positions):
        sim = Simulator(seed=size)
        net = Internet(sim, backbone_size=size)
        net.add_domain("a", "10.1.0.0/16", attach_at=positions[0],
                       source_filtering=False)
        net.add_domain("b", "10.2.0.0/16", attach_at=positions[1],
                       source_filtering=False)
        a, b = Node("a1", sim), Node("b1", sim)
        ip_a = net.add_host("a", a)
        ip_b = net.add_host("b", b)
        replies = []
        a.ping(ip_b, replies.append)
        sim.run()
        assert len(replies) == 1

    def test_rtt_grows_with_backbone_distance(self):
        """The latency knob behind Figure 4."""
        rtts = []
        for distance in (1, 4):
            sim = Simulator(seed=10)
            net = Internet(sim, backbone_size=5, backbone_latency=0.010)
            net.add_domain("a", "10.1.0.0/16", attach_at=0, source_filtering=False)
            net.add_domain("b", "10.2.0.0/16", attach_at=distance,
                           source_filtering=False)
            a, b = Node("a1", sim), Node("b1", sim)
            ip_a = net.add_host("a", a)
            ip_b = net.add_host("b", b)
            # Warm up ARP caches along the path, then measure.
            a.ping(ip_b, lambda p: None)
            sim.run()
            start = sim.now
            times = []
            a.ping(ip_b, lambda p: times.append(sim.now - start))
            sim.run()
            rtts.append(times[0])
        assert rtts[1] > rtts[0]
        # Each extra backbone hop adds 2 * latency to the RTT.
        assert rtts[1] - rtts[0] == pytest.approx(2 * 3 * 0.010, rel=0.2)

    def test_three_hosts_same_lan(self, sim):
        net = Internet(sim)
        net.add_domain("a", "10.1.0.0/16")
        hosts = [Node(f"h{i}", sim) for i in range(3)]
        ips = [net.add_host("a", h) for h in hosts]
        seen = []
        hosts[2].proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
        from repro.netsim.packet import Packet

        hosts[0].ip_send(Packet(src=ips[0], dst=ips[2], proto=IPProto.UDP,
                                payload="x", payload_size=10))
        sim.run()
        assert len(seen) == 1
        # LAN traffic never touches the boundary router.
        assert seen[0].hop_count == 0

    def test_detach_host(self, sim):
        net = Internet(sim)
        net.add_domain("a", "10.1.0.0/16", source_filtering=False)
        net.add_domain("b", "10.2.0.0/16", source_filtering=False)
        a, b = Node("a1", sim), Node("b1", sim)
        ip_a = net.add_host("a", a)
        ip_b = net.add_host("b", b)
        net.detach_host(b)
        replies = []
        a.ping(ip_b, replies.append)
        sim.run()
        assert replies == []

    def test_static_address_assignment(self, sim):
        net = Internet(sim)
        net.add_domain("a", "10.1.0.0/16")
        host = Node("h", sim)
        ip = net.add_host("a", host, address=IPAddress("10.1.0.200"))
        assert str(ip) == "10.1.0.200"

    def test_unclaimed_assignment_skips_allocator(self, sim):
        net = Internet(sim)
        net.add_domain("a", "10.1.0.0/16")
        first = Node("h1", sim)
        net.add_host("a", first, address=IPAddress("10.1.0.200"))
        net.detach_host(first)
        again = Node("h2", sim)
        # claim=False: reuse without touching allocator bookkeeping.
        ip = net.add_host("a", again, address=IPAddress("10.1.0.200"), claim=False)
        assert str(ip) == "10.1.0.200"


class TestHostSlotIndex:
    """detach_host is O(1): slot bookkeeping survives swap-removal."""

    def test_swap_remove_updates_the_moved_hosts_slot(self, sim):
        net = Internet(sim)
        net.add_domain("a", "10.1.0.0/16")
        hosts = [Node(f"h{i}", sim) for i in range(4)]
        for h in hosts:
            net.add_host("a", h)
        net.detach_host(hosts[0])  # h3 swaps into slot 0
        assert net.domains["a"].hosts == [hosts[3], hosts[1], hosts[2]]
        # The moved host can still be detached cleanly afterwards.
        net.detach_host(hosts[3])
        assert net.domains["a"].hosts == [hosts[2], hosts[1]]
        assert net._host_slots == {"h1": ("a", 1), "h2": ("a", 0)}

    def test_detach_last_host_is_a_plain_pop(self, sim):
        net = Internet(sim)
        net.add_domain("a", "10.1.0.0/16")
        a, b = Node("h1", sim), Node("h2", sim)
        net.add_host("a", a)
        net.add_host("a", b)
        net.detach_host(b)
        assert net.domains["a"].hosts == [a]
        assert net._host_slots == {"h1": ("a", 0)}

    def test_detach_unknown_host_is_noop(self, sim):
        net = Internet(sim)
        net.add_domain("a", "10.1.0.0/16")
        stranger = Node("x", sim)
        net.detach_host(stranger)  # no iface -> ignored
        assert net._host_slots == {}


class TestDomainIndex:
    def test_mixed_prefix_lengths(self, sim):
        net = Internet(sim)
        net.add_domain("wide", "10.0.0.0/8")
        net.add_domain("narrow", "192.168.4.0/24")
        assert net.domain_of(IPAddress("10.200.1.1")).name == "wide"
        assert net.domain_of(IPAddress("192.168.4.9")).name == "narrow"
        assert net.domain_of(IPAddress("192.168.5.1")) is None
        assert net.domain_of(IPAddress("11.0.0.1")) is None

    def test_index_tracks_added_domains(self, sim):
        net = Internet(sim)
        net.add_domain("a", "10.1.0.0/16")
        assert net.domain_of(IPAddress("10.2.0.1")) is None
        net.add_domain("b", "10.2.0.0/16")
        assert net.domain_of(IPAddress("10.2.0.1")).name == "b"


class TestPoolReservation:
    def test_pool_size_reserves_a_block(self, sim):
        net = Internet(sim)
        net.add_domain("a", "10.1.0.0/24", pool_size=100)
        domain = net.domains["a"]
        assert domain.pool_size == 100
        assert domain.pool_base is not None
        # Subsequent allocations skip the reserved block entirely.
        host = Node("h", sim)
        ip = net.add_host("a", host)
        assert not (domain.pool_base <= ip.value < domain.pool_base + 100)

    def test_pool_too_big_for_prefix_rejected(self, sim):
        from repro.netsim.addressing import AddressError

        net = Internet(sim)
        with pytest.raises(AddressError):
            net.add_domain("a", "10.1.0.0/24", pool_size=1000)
