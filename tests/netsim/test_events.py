"""Tests for the discrete-event engine."""

import pytest

from repro.netsim.events import EventQueue, SimClock


class TestScheduling:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(3.0, order.append, "c")
        queue.schedule(1.0, order.append, "a")
        queue.schedule(2.0, order.append, "b")
        queue.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        order = []
        for label in "abc":
            queue.schedule(1.0, order.append, label)
        queue.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        queue = EventQueue()
        seen = []
        queue.schedule(2.5, lambda: seen.append(queue.clock.now))
        queue.run()
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        queue = EventQueue()
        seen = []
        queue.schedule_at(5.0, lambda: seen.append(queue.clock.now))
        queue.run()
        assert seen == [5.0]

    def test_events_scheduled_during_run(self):
        queue = EventQueue()
        order = []

        def first():
            order.append("first")
            queue.schedule(1.0, lambda: order.append("second"))

        queue.schedule(1.0, first)
        queue.run()
        assert order == ["first", "second"]
        assert queue.clock.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        queue = EventQueue()
        ran = []
        event = queue.schedule(1.0, ran.append, "x")
        event.cancel()
        queue.run()
        assert ran == []

    def test_pending_excludes_cancelled(self):
        queue = EventQueue()
        keep = queue.schedule(1.0, lambda: None)
        gone = queue.schedule(2.0, lambda: None)
        gone.cancel()
        assert queue.pending == 1


class TestRunUntil:
    def test_stops_at_horizon(self):
        queue = EventQueue()
        ran = []
        queue.schedule(1.0, ran.append, "early")
        queue.schedule(10.0, ran.append, "late")
        queue.run(until=5.0)
        assert ran == ["early"]
        assert queue.clock.now == 5.0
        queue.run()
        assert ran == ["early", "late"]

    def test_until_before_any_event(self):
        queue = EventQueue()
        queue.schedule(10.0, lambda: None)
        assert queue.run(until=1.0) == 1.0

    def test_event_budget_guards_runaway(self):
        queue = EventQueue()

        def forever():
            queue.schedule(0.0, forever)

        queue.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            queue.run(max_events=100)


class TestClock:
    def test_time_never_goes_backwards(self):
        clock = SimClock()
        clock._advance(5.0)
        with pytest.raises(RuntimeError):
            clock._advance(4.0)

    def test_step_returns_false_when_empty(self):
        queue = EventQueue()
        assert queue.step() is False
