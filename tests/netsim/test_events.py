"""Tests for the discrete-event engine."""

import pytest

from repro.netsim.events import _COMPACT_MIN_CANCELLED, EventQueue, SimClock


class TestScheduling:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(3.0, order.append, "c")
        queue.schedule(1.0, order.append, "a")
        queue.schedule(2.0, order.append, "b")
        queue.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        order = []
        for label in "abc":
            queue.schedule(1.0, order.append, label)
        queue.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        queue = EventQueue()
        seen = []
        queue.schedule(2.5, lambda: seen.append(queue.clock.now))
        queue.run()
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        queue = EventQueue()
        seen = []
        queue.schedule_at(5.0, lambda: seen.append(queue.clock.now))
        queue.run()
        assert seen == [5.0]

    def test_schedule_at_now_is_allowed(self):
        queue = EventQueue()
        queue.schedule(2.0, lambda: None)
        queue.run()
        ran = []
        queue.schedule_at(2.0, ran.append, "x")
        queue.run()
        assert ran == ["x"]
        assert queue.clock.now == 2.0

    def test_schedule_at_past_time_rejected(self):
        # Regression: past times used to be silently clamped to "now",
        # hiding broken timer arithmetic.  Now they raise, matching
        # schedule()'s negative-delay check.
        queue = EventQueue()
        queue.schedule(5.0, lambda: None)
        queue.run()
        assert queue.clock.now == 5.0
        with pytest.raises(ValueError):
            queue.schedule_at(4.9, lambda: None)

    def test_events_scheduled_during_run(self):
        queue = EventQueue()
        order = []

        def first():
            order.append("first")
            queue.schedule(1.0, lambda: order.append("second"))

        queue.schedule(1.0, first)
        queue.run()
        assert order == ["first", "second"]
        assert queue.clock.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        queue = EventQueue()
        ran = []
        event = queue.schedule(1.0, ran.append, "x")
        event.cancel()
        queue.run()
        assert ran == []

    def test_pending_excludes_cancelled(self):
        queue = EventQueue()
        keep = queue.schedule(1.0, lambda: None)
        gone = queue.schedule(2.0, lambda: None)
        gone.cancel()
        assert queue.pending == 1

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        event = queue.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()  # double-cancel must not corrupt the live count
        assert queue.pending == 1

    def test_pending_tracks_pops_and_cancels(self):
        queue = EventQueue()
        events = [queue.schedule(float(i), lambda: None) for i in range(1, 6)]
        assert queue.pending == 5
        events[3].cancel()
        assert queue.pending == 4
        queue.step()
        assert queue.pending == 3
        queue.run()
        assert queue.pending == 0

    def test_cancelled_events_never_fire_across_compaction(self):
        # Cancel enough events to cross the compaction threshold and
        # verify: no cancelled callback runs, processed/pending stay
        # consistent, and survivors run in the original order.
        queue = EventQueue()
        ran = []
        keepers = 0
        for index in range(3 * _COMPACT_MIN_CANCELLED):
            event = queue.schedule(1.0 + index, ran.append, index)
            if index % 3:
                event.cancel()
            else:
                keepers += 1
        assert queue.pending == keepers
        assert len(queue._heap) < 3 * _COMPACT_MIN_CANCELLED  # compacted
        queue.run()
        assert ran == [i for i in range(3 * _COMPACT_MIN_CANCELLED) if i % 3 == 0]
        assert queue.processed == keepers
        assert queue.pending == 0

    def test_compaction_during_run_keeps_heap_identity(self):
        # run() holds a local reference to the heap list, so compaction
        # triggered by an action cancelling timers must happen in place.
        queue = EventQueue()
        timers = [
            queue.schedule(10.0 + i, lambda: None)
            for i in range(2 * _COMPACT_MIN_CANCELLED + 2)
        ]
        ran = []

        def mass_cancel():
            for timer in timers:
                timer.cancel()
            queue.schedule(1.0, ran.append, "after")

        queue.schedule(0.5, mass_cancel)
        queue.run()
        assert ran == ["after"]
        assert queue.pending == 0

    def test_cancel_after_run_is_a_noop(self):
        # Callers keep timer handles around (registration retries,
        # refresh timers); cancelling a handle whose event already ran
        # must not corrupt the O(1) live/cancelled accounting.
        queue = EventQueue()
        stale = queue.schedule(1.0, lambda: None)
        live = queue.schedule(2.0, lambda: None)
        queue.step()  # runs `stale`
        assert stale.done and not stale.cancelled
        assert queue.pending == 1
        stale.cancel()
        assert not stale.cancelled  # no-op: it already executed
        assert queue.pending == 1
        assert queue.cancelled_backlog == 0
        live.cancel()
        assert queue.pending == 0

    def test_cancel_after_run_loop_is_a_noop(self):
        # Same property through run(), whose pop path is specialized.
        queue = EventQueue()
        handles = [queue.schedule(float(i + 1), lambda: None) for i in range(4)]
        queue.run()
        for handle in handles:
            handle.cancel()
        assert queue.pending == 0
        assert queue.cancelled_backlog == 0

    def test_tie_break_order_survives_cancellation(self):
        queue = EventQueue()
        order = []
        events = [queue.schedule(1.0, order.append, label) for label in "abcdef"]
        events[1].cancel()
        events[4].cancel()
        queue.run()
        assert order == ["a", "c", "d", "f"]


class TestRunUntil:
    def test_stops_at_horizon(self):
        queue = EventQueue()
        ran = []
        queue.schedule(1.0, ran.append, "early")
        queue.schedule(10.0, ran.append, "late")
        queue.run(until=5.0)
        assert ran == ["early"]
        assert queue.clock.now == 5.0
        queue.run()
        assert ran == ["early", "late"]

    def test_until_before_any_event(self):
        queue = EventQueue()
        queue.schedule(10.0, lambda: None)
        assert queue.run(until=1.0) == 1.0

    def test_event_budget_guards_runaway(self):
        queue = EventQueue()

        def forever():
            queue.schedule(0.0, forever)

        queue.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            queue.run(max_events=100)


class TestClock:
    def test_time_never_goes_backwards(self):
        clock = SimClock()
        clock._advance(5.0)
        with pytest.raises(RuntimeError):
            clock._advance(4.0)

    def test_step_returns_false_when_empty(self):
        queue = EventQueue()
        assert queue.step() is False
