"""Tests for loose source routing (§4's rejected alternative) and
lossy links (the wireless-media knob)."""

import pytest

from repro.netsim import Internet, IPAddress, Node, Simulator
from repro.netsim.packet import IPProto, Packet
from repro.transport import TransportStack


def udp(src, dst, size=100, route=()):
    return Packet(src=IPAddress(src), dst=IPAddress(dst), proto=IPProto.UDP,
                  payload="x", payload_size=size,
                  source_route=tuple(IPAddress(h) for h in route))


class TestSourceRouteMechanics:
    def test_options_size(self):
        assert udp("1.1.1.1", "2.2.2.2").options_size == 0
        one_hop = udp("1.1.1.1", "2.2.2.2", route=("3.3.3.3",))
        assert one_hop.options_size == 8      # 3 + 4, padded to 8
        two_hops = udp("1.1.1.1", "2.2.2.2", route=("3.3.3.3", "4.4.4.4"))
        assert two_hops.options_size == 12    # 3 + 8, padded to 12
        assert one_hop.wire_size == 20 + 8 + 100

    def test_lsr_visits_intermediate_then_final(self, two_domain_net):
        sim, _net, a, ip_a, b, ip_b = two_domain_net
        relay = Node("relay", sim)
        relay_ip = _net.add_host("a", relay)
        seen = []
        b.proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
        packet = udp(str(ip_a), str(relay_ip), route=(str(ip_b),))
        a.ip_send(packet)
        sim.run(until=10)
        assert len(seen) == 1
        final = seen[0]
        assert final.dst == ip_b
        assert final.src == ip_a                 # source never rewritten
        assert final.route_pointer == 1
        lsr_hops = [e for e in sim.trace.entries if e.action == "source-route"]
        assert [e.node for e in lsr_hops] == ["relay"]

    def test_multi_hop_route(self, two_domain_net):
        sim, net, a, ip_a, b, ip_b = two_domain_net
        r1 = Node("r1", sim)
        r2 = Node("r2", sim)
        ip_r1 = net.add_host("a", r1)
        ip_r2 = net.add_host("b", r2)
        seen = []
        b.proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
        packet = udp(str(ip_a), str(ip_r1), route=(str(ip_r2), str(ip_b)))
        a.ip_send(packet)
        sim.run(until=20)
        assert len(seen) == 1
        assert seen[0].route_pointer == 2

    def test_lsr_does_not_evade_source_filtering(self):
        """The §4 argument: LSR leaves the source address visible, so
        a foreign-source packet still dies at the filtering boundary —
        unlike the encapsulating header."""
        sim = Simulator(seed=71)
        net = Internet(sim, backbone_size=2)
        net.add_domain("site", "10.1.0.0/16", attach_at=0)      # filtering
        net.add_domain("other", "10.2.0.0/16", attach_at=1,
                       source_filtering=False, forbid_transit=False)
        visitor = Node("visitor", sim)
        net.add_host("site", visitor)
        relay = Node("relay", sim)
        relay_ip = net.add_host("other", relay)
        target = Node("target", sim)
        target_ip = net.add_host("other", target)
        target.proto_handlers[IPProto.UDP] = lambda p: pytest.fail("leaked")
        # Foreign source (10.9.0.1) trying to leave via a source route.
        packet = udp("10.9.0.1", str(relay_ip), route=(str(target_ip),))
        visitor.ip_send(packet)
        sim.run(until=10)
        drops = sim.trace.drops_by_reason
        assert any("source-address-filter" in reason for reason in drops)

    def test_slow_path_adds_latency(self, two_domain_net):
        sim, net, a, ip_a, b, ip_b = two_domain_net
        times = {}
        b.proto_handlers[IPProto.UDP] = lambda p: times.setdefault(
            "with" if p.has_options else "without", sim.now)
        relay = Node("relay2", sim)
        relay_ip = net.add_host("b", relay)
        # Warm ARP with a plain packet first.
        a.ip_send(udp(str(ip_a), str(ip_b)))
        sim.run(until=5)
        start = sim.now
        a.ip_send(udp(str(ip_a), str(ip_b)))
        sim.run(until=start + 5)
        plain_time = times["without"] - start
        start2 = sim.now
        a.ip_send(udp(str(ip_a), str(relay_ip), route=(str(ip_b),)))
        sim.run(until=start2 + 5)
        routed_time = times["with"] - start2
        # 4 routers x 2ms slow path (twice through some), plus the
        # extra relay hop: distinctly slower.
        assert routed_time > plain_time + 4 * 0.002


class TestLossyLinks:
    def build(self, loss):
        sim = Simulator(seed=72)
        net = Internet(sim, backbone_size=2)
        net.add_domain("a", "10.1.0.0/16", attach_at=0, source_filtering=False)
        net.add_domain("b", "10.2.0.0/16", attach_at=1, source_filtering=False)
        sim.segments["p2p-bb0-bb1"].loss_rate = loss
        a, b = Node("a1", sim), Node("b1", sim)
        ip_a = net.add_host("a", a)
        ip_b = net.add_host("b", b)
        return sim, a, ip_a, b, ip_b

    @staticmethod
    def paced_sends(sim, a, ip_a, ip_b, count, interval=0.05):
        """Send ``count`` datagrams spaced out (so ARP pending queues
        never overflow and each frame's loss is independent)."""
        for index in range(count):
            sim.events.schedule(
                index * interval,
                lambda: a.ip_send(udp(str(ip_a), str(ip_b))),
            )

    def test_lossless_default(self):
        sim, a, ip_a, b, ip_b = self.build(0.0)
        seen = []
        b.proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
        self.paced_sends(sim, a, ip_a, ip_b, 20)
        sim.run(until=20)
        assert len(seen) == 20

    def test_loss_rate_drops_roughly_that_fraction(self):
        sim, a, ip_a, b, ip_b = self.build(0.3)
        seen = []
        b.proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
        self.paced_sends(sim, a, ip_a, ip_b, 200)
        sim.run(until=60)
        lost = sim.segments["p2p-bb0-bb1"].frames_lost
        assert 0.2 < lost / (len(seen) + lost) < 0.4
        assert len(seen) < 200

    def test_tcp_recovers_over_lossy_link(self):
        sim, a, ip_a, b, ip_b = self.build(0.15)
        sa, sb = TransportStack(a), TransportStack(b)
        received = []

        def accept(conn):
            conn.on_data = lambda d, s: received.append(d)

        sb.listen(7, accept)
        conn = sa.connect(ip_b, 7)
        conn.on_established = lambda: [conn.send(100, data=i) for i in range(5)]
        sim.run(until=200)
        assert sorted(received) == [0, 1, 2, 3, 4]
        assert conn.retransmissions > 0

    def test_bad_loss_rate_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.segment("lossy", loss_rate=1.5)
        with pytest.raises(ValueError):
            sim.segment("lossy2", loss_rate=-0.1)

    def test_total_blackout_loss_rate_one(self):
        # loss_rate == 1.0 is the boundary: a total blackout where every
        # frame is offered to the wire and lost.
        sim, a, ip_a, b, ip_b = self.build(1.0)
        seen = []
        b.proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
        self.paced_sends(sim, a, ip_a, ip_b, 20)
        sim.run(until=10)
        assert seen == []
        seg = sim.segments["p2p-bb0-bb1"]
        # Every frame offered to the wire (data and ARP alike) is lost,
        # and a lost frame is never *carried*: the byte/frame counters
        # only tick for frames that actually occupy the line.
        assert seg.frames_lost > 0
        assert seg.frames_carried == 0
        assert seg.bytes_carried == 0

    def test_segment_down_discards_without_rng(self):
        sim, a, ip_a, b, ip_b = self.build(0.0)
        seg = sim.segments["p2p-bb0-bb1"]
        seg.up = False
        state_before = sim.rng.getstate()
        seen = []
        b.proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
        self.paced_sends(sim, a, ip_a, ip_b, 10)
        sim.run(until=5)
        assert seen == []
        assert seg.frames_lost > 0
        # A downed segment must not consume randomness: fault windows
        # leave the RNG stream where it would otherwise have been.
        assert sim.rng.getstate() == state_before
        seg.up = True
        self.paced_sends(sim, a, ip_a, ip_b, 5)
        sim.run(until=10)
        # The 5 new datagrams get through (plus any of the earlier ones
        # that sat queued behind ARP resolution and flushed on recovery).
        assert len(seen) >= 5

    def test_deterministic_given_seed(self):
        outcomes = []
        for _ in range(2):
            sim, a, ip_a, b, ip_b = self.build(0.3)
            seen = []
            b.proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
            self.paced_sends(sim, a, ip_a, ip_b, 50)
            sim.run(until=30)
            outcomes.append(len(seen))
        assert outcomes[0] == outcomes[1]
