"""Tests for traceroute and the topology renderer."""

import pytest

from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.mobileip import Awareness
from repro.netsim import (
    Internet,
    Node,
    Simulator,
    render_topology,
    traceroute,
)


@pytest.fixture
def chain():
    sim = Simulator(seed=81)
    net = Internet(sim, backbone_size=4)
    net.add_domain("a", "10.1.0.0/16", attach_at=0, source_filtering=False)
    net.add_domain("b", "10.2.0.0/16", attach_at=3, source_filtering=False)
    a, b = Node("a1", sim), Node("b1", sim)
    ip_a = net.add_host("a", a)
    ip_b = net.add_host("b", b)
    return sim, net, a, ip_a, b, ip_b


class TestTraceroute:
    def test_reaches_destination_with_full_hop_list(self, chain):
        sim, _net, a, _ip_a, _b, ip_b = chain
        results = []
        traceroute(a, ip_b, results.append)
        sim.run(until=120)
        assert len(results) == 1
        result = results[0]
        assert result.reached
        # a-gw, bb0, bb1, bb2, bb3, b-gw, then b itself = 7 entries.
        assert len(result.hops) == 7
        assert result.hops[-1] == ip_b
        assert all(hop is not None for hop in result.hops)

    def test_unreachable_destination_records_stars(self, chain):
        sim, _net, a, _ip_a, b, ip_b = chain
        b.interfaces["eth0"].up = False
        results = []
        traceroute(a, ip_b, results.append, max_hops=8)
        sim.run(until=240)
        assert len(results) == 1
        result = results[0]
        assert not result.reached
        # The last hops are silent (the dead host answers nothing).
        assert result.hops[-1] is None

    def test_render_output(self, chain):
        sim, _net, a, _ip_a, _b, ip_b = chain
        results = []
        traceroute(a, ip_b, results.append)
        sim.run(until=120)
        rendered = results[0].render()
        assert f"traceroute to {ip_b}" in rendered
        assert "reached" in rendered

    def test_triangle_visible_in_trace(self):
        """Tracing the home address visits the home domain; tracing the
        care-of address does not — Figure 1 and Figure 5, as hop lists."""
        scenario = build_scenario(seed=82, ch_awareness=Awareness.CONVENTIONAL,
                                  visited_filtering=False)
        home_gw_inside = scenario.home.gateway_ip
        results = {}
        traceroute(scenario.ch, MH_HOME_ADDRESS,
                   lambda r: results.__setitem__("home", r))
        scenario.sim.run_for(120)
        traceroute(scenario.ch, scenario.mh.care_of,
                   lambda r: results.__setitem__("coa", r))
        scenario.sim.run_for(120)
        assert results["home"].reached
        assert results["coa"].reached
        home_path = set(results["home"].hops)
        coa_path = set(results["coa"].hops)
        assert home_gw_inside in home_path       # the triangle's corner
        assert home_gw_inside not in coa_path    # the direct route skips it

    def test_concurrent_traceroutes_do_not_confuse_each_other(self, chain):
        sim, net, a, _ip_a, _b, ip_b = chain
        c = Node("c1", sim)
        ip_c = net.add_host("b", c)
        results = []
        traceroute(a, ip_b, results.append)
        traceroute(a, ip_c, results.append)
        sim.run(until=240)
        assert len(results) == 2
        assert all(r.reached for r in results)
        destinations = {r.destination for r in results}
        assert destinations == {ip_b, ip_c}


class TestRenderTopology:
    def test_lists_domains_and_hosts(self, chain):
        _sim, net, a, ip_a, _b, _ip_b = chain
        rendered = render_topology(net)
        assert "bb0 -- bb1 -- bb2 -- bb3" in rendered
        assert "10.1.0.0/16" in rendered
        assert "a1" in rendered
        assert str(ip_a) in rendered

    def test_posture_labels(self, chain):
        sim, net, *_ = chain
        net.add_domain("open", "10.9.0.0/16", attach_at=1,
                       source_filtering=False, forbid_transit=False)
        net.add_domain("strict", "10.8.0.0/16", attach_at=2)
        rendered = render_topology(net)
        assert "permissive" in rendered
        assert "src-filter,no-transit" in rendered

    def test_moved_host_listed_once(self):
        scenario = build_scenario(seed=83, ch_awareness=None)
        rendered = render_topology(scenario.net)
        assert rendered.count(" mh ") <= 1 or rendered.count("mh ") >= 1
        # The mobile host appears under the visited domain only.
        home_block = rendered.split("visited")[0]
        assert "mh" not in home_block
