"""Golden-trace regression: perf work must not perturb simulation.

The digest below was captured on the pre-optimization engine (PR 1:
dataclass Event heap, regex-per-construction addressing, uncached
``wire_size``) and must be byte-identical on every engine since.  It
covers ~3.6k trace events of the canonical scenario-traffic workload:
every send, ARP exchange, forward, tunnel encapsulation/decapsulation,
and delivery, with exact float timestamps and wire sizes.

If this test fails after an optimization, the optimization changed
observable simulation behavior — fix the engine, do not re-pin the
digest.  Re-pinning is only legitimate when the *semantics* of the
scenario change deliberately (new protocol step, different topology),
and such a change must be called out in the PR description.
"""

from repro.bench.golden import golden_trace_digest

GOLDEN_DIGEST = "6c91661118a78681dfe5624d953ae85bb5a3f6e3b7e88fc4d166a9a121cf8a8f"
GOLDEN_ENTRY_COUNT = 3618


def test_scenario_traffic_trace_is_bit_identical():
    digest, entries = golden_trace_digest()
    assert entries == GOLDEN_ENTRY_COUNT
    assert digest == GOLDEN_DIGEST


def test_digest_is_stable_within_process():
    # Global id counters advance between runs; the digest must not see
    # them (it normalizes ids away), so two runs agree.
    assert golden_trace_digest() == golden_trace_digest()
