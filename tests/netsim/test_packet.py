"""Tests for the IP packet model and its size accounting."""

from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.addressing import IPAddress
from repro.netsim.encap import EncapScheme, encapsulate
from repro.netsim.packet import IPV4_HEADER_SIZE, IPProto, Packet


def make_packet(size=100, proto=IPProto.UDP):
    return Packet(
        src=IPAddress("10.0.0.1"),
        dst=IPAddress("10.0.0.2"),
        proto=proto,
        payload="data",
        payload_size=size,
    )


class TestWireSize:
    def test_plain_packet(self):
        assert make_packet(100).wire_size == IPV4_HEADER_SIZE + 100

    def test_zero_payload(self):
        assert make_packet(0).wire_size == IPV4_HEADER_SIZE

    @given(st.integers(min_value=0, max_value=65515))
    def test_wire_size_is_header_plus_payload(self, size):
        assert make_packet(size).wire_size == IPV4_HEADER_SIZE + size

    def test_ipip_adds_exactly_20_bytes(self):
        """§3.3: 'Encapsulation typically adds 20 bytes ... in IPv4.'"""
        inner = make_packet(1000)
        outer = encapsulate(
            inner, IPAddress("1.1.1.1"), IPAddress("2.2.2.2"), EncapScheme.IPIP
        )
        assert outer.wire_size == inner.wire_size + 20

    def test_nested_encapsulation_sizes_accumulate(self):
        inner = make_packet(100)
        mid = encapsulate(inner, IPAddress("1.1.1.1"), IPAddress("2.2.2.2"))
        outer = encapsulate(mid, IPAddress("3.3.3.3"), IPAddress("4.4.4.4"))
        assert outer.wire_size == inner.wire_size + 40


class TestEncapsulationStack:
    def test_innermost(self):
        inner = make_packet()
        outer = encapsulate(inner, IPAddress("1.1.1.1"), IPAddress("2.2.2.2"))
        assert outer.innermost is inner
        assert inner.innermost is inner

    def test_depth(self):
        inner = make_packet()
        outer = encapsulate(inner, IPAddress("1.1.1.1"), IPAddress("2.2.2.2"))
        double = encapsulate(outer, IPAddress("3.3.3.3"), IPAddress("4.4.4.4"))
        assert inner.encapsulation_depth == 0
        assert outer.encapsulation_depth == 1
        assert double.encapsulation_depth == 2

    def test_is_encapsulated(self):
        inner = make_packet()
        assert not inner.is_encapsulated
        outer = encapsulate(inner, IPAddress("1.1.1.1"), IPAddress("2.2.2.2"))
        assert outer.is_encapsulated


class TestTraceHelpers:
    def test_record_and_path(self):
        packet = make_packet()
        packet.record(0.0, "a", "send")
        packet.record(0.1, "r1", "forward")
        packet.record(0.2, "b", "deliver")
        assert packet.path == ("r1", "b")
        assert packet.hop_count == 1

    def test_drop_reason(self):
        packet = make_packet()
        assert not packet.was_dropped
        packet.record(0.0, "gw", "drop", "source-address-filter")
        assert packet.was_dropped
        assert packet.drop_reason == "source-address-filter"

    def test_encapsulated_shares_hop_list(self):
        inner = make_packet()
        inner.record(0.0, "mh", "send")
        outer = encapsulate(inner, IPAddress("1.1.1.1"), IPAddress("2.2.2.2"))
        outer.record(0.1, "r1", "forward")
        assert inner.hops == outer.hops
        assert outer.trace_id == inner.trace_id


class TestIdentity:
    def test_unique_idents(self):
        assert make_packet().ident != make_packet().ident

    def test_unique_trace_ids(self):
        assert make_packet().trace_id != make_packet().trace_id

    def test_addresses_coerced(self):
        packet = Packet(src="10.0.0.1", dst="10.0.0.2", proto=IPProto.UDP)
        assert isinstance(packet.src, IPAddress)
        assert isinstance(packet.dst, IPAddress)

    def test_repr_mentions_fragment_state(self):
        packet = make_packet()
        packet.frag_offset = 64
        packet.more_fragments = True
        assert "frag" in repr(packet)
