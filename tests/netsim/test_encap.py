"""Tests for the three encapsulation schemes and their byte costs (§3.3)."""

import pytest

from repro.netsim.addressing import IPAddress
from repro.netsim.encap import (
    EncapError,
    EncapScheme,
    decapsulate,
    encap_overhead,
    encapsulate,
    scheme_of,
)
from repro.netsim.packet import IPProto, Packet

SRC = IPAddress("10.1.0.10")     # inner source (home address)
DST = IPAddress("10.3.0.2")      # correspondent
COA = IPAddress("10.2.0.2")      # care-of
HA = IPAddress("10.1.0.1")       # home agent


def inner_packet(size=500):
    return Packet(src=SRC, dst=DST, proto=IPProto.TCP, payload="seg", payload_size=size)


class TestOverheadNumbers:
    """The exact byte costs the paper cites."""

    def test_ipip_is_20(self):
        assert encap_overhead(EncapScheme.IPIP) == 20

    def test_gre_is_24(self):
        assert encap_overhead(EncapScheme.GRE) == 24

    def test_minimal_is_12_with_source(self):
        assert encap_overhead(EncapScheme.MINIMAL, preserve_source=True) == 12

    def test_minimal_is_8_without_source(self):
        assert encap_overhead(EncapScheme.MINIMAL, preserve_source=False) == 8

    def test_minimal_beats_ipip_beats_gre(self):
        """§2: GRE/minimal-encapsulation 'minimize this overhead'."""
        assert (
            encap_overhead(EncapScheme.MINIMAL, preserve_source=False)
            < encap_overhead(EncapScheme.MINIMAL, preserve_source=True)
            < encap_overhead(EncapScheme.IPIP)
            < encap_overhead(EncapScheme.GRE)
        )


class TestWireSizes:
    @pytest.mark.parametrize("scheme", list(EncapScheme))
    def test_measured_overhead_matches_declared(self, scheme):
        inner = inner_packet(800)
        outer = encapsulate(inner, COA, HA, scheme=scheme)
        preserve = COA != SRC
        assert outer.wire_size - inner.wire_size == encap_overhead(scheme, preserve)

    def test_minimal_same_source_uses_8_byte_form(self):
        inner = inner_packet(800)
        outer = encapsulate(inner, SRC, HA, scheme=EncapScheme.MINIMAL)
        assert outer.wire_size - inner.wire_size == 8


class TestRoundTrip:
    @pytest.mark.parametrize("scheme", list(EncapScheme))
    def test_decapsulate_restores_inner(self, scheme):
        inner = inner_packet()
        outer = encapsulate(inner, COA, HA, scheme=scheme)
        assert decapsulate(outer) is inner

    @pytest.mark.parametrize("scheme", list(EncapScheme))
    def test_outer_addresses(self, scheme):
        outer = encapsulate(inner_packet(), COA, HA, scheme=scheme)
        assert outer.src == COA
        assert outer.dst == HA

    @pytest.mark.parametrize("scheme", list(EncapScheme))
    def test_scheme_of(self, scheme):
        outer = encapsulate(inner_packet(), COA, HA, scheme=scheme)
        assert scheme_of(outer) is scheme

    def test_scheme_of_plain_packet_is_none(self):
        assert scheme_of(inner_packet()) is None

    def test_trace_id_preserved(self):
        inner = inner_packet()
        outer = encapsulate(inner, COA, HA)
        assert outer.trace_id == inner.trace_id


class TestErrors:
    def test_decapsulate_plain_packet(self):
        with pytest.raises(EncapError):
            decapsulate(inner_packet())

    def test_minimal_cannot_nest(self):
        once = encapsulate(inner_packet(), COA, HA, scheme=EncapScheme.IPIP)
        with pytest.raises(EncapError):
            encapsulate(once, COA, HA, scheme=EncapScheme.MINIMAL)

    def test_ipip_can_nest(self):
        once = encapsulate(inner_packet(), COA, HA, scheme=EncapScheme.IPIP)
        twice = encapsulate(once, COA, HA, scheme=EncapScheme.IPIP)
        assert decapsulate(twice) is once

    def test_cannot_encapsulate_fragment(self):
        packet = inner_packet()
        packet.more_fragments = True
        with pytest.raises(EncapError):
            encapsulate(packet, COA, HA)

    def test_tunnel_packet_with_bad_payload_rejected(self):
        bogus = Packet(src=COA, dst=HA, proto=IPProto.IPIP, payload="not-a-packet")
        with pytest.raises(EncapError):
            decapsulate(bogus)
