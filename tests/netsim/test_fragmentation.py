"""Tests for IP fragmentation/reassembly and the §3.3 doubling claim."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.addressing import IPAddress
from repro.netsim.encap import encapsulate
from repro.netsim.fragmentation import (
    FragmentationNeeded,
    Reassembler,
    fragment,
)
from repro.netsim.packet import IPV4_HEADER_SIZE, IPProto, Packet


def make_packet(size, df=False):
    return Packet(
        src=IPAddress("10.0.0.1"), dst=IPAddress("10.0.0.2"),
        proto=IPProto.UDP, payload="data", payload_size=size,
        dont_fragment=df,
    )


class TestFragment:
    def test_under_mtu_passes_through(self):
        packet = make_packet(100)
        assert fragment(packet, 1500) == [packet]

    def test_exact_mtu_passes_through(self):
        packet = make_packet(1480)
        assert packet.wire_size == 1500
        assert fragment(packet, 1500) == [packet]

    def test_one_byte_over_mtu_doubles_packet_count(self):
        """§3.3: '...the packet will be fragmented, doubling the packet
        count' — an encapsulated near-MTU packet becomes two."""
        inner = make_packet(1480)                      # exactly 1500 on wire
        outer = encapsulate(inner, IPAddress("1.1.1.1"), IPAddress("2.2.2.2"))
        assert outer.wire_size == 1520
        pieces = fragment(outer, 1500)
        assert len(pieces) == 2

    def test_fragment_sizes_and_offsets(self):
        packet = make_packet(3000)
        pieces = fragment(packet, 1500)
        assert len(pieces) == 3
        offset = 0
        for piece in pieces[:-1]:
            assert piece.frag_offset == offset
            assert piece.more_fragments
            assert piece.wire_size <= 1500
            assert piece.payload_size % 8 == 0
            offset += piece.payload_size
        last = pieces[-1]
        assert not last.more_fragments
        assert offset + last.payload_size == 3000

    def test_fragments_share_ident_and_trace(self):
        packet = make_packet(3000)
        pieces = fragment(packet, 1500)
        assert len({p.ident for p in pieces}) == 1
        assert len({p.trace_id for p in pieces}) == 1

    def test_df_raises(self):
        packet = make_packet(3000, df=True)
        with pytest.raises(FragmentationNeeded) as info:
            fragment(packet, 1500)
        assert info.value.mtu == 1500

    def test_tiny_mtu_rejected(self):
        with pytest.raises(ValueError):
            fragment(make_packet(100), IPV4_HEADER_SIZE)

    @given(st.integers(min_value=1, max_value=20000),
           st.integers(min_value=68, max_value=1500))
    def test_total_bytes_conserved(self, size, mtu):
        packet = make_packet(size)
        pieces = fragment(packet, mtu)
        assert sum(p.payload_size for p in pieces) == size
        for piece in pieces:
            assert piece.wire_size <= mtu


class TestReassembly:
    def test_roundtrip(self):
        packet = make_packet(3000)
        pieces = fragment(packet, 1500)
        reassembler = Reassembler()
        results = [reassembler.accept(p, now=0.0) for p in pieces]
        whole = results[-1]
        assert all(r is None for r in results[:-1])
        assert whole is not None
        assert whole.payload == "data"
        assert whole.inner_size == 3000
        assert reassembler.reassembled == 1

    def test_out_of_order_arrival(self):
        packet = make_packet(3000)
        pieces = fragment(packet, 1500)
        reassembler = Reassembler()
        whole = None
        for piece in reversed(pieces):
            whole = reassembler.accept(piece, now=0.0)
        assert whole is not None
        assert whole.inner_size == 3000

    def test_unfragmented_passes_straight_through(self):
        reassembler = Reassembler()
        packet = make_packet(100)
        assert reassembler.accept(packet, now=0.0) is packet

    def test_missing_fragment_blocks(self):
        packet = make_packet(3000)
        pieces = fragment(packet, 1500)
        reassembler = Reassembler()
        assert reassembler.accept(pieces[0], now=0.0) is None
        assert reassembler.accept(pieces[2], now=0.0) is None
        assert reassembler.pending == 1

    def test_timeout_discards_incomplete(self):
        packet = make_packet(3000)
        pieces = fragment(packet, 1500)
        reassembler = Reassembler()
        reassembler.accept(pieces[0], now=0.0)
        # A later unrelated arrival triggers expiry.
        reassembler.accept(make_packet(50), now=100.0)
        assert reassembler.pending == 0
        assert reassembler.timeouts == 1

    def test_duplicate_fragment_rejected_and_counted(self):
        packet = make_packet(3000)
        pieces = fragment(packet, 1500)
        reassembler = Reassembler()
        assert reassembler.accept(pieces[0], now=0.0) is None
        # The same fragment again (retransmitted or looped): rejected,
        # buffer untouched, counted.
        assert reassembler.accept(pieces[0], now=0.0) is None
        assert reassembler.duplicates == 1
        assert reassembler.pending == 1
        # The remaining fragments still complete the datagram.
        whole = None
        for piece in pieces[1:]:
            whole = reassembler.accept(piece, now=0.0)
        assert whole is not None
        assert whole.inner_size == 3000

    def test_overlapping_fragment_rejected_and_counted(self):
        packet = make_packet(3000)
        pieces = fragment(packet, 1500)
        reassembler = Reassembler()
        assert reassembler.accept(pieces[0], now=0.0) is None
        # A teardrop-style fragment whose range intersects a held one:
        # starts inside piece 0, same datagram key.
        overlap = packet.copy_for_fragment(offset=8, size=64, more=True)
        overlap.shim_size = 0
        overlap.invalidate_size_cache()
        assert reassembler.accept(overlap, now=0.0) is None
        assert reassembler.overlaps == 1
        # First arrival wins: the buffer still reassembles cleanly.
        whole = None
        for piece in pieces[1:]:
            whole = reassembler.accept(piece, now=0.0)
        assert whole is not None
        assert whole.inner_size == 3000

    def test_buffer_expires_at_exactly_the_timeout(self):
        """RFC 791 boundary: the buffer dies *at* REASSEMBLY_TIMEOUT,
        not one event later."""
        from repro.netsim.fragmentation import REASSEMBLY_TIMEOUT

        packet = make_packet(3000)
        pieces = fragment(packet, 1500)
        reassembler = Reassembler()
        reassembler.accept(pieces[0], now=0.0)
        # Just before the deadline the buffer survives.
        reassembler.accept(make_packet(50), now=REASSEMBLY_TIMEOUT - 1e-9)
        assert reassembler.pending == 1
        assert reassembler.timeouts == 0
        # At exactly the deadline it is gone.
        reassembler.accept(make_packet(50), now=REASSEMBLY_TIMEOUT)
        assert reassembler.pending == 0
        assert reassembler.timeouts == 1

    def test_expiry_callback_receives_the_buffer(self):
        expired = []
        packet = make_packet(3000)
        pieces = fragment(packet, 1500)
        reassembler = Reassembler()
        reassembler.on_expire = expired.append
        reassembler.accept(pieces[0], now=0.0)
        reassembler.accept(make_packet(50), now=100.0)
        assert len(expired) == 1
        assert pieces[0].frag_offset in expired[0].fragments

    def test_interleaved_datagrams_keep_separate_buffers(self):
        first = make_packet(3000)
        second = make_packet(3000)
        pieces_a = fragment(first, 1500)
        pieces_b = fragment(second, 1500)
        reassembler = Reassembler()
        for pa, pb in zip(pieces_a, pieces_b):
            out_a = reassembler.accept(pa, now=0.0)
            out_b = reassembler.accept(pb, now=0.0)
        assert out_a is not None and out_b is not None
        assert out_a.ident != out_b.ident

    def test_encapsulated_payload_survives_reassembly(self):
        inner = make_packet(1480)
        outer = encapsulate(inner, IPAddress("1.1.1.1"), IPAddress("2.2.2.2"))
        pieces = fragment(outer, 1500)
        reassembler = Reassembler()
        whole = None
        for piece in pieces:
            whole = reassembler.accept(piece, now=0.0)
        assert whole is not None
        assert whole.is_encapsulated
        assert whole.payload is inner


class TestFragmentSizeAccounting:
    def test_encapsulated_first_fragment_reports_literal_size(self):
        """Regression: the first fragment of a tunnel packet must report
        its own byte count, not the whole inner packet's — otherwise it
        is re-fragmented at every subsequent hop."""
        inner = make_packet(1480)
        outer = encapsulate(inner, IPAddress("1.1.1.1"), IPAddress("2.2.2.2"))
        pieces = fragment(outer, 1500)
        assert len(pieces) == 2
        for piece in pieces:
            assert piece.wire_size <= 1500
            # A second pass over the same MTU must be a no-op.
            assert fragment(piece, 1500) == [piece]

    def test_fragment_sizes_sum_to_original(self):
        inner = make_packet(1480)
        outer = encapsulate(inner, IPAddress("1.1.1.1"), IPAddress("2.2.2.2"))
        pieces = fragment(outer, 1500)
        data_bytes = sum(p.payload_size for p in pieces)
        assert data_bytes == outer.inner_size == 1500

    def test_reassembled_whole_recovers_structured_size(self):
        inner = make_packet(1480)
        outer = encapsulate(inner, IPAddress("1.1.1.1"), IPAddress("2.2.2.2"))
        reassembler = Reassembler()
        whole = None
        for piece in fragment(outer, 1500):
            whole = reassembler.accept(piece, now=0.0)
        assert whole is not None
        assert not whole.is_fragment
        assert whole.wire_size == 1520        # structured sizing again
        assert whole.payload is inner
