"""Equivalence proofs for the flow fast-forwarder.

The fast path's contract is *byte-identical* output: the same
:class:`~repro.netsim.trace.TraceLog` entries (hence the same digest),
deliverability, overhead, and metrics with fast-forward on and off.
These tests exercise that contract across the worked 24-cell grid, the
canonical golden workload, and a run disturbed mid-conversation by a
fault plan.
"""

import dataclasses
import pathlib

from repro.experiment import Runner, SpecGrid
from repro.netsim.faults import FaultPlan

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"
GRID = EXAMPLES / "grid_4x4.json"


def _run_pair(spec):
    """One spec, fast-forward on and off; returns both results."""
    on = Runner().run(spec)
    off = Runner().run(dataclasses.replace(spec, fast_forward=False))
    return on, off


def _assert_equivalent(on, off, label=""):
    assert on.digest == off.digest, f"digest diverged: {label}"
    assert on.trace_entries == off.trace_entries, label
    assert on.deliverability == off.deliverability, label
    assert on.overhead == off.overhead, label
    assert on.metrics == off.metrics, label
    assert on.invariants == off.invariants, label


class TestGridEquivalence:
    def test_grid_digests_identical_on_and_off(self):
        """All 24 worked-grid cells: same digests with the flag flipped.

        The grid arms the invariant monitor, which is a disturbance
        source the forwarder refuses to fast-forward past — so these
        cells prove the *stand-aside* path changes nothing.
        """
        specs = SpecGrid.from_file(str(GRID)).expand()
        assert len(specs) == 24
        for spec in specs:
            on, off = _run_pair(spec)
            _assert_equivalent(on, off, label=spec.label)

    def test_unarmed_grid_cells_engage_and_match(self):
        """With invariants unarmed the fast path can engage; digests
        must still match cell for cell."""
        specs = SpecGrid.from_file(str(GRID)).expand()
        engaged = 0
        for spec in specs[:6]:
            spec = dataclasses.replace(spec, arm_invariants=False)
            on, off = _run_pair(spec)
            _assert_equivalent(on, off, label=spec.label)
            engaged += on.extras["fast_forward"]["engaged_runs"]
        assert engaged > 0, "no unarmed cell engaged the fast path"


class TestGoldenEquivalence:
    def test_canonical_workload_replays_and_matches(self):
        from repro.experiment import canonical_traffic_spec

        spec = canonical_traffic_spec(datagrams=200, seed=1401)
        on, off = _run_pair(spec)
        _assert_equivalent(on, off, label="canonical")
        ff = on.extras["fast_forward"]
        assert ff["engaged_runs"] == 1
        assert ff["replayed"] > 0, "fast path never replayed a cascade"
        assert ff["fallbacks"] == 0
        # With the engine flag off the forwarder is never constructed.
        assert "fast_forward" not in off.extras


class TestFaultDisengagement:
    def test_mid_conversation_fault_disengages_and_matches(self):
        """A fault plan firing inside the send window forces the
        forwarder to drop its templates (world change) and re-verify;
        output must still be byte-identical to the per-event run."""
        from repro.experiment import canonical_traffic_spec

        plan = FaultPlan()
        plan.add(0.45, "link-flap", "uplink-visited", duration=0.2)
        spec = dataclasses.replace(
            canonical_traffic_spec(datagrams=100, seed=1401),
            faults=plan.to_dict())
        on, off = _run_pair(spec)
        _assert_equivalent(on, off, label="mid-conversation fault")
        ff = on.extras["fast_forward"]
        assert ff["engaged_runs"] == 1
        # The flap's scheduled events run outside the verified flows:
        # the forwarder must notice and invalidate at least once...
        assert ff["world_changes"] >= 1
        # ...and still have fast-forwarded the quiet stretches.
        assert ff["replayed"] > 0
