"""Tests for node IP processing, forwarding, boundary filtering, ICMP."""

import pytest

from repro.netsim import (
    BoundaryRouter,
    Internet,
    IPAddress,
    Network,
    Node,
    Packet,
    PhysicalRoute,
    Simulator,
    VirtualRoute,
)
from repro.netsim.icmp import IcmpType
from repro.netsim.packet import IPProto


def udp(src, dst, size=100, ttl=64):
    return Packet(src=IPAddress(src), dst=IPAddress(dst), proto=IPProto.UDP,
                  payload="x", payload_size=size, ttl=ttl)


class TestLocalDelivery:
    def test_loopback_to_own_address(self, lan):
        sim, _segment, a, _b = lan
        seen = []
        a.proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
        a.ip_send(udp("192.168.1.1", "192.168.1.1"))
        sim.run()
        assert len(seen) == 1

    def test_no_route_drops(self, sim):
        node = Node("isolated", sim)
        node.ip_send(udp("1.1.1.1", "2.2.2.2"))
        sim.run()
        assert sim.trace.drops_by_reason.get("no-route") == 1

    def test_host_does_not_forward(self, lan):
        sim, _segment, a, b = lan
        # Deliver a frame to b that is addressed (at IP) elsewhere.
        b_iface = b.interfaces["eth0"]
        a.arp.learn(a.interfaces["eth0"], IPAddress("192.168.1.99"),
                    b_iface.link_address)
        a.ip_send(udp("192.168.1.1", "192.168.1.99"))
        sim.run()
        assert sim.trace.drops_by_reason.get("not-mine") == 1


class TestRouteOverrides:
    def test_override_can_redirect_physically(self, lan):
        sim, _segment, a, b = lan
        seen = []
        b.proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
        # The destination address does not belong on this segment (the
        # In-DH situation); b accepts it because it owns the address as
        # a secondary, and a's override forces the one-hop delivery.
        b.interfaces["eth0"].add_secondary(IPAddress("172.30.0.1"))
        a.route_overrides.append(
            lambda p: PhysicalRoute("eth0", next_hop=IPAddress("192.168.1.2"))
        )
        a.ip_send(udp("192.168.1.1", "172.30.0.1"))
        sim.run()
        assert len(seen) == 1
        assert seen[0].dst == IPAddress("172.30.0.1")

    def test_virtual_route_consumes_packet(self, sim):
        node = Node("n", sim)
        captured = []
        node.route_overrides.append(
            lambda p: VirtualRoute(handler=captured.append, name="test-vif")
        )
        node.ip_send(udp("1.1.1.1", "2.2.2.2"))
        assert len(captured) == 1

    def test_bypass_overrides(self, sim):
        node = Node("n", sim)
        captured = []
        node.route_overrides.append(
            lambda p: VirtualRoute(handler=captured.append)
        )
        node.ip_send(udp("1.1.1.1", "2.2.2.2"), bypass_overrides=True)
        assert captured == []  # fell through to (absent) route table

    def test_declining_override_falls_through(self, lan):
        sim, _segment, a, b = lan
        seen = []
        b.proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
        a.route_overrides.append(lambda p: None)
        a.ip_send(udp("192.168.1.1", "192.168.1.2"))
        sim.run()
        assert len(seen) == 1


class TestForwarding:
    def test_ttl_decrements_per_hop(self, two_domain_net):
        sim, _net, a, ip_a, b, ip_b = two_domain_net
        seen = []
        b.proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
        a.ip_send(udp(str(ip_a), str(ip_b), ttl=64))
        sim.run()
        assert len(seen) == 1
        # Path: a-gw, bb0, bb1, b-gw = 4 routers
        assert seen[0].ttl == 60

    def test_ttl_expiry_drops(self, two_domain_net):
        sim, _net, a, ip_a, _b, ip_b = two_domain_net
        a.ip_send(udp(str(ip_a), str(ip_b), ttl=2))
        sim.run()
        assert sim.trace.drops_by_reason.get("ttl-exceeded") == 1

    def test_router_sends_host_unreachable_for_unknown_prefix(self, two_domain_net):
        sim, _net, a, ip_a, _b, _ip_b = two_domain_net
        errors = []
        a.icmp_hooks.append(lambda pkt, msg: errors.append(msg.icmp_type))
        a.ip_send(udp(str(ip_a), "172.30.0.1"))
        sim.run()
        assert IcmpType.DEST_UNREACHABLE in errors


class TestBoundaryRouter:
    def build(self, source_filtering=True, forbid_transit=True):
        sim = Simulator(seed=3)
        net = Internet(sim, backbone_size=1)
        net.add_domain("site", "10.1.0.0/16",
                       source_filtering=source_filtering,
                       forbid_transit=forbid_transit)
        # The attacker's own domain must be fully permissive, or its own
        # boundary's egress/transit rules stop the spoof before it ever
        # reaches the victim site (which is itself a §3.1 observation).
        net.add_domain("other", "10.2.0.0/16", source_filtering=False,
                       forbid_transit=False)
        inside = Node("inside", sim)
        outside = Node("outside", sim)
        ip_in = net.add_host("site", inside)
        ip_out = net.add_host("other", outside)
        return sim, inside, ip_in, outside, ip_out

    def test_spoofed_packet_dropped_at_boundary(self):
        """Figure 2, inbound direction."""
        sim, inside, ip_in, outside, _ip_out = self.build()
        outside.ip_send(udp("10.1.0.50", str(ip_in)))  # spoofed inside source
        sim.run()
        assert (
            sim.trace.drops_by_reason.get(
                "source-address-filter:inside-source-from-outside") == 1
        )

    def test_foreign_source_dropped_leaving(self):
        """Figure 2, the direction that kills Out-DH."""
        sim, inside, _ip_in, _outside, ip_out = self.build()
        inside.ip_send(udp("10.9.0.1", str(ip_out)))  # foreign source leaving
        sim.run()
        assert (
            sim.trace.drops_by_reason.get(
                "source-address-filter:foreign-source-leaving-site") == 1
        )

    def test_permissive_router_forwards_spoof(self):
        sim, inside, ip_in, outside, _ = self.build(source_filtering=False,
                                                    forbid_transit=False)
        seen = []
        inside.proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
        outside.ip_send(udp("10.1.0.50", str(ip_in)))
        sim.run()
        assert len(seen) == 1

    def test_legitimate_traffic_passes_filtering_router(self):
        sim, inside, ip_in, outside, ip_out = self.build()
        seen = []
        inside.proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
        outside.ip_send(udp(str(ip_out), str(ip_in)))
        sim.run()
        assert len(seen) == 1

    def test_mark_inside_requires_existing_interface(self):
        sim = Simulator(seed=4)
        router = BoundaryRouter("gw", sim, site=Network("10.1.0.0/16"))
        with pytest.raises(ValueError):
            router.mark_inside("nope")


class TestIcmpEcho:
    def test_ping_round_trip(self, two_domain_net):
        sim, _net, a, ip_a, _b, ip_b = two_domain_net
        replies = []
        a.ping(ip_b, replies.append)
        sim.run()
        assert len(replies) == 1

    def test_ping_reply_sourced_from_pinged_address(self, two_domain_net):
        sim, _net, a, _ip_a, _b, ip_b = two_domain_net
        replies = []
        a.ping(ip_b, replies.append)
        sim.run()
        assert replies[0].src == ip_b

    def test_duplicate_reply_ignored(self, lan):
        sim, _segment, a, b = lan
        replies = []
        token = a.ping(IPAddress("192.168.1.2"), replies.append)
        sim.run()
        # Replay the reply: waiter is gone, nothing should break.
        reply = replies[0]
        a._icmp_input(reply)
        assert len(replies) == 1


class TestMulticastLocal:
    def test_multicast_delivered_to_joined_hosts_only(self, lan):
        sim, _segment, a, b = lan
        group = IPAddress("224.1.2.3")
        seen = []
        b.proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
        a.ip_send(udp("192.168.1.1", str(group)))
        sim.run()
        assert seen == []      # not joined
        b.join_multicast(group)
        a.ip_send(udp("192.168.1.1", str(group)))
        sim.run()
        assert len(seen) == 1

    def test_leave_multicast(self, lan):
        sim, _segment, a, b = lan
        group = IPAddress("224.1.2.3")
        seen = []
        b.proto_handlers[IPProto.UDP] = lambda p: seen.append(p)
        b.join_multicast(group)
        b.leave_multicast(group)
        a.ip_send(udp("192.168.1.1", str(group)))
        sim.run()
        assert seen == []

    def test_join_requires_multicast_address(self, sim):
        node = Node("n", sim)
        with pytest.raises(ValueError):
            node.join_multicast(IPAddress("10.0.0.1"))
