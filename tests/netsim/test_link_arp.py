"""Tests for segments, interfaces, frames, and ARP (incl. proxy ARP)."""

import pytest

from repro.netsim.addressing import IPAddress, Network
from repro.netsim.link import Segment
from repro.netsim.node import Node
from repro.netsim.packet import IPProto, Packet


def udp_packet(src, dst, size=100):
    return Packet(src=IPAddress(src), dst=IPAddress(dst), proto=IPProto.UDP,
                  payload="x", payload_size=size)


class TestSegmentDelivery:
    def test_unicast_frame_reaches_only_target(self, lan):
        sim, segment, a, b = lan
        b.proto_handlers[IPProto.UDP] = lambda p: None
        packet = udp_packet("192.168.1.1", "192.168.1.2")
        a.ip_send(packet)
        sim.run()
        assert b.packets_received == 1
        assert a.packets_received == 0

    def test_latency_and_serialization_delay(self, sim):
        segment = sim.segment("slow", latency=0.5, bandwidth=8000)  # 1 kB/s
        received_at = []
        a, b = Node("a", sim), Node("b", sim)
        prefix = Network("10.0.0.0/24")
        a.add_interface("eth0", segment).configure(IPAddress("10.0.0.1"), prefix)
        b.add_interface("eth0", segment).configure(IPAddress("10.0.0.2"), prefix)
        a.routes.add(prefix, "eth0")
        b.proto_handlers[IPProto.UDP] = lambda p: received_at.append(sim.now)
        # Pre-seed ARP so we measure only the data frame's delay.
        a.arp.learn(a.interfaces["eth0"], IPAddress("10.0.0.2"),
                    b.interfaces["eth0"].link_address)
        packet = udp_packet("10.0.0.1", "10.0.0.2", size=986)  # 1006B + 14 = 1020B
        a.ip_send(packet)
        sim.run()
        assert len(received_at) == 1
        assert received_at[0] == pytest.approx(0.5 + 1020 * 8 / 8000)

    def test_bytes_accounted(self, lan):
        sim, segment, a, b = lan
        b.proto_handlers[IPProto.UDP] = lambda p: None
        a.ip_send(udp_packet("192.168.1.1", "192.168.1.2", size=200))
        sim.run()
        # ARP request + reply + one data frame
        assert segment.frames_carried == 3
        assert segment.bytes_carried >= 200

    def test_detached_interface_loses_frames(self, lan):
        sim, segment, a, b = lan
        b.interfaces["eth0"].detach()
        a.ip_send(udp_packet("192.168.1.1", "192.168.1.2"))
        sim.run()
        assert b.packets_received == 0

    def test_interface_down_drops_receive(self, lan):
        sim, segment, a, b = lan
        a.arp.learn(a.interfaces["eth0"], IPAddress("192.168.1.2"),
                    b.interfaces["eth0"].link_address)
        b.interfaces["eth0"].up = False
        a.ip_send(udp_packet("192.168.1.1", "192.168.1.2"))
        sim.run()
        assert b.packets_received == 0

    def test_bad_segment_parameters_rejected(self, sim):
        with pytest.raises(ValueError):
            Segment("bad", sim, latency=-1)
        with pytest.raises(ValueError):
            Segment("bad2", sim, bandwidth=0)


class TestInterface:
    def test_configure_checks_membership(self, sim):
        node = Node("n", sim)
        iface = node.add_interface("eth0")
        with pytest.raises(ValueError):
            iface.configure(IPAddress("10.0.0.1"), Network("192.168.0.0/24"))

    def test_secondary_addresses(self, sim):
        node = Node("n", sim)
        iface = node.add_interface("eth0")
        iface.configure(IPAddress("10.0.0.1"), Network("10.0.0.0/24"))
        iface.add_secondary(IPAddress("10.1.0.10"))
        iface.add_secondary(IPAddress("10.1.0.10"))  # idempotent
        assert iface.addresses == [IPAddress("10.0.0.1"), IPAddress("10.1.0.10")]
        assert node.owns_address(IPAddress("10.1.0.10"))

    def test_duplicate_interface_name_rejected(self, sim):
        node = Node("n", sim)
        node.add_interface("eth0")
        with pytest.raises(ValueError):
            node.add_interface("eth0")

    def test_deconfigure_clears_everything(self, sim):
        node = Node("n", sim)
        iface = node.add_interface("eth0")
        iface.configure(IPAddress("10.0.0.1"), Network("10.0.0.0/24"))
        iface.add_secondary(IPAddress("10.1.0.10"))
        iface.deconfigure()
        assert iface.addresses == []


class TestArp:
    def test_resolution_then_delivery(self, lan):
        sim, segment, a, b = lan
        a.ip_send(udp_packet("192.168.1.1", "192.168.1.2"))
        sim.run()
        # a should now have a cache entry for b
        learned = a.arp.lookup(a.interfaces["eth0"], IPAddress("192.168.1.2"))
        assert learned == b.interfaces["eth0"].link_address

    def test_pending_queue_drains_in_order(self, lan):
        sim, segment, a, b = lan
        received = []
        b.proto_handlers[IPProto.UDP] = lambda p: received.append(p.payload)
        for index in range(3):
            packet = Packet(src=IPAddress("192.168.1.1"), dst=IPAddress("192.168.1.2"),
                            proto=IPProto.UDP, payload=index, payload_size=10)
            a.ip_send(packet)
        sim.run()
        assert received == [0, 1, 2]

    def test_pending_queue_overflow_drops(self, lan):
        sim, segment, a, b = lan
        # Unresolvable address: nobody owns it, queue fills then drops.
        for _ in range(20):
            a.ip_send(udp_packet("192.168.1.1", "192.168.1.99"))
        sim.run()
        assert sim.trace.drops_by_reason.get("arp-queue-overflow", 0) == 4

    def test_gratuitous_arp_overwrites_cache(self, lan):
        sim, segment, a, b = lan
        iface_a = a.interfaces["eth0"]
        stale = b.interfaces["eth0"].link_address
        a.arp.learn(iface_a, IPAddress("192.168.1.50"), stale)
        # b announces it now holds .50
        b.interfaces["eth0"].add_secondary(IPAddress("192.168.1.50"))
        b.arp.announce(b.interfaces["eth0"], IPAddress("192.168.1.50"))
        sim.run()
        assert a.arp.lookup(iface_a, IPAddress("192.168.1.50")) == stale  # same addr here
        # and a third party learns it fresh
        assert b.arp.proxies_on(b.interfaces["eth0"]) == frozenset()

    def test_proxy_arp_answers_for_other_hosts(self, lan):
        """RFC 1027 behaviour: the home agent's capture mechanism."""
        sim, segment, a, b = lan
        absent = IPAddress("192.168.1.77")
        b.arp.add_proxy(b.interfaces["eth0"], absent)
        a.ip_send(udp_packet("192.168.1.1", str(absent)))
        sim.run()
        resolved = a.arp.lookup(a.interfaces["eth0"], absent)
        assert resolved == b.interfaces["eth0"].link_address

    def test_proxy_removal_stops_answering(self, lan):
        sim, segment, a, b = lan
        absent = IPAddress("192.168.1.77")
        iface_b = b.interfaces["eth0"]
        b.arp.add_proxy(iface_b, absent)
        b.arp.remove_proxy(iface_b, absent)
        a.ip_send(udp_packet("192.168.1.1", str(absent)))
        sim.run()
        assert a.arp.lookup(a.interfaces["eth0"], absent) is None

    def test_flush_clears_cache(self, lan):
        sim, segment, a, b = lan
        a.ip_send(udp_packet("192.168.1.1", "192.168.1.2"))
        sim.run()
        a.arp.flush()
        assert a.arp.lookup(a.interfaces["eth0"], IPAddress("192.168.1.2")) is None

    def test_cache_entries_expire(self, lan):
        sim, segment, a, b = lan
        iface = a.interfaces["eth0"]
        a.arp.learn(iface, IPAddress("192.168.1.2"), b.interfaces["eth0"].link_address)
        # Advance time beyond the cache lifetime.
        sim.events.schedule(700.0, lambda: None)
        sim.run()
        assert a.arp.lookup(iface, IPAddress("192.168.1.2")) is None
