"""Unit and property tests for IPv4 addressing primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.addressing import (
    AddressAllocator,
    AddressError,
    IPAddress,
    Network,
)


class TestIPAddress:
    def test_parse_dotted_quad(self):
        assert int(IPAddress("10.0.0.1")) == (10 << 24) + 1

    def test_str_roundtrip(self):
        assert str(IPAddress("192.168.1.200")) == "192.168.1.200"

    def test_from_int(self):
        assert str(IPAddress(0x0A000001)) == "10.0.0.1"

    def test_from_ipaddress_copy(self):
        original = IPAddress("1.2.3.4")
        assert IPAddress(original) == original

    def test_equality_and_hash(self):
        assert IPAddress("10.0.0.1") == IPAddress(0x0A000001)
        assert hash(IPAddress("10.0.0.1")) == hash(IPAddress(0x0A000001))

    def test_ordering(self):
        assert IPAddress("10.0.0.1") < IPAddress("10.0.0.2")

    @pytest.mark.parametrize(
        "bad", ["10.0.0", "10.0.0.256", "a.b.c.d", "10..0.1", "10.0.0.1.2", ""]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(AddressError):
            IPAddress(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(AddressError):
            IPAddress(2**32)
        with pytest.raises(AddressError):
            IPAddress(-1)

    def test_wrong_type_rejected(self):
        with pytest.raises(AddressError):
            IPAddress(1.5)  # type: ignore[arg-type]

    def test_multicast_detection(self):
        assert IPAddress("224.0.0.1").is_multicast
        assert IPAddress("239.255.255.255").is_multicast
        assert not IPAddress("223.255.255.255").is_multicast
        assert not IPAddress("240.0.0.1").is_multicast

    def test_broadcast_and_unspecified(self):
        assert IPAddress("255.255.255.255").is_broadcast
        assert IPAddress("0.0.0.0").is_unspecified
        assert not IPAddress("10.0.0.1").is_broadcast

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_str_parse_roundtrip_property(self, value):
        address = IPAddress(value)
        assert int(IPAddress(str(address))) == value


class TestIPAddressInterning:
    """The constructor cache must be invisible except for speed."""

    def test_same_string_returns_cached_instance(self):
        assert IPAddress("10.9.8.7") is IPAddress("10.9.8.7")

    def test_same_int_returns_cached_instance(self):
        assert IPAddress(0x0A090807) is IPAddress(0x0A090807)

    def test_copy_construction_is_identity(self):
        original = IPAddress("10.9.8.7")
        assert IPAddress(original) is original

    def test_str_and_int_spellings_stay_equal(self):
        assert IPAddress("10.0.0.1") == IPAddress(0x0A000001)
        assert hash(IPAddress("10.0.0.1")) == hash(IPAddress(0x0A000001))

    def test_usable_as_dict_key_across_spellings(self):
        table = {IPAddress("10.0.0.1"): "route"}
        assert table[IPAddress(0x0A000001)] == "route"

    def test_malformed_still_rejected_after_cache_hits(self):
        IPAddress("10.0.0.1")
        with pytest.raises(AddressError):
            IPAddress("10.0.0.999")
        with pytest.raises(AddressError):
            IPAddress("not-an-address")

    def test_not_equal_to_bare_ints_or_strings(self):
        assert IPAddress("10.0.0.1") != 0x0A000001
        assert IPAddress("10.0.0.1") != "10.0.0.1"

    def test_immutable(self):
        address = IPAddress("10.0.0.1")
        with pytest.raises(AttributeError):
            address.value = 5

    def test_cache_is_bounded_under_allocator_sweeps(self):
        from repro.netsim import addressing

        for value in range(3 * addressing._INTERN_CACHE_MAX):
            IPAddress(value)
        assert len(addressing._INTERN_CACHE) <= addressing._INTERN_CACHE_MAX

    def test_eviction_does_not_break_equality(self):
        early = IPAddress("10.250.0.1")
        from repro.netsim import addressing

        for value in range(2 * addressing._INTERN_CACHE_MAX):
            IPAddress(value)
        again = IPAddress("10.250.0.1")  # may or may not be the same object
        assert again == early
        assert hash(again) == hash(early)


class TestNetwork:
    def test_parse_cidr(self):
        net = Network("10.1.0.0/16")
        assert str(net) == "10.1.0.0/16"
        assert net.prefix_len == 16

    def test_contains_address(self):
        net = Network("10.1.0.0/16")
        assert net.contains(IPAddress("10.1.255.254"))
        assert not net.contains(IPAddress("10.2.0.1"))

    def test_contains_subnetwork(self):
        assert Network("10.0.0.0/8").contains(Network("10.1.0.0/16"))
        assert not Network("10.1.0.0/16").contains(Network("10.0.0.0/8"))

    def test_overlaps(self):
        assert Network("10.0.0.0/8").overlaps(Network("10.1.0.0/16"))
        assert Network("10.1.0.0/16").overlaps(Network("10.0.0.0/8"))
        assert not Network("10.1.0.0/16").overlaps(Network("10.2.0.0/16"))

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            Network("10.1.0.1/16")

    def test_bad_prefix_len_rejected(self):
        with pytest.raises(AddressError):
            Network("10.0.0.0/33")
        with pytest.raises(AddressError):
            Network("10.0.0.0/x")

    def test_missing_prefix_len_rejected(self):
        with pytest.raises(AddressError):
            Network("10.0.0.0")

    def test_netmask_and_broadcast(self):
        net = Network("192.168.4.0/22")
        assert str(net.netmask) == "255.255.252.0"
        assert str(net.broadcast_address) == "192.168.7.255"

    def test_hosts_skip_network_and_broadcast(self):
        hosts = list(Network("192.168.1.0/30").hosts())
        assert [str(h) for h in hosts] == ["192.168.1.1", "192.168.1.2"]

    def test_hosts_point_to_point_31(self):
        hosts = list(Network("192.168.1.0/31").hosts())
        assert [str(h) for h in hosts] == ["192.168.1.0", "192.168.1.1"]

    def test_num_addresses(self):
        assert Network("10.0.0.0/24").num_addresses == 256
        assert Network("0.0.0.0/0").num_addresses == 2**32

    def test_zero_length_prefix_contains_everything(self):
        default = Network("0.0.0.0/0")
        assert default.contains(IPAddress("255.255.255.255"))
        assert default.contains(IPAddress("0.0.0.0"))

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(0, 32))
    def test_membership_matches_mask_arithmetic(self, value, prefix_len):
        mask = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF if prefix_len else 0
        net = Network(IPAddress(value & mask), prefix_len)
        assert net.contains(IPAddress(value))


class TestAddressAllocator:
    def test_allocates_sequentially_after_reserve(self):
        alloc = AddressAllocator(Network("10.0.0.0/24"), reserve=1)
        assert str(alloc.allocate()) == "10.0.0.2"
        assert str(alloc.allocate()) == "10.0.0.3"

    def test_claim_specific(self):
        alloc = AddressAllocator(Network("10.0.0.0/24"))
        claimed = alloc.claim(IPAddress("10.0.0.77"))
        assert claimed in alloc.in_use

    def test_claim_outside_rejected(self):
        alloc = AddressAllocator(Network("10.0.0.0/24"))
        with pytest.raises(AddressError):
            alloc.claim(IPAddress("10.0.1.1"))

    def test_double_claim_rejected(self):
        alloc = AddressAllocator(Network("10.0.0.0/24"))
        alloc.claim(IPAddress("10.0.0.9"))
        with pytest.raises(AddressError):
            alloc.claim(IPAddress("10.0.0.9"))

    def test_release_and_recycle_fifo(self):
        alloc = AddressAllocator(Network("10.0.0.0/24"), reserve=0)
        first = alloc.allocate()
        second = alloc.allocate()
        alloc.release(first)
        alloc.release(second)
        assert alloc.allocate() == first
        assert alloc.allocate() == second

    def test_release_unallocated_rejected(self):
        alloc = AddressAllocator(Network("10.0.0.0/24"))
        with pytest.raises(AddressError):
            alloc.release(IPAddress("10.0.0.5"))

    def test_exhaustion(self):
        alloc = AddressAllocator(Network("192.168.0.0/30"), reserve=0)
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(AddressError):
            alloc.allocate()
