"""Tests for the flyweight population layer (repro.netsim.population).

The layer's contract has three legs, each pinned here:

* **small** — struct-of-arrays pool state stays a few tens of bytes
  per host, far under the 200-byte acceptance bar;
* **alive** — one timer-wheel event per pool keeps every registration
  fresh, administratively, without touching the trace;
* **invisible** — promoting a pooled host to a full node, or building
  the whole world pooled instead of materialized, never changes a
  single traced byte.
"""

import pytest

from repro.analysis.scenarios import build_scenario
from repro.bench.golden import trace_digest
from repro.netsim.population import (
    DEFAULT_POOL_LIFETIME,
    REFRESH_FRACTION,
    validate_population,
)


def pooled_scenario(hosts=4000, domains=2, **kwargs):
    population = {"hosts": hosts, "domains": domains}
    population.update(kwargs.pop("population", {}))
    return build_scenario(population=population, **kwargs)


class TestHostPool:
    def test_flyweight_state_is_tiny(self):
        scenario = pooled_scenario(hosts=10_000)
        pop = scenario.population
        per_host = pop.state_bytes() / pop.pool.size
        assert per_host < 200  # the acceptance bar
        assert per_host < 40   # what the SoA layout actually costs

    def test_pool_hosts_are_not_nodes(self):
        scenario = pooled_scenario(hosts=5000)
        # The world has its usual dozen actors, not 5000 nodes.
        assert len(scenario.sim.nodes) < 40
        assert scenario.population.pool.live == 5000

    def test_every_host_is_registered(self):
        scenario = pooled_scenario(hosts=3000, domains=3)
        pop = scenario.population
        assert len(pop.ha.bindings) == 3000
        assert pop.block.live == 3000
        # Spot-check bindings at the segment seams.
        from repro.netsim import IPAddress

        for index in (0, 999, 1000, 2999):
            home = IPAddress(pop.pool.home[index])
            binding = pop.ha.bindings.lookup(home, now=scenario.sim.now)
            assert binding is not None
            assert binding.care_of_address.value == pop.pool.care_of[index]

    def test_hosts_spread_across_domains(self):
        scenario = pooled_scenario(hosts=3000, domains=3)
        pool = scenario.population.pool
        assert pool.domain_names == ["mega-v0", "mega-v1", "mega-v2"]
        assert [s["stop"] - s["start"] for s in pool.segments] == [
            1000, 1000, 1000]
        # Care-of addresses live in their segment's domain prefix.
        for segment in pool.segments:
            domain = scenario.net.domains[segment["domain"]]
            from repro.netsim import IPAddress

            for index in (segment["start"], segment["stop"] - 1):
                assert domain.prefix.contains(IPAddress(pool.care_of[index]))

    def test_name_and_address_mapping(self):
        pool = pooled_scenario(hosts=100, domains=1).population.pool
        from repro.netsim import IPAddress

        assert pool.host_name(7) == "mega-h7"
        assert pool.index_of_name("mega-h7") == 7
        assert pool.index_of_name("mega-h100") is None
        assert pool.index_of_name("mh") is None
        assert pool.index_of_name("mega-hx") is None
        assert pool.index_of_address(IPAddress(pool.home[42])) == 42


class TestTimerWheel:
    def test_one_rotation_refreshes_every_host(self):
        scenario = pooled_scenario(hosts=2000)
        pop = scenario.population
        before = list(pop.pool.registered_at[:5])
        scenario.sim.run(until=scenario.sim.now + pop.wheel.period + 1.0)
        assert pop.pool.refreshes >= 2000
        assert list(pop.pool.registered_at[:5]) != before

    def test_period_matches_the_client_refresh_discipline(self):
        pop = pooled_scenario(hosts=100).population
        assert pop.wheel.period == pytest.approx(
            REFRESH_FRACTION * DEFAULT_POOL_LIFETIME)

    def test_bindings_never_expire_in_steady_state(self):
        scenario = pooled_scenario(
            hosts=500, domains=1, population={"lifetime": 40.0})
        pop = scenario.population
        # Many lifetimes later, every binding is still alive and the
        # table never recorded an expiry.
        scenario.sim.run(until=scenario.sim.now + 10 * 40.0)
        assert pop.block.live == 500
        assert pop.ha.bindings.expirations == 0
        assert pop.ha.bindings.prune(scenario.sim.now) == 0

    def test_expiry_floor_advances_with_rotations(self):
        scenario = pooled_scenario(hosts=500)
        pop = scenario.population
        floor0 = pop.block.expiry_floor
        scenario.sim.run(until=scenario.sim.now + 2 * pop.wheel.period + 1.0)
        assert pop.block.expiry_floor > floor0

    def test_wheel_is_one_event_not_n(self):
        scenario = pooled_scenario(hosts=50_000)
        # Live engine events stay bounded by the world's actors, not
        # the pool size (one wheel event + mh refresh timers etc).
        assert scenario.sim.events.pending < 100

    def test_wheel_writes_no_trace(self):
        scenario = pooled_scenario(hosts=1000)
        scenario.sim.run(
            until=scenario.sim.now + scenario.population.wheel.period + 1.0)
        assert scenario.population.wheel.ticks > 0
        # The base world's own actors keep tracing; the pool never does.
        assert not any(
            entry.node.startswith("mega-")
            for entry in scenario.sim.trace.entries)


class TestPromotion:
    def test_promoted_host_has_the_pool_state(self):
        scenario = pooled_scenario()
        pop = scenario.population
        host = pop.promote(123)
        assert host.name == "mega-h123"
        assert host.home_address.value == pop.pool.home[123]
        assert host.care_of.value == pop.pool.care_of[123]
        assert host.registered and not host.at_home
        assert host.current_domain == pop.pool.domain_names[
            pop.pool.domain_index[123]]
        assert host.name in scenario.sim.nodes

    def test_promotion_is_idempotent(self):
        pop = pooled_scenario().population
        host = pop.promote(5)
        assert pop.promote(5) is host
        assert pop.promote_name("mega-h5") is host
        assert pop.stats()["promotions"] == 1

    def test_promote_by_name_and_address(self):
        from repro.netsim import IPAddress

        pop = pooled_scenario().population
        host = pop.promote_name("mega-h9")
        assert host is pop.promote_address(IPAddress(pop.pool.home[9]))
        assert pop.promote_name("not-a-pool-host") is None

    def test_promote_out_of_range_raises(self):
        pop = pooled_scenario(hosts=10, domains=1).population
        with pytest.raises(IndexError):
            pop.promote(10)

    def test_promoted_host_never_reregisters(self):
        scenario = pooled_scenario()
        host = scenario.population.promote(0)
        sent_before = host.packets_sent
        scenario.sim.run(until=scenario.sim.now + 2 * DEFAULT_POOL_LIFETIME)
        # The wheel renews administratively; the host itself stays mute.
        assert host.packets_sent == sent_before
        assert host.registered

    def test_packet_for_pooled_address_promotes_at_the_home_agent(self):
        from repro.netsim import IPAddress

        scenario = pooled_scenario()
        pop = scenario.population
        target = IPAddress(pop.pool.home[77])
        assert "mega-h77" not in scenario.sim.nodes
        replies = []
        scenario.ch.ping(target, replies.append)
        scenario.sim.run(until=scenario.sim.now + 10.0)
        assert "mega-h77" in scenario.sim.nodes
        assert pop.pool.promoted[77]
        assert len(replies) == 1

    def test_promoted_conversation_reaches_the_host(self):
        scenario = pooled_scenario()
        host = scenario.population.promote(3)
        received = []
        sock = host.stack.udp_socket(7000)
        sock.on_receive(lambda d, s, ip, p: received.append(d))
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.sendto("hello", 50, host.home_address, 7000)
        scenario.sim.run(until=scenario.sim.now + 5.0)
        assert received == ["hello"]


class TestDigestNeutrality:
    DRIVE = 60.0

    def _converse(self, scenario, name="mega-h123"):
        host = scenario.population.promote_name(name)
        received = []
        sock = host.stack.udp_socket(7000)
        sock.on_receive(lambda d, s, ip, p: received.append(d))
        ch_sock = scenario.ch.stack.udp_socket()
        for k in range(5):
            scenario.sim.events.schedule(
                0.5 + 0.25 * k,
                lambda k=k: ch_sock.sendto(
                    ("m", k), 100, host.home_address, 7000),
                label=f"mega-msg-{k}")
        scenario.sim.run(until=scenario.sim.now + self.DRIVE)
        assert len(received) == 5
        return trace_digest(scenario.sim.trace)

    def test_pooled_world_matches_materialized_world(self):
        pooled = self._converse(pooled_scenario(hosts=3000))
        materialized = self._converse(
            pooled_scenario(hosts=3000, population={"mode": "materialized"}))
        assert pooled == materialized

    def test_population_does_not_disturb_the_base_world(self):
        # The same stage with and without a pool riding it produces the
        # identical trace: silent registrations and wheel ticks never
        # reach the wire.
        base = build_scenario()
        base.sim.run(until=base.sim.now + self.DRIVE)
        pooled = pooled_scenario(hosts=2000)
        pooled.sim.run(until=pooled.sim.now + self.DRIVE)
        assert trace_digest(base.sim.trace) == trace_digest(pooled.sim.trace)


class TestValidation:
    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            validate_population({"hosts": 10, "color": "red"})

    @pytest.mark.parametrize("hosts", [None, 0, -5, True, 2.5, "many"])
    def test_bad_hosts_rejected(self, hosts):
        with pytest.raises(ValueError):
            validate_population({"hosts": hosts})

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            validate_population({"hosts": 10, "mode": "imaginary"})

    def test_bad_domains_lifetime_buckets_rejected(self):
        for bad in ({"domains": 0}, {"lifetime": 0}, {"wheel_buckets": 0}):
            with pytest.raises(ValueError):
                validate_population({"hosts": 10, **bad})

    def test_spec_carries_the_knob(self):
        from repro.experiment import ExperimentSpec, SpecError

        spec = ExperimentSpec(population={"hosts": 50, "domains": 1})
        assert spec.scenario_kwargs()["population"] == {
            "hosts": 50, "domains": 1}
        with pytest.raises(SpecError):
            ExperimentSpec(population={"hosts": -1})
        with pytest.raises(SpecError):
            ExperimentSpec(population={"hosts": 10, "bogus": 1})


class TestRunnerIntegration:
    def test_traffic_target_promotes_a_pooled_host(self):
        from repro.experiment import ExperimentSpec, Runner, TrafficProgram

        spec = ExperimentSpec(
            duration=10.0,
            population={"hosts": 200, "domains": 1},
            traffic=TrafficProgram(
                target="mega-h42",
                uniform={"datagrams": 4, "spacing": 0.5, "size": 100,
                         "direction": "both"},
            ),
        )
        runner = Runner()
        result = runner.run(spec)
        scenario = runner.scenario
        assert "mega-h42" in scenario.sim.nodes
        assert scenario.population.stats()["promotions"] == 1
        assert result.deliverability["delivered"] > 0

    def test_unknown_traffic_target_raises(self):
        from repro.experiment import ExperimentSpec, Runner, TrafficProgram

        spec = ExperimentSpec(
            duration=5.0,
            population={"hosts": 10, "domains": 1},
            traffic=TrafficProgram(
                target="mega-h99",  # pool only has 10 hosts
                uniform={"datagrams": 1, "spacing": 0.5, "size": 100,
                         "direction": "both"},
            ),
        )
        with pytest.raises(ValueError, match="names no node"):
            Runner().run(spec)

    def test_fault_targeting_a_pooled_host_promotes_it(self):
        from repro.netsim.faults import FaultInjector, FaultPlan

        scenario = pooled_scenario(hosts=100, domains=1)
        plan = FaultPlan().add(1.0, "node-down", "mega-h7")
        plan.add(3.0, "node-up", "mega-h7")
        injector = FaultInjector(scenario.sim, net=scenario.net)
        injector.inject(plan)
        assert "mega-h7" in scenario.sim.nodes  # eager validation promoted
        scenario.sim.run(until=scenario.sim.now + 5.0)
        assert injector.applied


class TestMegaDriver:
    def test_run_mega_verify_small(self):
        from repro.analysis.mega import run_mega

        report = run_mega(hosts=1500, domains=1, duration=10.0,
                          datagrams=6, verify=True)
        assert report.verified is True
        assert report.digest == report.verify_digest
        assert report.bytes_per_host < 200
        assert report.population["promotions"] >= 1
        rendered = report.render()
        assert "IDENTICAL" in rendered
        payload = report.to_dict()
        assert payload["verified"] is True
        assert payload["hosts"] == 1500
