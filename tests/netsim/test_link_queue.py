"""Tests for the busy-line transmission model (PR 8).

A :class:`~repro.netsim.link.Segment` with ``queue_capacity`` set owns
a real line: one frame serializes at a time, excess frames wait in a
bounded FIFO, and overflow is a traced ``queue-overflow`` loss.  With
the default ``queue_capacity=None`` the historical infinite-capacity
scheduling is preserved bit-for-bit — the golden digest pins that.
"""

import itertools

import pytest

from repro.netsim import IPAddress, Simulator
from repro.netsim import link as link_mod
from repro.netsim.link import (
    BROADCAST_LINK_ADDR,
    Frame,
    fresh_link_address,
)
from repro.netsim.node import Node
from repro.netsim.packet import IPProto, Packet


def make_packet(tag=0, size=100):
    return Packet(src=IPAddress("10.1.0.1"), dst=IPAddress("10.2.0.2"),
                  proto=IPProto.UDP, payload=tag, payload_size=size)


class Wire:
    """A two-interface segment with the receiver's frames recorded."""

    def __init__(self, seed=42, latency=0.001, bandwidth=8_000,
                 queue_capacity=None, trace_entries=True):
        self.sim = Simulator(seed=seed, trace_entries=trace_entries,
                             fast_forward=False)
        self.segment = self.sim.segment(
            "wire", latency=latency, bandwidth=bandwidth,
            queue_capacity=queue_capacity)
        self.a = Node("wa", self.sim)
        self.b = Node("wb", self.sim)
        self.ia = self.a.add_interface("eth0", self.segment)
        self.ib = self.b.add_interface("eth0", self.segment)
        self.received = []
        self.b.frame_received = (
            lambda iface, frame: self.received.append(
                (self.sim.now, frame.payload.payload)))

    def offer(self, tag, size=100):
        frame = Frame(src=self.ia.link_address, dst=self.ib.link_address,
                      payload=make_packet(tag, size))
        self.segment.transmit(self.ia, frame)
        return frame.wire_size


class TestBusyLine:
    def test_fifo_order_and_serialized_spacing(self):
        w = Wire(queue_capacity=8)
        wire_size = 0
        for tag in range(3):
            wire_size = w.offer(tag)
        ser = wire_size * 8 / w.segment.bandwidth
        assert w.segment.queue_depth == 2     # one on the line, two behind
        w.sim.run(until=10)
        assert [tag for _t, tag in w.received] == [0, 1, 2]
        times = [t for t, _tag in w.received]
        # Frame k starts serializing when the line frees at k*ser and
        # lands at latency + (k+1)*ser — serialization is paid in
        # sequence, not in parallel.
        for k, t in enumerate(times):
            assert t == pytest.approx(w.segment.latency + (k + 1) * ser)
        assert w.segment.queue_depth == 0
        assert w.segment.frames_carried == 3
        assert w.segment.busy_seconds == pytest.approx(3 * ser)

    def test_overflow_is_traced_and_counted(self):
        w = Wire(queue_capacity=2)
        for tag in range(5):
            w.offer(tag)
        # One serializing + two queued; frames 3 and 4 overflow.
        assert w.segment.queue_dropped == 2
        assert w.segment.frames_lost == 2
        w.sim.run(until=10)
        assert [tag for _t, tag in w.received] == [0, 1, 2]
        assert w.segment.frames_carried == 3
        trace = w.sim.trace
        assert trace.losses_by_reason["queue-overflow"] == 2
        lost = [e for e in trace.entries if e.action == "lost"]
        assert len(lost) == 2
        assert all(e.detail == "queue-overflow" for e in lost)
        assert w.sim.metrics.value("link.queue_dropped", link="wire") == 2

    def test_zero_capacity_means_no_buffer(self):
        w = Wire(queue_capacity=0)
        w.offer(0)
        w.offer(1)
        assert w.segment.queue_dropped == 1
        w.sim.run(until=10)
        assert [tag for _t, tag in w.received] == [0]

    def test_line_frees_for_later_traffic(self):
        w = Wire(queue_capacity=1)
        w.offer(0)
        w.offer(1)
        w.sim.run(until=10)
        # Line idle again: a fresh offer serializes immediately.
        w.offer(2)
        assert w.segment.queue_depth == 0
        w.sim.run(until=20)
        assert [tag for _t, tag in w.received] == [0, 1, 2]
        assert w.segment.queue_dropped == 0

    def test_lost_frames_never_counted_as_carried(self):
        w = Wire(queue_capacity=4)
        w.segment.loss_rate = 1.0
        w.offer(0)
        assert w.segment.frames_carried == 0
        assert w.segment.bytes_carried == 0
        assert w.segment.busy_bits == 0
        assert w.segment.frames_lost == 1
        assert w.sim.trace.losses_by_reason["link-loss"] == 1

    def test_segment_down_flushes_queue_without_rng(self):
        w = Wire(queue_capacity=4)
        for tag in range(3):
            w.offer(tag)
        assert w.segment.queue_depth == 2
        w.segment.up = False
        state = w.sim.rng.getstate()
        w.sim.run(until=10)
        # The frame already on the line delivers; the queued two are
        # flushed as segment-down losses, no randomness consumed.
        assert [tag for _t, tag in w.received] == [0]
        assert w.segment.queue_depth == 0
        assert w.sim.trace.losses_by_reason["segment-down"] == 2
        assert w.sim.rng.getstate() == state

    def test_set_queue_capacity_shrink_tail_drops(self):
        w = Wire(queue_capacity=4)
        for tag in range(4):
            w.offer(tag)
        assert w.segment.queue_depth == 3
        dropped = w.segment.set_queue_capacity(1)
        assert dropped == 2
        assert w.segment.queue_dropped == 2
        # Tail drop: the *newest* queued frames go; 0 (on the line) and
        # 1 (head of queue) survive.
        w.sim.run(until=10)
        assert [tag for _t, tag in w.received] == [0, 1]
        assert w.sim.trace.losses_by_reason["queue-overflow"] == 2

    def test_set_queue_capacity_validates(self):
        w = Wire(queue_capacity=2)
        with pytest.raises(ValueError):
            w.segment.set_queue_capacity(-1)
        with pytest.raises(ValueError):
            Simulator(seed=1).segment("bad", queue_capacity=-3)

    def test_queue_depth_gauge_reads_live(self):
        w = Wire(queue_capacity=8)
        for tag in range(3):
            w.offer(tag)
        assert w.sim.metrics.value("link.queue_depth", link="wire") == 2
        w.sim.run(until=10)
        assert w.sim.metrics.value("link.queue_depth", link="wire") == 0


class TestLegacyModelPreserved:
    def test_default_links_serialize_in_parallel(self):
        # The historical artifact, pinned on purpose: with
        # queue_capacity=None simultaneous frames do not contend.
        w = Wire(queue_capacity=None)
        wire_size = 0
        for tag in range(3):
            wire_size = w.offer(tag)
        ser = wire_size * 8 / w.segment.bandwidth
        w.sim.run(until=10)
        times = [t for t, _tag in w.received]
        assert times == pytest.approx(
            [w.segment.latency + ser] * 3)
        # busy_bits still accumulates (it is the accounting twin of
        # bytes_carried), making the infinite-capacity artifact visible:
        # 3 frames' serialization "fits" in one frame's wall time.
        assert w.segment.busy_bits == 3 * wire_size * 8

    def test_uncontended_queueing_is_trace_identical(self):
        # Frames spaced wider than their serialization time never meet
        # the busy line, so the queueing model computes the *identical*
        # float delay chain (latency + serialization) as the legacy
        # model: byte-identical traces.
        from repro.bench.golden import trace_digest

        runs = {}
        for capacity in (None, 64):
            w = Wire(queue_capacity=capacity)
            ser = (make_packet().wire_size + 14) * 8 / w.segment.bandwidth
            for tag in range(5):
                w.sim.events.schedule(
                    tag * (ser * 2), lambda w=w, t=tag: w.offer(t))
            w.sim.run(until=10)
            runs[capacity] = (trace_digest(w.sim.trace), w.received)
        assert runs[64] == runs[None]

    def test_canonical_run_with_queueing_loses_nothing(self):
        # The canonical workload is *almost* uncontended: one ARP frame
        # overlaps a registration reply, so the digest legitimately
        # shifts by that frame's serialization — but nothing queues
        # deep enough to overflow, so deliveries are unchanged.
        from repro.experiment import Runner, canonical_traffic_spec

        default = Runner().run(canonical_traffic_spec())
        queued = Runner().run(
            canonical_traffic_spec().replace(queue_capacity=64))
        assert queued.trace_entries == default.trace_entries
        assert queued.deliverability["delivered"] == \
            default.deliverability["delivered"]
        assert queued.deliverability["losses_by_reason"] == {}


class TestFreshLinkAddress:
    def test_never_mints_the_broadcast_address(self):
        saved = link_mod._link_addr_counter
        try:
            link_mod._link_addr_counter = itertools.count(0xFFFE)
            minted = [fresh_link_address() for _ in range(3)]
        finally:
            link_mod._link_addr_counter = saved
        assert BROADCAST_LINK_ADDR not in minted
        assert [a.value for a in minted] == [0xFFFE, 0x10000, 0x10001]

    def test_interface_65535_does_not_become_a_sink(self, sim):
        saved = link_mod._link_addr_counter
        try:
            link_mod._link_addr_counter = itertools.count(0xFFFF)
            segment = sim.segment("lan-ffff")
            a = Node("na", sim)
            b = Node("nb", sim)
            ia = a.add_interface("eth0", segment)
            ib = b.add_interface("eth0", segment)
        finally:
            link_mod._link_addr_counter = saved
        assert ia.link_address != BROADCAST_LINK_ADDR
        assert ib.link_address != BROADCAST_LINK_ADDR
        got = []
        b.frame_received = lambda iface, frame: got.append(frame)
        # A unicast frame to ia must not also land on ib.
        frame = Frame(src=ib.link_address, dst=ia.link_address,
                      payload=make_packet())
        segment.transmit(ib, frame)
        sim.run(until=1)
        assert got == []


class TestInterfaceDropCounter:
    def test_interface_down_losses_are_counted(self):
        w = Wire()
        w.ia.up = False
        frame = Frame(src=w.ia.link_address, dst=w.ib.link_address,
                      payload=make_packet())
        w.ia.transmit(frame)
        assert w.ia.frames_dropped == 1
        assert w.sim.metrics.value(
            "interface.frames_dropped", node="wa", interface="eth0") == 1
        assert w.sim.trace.losses_by_reason["interface-down"] == 1
        # The healthy peer's counter stays untouched.
        assert w.sim.metrics.value(
            "interface.frames_dropped", node="wb", interface="eth0") == 0
