"""Smoke tests: every example script runs cleanly and tells its story.

Run as subprocesses so the examples are exercised exactly the way a
user runs them (fresh interpreter, no pytest fixtures in scope).
"""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=180,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "registered with home agent: True" in out
        assert "correspondent received 'pong'" in out
        assert "legend" in out            # the grid was printed

    def test_roaming_telnet(self):
        out = run_example("roaming_telnet.py")
        assert "survived: True   echoes: 22/22" in out
        assert "survived: False" in out
        assert "retransmission-limit" in out

    def test_web_browsing_heuristics(self):
        out = run_example("web_browsing_heuristics.py")
        assert "survived the move:   True" in out
        assert "completed" in out

    def test_smart_correspondent(self):
        out = run_example("smart_correspondent.py")
        assert "home agent tunneled 1, correspondent sent 4 In-DE" in out
        assert "home agent tunneled 0, correspondent sent 5 In-DE" in out

    def test_probe_strategies(self):
        out = run_example("probe_strategies.py")
        assert "FILTERING" in out and "PERMISSIVE" in out
        assert "settled at" in out

    def test_grid_tour(self):
        out = run_example("grid_tour.py")
        assert "16/16 cells agree with Figure 10." in out
        assert "MISMATCH" not in out

    def test_firewall_home_agent(self):
        out = run_example("firewall_home_agent.py")
        assert "registered through the firewall: True" in out
        assert "laptop received: ('file-contents', 'quarterly-report.doc')" in out
        assert "attacker received: nothing" in out
