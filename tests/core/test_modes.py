"""Tests for the eight delivery modes' address tables (Figures 6-9)."""

import pytest

from repro.core.modes import (
    AddressPlan,
    InMode,
    ModeError,
    OutMode,
    build_incoming_direct,
    build_outgoing,
    classify_incoming,
    classify_outgoing,
)
from repro.netsim import EncapScheme, IPAddress
from repro.netsim.packet import IPProto

PLAN = AddressPlan(
    home=IPAddress("10.1.0.10"),
    care_of=IPAddress("10.2.0.2"),
    home_agent=IPAddress("10.1.0.1"),
    correspondent=IPAddress("10.3.0.2"),
)


class TestOutgoingAddressTables:
    """The S/D/s/d tables of §4, verbatim."""

    def test_out_ie(self):
        packet = build_outgoing(OutMode.OUT_IE, PLAN, payload_size=100)
        assert packet.src == PLAN.care_of            # s = care-of
        assert packet.dst == PLAN.home_agent         # d = home agent
        inner = packet.innermost
        assert inner.src == PLAN.home                # S = home
        assert inner.dst == PLAN.correspondent       # D = CH

    def test_out_de(self):
        packet = build_outgoing(OutMode.OUT_DE, PLAN, payload_size=100)
        assert packet.src == PLAN.care_of
        assert packet.dst == PLAN.correspondent      # d = CH
        inner = packet.innermost
        assert inner.src == PLAN.home
        assert inner.dst == PLAN.correspondent

    def test_out_dh(self):
        packet = build_outgoing(OutMode.OUT_DH, PLAN, payload_size=100)
        assert not packet.is_encapsulated
        assert packet.src == PLAN.home               # S = home
        assert packet.dst == PLAN.correspondent

    def test_out_dt(self):
        packet = build_outgoing(OutMode.OUT_DT, PLAN, payload_size=100)
        assert not packet.is_encapsulated
        assert packet.src == PLAN.care_of            # S = care-of
        assert packet.dst == PLAN.correspondent

    @pytest.mark.parametrize("mode", list(OutMode))
    def test_classify_inverts_build(self, mode):
        packet = build_outgoing(mode, PLAN, payload_size=64)
        assert classify_outgoing(packet, PLAN) is mode

    @pytest.mark.parametrize("scheme", list(EncapScheme))
    def test_encapsulated_modes_accept_any_scheme(self, scheme):
        packet = build_outgoing(OutMode.OUT_IE, PLAN, payload_size=64, scheme=scheme)
        assert classify_outgoing(packet, PLAN) is OutMode.OUT_IE

    def test_proto_propagates_to_inner(self):
        packet = build_outgoing(
            OutMode.OUT_IE, PLAN, payload_size=64, proto=IPProto.TCP
        )
        assert packet.innermost.proto is IPProto.TCP


class TestIncomingAddressTables:
    """The S/D/s/d tables of §5, verbatim."""

    def test_in_ie(self):
        packet = build_incoming_direct(InMode.IN_IE, PLAN, payload_size=100)
        assert packet.src == PLAN.home_agent         # s = HA
        assert packet.dst == PLAN.care_of            # d = care-of
        inner = packet.innermost
        assert inner.src == PLAN.correspondent       # S = CH
        assert inner.dst == PLAN.home                # D = home

    def test_in_de(self):
        packet = build_incoming_direct(InMode.IN_DE, PLAN, payload_size=100)
        assert packet.src == PLAN.correspondent      # s = CH
        assert packet.dst == PLAN.care_of
        inner = packet.innermost
        assert inner.src == PLAN.correspondent
        assert inner.dst == PLAN.home

    def test_in_dh(self):
        packet = build_incoming_direct(InMode.IN_DH, PLAN, payload_size=100)
        assert not packet.is_encapsulated
        assert packet.src == PLAN.correspondent
        assert packet.dst == PLAN.home               # D = home, one hop

    def test_in_dt(self):
        packet = build_incoming_direct(InMode.IN_DT, PLAN, payload_size=100)
        assert not packet.is_encapsulated
        assert packet.src == PLAN.correspondent
        assert packet.dst == PLAN.care_of

    @pytest.mark.parametrize("mode", list(InMode))
    def test_classify_inverts_build(self, mode):
        packet = build_incoming_direct(mode, PLAN, payload_size=64)
        assert classify_incoming(packet, PLAN) is mode


class TestClassificationErrors:
    def test_outgoing_to_wrong_destination(self):
        packet = build_outgoing(OutMode.OUT_DH, PLAN, payload_size=10)
        packet.dst = IPAddress("9.9.9.9")
        with pytest.raises(ModeError):
            classify_outgoing(packet, PLAN)

    def test_outgoing_unknown_source(self):
        packet = build_outgoing(OutMode.OUT_DH, PLAN, payload_size=10)
        packet.src = IPAddress("9.9.9.9")
        with pytest.raises(ModeError):
            classify_outgoing(packet, PLAN)

    def test_outgoing_encapsulated_bad_outer_dst(self):
        packet = build_outgoing(OutMode.OUT_IE, PLAN, payload_size=10)
        packet.dst = IPAddress("9.9.9.9")
        with pytest.raises(ModeError):
            classify_outgoing(packet, PLAN)

    def test_incoming_encapsulated_bad_outer_src(self):
        packet = build_incoming_direct(InMode.IN_IE, PLAN, payload_size=10)
        packet.src = IPAddress("9.9.9.9")
        with pytest.raises(ModeError):
            classify_incoming(packet, PLAN)

    def test_incoming_unknown_destination(self):
        packet = build_incoming_direct(InMode.IN_DT, PLAN, payload_size=10)
        packet.dst = IPAddress("9.9.9.9")
        with pytest.raises(ModeError):
            classify_incoming(packet, PLAN)


class TestModeAttributes:
    def test_encapsulated_flags(self):
        assert OutMode.OUT_IE.encapsulated and OutMode.OUT_DE.encapsulated
        assert not OutMode.OUT_DH.encapsulated and not OutMode.OUT_DT.encapsulated
        assert InMode.IN_IE.encapsulated and InMode.IN_DE.encapsulated
        assert not InMode.IN_DH.encapsulated and not InMode.IN_DT.encapsulated

    def test_indirect_flags(self):
        assert OutMode.OUT_IE.indirect
        assert InMode.IN_IE.indirect
        assert not OutMode.OUT_DE.indirect
        assert not InMode.IN_DE.indirect

    def test_home_address_usage(self):
        assert not OutMode.OUT_DT.uses_home_address
        assert not InMode.IN_DT.uses_home_address
        for mode in (OutMode.OUT_IE, OutMode.OUT_DE, OutMode.OUT_DH):
            assert mode.uses_home_address

    def test_conservativeness_ordering(self):
        """§7.1.2: the probe ladder Out-DH < Out-DE < Out-IE."""
        assert (
            OutMode.OUT_DH.conservativeness
            < OutMode.OUT_DE.conservativeness
            < OutMode.OUT_IE.conservativeness
        )

    def test_mode_values_match_paper_names(self):
        assert OutMode.OUT_IE.value == "Out-IE"
        assert InMode.IN_DT.value == "In-DT"
