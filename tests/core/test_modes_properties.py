"""Property tests: the mode address tables over random address plans.

Build/classify must be exact inverses for *any* cast of four distinct
addresses, and every mode's address invariants must hold — this is the
grid's foundation, so it gets the heaviest randomization.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.modes import (
    AddressPlan,
    InMode,
    OutMode,
    build_incoming_direct,
    build_outgoing,
    classify_incoming,
    classify_outgoing,
)
from repro.netsim import IPAddress
from repro.netsim.encap import EncapScheme

addresses = st.integers(min_value=1, max_value=0xDFFFFFFE)  # unicast-ish


@st.composite
def plans(draw):
    values = draw(st.lists(addresses, min_size=4, max_size=4, unique=True))
    home, care_of, home_agent, correspondent = (IPAddress(v) for v in values)
    plan = AddressPlan(home=home, care_of=care_of, home_agent=home_agent,
                       correspondent=correspondent)
    # Multicast/broadcast addresses would change send semantics.
    assume(not any(a.is_multicast or a.is_broadcast
                   for a in (home, care_of, home_agent, correspondent)))
    return plan


class TestModeTableProperties:
    @settings(max_examples=150)
    @given(plan=plans(), size=st.integers(min_value=0, max_value=2000))
    def test_outgoing_roundtrip_all_modes(self, plan, size):
        for mode in OutMode:
            packet = build_outgoing(mode, plan, payload_size=size)
            assert classify_outgoing(packet, plan) is mode

    @settings(max_examples=150)
    @given(plan=plans(), size=st.integers(min_value=0, max_value=2000))
    def test_incoming_roundtrip_all_modes(self, plan, size):
        for mode in InMode:
            packet = build_incoming_direct(mode, plan, payload_size=size)
            assert classify_incoming(packet, plan) is mode

    @settings(max_examples=100)
    @given(plan=plans())
    def test_home_address_visibility_invariant(self, plan):
        """A mode 'uses the home address' iff the home address appears
        as the innermost source (outgoing) / destination (incoming)."""
        for mode in OutMode:
            packet = build_outgoing(mode, plan, payload_size=10)
            visible = packet.innermost.src == plan.home
            assert visible == mode.uses_home_address
        for mode in InMode:
            packet = build_incoming_direct(mode, plan, payload_size=10)
            visible = packet.innermost.dst == plan.home
            assert visible == mode.uses_home_address

    @settings(max_examples=100)
    @given(plan=plans())
    def test_encapsulated_modes_outer_addresses(self, plan):
        """Figures 7/9: the outer source of Out-* is always the COA;
        the outer destination of In-* is always the COA."""
        for mode in (OutMode.OUT_IE, OutMode.OUT_DE):
            packet = build_outgoing(mode, plan, payload_size=10)
            assert packet.src == plan.care_of
        for mode in (InMode.IN_IE, InMode.IN_DE):
            packet = build_incoming_direct(mode, plan, payload_size=10)
            assert packet.dst == plan.care_of

    @settings(max_examples=60)
    @given(plan=plans(),
           scheme=st.sampled_from(list(EncapScheme)),
           size=st.integers(min_value=0, max_value=2000))
    def test_roundtrip_under_every_scheme(self, plan, scheme, size):
        for mode in (OutMode.OUT_IE, OutMode.OUT_DE):
            packet = build_outgoing(mode, plan, payload_size=size,
                                    scheme=scheme)
            assert classify_outgoing(packet, plan) is mode
        for mode in (InMode.IN_IE, InMode.IN_DE):
            packet = build_incoming_direct(mode, plan, payload_size=size,
                                           scheme=scheme)
            assert classify_incoming(packet, plan) is mode

    @settings(max_examples=100)
    @given(plan=plans(), size=st.integers(min_value=0, max_value=2000))
    def test_unencapsulated_sizes_equal_across_modes(self, plan, size):
        """§3.3's baseline: the four plain modes all cost the same."""
        sizes = {
            build_outgoing(OutMode.OUT_DH, plan, payload_size=size).wire_size,
            build_outgoing(OutMode.OUT_DT, plan, payload_size=size).wire_size,
            build_incoming_direct(InMode.IN_DH, plan,
                                  payload_size=size).wire_size,
            build_incoming_direct(InMode.IN_DT, plan,
                                  payload_size=size).wire_size,
        }
        assert len(sizes) == 1
