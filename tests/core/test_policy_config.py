"""Tests for the §7.1.2 policy configuration format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.policy import Disposition, MobilityPolicyTable
from repro.netsim import IPAddress

CONFIG = """
# corporate laptop policy
default     pessimistic
10.1.0.0/16 home-only      # everything at HQ stays private
10.3.0.0/16 optimistic     # the lab network never filters
192.0.2.0/24 no-mobile-ip  # public kiosks: plain IP only
"""


class TestParse:
    def test_full_config(self):
        table = MobilityPolicyTable.parse(CONFIG)
        assert table.default is Disposition.PESSIMISTIC
        assert table.lookup(IPAddress("10.1.0.50")) is Disposition.HOME_ONLY
        assert table.lookup(IPAddress("10.3.9.9")) is Disposition.OPTIMISTIC
        assert table.lookup(IPAddress("192.0.2.7")) is Disposition.NO_MOBILE_IP
        assert table.lookup(IPAddress("8.8.8.8")) is Disposition.PESSIMISTIC

    def test_blank_and_comment_lines_ignored(self):
        table = MobilityPolicyTable.parse("\n\n# only comments\n\n")
        assert len(table) == 0

    def test_case_insensitive_dispositions(self):
        table = MobilityPolicyTable.parse("10.0.0.0/8 OPTIMISTIC")
        assert table.lookup(IPAddress("10.1.1.1")) is Disposition.OPTIMISTIC

    def test_bad_arity_reports_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            MobilityPolicyTable.parse("default pessimistic\n10.0.0.0/8\n")

    def test_unknown_disposition_lists_valid_ones(self):
        with pytest.raises(ValueError, match="valid:"):
            MobilityPolicyTable.parse("10.0.0.0/8 yolo")

    def test_bad_prefix_reports_line(self):
        with pytest.raises(ValueError, match="bad prefix"):
            MobilityPolicyTable.parse("10.0.0.999/8 optimistic")

    def test_dump_parse_roundtrip(self):
        table = MobilityPolicyTable.parse(CONFIG)
        again = MobilityPolicyTable.parse(table.dump())
        assert again.default is table.default
        probes = ["10.1.0.1", "10.3.0.1", "192.0.2.1", "1.2.3.4"]
        for probe in probes:
            assert again.lookup(IPAddress(probe)) is table.lookup(
                IPAddress(probe))

    @given(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**32 - 1),
            st.integers(min_value=0, max_value=32),
            st.sampled_from(list(Disposition)),
        ),
        max_size=10,
    ))
    def test_dump_parse_roundtrip_property(self, entries):
        from repro.netsim import Network

        table = MobilityPolicyTable()
        for value, length, disposition in entries:
            mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
            try:
                table.add(Network(IPAddress(value & mask), length), disposition)
            except Exception:
                continue
        again = MobilityPolicyTable.parse(table.dump())
        for value, _length, _d in entries:
            probe = IPAddress(value)
            assert again.lookup(probe) is table.lookup(probe)

    def test_engine_accepts_parsed_table(self):
        """The parsed table drives real mode decisions end-to-end."""
        from repro.analysis.scenarios import build_scenario
        from repro.core import OutMode, ProbeStrategy
        from repro.mobileip import Awareness

        policy = MobilityPolicyTable.parse("10.3.0.0/16 optimistic")
        scenario = build_scenario(seed=981, strategy=ProbeStrategy.RULE_SEEDED,
                                  policy=policy, visited_filtering=False,
                                  ch_awareness=Awareness.CONVENTIONAL)
        assert scenario.mh.engine.out_mode_for(scenario.ch_ip) is OutMode.OUT_DH
