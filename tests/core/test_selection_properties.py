"""Property-based tests for the delivery-method cache state machine.

The §7.1.2 ladder must hold its invariants under *any* interleaving of
failure suspicions and progress signals — these are the properties a
deployment would rely on: the current mode is always a home-address
mode, a pinned record never moves, failed modes are never revisited by
upgrades, and the mode-change counter matches observed transitions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modes import OutMode
from repro.core.policy import Disposition, MobilityPolicyTable
from repro.core.selection import (
    LADDER_AGGRESSIVE_FIRST,
    DeliveryMethodCache,
    ProbeStrategy,
)
from repro.netsim import IPAddress

CH = IPAddress("10.3.0.2")

events = st.lists(
    st.sampled_from(["suspect", "progress", "packet"]),
    min_size=0, max_size=60,
)
strategies = st.sampled_from(list(ProbeStrategy))


def drive(cache: DeliveryMethodCache, sequence):
    """Apply an event sequence, recording every observed transition."""
    transitions = []
    previous = cache.record_for(CH).current
    for event in sequence:
        if event == "suspect":
            cache.on_suspect(CH)
        elif event == "progress":
            cache.on_progress(CH)
        else:
            cache.mode_for(CH)
        current = cache.record_for(CH).current
        if current is not previous:
            transitions.append((previous, current))
            previous = current
    return transitions


class TestCacheProperties:
    @settings(max_examples=200)
    @given(strategy=strategies, sequence=events)
    def test_current_mode_always_on_ladder(self, strategy, sequence):
        cache = DeliveryMethodCache(strategy, upgrade_after=2)
        drive(cache, sequence)
        assert cache.record_for(CH).current in LADDER_AGGRESSIVE_FIRST

    @settings(max_examples=200)
    @given(strategy=strategies, sequence=events)
    def test_mode_changes_counter_matches_transitions(self, strategy, sequence):
        cache = DeliveryMethodCache(strategy, upgrade_after=2)
        transitions = drive(cache, sequence)
        assert cache.record_for(CH).mode_changes == len(transitions)

    @settings(max_examples=200)
    @given(strategy=strategies, sequence=events)
    def test_upgrades_never_enter_failed_modes(self, strategy, sequence):
        cache = DeliveryMethodCache(strategy, upgrade_after=2)
        record = cache.record_for(CH)
        previous = record.current
        for event in sequence:
            if event == "suspect":
                cache.on_suspect(CH)
            elif event == "progress":
                failed_before = set(record.failed)
                cache.on_progress(CH)
                if record.current is not previous:
                    # An upgrade transition must land outside the
                    # failed set as it was when the upgrade happened.
                    assert record.current not in failed_before
            else:
                cache.mode_for(CH)
            previous = record.current

    @settings(max_examples=200)
    @given(sequence=events)
    def test_pinned_record_never_moves(self, sequence):
        policy = MobilityPolicyTable()
        policy.add("10.3.0.0/16", Disposition.HOME_ONLY)
        cache = DeliveryMethodCache(ProbeStrategy.RULE_SEEDED, policy=policy,
                                    upgrade_after=1)
        for event in sequence:
            if event == "progress":
                cache.on_progress(CH)
            elif event == "packet":
                cache.mode_for(CH)
            # (suspicions may demote even a pinned record in principle,
            # but HOME_ONLY already sits at the bottom of the ladder)
            else:
                cache.on_suspect(CH)
        assert cache.record_for(CH).current is OutMode.OUT_IE

    @settings(max_examples=100)
    @given(strategy=strategies, sequence=events)
    def test_all_failed_means_out_ie(self, strategy, sequence):
        """Once every aggressive mode has failed, the record must sit at
        Out-IE and stay there regardless of further progress."""
        cache = DeliveryMethodCache(strategy, upgrade_after=1)
        record = cache.record_for(CH)
        record.failed.update({OutMode.OUT_DH, OutMode.OUT_DE})
        record.current = OutMode.OUT_IE
        drive(cache, sequence)
        assert record.current is OutMode.OUT_IE

    @settings(max_examples=100)
    @given(strategy=strategies, sequence=events)
    def test_reset_all_restores_strategy_start(self, strategy, sequence):
        cache = DeliveryMethodCache(strategy, upgrade_after=2)
        drive(cache, sequence)
        cache.reset_all()
        fresh = cache.record_for(CH)
        expected = (OutMode.OUT_DH
                    if strategy is ProbeStrategy.AGGRESSIVE_FIRST
                    else OutMode.OUT_IE)
        assert fresh.current is expected
        assert fresh.failed == set()
        assert fresh.mode_changes == 0


class TestAllocatorProperties:
    """Regression properties for the address allocator (a claim()ed
    address must never be re-issued by allocate())."""

    @settings(max_examples=100)
    @given(claims=st.lists(st.integers(min_value=1, max_value=50),
                           unique=True, max_size=20),
           allocations=st.integers(min_value=0, max_value=25))
    def test_allocate_never_returns_claimed(self, claims, allocations):
        from repro.netsim import AddressAllocator, IPAddress, Network

        allocator = AddressAllocator(Network("10.0.0.0/24"), reserve=0)
        claimed = set()
        for octet in claims:
            claimed.add(allocator.claim(IPAddress(f"10.0.0.{octet}")))
        issued = set()
        for _ in range(allocations):
            address = allocator.allocate()
            assert address not in claimed
            assert address not in issued
            issued.add(address)
