"""Tests for the §7.1.1 heuristics and the §7.1.2 feedback detector."""

import pytest

from repro.core.feedback import RetransmissionDetector
from repro.core.heuristics import AddressChoice, BindIntent, PortHeuristics
from repro.netsim import IPAddress
from repro.netsim.packet import IPProto

HOME = IPAddress("10.1.0.10")
COA = IPAddress("10.2.0.2")
CH = IPAddress("10.3.0.2")


class TestBindIntent:
    def setup_method(self):
        self.intent = BindIntent(HOME)
        self.physical = {COA}

    def test_unbound_defers_to_heuristics(self):
        assert self.intent.interpret(None, self.physical) is None

    def test_bound_to_unspecified_defers(self):
        assert self.intent.interpret(IPAddress("0.0.0.0"), self.physical) is None

    def test_bound_to_home_defers(self):
        """§7.1.1: home binding = 'application is not mobile-aware'."""
        assert self.intent.interpret(HOME, self.physical) is None

    def test_bound_to_physical_forces_temporary(self):
        assert (
            self.intent.interpret(COA, self.physical) == AddressChoice.TEMPORARY
        )

    def test_bound_to_stale_care_of_still_temporary(self):
        stale = IPAddress("10.9.0.9")
        assert (
            self.intent.interpret(stale, self.physical) == AddressChoice.TEMPORARY
        )


class TestPortHeuristics:
    def setup_method(self):
        self.heuristics = PortHeuristics()

    def test_http_uses_temporary(self):
        """§7.1.1: 'connections to port 80 ... can safely use Out-DT'."""
        assert self.heuristics.choose(CH, 80, IPProto.TCP) == AddressChoice.TEMPORARY

    def test_dns_udp_uses_temporary(self):
        assert self.heuristics.choose(CH, 53, IPProto.UDP) == AddressChoice.TEMPORARY

    def test_telnet_uses_home(self):
        assert self.heuristics.choose(CH, 23, IPProto.TCP) == AddressChoice.HOME

    def test_port_80_udp_is_not_http(self):
        assert self.heuristics.choose(CH, 80, IPProto.UDP) == AddressChoice.HOME

    def test_multicast_bypasses_mobile_ip(self):
        """§6.4: join through the real physical interface."""
        group = IPAddress("224.2.2.2")
        assert self.heuristics.choose(group, 5004, IPProto.UDP) == AddressChoice.TEMPORARY

    def test_custom_rule_addition_and_removal(self):
        self.heuristics.add_rule(IPProto.TCP, 110)   # POP3, the §2 trend
        assert self.heuristics.choose(CH, 110, IPProto.TCP) == AddressChoice.TEMPORARY
        self.heuristics.remove_rule(IPProto.TCP, 110)
        assert self.heuristics.choose(CH, 110, IPProto.TCP) == AddressChoice.HOME

    def test_no_rules_for_other_protocols(self):
        with pytest.raises(ValueError):
            self.heuristics.add_rule(IPProto.ICMP, 1)


class TestRetransmissionDetector:
    def test_threshold_of_retransmissions_to_fires(self):
        fired = []
        detector = RetransmissionDetector(
            threshold=3, on_suspect=lambda ip, why: fired.append((str(ip), why))
        )
        for _ in range(3):
            detector.on_send(CH, retransmission=True)
        assert fired == [("10.3.0.2", "repeated-retransmissions-to")]

    def test_retransmissions_from_also_fire(self):
        """'if the IP layer sees repeated retransmissions *from* a
        particular address ... acknowledgements are not getting
        through'."""
        fired = []
        detector = RetransmissionDetector(
            threshold=2, on_suspect=lambda ip, why: fired.append(why)
        )
        detector.on_receive(CH, retransmission=True)
        detector.on_receive(CH, retransmission=True)
        assert fired == ["repeated-retransmissions-from"]

    def test_original_receive_resets_counters(self):
        fired = []
        detector = RetransmissionDetector(threshold=3,
                                          on_suspect=lambda ip, why: fired.append(why))
        detector.on_send(CH, retransmission=True)
        detector.on_send(CH, retransmission=True)
        detector.on_receive(CH, retransmission=False)  # forward progress
        detector.on_send(CH, retransmission=True)
        detector.on_send(CH, retransmission=True)
        assert fired == []

    def test_original_send_does_not_reset(self):
        fired = []
        detector = RetransmissionDetector(threshold=2,
                                          on_suspect=lambda ip, why: fired.append(why))
        detector.on_send(CH, retransmission=True)
        detector.on_send(CH, retransmission=False)
        detector.on_send(CH, retransmission=True)
        assert len(fired) == 1

    def test_counters_reset_after_firing(self):
        fired = []
        detector = RetransmissionDetector(threshold=2,
                                          on_suspect=lambda ip, why: fired.append(why))
        for _ in range(4):
            detector.on_send(CH, retransmission=True)
        assert len(fired) == 2

    def test_per_remote_isolation(self):
        fired = []
        other = IPAddress("10.4.0.1")
        detector = RetransmissionDetector(
            threshold=2, on_suspect=lambda ip, why: fired.append(str(ip))
        )
        detector.on_send(CH, retransmission=True)
        detector.on_send(other, retransmission=True)
        assert fired == []
        detector.on_send(CH, retransmission=True)
        assert fired == ["10.3.0.2"]

    def test_health_accounting(self):
        detector = RetransmissionDetector(threshold=10)
        detector.on_send(CH, retransmission=False)
        detector.on_send(CH, retransmission=True)
        detector.on_receive(CH, retransmission=False)
        health = detector.health(CH)
        assert health.originals_to == 1
        assert health.originals_from == 1
        assert health.retx_to == 0  # reset by the original receive

    def test_reset_forgets_remote(self):
        detector = RetransmissionDetector(threshold=2)
        detector.on_send(CH, retransmission=True)
        detector.reset(CH)
        assert detector.health(CH).retx_to == 0

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            RetransmissionDetector(threshold=0)
