"""Failed-mode aging and forgiveness in the delivery-method cache.

The original cache never removed entries from ``record.failed``, so one
transient failure excluded Out-DH/Out-DE for a correspondent forever.
These tests pin the two recovery paths: TTL expiry (wall-clock aging
via an injected clock) and forgiveness (a sustained success run clears
the slate), plus the detector-side reset on movement.
"""

from __future__ import annotations

from repro.core.feedback import RetransmissionDetector
from repro.core.modes import OutMode
from repro.core.policy import Disposition, MobilityPolicyTable
from repro.core.selection import DeliveryMethodCache, ProbeStrategy

DST = "10.3.0.2"


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestPermanentExclusionDefault:
    def test_no_aging_without_configuration(self):
        # Back-compat: a bare cache still never forgets a failure.
        cache = DeliveryMethodCache(strategy=ProbeStrategy.CONSERVATIVE_FIRST)
        for _ in range(4):
            cache.on_progress(DST)
        assert cache.record_for(DST).current is OutMode.OUT_DE
        cache.on_suspect(DST)  # Out-DE failed -> back to Out-IE
        assert cache.record_for(DST).current is OutMode.OUT_IE
        for _ in range(100):
            cache.on_progress(DST)
        # Out-DE stays excluded; upgrades skip straight to Out-DH.
        record = cache.record_for(DST)
        assert OutMode.OUT_DE in record.failed
        assert record.forgiveness == 0


class TestFailedTtl:
    def test_failure_verdict_expires_after_ttl(self):
        clock = FakeClock()
        cache = DeliveryMethodCache(
            strategy=ProbeStrategy.CONSERVATIVE_FIRST,
            upgrade_after=2,
            clock=clock,
            failed_ttl=30.0,
        )
        for _ in range(2):
            cache.on_progress(DST)
        assert cache.record_for(DST).current is OutMode.OUT_DE
        cache.on_suspect(DST)
        record = cache.record_for(DST)
        assert record.current is OutMode.OUT_IE
        assert OutMode.OUT_DE in record.failed

        # Within the TTL the verdict stands: upgrades skip Out-DE.
        clock.now = 10.0
        for _ in range(2):
            cache.on_progress(DST)
        assert cache.record_for(DST).current is OutMode.OUT_DH

        # After the TTL the verdict expires and Out-DE is probeable again.
        cache.on_suspect(DST)  # DH fails -> DE is still failed -> IE
        assert cache.record_for(DST).current is OutMode.OUT_IE
        clock.now = 50.0
        cache.on_progress(DST)
        record = cache.record_for(DST)
        assert OutMode.OUT_DE not in record.failed
        assert record.forgiveness >= 1

    def test_aging_enables_reprobe_for_aggressive_first(self):
        clock = FakeClock()
        cache = DeliveryMethodCache(
            strategy=ProbeStrategy.AGGRESSIVE_FIRST,
            upgrade_after=2,
            clock=clock,
            failed_ttl=20.0,
        )
        cache.on_suspect(DST)  # Out-DH fails -> Out-DE
        assert cache.record_for(DST).current is OutMode.OUT_DE
        clock.now = 25.0
        for _ in range(2):
            cache.on_progress(DST)
        # The expired Out-DH verdict lets the ladder climb back up.
        assert cache.record_for(DST).current is OutMode.OUT_DH


class TestForgiveness:
    def test_sustained_success_clears_failed_set(self):
        cache = DeliveryMethodCache(
            strategy=ProbeStrategy.CONSERVATIVE_FIRST,
            upgrade_after=2,
            forgive_after=5,
        )
        for _ in range(2):
            cache.on_progress(DST)
        cache.on_suspect(DST)  # Out-DE failed -> Out-IE
        record = cache.record_for(DST)
        assert record.failed == {OutMode.OUT_DE}
        # Two successes upgrade (to Out-DH, skipping failed Out-DE) and
        # reset the run counter; five more at Out-DH reach forgiveness.
        for _ in range(7):
            cache.on_progress(DST)
        record = cache.record_for(DST)
        assert record.current is OutMode.OUT_DH
        assert record.failed == set()
        assert record.forgiveness == 1

    def test_rule_seeded_optimistic_can_reprobe_with_aging(self):
        policy = MobilityPolicyTable(default=Disposition.OPTIMISTIC)
        cache = DeliveryMethodCache(
            strategy=ProbeStrategy.RULE_SEEDED,
            policy=policy,
            upgrade_after=2,
            forgive_after=4,
        )
        assert cache.record_for(DST).current is OutMode.OUT_DH
        cache.on_suspect(DST)
        assert cache.record_for(DST).current is OutMode.OUT_DE
        for _ in range(4):
            cache.on_progress(DST)
        # Forgiven and re-probed back up to Out-DH.
        assert cache.record_for(DST).current is OutMode.OUT_DH


class TestDetectorReset:
    def test_reset_all_clears_every_remote(self):
        raised = []
        detector = RetransmissionDetector(
            threshold=3, on_suspect=lambda remote, reason: raised.append(remote)
        )
        for _ in range(2):
            detector.on_send("10.3.0.2", retransmission=True)
        detector.on_send("10.4.0.2", retransmission=True)
        detector.reset_all()
        # Old-path counters are gone: two more retx do not reach the
        # threshold of three, so no suspicion fires after movement.
        for _ in range(2):
            detector.on_send("10.3.0.2", retransmission=True)
        assert raised == []
        assert detector.health("10.3.0.2").retx_to == 2

    def test_engine_on_moved_preserves_detector_identity(self):
        # The transport stack holds the detector through its observer
        # list indirectly via the engine; on_moved must clear state in
        # place, not swap the object out from under held references.
        from repro.core.decision import MobilityEngine

        engine = MobilityEngine("10.1.0.10")
        detector = engine.detector
        engine.detector.on_send("10.3.0.2", retransmission=True)
        engine.on_moved()
        assert engine.detector is detector
        assert engine.detector.health("10.3.0.2").retx_to == 0
