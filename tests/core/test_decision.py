"""Tests for the MobilityEngine (the two §7.1 decisions, glued)."""


from repro.core.decision import MobilityEngine
from repro.core.modes import OutMode
from repro.core.policy import Disposition, MobilityPolicyTable
from repro.core.selection import ProbeStrategy
from repro.netsim import IPAddress
from repro.netsim.packet import IPProto

HOME = IPAddress("10.1.0.10")
COA = IPAddress("10.2.0.2")
CH = IPAddress("10.3.0.2")


def away_engine(**kwargs) -> MobilityEngine:
    """An engine configured as a host visiting a foreign network."""
    engine = MobilityEngine(HOME, **kwargs)
    engine.care_of_address = lambda: COA
    engine.at_home_test = lambda: False
    engine.physical_addresses = lambda: {COA}
    return engine


class TestSourceSelection:
    def test_at_home_always_home_address(self):
        engine = MobilityEngine(HOME)
        engine.at_home_test = lambda: True
        assert engine.select_source(CH, 80, IPProto.TCP, None) == HOME

    def test_http_goes_temporary_when_away(self):
        engine = away_engine()
        assert engine.select_source(CH, 80, IPProto.TCP, None) == COA

    def test_telnet_goes_home_when_away(self):
        engine = away_engine()
        assert engine.select_source(CH, 23, IPProto.TCP, None) == HOME

    def test_explicit_care_of_bind_wins_over_port(self):
        engine = away_engine()
        assert engine.select_source(CH, 23, IPProto.TCP, COA) == COA

    def test_home_bind_falls_back_to_heuristics(self):
        engine = away_engine()
        assert engine.select_source(CH, 80, IPProto.TCP, HOME) == COA

    def test_privacy_forces_home_address(self):
        """§4: privacy users never reveal their location."""
        engine = away_engine(privacy=True)
        assert engine.select_source(CH, 80, IPProto.TCP, None) == HOME

    def test_policy_no_mobile_ip_forces_temporary(self):
        policy = MobilityPolicyTable()
        policy.add("10.3.0.0/16", Disposition.NO_MOBILE_IP)
        engine = away_engine(policy=policy)
        assert engine.select_source(CH, 23, IPProto.TCP, None) == COA

    def test_no_care_of_address_means_home(self):
        engine = MobilityEngine(HOME)
        engine.at_home_test = lambda: False
        engine.care_of_address = lambda: None
        assert engine.select_source(CH, 80, IPProto.TCP, None) == HOME

    def test_decisions_counted(self):
        engine = away_engine()
        engine.select_source(CH, 80, IPProto.TCP, None)
        engine.select_source(CH, 23, IPProto.TCP, None)
        assert engine.decisions_made == 2


class TestOutModeDecision:
    def test_privacy_pins_out_ie(self):
        engine = away_engine(privacy=True)
        assert engine.out_mode_for(CH) is OutMode.OUT_IE

    def test_same_segment_forces_out_dh(self):
        engine = away_engine(strategy=ProbeStrategy.CONSERVATIVE_FIRST)
        engine.same_segment_test = lambda dst: dst == CH
        assert engine.out_mode_for(CH) is OutMode.OUT_DH

    def test_known_not_decap_capable_skips_out_de(self):
        engine = away_engine(strategy=ProbeStrategy.AGGRESSIVE_FIRST)
        engine.learn(CH, decap_capable=False)
        assert engine.out_mode_for(CH) is OutMode.OUT_DH
        engine._on_suspect(CH, "test")      # DH fails...
        # ...and the cache would try DE next, but knowledge skips it.
        assert engine.out_mode_for(CH) is OutMode.OUT_IE

    def test_awareness_implies_decapsulation(self):
        engine = away_engine()
        engine.learn(CH, mobile_aware=True)
        assert engine.knowledge_for(CH).decap_capable is True

    def test_suspect_demotes_and_notifies(self):
        changes = []
        engine = away_engine(strategy=ProbeStrategy.AGGRESSIVE_FIRST)
        engine.on_mode_change = lambda ip, mode, why: changes.append((mode, why))
        engine.out_mode_for(CH)
        engine._on_suspect(CH, "filter")
        assert changes == [(OutMode.OUT_DE, "demoted: filter")]

    def test_progress_upgrades_and_notifies(self):
        changes = []
        engine = away_engine(strategy=ProbeStrategy.CONSERVATIVE_FIRST,
                             upgrade_after=2)
        engine.on_mode_change = lambda ip, mode, why: changes.append(mode)
        engine.out_mode_for(CH)
        engine.on_receive(CH, retransmission=False)
        engine.on_receive(CH, retransmission=False)
        assert changes == [OutMode.OUT_DE]

    def test_retransmissions_flow_to_detector(self):
        engine = away_engine(strategy=ProbeStrategy.AGGRESSIVE_FIRST,
                             retx_threshold=2)
        engine.out_mode_for(CH)
        engine.on_send(CH, retransmission=True)
        engine.on_send(CH, retransmission=True)
        assert engine.cache.record_for(CH).current is OutMode.OUT_DE


class TestMovement:
    def test_on_moved_resets_cache_and_detector(self):
        engine = away_engine(strategy=ProbeStrategy.AGGRESSIVE_FIRST,
                             retx_threshold=2)
        engine.out_mode_for(CH)
        engine._on_suspect(CH, "old network was filtered")
        assert engine.cache.record_for(CH).current is OutMode.OUT_DE
        engine.on_moved()
        # Fresh network: start from the strategy's top again.
        assert engine.out_mode_for(CH) is OutMode.OUT_DH
        # Detector state is fresh too: one retx does not immediately fire.
        engine.on_send(CH, retransmission=True)
        assert engine.cache.record_for(CH).current is OutMode.OUT_DH

    def test_knowledge_survives_movement(self):
        """Decap capability is a property of the CH, not of the path."""
        engine = away_engine()
        engine.learn(CH, decap_capable=False)
        engine.on_moved()
        assert engine.knowledge_for(CH).decap_capable is False
