"""Tests for the mobility policy table and the delivery-method cache."""


from repro.core.modes import OutMode
from repro.core.policy import Disposition, MobilityPolicyTable
from repro.core.selection import DeliveryMethodCache, ProbeStrategy
from repro.netsim import IPAddress

CH = IPAddress("10.3.0.2")


class TestPolicyTable:
    def test_default_disposition(self):
        table = MobilityPolicyTable()
        assert table.lookup(CH) is Disposition.PESSIMISTIC

    def test_custom_default(self):
        table = MobilityPolicyTable(default=Disposition.OPTIMISTIC)
        assert table.lookup(CH) is Disposition.OPTIMISTIC

    def test_longest_prefix_wins(self):
        """§7.1.2: rules 'specified similarly to ... routing table
        entries ... as an address and a mask value'."""
        table = MobilityPolicyTable()
        table.add("10.0.0.0/8", Disposition.OPTIMISTIC)
        table.add("10.3.0.0/16", Disposition.HOME_ONLY)
        assert table.lookup(IPAddress("10.1.0.1")) is Disposition.OPTIMISTIC
        assert table.lookup(CH) is Disposition.HOME_ONLY

    def test_single_rule_for_whole_home_network(self):
        """The paper's example: 'a single rule to identify ... the
        entire home network as a region where Out-IE should always be
        used'."""
        table = MobilityPolicyTable(default=Disposition.OPTIMISTIC)
        table.add("10.1.0.0/16", Disposition.HOME_ONLY)
        assert table.lookup(IPAddress("10.1.0.50")) is Disposition.HOME_ONLY
        assert table.lookup(IPAddress("10.9.0.1")) is Disposition.OPTIMISTIC

    def test_remove(self):
        table = MobilityPolicyTable()
        table.add("10.3.0.0/16", Disposition.NO_MOBILE_IP)
        assert table.remove("10.3.0.0/16") == 1
        assert table.lookup(CH) is Disposition.PESSIMISTIC

    def test_str_renders_rules_and_default(self):
        table = MobilityPolicyTable()
        table.add("10.3.0.0/16", Disposition.OPTIMISTIC)
        rendered = str(table)
        assert "10.3.0.0/16" in rendered and "default" in rendered


class TestCacheStartingModes:
    def test_conservative_first_starts_at_ie(self):
        cache = DeliveryMethodCache(ProbeStrategy.CONSERVATIVE_FIRST)
        assert cache.mode_for(CH) is OutMode.OUT_IE

    def test_aggressive_first_starts_at_dh(self):
        cache = DeliveryMethodCache(ProbeStrategy.AGGRESSIVE_FIRST)
        assert cache.mode_for(CH) is OutMode.OUT_DH

    def test_rule_seeded_optimistic(self):
        policy = MobilityPolicyTable()
        policy.add("10.3.0.0/16", Disposition.OPTIMISTIC)
        cache = DeliveryMethodCache(ProbeStrategy.RULE_SEEDED, policy=policy)
        assert cache.mode_for(CH) is OutMode.OUT_DH

    def test_rule_seeded_pessimistic_default(self):
        cache = DeliveryMethodCache(ProbeStrategy.RULE_SEEDED)
        assert cache.mode_for(CH) is OutMode.OUT_IE

    def test_rule_seeded_home_only_pins(self):
        policy = MobilityPolicyTable()
        policy.add("10.3.0.0/16", Disposition.HOME_ONLY)
        cache = DeliveryMethodCache(ProbeStrategy.RULE_SEEDED, policy=policy)
        assert cache.mode_for(CH) is OutMode.OUT_IE
        # Pinned: progress never upgrades it.
        for _ in range(50):
            cache.on_progress(CH)
        assert cache.record_for(CH).current is OutMode.OUT_IE


class TestDemotion:
    def test_aggressive_walks_down_the_ladder(self):
        """§7.1.2: Out-DH fails -> try Out-DE -> then Out-IE."""
        cache = DeliveryMethodCache(ProbeStrategy.AGGRESSIVE_FIRST)
        assert cache.mode_for(CH) is OutMode.OUT_DH
        assert cache.on_suspect(CH) is OutMode.OUT_DE
        assert cache.on_suspect(CH) is OutMode.OUT_IE
        assert cache.on_suspect(CH) is None  # nowhere left to go

    def test_failed_modes_remembered(self):
        cache = DeliveryMethodCache(ProbeStrategy.AGGRESSIVE_FIRST)
        cache.mode_for(CH)
        cache.on_suspect(CH)
        record = cache.record_for(CH)
        assert OutMode.OUT_DH in record.failed
        assert record.mode_changes == 1
        assert record.suspicions == 1

    def test_suspect_on_fresh_record_starts_it(self):
        cache = DeliveryMethodCache(ProbeStrategy.AGGRESSIVE_FIRST)
        # No mode_for called yet; a suspicion still demotes sanely.
        assert cache.on_suspect(CH) is OutMode.OUT_DE


class TestUpgrades:
    def test_conservative_upgrades_after_success_run(self):
        """[Fox96]: 'tentatively try each of the more aggressive
        options' — IE -> DE -> DH, one step per success run."""
        cache = DeliveryMethodCache(
            ProbeStrategy.CONSERVATIVE_FIRST, upgrade_after=3
        )
        assert cache.mode_for(CH) is OutMode.OUT_IE
        for _ in range(2):
            assert cache.on_progress(CH) is None
        assert cache.on_progress(CH) is OutMode.OUT_DE
        for _ in range(2):
            assert cache.on_progress(CH) is None
        assert cache.on_progress(CH) is OutMode.OUT_DH

    def test_failed_mode_not_retried_on_upgrade(self):
        cache = DeliveryMethodCache(
            ProbeStrategy.CONSERVATIVE_FIRST, upgrade_after=2
        )
        cache.mode_for(CH)
        # Upgrade to DE, fail it, drop back to IE.
        cache.on_progress(CH)
        assert cache.on_progress(CH) is OutMode.OUT_DE
        assert cache.on_suspect(CH) is OutMode.OUT_IE
        # Next upgrade run must skip failed DE and go straight to DH.
        cache.on_progress(CH)
        assert cache.on_progress(CH) is OutMode.OUT_DH

    def test_everything_failed_stays_conservative(self):
        cache = DeliveryMethodCache(
            ProbeStrategy.CONSERVATIVE_FIRST, upgrade_after=1
        )
        cache.mode_for(CH)
        record = cache.record_for(CH)
        record.failed.update({OutMode.OUT_DH, OutMode.OUT_DE})
        for _ in range(5):
            assert cache.on_progress(CH) is None
        assert record.current is OutMode.OUT_IE

    def test_aggressive_first_never_upgrades(self):
        cache = DeliveryMethodCache(ProbeStrategy.AGGRESSIVE_FIRST, upgrade_after=1)
        cache.mode_for(CH)
        cache.on_suspect(CH)   # now at DE
        for _ in range(10):
            assert cache.on_progress(CH) is None
        assert cache.record_for(CH).current is OutMode.OUT_DE

    def test_rule_seeded_optimistic_never_upgrades(self):
        policy = MobilityPolicyTable()
        policy.add("10.3.0.0/16", Disposition.OPTIMISTIC)
        cache = DeliveryMethodCache(ProbeStrategy.RULE_SEEDED, policy=policy,
                                    upgrade_after=1)
        cache.mode_for(CH)
        cache.on_suspect(CH)
        for _ in range(5):
            assert cache.on_progress(CH) is None

    def test_rule_seeded_pessimistic_upgrades(self):
        cache = DeliveryMethodCache(ProbeStrategy.RULE_SEEDED, upgrade_after=1)
        cache.mode_for(CH)
        assert cache.on_progress(CH) is OutMode.OUT_DE


class TestLifecycle:
    def test_reset_all_forgets_history(self):
        cache = DeliveryMethodCache(ProbeStrategy.AGGRESSIVE_FIRST)
        cache.mode_for(CH)
        cache.on_suspect(CH)
        cache.reset_all()
        assert cache.mode_for(CH) is OutMode.OUT_DH  # fresh start

    def test_forget_single(self):
        cache = DeliveryMethodCache(ProbeStrategy.AGGRESSIVE_FIRST)
        other = IPAddress("10.4.0.1")
        cache.mode_for(CH)
        cache.mode_for(other)
        cache.on_suspect(CH)
        cache.forget(CH)
        assert cache.mode_for(CH) is OutMode.OUT_DH
        assert cache.record_for(other).current is OutMode.OUT_DH

    def test_packets_counted(self):
        cache = DeliveryMethodCache(ProbeStrategy.CONSERVATIVE_FIRST)
        for _ in range(5):
            cache.mode_for(CH)
        assert cache.record_for(CH).packets_sent == 5

    def test_total_mode_changes(self):
        cache = DeliveryMethodCache(ProbeStrategy.AGGRESSIVE_FIRST)
        cache.mode_for(CH)
        cache.on_suspect(CH)
        cache.on_suspect(CH)
        assert cache.total_mode_changes() == 2

    def test_rule_seeded_requires_or_creates_policy(self):
        cache = DeliveryMethodCache(ProbeStrategy.RULE_SEEDED)
        assert cache.policy is not None
