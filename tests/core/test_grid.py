"""Tests that the grid object is exactly Figure 10."""


from repro.core.grid import GRID, CellClass, FourByFourGrid, Requirement
from repro.core.modes import InMode, OutMode


class TestCellCensus:
    def test_sixteen_cells(self):
        assert len(GRID.cells()) == 16

    def test_seven_useful(self):
        assert len(GRID.useful) == 7

    def test_three_valid_unlikely(self):
        assert len(GRID.valid_unlikely) == 3

    def test_six_inapplicable(self):
        assert len(GRID.inapplicable) == 6

    def test_useful_cells_are_the_papers_seven(self):
        expected = {
            (InMode.IN_IE, OutMode.OUT_IE),
            (InMode.IN_IE, OutMode.OUT_DE),
            (InMode.IN_IE, OutMode.OUT_DH),
            (InMode.IN_DE, OutMode.OUT_DE),
            (InMode.IN_DE, OutMode.OUT_DH),
            (InMode.IN_DH, OutMode.OUT_DH),
            (InMode.IN_DT, OutMode.OUT_DT),
        }
        assert {cell.key for cell in GRID.useful} == expected

    def test_valid_unlikely_cells(self):
        expected = {
            (InMode.IN_DE, OutMode.OUT_IE),
            (InMode.IN_DH, OutMode.OUT_IE),
            (InMode.IN_DH, OutMode.OUT_DE),
        }
        assert {cell.key for cell in GRID.valid_unlikely} == expected

    def test_dark_cells_are_fourth_row_and_column(self):
        """§6.5: every inapplicable cell involves In-DT or Out-DT."""
        for cell in GRID.inapplicable:
            assert cell.in_mode is InMode.IN_DT or cell.out_mode is OutMode.OUT_DT

    def test_mixed_temporary_permanent_never_works(self):
        """§6.5: mixing temporary and permanent endpoints is useless."""
        for cell in GRID.cells():
            mixed = (cell.in_mode is InMode.IN_DT) != (cell.out_mode is OutMode.OUT_DT)
            if mixed:
                assert cell.cell_class is CellClass.INAPPLICABLE


class TestCellProperties:
    def test_tcp_compatibility_matches_shading(self):
        for cell in GRID.cells():
            assert cell.works_with_tcp == (
                cell.cell_class is not CellClass.INAPPLICABLE
            )

    def test_survives_movement_requires_home_address_both_ways(self):
        assert GRID.cell(InMode.IN_IE, OutMode.OUT_IE).survives_movement
        assert not GRID.cell(InMode.IN_DT, OutMode.OUT_DT).survives_movement

    def test_most_conservative_cell_has_no_requirements(self):
        cell = GRID.cell(InMode.IN_IE, OutMode.OUT_IE)
        assert cell.requirements == frozenset({Requirement.NONE})

    def test_out_dh_in_row_a_requires_permissive_path(self):
        cell = GRID.cell(InMode.IN_IE, OutMode.OUT_DH)
        assert Requirement.NO_SOURCE_FILTERING in cell.requirements

    def test_out_de_in_row_a_requires_decap(self):
        cell = GRID.cell(InMode.IN_IE, OutMode.OUT_DE)
        assert Requirement.DECAP_CAPABLE_CH in cell.requirements

    def test_row_b_requires_mobile_awareness(self):
        for out_mode in (OutMode.OUT_DE, OutMode.OUT_DH):
            cell = GRID.cell(InMode.IN_DE, out_mode)
            assert Requirement.MOBILE_AWARE_CH in cell.requirements

    def test_row_c_requires_same_segment(self):
        cell = GRID.cell(InMode.IN_DH, OutMode.OUT_DH)
        assert Requirement.SAME_SEGMENT in cell.requirements

    def test_no_mobile_ip_cell_forgoes_mobility(self):
        cell = GRID.cell(InMode.IN_DT, OutMode.OUT_DT)
        assert Requirement.FORGOES_MOBILITY in cell.requirements


class TestRowsAndColumns:
    def test_row_has_four_cells(self):
        for in_mode in InMode:
            assert len(GRID.row(in_mode)) == 4

    def test_column_has_four_cells(self):
        for out_mode in OutMode:
            assert len(GRID.column(out_mode)) == 4

    def test_row_a_has_three_useful(self):
        useful = [c for c in GRID.row(InMode.IN_IE)
                  if c.cell_class is CellClass.USEFUL]
        assert len(useful) == 3

    def test_column_d_has_one_useful(self):
        useful = [c for c in GRID.column(OutMode.OUT_DT)
                  if c.cell_class is CellClass.USEFUL]
        assert [c.key for c in useful] == [(InMode.IN_DT, OutMode.OUT_DT)]


class TestBestCell:
    """The §6 narrative: best available cell per situation."""

    def test_no_mobility_needed_goes_row_d(self):
        cell = GRID.best_cell(
            same_segment=False, ch_mobile_aware=True, ch_decap_capable=True,
            path_filtered=False, needs_mobility=False,
        )
        assert cell.key == (InMode.IN_DT, OutMode.OUT_DT)

    def test_same_segment_beats_everything_else(self):
        cell = GRID.best_cell(
            same_segment=True, ch_mobile_aware=True, ch_decap_capable=True,
            path_filtered=True, needs_mobility=True,
        )
        assert cell.key == (InMode.IN_DH, OutMode.OUT_DH)

    def test_aware_ch_unfiltered_path(self):
        cell = GRID.best_cell(
            same_segment=False, ch_mobile_aware=True, ch_decap_capable=True,
            path_filtered=False, needs_mobility=True,
        )
        assert cell.key == (InMode.IN_DE, OutMode.OUT_DH)

    def test_aware_ch_filtered_path(self):
        cell = GRID.best_cell(
            same_segment=False, ch_mobile_aware=True, ch_decap_capable=True,
            path_filtered=True, needs_mobility=True,
        )
        assert cell.key == (InMode.IN_DE, OutMode.OUT_DE)

    def test_conventional_ch_filtered_path_is_most_conservative(self):
        cell = GRID.best_cell(
            same_segment=False, ch_mobile_aware=False, ch_decap_capable=False,
            path_filtered=True, needs_mobility=True,
        )
        assert cell.key == (InMode.IN_IE, OutMode.OUT_IE)

    def test_conventional_ch_decap_filtered(self):
        cell = GRID.best_cell(
            same_segment=False, ch_mobile_aware=False, ch_decap_capable=True,
            path_filtered=True, needs_mobility=True,
        )
        assert cell.key == (InMode.IN_IE, OutMode.OUT_DE)

    def test_best_cell_is_always_useful(self):
        for same in (False, True):
            for aware in (False, True):
                for decap in (False, True):
                    for filtered in (False, True):
                        for needs in (False, True):
                            cell = GRID.best_cell(same, aware, decap, filtered, needs)
                            assert cell.cell_class is CellClass.USEFUL


class TestRendering:
    def test_render_contains_all_modes(self):
        rendered = GRID.render()
        for mode in list(InMode) + list(OutMode):
            assert mode.value in rendered

    def test_render_legend(self):
        assert "legend" in GRID.render()

    def test_fresh_grid_equals_module_grid(self):
        fresh = FourByFourGrid()
        assert {c.key: c.cell_class for c in fresh.cells()} == {
            c.key: c.cell_class for c in GRID.cells()
        }
