"""Shared fixtures: small pre-built topologies and actors.

The figure-level integration tests use the canonical builders in
:mod:`repro.analysis.scenarios`; the unit-level fixtures here are
deliberately smaller (one simulator, one or two segments) so failures
point at the module under test rather than the whole stack.
"""

from __future__ import annotations

import pytest

from repro.netsim import Internet, IPAddress, Network, Node, Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=42)


@pytest.fixture
def two_domain_net(sim):
    """Two permissive domains, one backbone hop apart, one host each.

    Returns (sim, net, host_a, ip_a, host_b, ip_b).
    """
    net = Internet(sim, backbone_size=2)
    net.add_domain("a", "10.1.0.0/16", attach_at=0, source_filtering=False)
    net.add_domain("b", "10.2.0.0/16", attach_at=1, source_filtering=False)
    host_a = Node("host-a", sim)
    host_b = Node("host-b", sim)
    ip_a = net.add_host("a", host_a)
    ip_b = net.add_host("b", host_b)
    return sim, net, host_a, ip_a, host_b, ip_b


@pytest.fixture
def lan(sim):
    """A single shared segment with two plain hosts.

    Returns (sim, segment, host_a, host_b); both hosts are configured
    on 192.168.1.0/24 with addresses .1 and .2 and a direct route.
    """
    segment = sim.segment("lan")
    prefix = Network("192.168.1.0/24")
    host_a = Node("lan-a", sim)
    host_b = Node("lan-b", sim)
    for index, host in enumerate((host_a, host_b), start=1):
        iface = host.add_interface("eth0", segment)
        iface.configure(IPAddress(f"192.168.1.{index}"), prefix)
        host.routes.add(prefix, "eth0")
    return sim, segment, host_a, host_b
