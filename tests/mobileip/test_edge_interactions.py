"""Edge interactions between subsystems that no single-module test hits."""


from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.core import OutMode, ProbeStrategy
from repro.mobileip import Awareness
from repro.netsim import IPAddress


class TestAdvisoryParanoiaInterplay:
    def test_advisory_unlocks_paranoid_decapsulation(self):
        """A paranoid correspondent (require_known_peer) refuses tunnels
        from strangers — until the home agent's advisory installs the
        binding, which whitelists the mobile host's addresses."""
        scenario = build_scenario(seed=1701,
                                  ch_awareness=Awareness.MOBILE_AWARE,
                                  notify_correspondents=True,
                                  strategy=ProbeStrategy.AGGRESSIVE_FIRST,
                                  visited_filtering=True)
        scenario.ch.require_known_peer = True
        got = []
        sock = scenario.ch.stack.udp_socket(6000)
        sock.on_receive(lambda d, s, ip, p: got.append(d))
        mh_sock = scenario.mh.stack.udp_socket(6001)
        mh_sock.on_receive(lambda *a: None)
        # Force Out-DE (DH already failed under filtering).
        scenario.mh.engine.cache.record_for(scenario.ch_ip).current = (
            OutMode.OUT_DE)
        # Before any advisory: the tunnel is refused.
        mh_sock.sendto("stranger", 30, scenario.ch_ip, 6000,
                       src_override=MH_HOME_ADDRESS)
        scenario.sim.run_for(5)
        assert got == []
        assert scenario.ch.decap_refused == 1
        # The CH talks to the MH's home address; the HA tunnels it and
        # advises the CH of the binding.
        ch_out = scenario.ch.stack.udp_socket()
        ch_out.sendto("hello", 30, MH_HOME_ADDRESS, 6001)
        scenario.sim.run_for(5)
        assert len(scenario.ch.bindings) == 1
        # Now the same Out-DE tunnel is accepted.
        mh_sock.sendto("known-now", 30, scenario.ch_ip, 6000,
                       src_override=MH_HOME_ADDRESS)
        scenario.sim.run_for(5)
        assert got == ["known-now"]


class TestEngineMulticastSource:
    def test_multicast_destination_selects_care_of(self):
        """§6.4 via the engine: a send to a multicast group from an
        unbound socket uses the temporary address."""
        scenario = build_scenario(seed=1702, ch_awareness=None)
        group = IPAddress("224.3.3.3")
        sock = scenario.mh.stack.udp_socket()
        sock.sendto("frame", 100, group, 5004)
        scenario.sim.run_for(2)
        sends = [e for e in scenario.sim.trace.entries
                 if e.node == "mh" and e.action == "send"
                 and e.dst == str(group)]
        assert sends
        assert sends[0].src == str(scenario.mh.care_of)
        assert scenario.mh.tunnel.encapsulated_count == 0


class TestSameSegmentAfterMove:
    def test_same_segment_shortcut_follows_the_host(self):
        """The Row C shortcut is a property of the *current* segment:
        after moving away, the former neighbour is reached through the
        ladder again."""
        scenario = build_scenario(seed=1703,
                                  ch_awareness=Awareness.CONVENTIONAL,
                                  ch_in_visited_lan=True,
                                  strategy=ProbeStrategy.CONSERVATIVE_FIRST)
        assert scenario.mh.engine.out_mode_for(scenario.ch_ip) is OutMode.OUT_DH
        scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=2)
        scenario.mh.move_to(scenario.net, "visited2")
        scenario.sim.run_for(5)
        # No longer one hop away: conservative ladder applies again.
        assert scenario.mh.engine.out_mode_for(scenario.ch_ip) is OutMode.OUT_IE

    def test_shortcut_not_applied_to_own_address(self):
        scenario = build_scenario(seed=1704, ch_awareness=None)
        assert not scenario.mh._same_segment(scenario.mh.care_of)


class TestHomeAgentSelfTraffic:
    def test_ha_reaches_its_own_mobile_host(self):
        """The HA itself talking to the MH's home address: captured by
        its own binding table and tunneled like anyone else's packet."""
        scenario = build_scenario(seed=1705, ch_awareness=None)
        got = []
        sock = scenario.mh.stack.udp_socket(7000)
        sock.on_receive(lambda d, s, ip, p: got.append(d))
        ha_sock = scenario.ha.stack.udp_socket()
        ha_sock.sendto("from-your-agent", 40, MH_HOME_ADDRESS, 7000)
        scenario.sim.run_for(10)
        assert got == ["from-your-agent"]
        assert scenario.ha.packets_tunneled == 1
