"""Tests for the remote DNS TMP-record update (§3.2 end-to-end)."""

import pytest

from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.mobileip import Awareness, DNSUpdate, DNSUpdateAck, Resolver


@pytest.fixture
def stage():
    scenario = build_scenario(seed=941, ch_awareness=Awareness.MOBILE_AWARE,
                              with_dns=True)
    resolver = Resolver(scenario.ch.stack, scenario.dns_ip)
    return scenario, resolver


def lookup(scenario, resolver, name="mh.home.example"):
    answers = []
    resolver.lookup(name, answers.append)
    scenario.sim.run_for(5)
    return answers[0]


class TestDnsUpdateProtocol:
    def test_update_registers_tmp_record(self, stage):
        scenario, resolver = stage
        scenario.mh.update_dns("mh.home.example", scenario.dns_ip,
                               lifetime=120.0)
        scenario.sim.run_for(5)
        answer = lookup(scenario, resolver)
        assert answer.temporary == scenario.mh.care_of

    def test_withdraw_removes_tmp_record(self, stage):
        scenario, resolver = stage
        scenario.mh.update_dns("mh.home.example", scenario.dns_ip,
                               lifetime=120.0)
        scenario.sim.run_for(5)
        scenario.mh.update_dns("mh.home.example", scenario.dns_ip,
                               withdraw=True)
        scenario.sim.run_for(5)
        answer = lookup(scenario, resolver)
        assert answer.temporary is None

    def test_update_for_unknown_name_nacked(self, stage):
        scenario, _resolver = stage
        acks = []
        socket = scenario.mh.stack.udp_socket()
        socket.on_receive(lambda d, s, ip, p: acks.append(d))
        update = DNSUpdate("ghost.example", ident=99,
                           care_of=scenario.mh.care_of)
        socket.sendto(update, update.size, scenario.dns_ip, 53)
        scenario.sim.run_for(5)
        assert len(acks) == 1
        assert isinstance(acks[0], DNSUpdateAck)
        assert not acks[0].ok

    def test_update_travels_out_dt(self, stage):
        """The update is UDP to port 53, so the §7.1.1 heuristics send
        it from the care-of address without Mobile IP."""
        scenario, _resolver = stage
        before = scenario.mh.tunnel.encapsulated_count
        scenario.mh.update_dns("mh.home.example", scenario.dns_ip)
        scenario.sim.run_for(5)
        assert scenario.mh.tunnel.encapsulated_count == before
        sends = [e for e in scenario.sim.trace.entries
                 if e.node == "mh" and e.action == "send"
                 and e.dst == str(scenario.dns_ip)]
        assert sends
        assert sends[-1].src == str(scenario.mh.care_of)

    def test_update_without_care_of_rejected(self, stage):
        scenario, _resolver = stage
        scenario.mh.return_home(scenario.net, "home")
        scenario.sim.run_for(5)
        with pytest.raises(RuntimeError):
            scenario.mh.update_dns("mh.home.example", scenario.dns_ip)

    def test_full_loop_update_lookup_in_de(self, stage):
        """Register via update, CH looks it up, installs the binding,
        and sends In-DE — zero triangling."""
        scenario, resolver = stage
        scenario.mh.update_dns("mh.home.example", scenario.dns_ip,
                               lifetime=300.0)
        scenario.sim.run_for(5)
        got = []
        sock = scenario.mh.stack.udp_socket(7000)
        sock.on_receive(lambda d, s, ip, p: got.append(d))

        def on_answer(answer):
            assert answer.temporary is not None
            scenario.ch.learn_binding(MH_HOME_ADDRESS, answer.temporary,
                                      answer.tmp_lifetime)
            ch_sock = scenario.ch.stack.udp_socket()
            ch_sock.sendto("hello", 50, MH_HOME_ADDRESS, 7000)

        resolver.lookup("mh.home.example", on_answer)
        scenario.sim.run_for(10)
        assert got == ["hello"]
        assert scenario.ha.packets_tunneled == 0
