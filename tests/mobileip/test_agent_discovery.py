"""Tests for foreign-agent discovery by the mobile host."""


from repro.analysis.scenarios import build_scenario
from repro.mobileip import AgentAdvertisement


class TestAgentDiscovery:
    def test_advertisement_heard_on_lan(self):
        scenario = build_scenario(seed=971, ch_awareness=None,
                                  with_foreign_agent=True,
                                  mobile_starts_away=False)
        # Attach without an FA relationship: the MH is simply on the
        # LAN where the agent advertises.
        scenario.mh.move_to(scenario.net, "visited")
        scenario.sim.run_for(5)
        heard = []
        scenario.mh.on_agent_discovered = heard.append
        scenario.fa._schedule_advertisement()
        scenario.sim.run_for(2)
        assert heard
        advert = heard[0]
        assert isinstance(advert, AgentAdvertisement)
        assert advert.care_of_address == scenario.fa.care_of_address
        assert scenario.fa.advertised_address in scenario.mh.discovered_agents

    def test_discovery_then_attachment(self):
        """The full discovery loop: hear the advert, then register
        through the advertised agent."""
        scenario = build_scenario(seed=972, ch_awareness=None,
                                  with_foreign_agent=True,
                                  mobile_starts_away=False)
        scenario.mh.move_to(scenario.net, "visited")
        scenario.sim.run_for(5)

        def on_discovered(advert):
            scenario.mh.move_to_foreign_agent(scenario.net, "visited",
                                              scenario.fa)

        scenario.mh.on_agent_discovered = on_discovered
        scenario.fa._schedule_advertisement()
        scenario.sim.run_for(10)
        assert scenario.mh.registered
        assert scenario.mh.via_foreign_agent is scenario.fa
        binding = scenario.ha.bindings.lookup(scenario.mh.home_address,
                                              scenario.sim.now)
        assert binding.care_of_address == scenario.fa.care_of_address

    def test_no_advertisements_when_disabled(self):
        scenario = build_scenario(seed=973, ch_awareness=None,
                                  with_foreign_agent=True,
                                  mobile_starts_away=False)
        scenario.mh.move_to(scenario.net, "visited")
        heard = []
        scenario.mh.on_agent_discovered = heard.append
        scenario.sim.run_for(10)
        assert heard == []


class TestAutoReregistration:
    def test_binding_refreshed_before_expiry(self):
        from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario

        scenario = build_scenario(seed=974, ch_awareness=None,
                                  mobile_starts_away=False)
        scenario.mh.reg_lifetime = 5.0
        scenario.mh.move_to(scenario.net, "visited", lifetime=5.0)
        # Run far past several lifetimes: the keep-alive must hold the
        # binding the whole time.
        scenario.sim.run_for(25)
        binding = scenario.ha.bindings.lookup(MH_HOME_ADDRESS,
                                              scenario.sim.now)
        assert binding is not None
        assert scenario.mh.registration_attempts >= 4

    def test_refresh_stops_after_return_home(self):
        from repro.analysis.scenarios import build_scenario

        scenario = build_scenario(seed=975, ch_awareness=None,
                                  mobile_starts_away=False)
        scenario.mh.reg_lifetime = 5.0
        scenario.mh.move_to(scenario.net, "visited", lifetime=5.0)
        scenario.sim.run_for(7)
        attempts_before = scenario.mh.registration_attempts
        scenario.mh.return_home(scenario.net, "home")
        scenario.sim.run_for(30)
        # Only the deregistration itself after coming home.
        assert scenario.mh.registration_attempts <= attempts_before + 1
        assert len(scenario.ha.bindings) == 0

    def test_disabled_keepalive_lets_binding_lapse(self):
        from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario

        scenario = build_scenario(seed=976, ch_awareness=None,
                                  mobile_starts_away=False)
        scenario.mh.auto_reregister = False
        scenario.mh.move_to(scenario.net, "visited", lifetime=3.0)
        scenario.sim.run_for(10)
        assert scenario.ha.bindings.lookup(MH_HOME_ADDRESS,
                                           scenario.sim.now) is None


class TestSolicitation:
    def test_solicitation_elicits_unicast_advertisement(self):
        from repro.analysis.scenarios import build_scenario

        scenario = build_scenario(seed=977, ch_awareness=None,
                                  with_foreign_agent=True,
                                  mobile_starts_away=False)
        scenario.mh.move_to(scenario.net, "visited")
        scenario.sim.run_for(5)
        heard = []
        scenario.mh.on_agent_discovered = heard.append
        scenario.mh.solicit_agents()
        scenario.sim.run_for(2)
        assert len(heard) == 1
        assert heard[0].care_of_address == scenario.fa.care_of_address

    def test_solicitation_on_agentless_lan_is_silent(self):
        from repro.analysis.scenarios import build_scenario

        scenario = build_scenario(seed=978, ch_awareness=None)
        heard = []
        scenario.mh.on_agent_discovered = heard.append
        scenario.mh.solicit_agents()
        scenario.sim.run_for(5)
        assert heard == []
