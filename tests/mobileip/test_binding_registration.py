"""Tests for binding tables and registration message semantics."""


from repro.mobileip.binding import Binding, BindingTable
from repro.mobileip.registration import (
    RegistrationReply,
    RegistrationRequest,
    ReplyCode,
)
from repro.netsim import IPAddress

HOME = IPAddress("10.1.0.10")
COA = IPAddress("10.2.0.2")
COA2 = IPAddress("10.4.0.7")


class TestBindingTable:
    def test_register_and_lookup(self):
        table = BindingTable()
        table.register(HOME, COA, now=0.0, lifetime=100.0)
        binding = table.lookup(HOME, now=50.0)
        assert binding is not None
        assert binding.care_of_address == COA

    def test_expiry(self):
        table = BindingTable()
        table.register(HOME, COA, now=0.0, lifetime=100.0)
        assert table.lookup(HOME, now=100.0) is None
        assert table.expirations == 1
        assert len(table) == 0

    def test_expires_exactly_at_lifetime_boundary(self):
        table = BindingTable()
        table.register(HOME, COA, now=10.0, lifetime=100.0)
        assert table.lookup(HOME, now=109.999) is not None
        assert table.lookup(HOME, now=110.0) is None

    def test_reregistration_replaces_care_of(self):
        """A new registration = the mobile host moved again."""
        table = BindingTable()
        table.register(HOME, COA, now=0.0)
        table.register(HOME, COA2, now=1.0)
        assert table.lookup(HOME, now=2.0).care_of_address == COA2
        assert len(table) == 1

    def test_refresh_extends_lifetime(self):
        table = BindingTable()
        table.register(HOME, COA, now=0.0, lifetime=100.0)
        table.register(HOME, COA, now=90.0, lifetime=100.0)
        assert table.lookup(HOME, now=150.0) is not None

    def test_deregister(self):
        table = BindingTable()
        table.register(HOME, COA, now=0.0)
        removed = table.deregister(HOME)
        assert removed is not None
        assert table.lookup(HOME, now=0.0) is None
        assert table.deregistrations == 1

    def test_deregister_absent_is_noop(self):
        table = BindingTable()
        assert table.deregister(HOME) is None
        assert table.deregistrations == 0

    def test_active_listing_excludes_expired(self):
        table = BindingTable()
        table.register(HOME, COA, now=0.0, lifetime=10.0)
        table.register(IPAddress("10.1.0.11"), COA2, now=0.0, lifetime=1000.0)
        active = table.active(now=100.0)
        assert len(active) == 1
        assert active[0].care_of_address == COA2

    def test_contains(self):
        table = BindingTable()
        table.register(HOME, COA, now=0.0)
        assert HOME in table
        assert COA not in table

    def test_binding_expires_at(self):
        binding = Binding(HOME, COA, registered_at=5.0, lifetime=60.0)
        assert binding.expires_at == 65.0
        assert binding.valid_at(64.9)
        assert not binding.valid_at(65.0)

    def test_validity_is_strict_at_the_boundary(self):
        # "Valid through, not at, expiry" — a tunnel decision made at
        # exactly expires_at must treat the binding as gone, or the home
        # agent and a refreshing mobile host disagree for one instant.
        binding = Binding(HOME, COA, registered_at=0.0, lifetime=100.0)
        assert binding.valid_at(binding.expires_at - 1e-9)
        assert not binding.valid_at(binding.expires_at)
        table = BindingTable()
        table.register(HOME, COA, now=0.0, lifetime=100.0)
        assert table.lookup(HOME, now=100.0) is None
        assert table.expirations == 1
        assert HOME not in table

    def test_flush_is_crash_semantics_not_deregistration(self):
        table = BindingTable()
        table.register(HOME, COA, now=0.0, lifetime=100.0)
        table.register(IPAddress("10.1.0.11"), COA2, now=0.0, lifetime=100.0)
        assert table.flush() == 2
        assert len(table) == 0
        assert table.deregistrations == 0
        assert table.expirations == 0
        assert table.registrations == 2  # history preserved
        assert table.flush() == 0  # idempotent on an empty table


class TestRefreshRacesExpiry:
    def test_80_percent_refresh_keeps_binding_alive(self):
        # A short lifetime makes the race tight: the refresh fires at
        # 80% of the granted lifetime and must land (including the
        # round trip to the home agent) before the binding lapses.
        from repro.analysis import build_scenario

        scenario = build_scenario(seed=61, ch_awareness=None,
                                  mobile_starts_away=False)
        scenario.mh.reg_lifetime = 10.0
        scenario.mh.move_to(scenario.net, "visited")
        scenario.sim.run_for(35)  # ~3 refresh cycles past first expiry
        assert scenario.mh.registered
        table = scenario.ha.bindings
        # The binding was refreshed, never allowed to lapse.
        assert table.expirations == 0
        binding = table.lookup(scenario.mh.home_address, scenario.sim.now)
        assert binding is not None
        assert binding.lifetime == 10.0
        # Multiple refresh registrations happened (initial + >= 2).
        assert table.registrations >= 3


class TestRegistrationMessages:
    def test_deregistration_is_lifetime_zero(self):
        request = RegistrationRequest(HOME, HOME, lifetime=0.0, ident=1)
        assert request.is_deregistration

    def test_normal_registration(self):
        request = RegistrationRequest(HOME, COA, lifetime=300.0, ident=2)
        assert not request.is_deregistration
        assert request.size == 28

    def test_reply_accepted(self):
        reply = RegistrationReply(ReplyCode.ACCEPTED, HOME, 300.0, ident=2)
        assert reply.accepted

    def test_reply_denied(self):
        reply = RegistrationReply(
            ReplyCode.DENIED_UNKNOWN_HOME_ADDRESS, HOME, 0.0, ident=2
        )
        assert not reply.accepted
