"""Tests for binding tables and registration message semantics."""


import pytest

from repro.mobileip.binding import Binding, BindingTable
from repro.mobileip.registration import (
    RegistrationReply,
    RegistrationRequest,
    ReplyCode,
)
from repro.netsim import IPAddress

HOME = IPAddress("10.1.0.10")
COA = IPAddress("10.2.0.2")
COA2 = IPAddress("10.4.0.7")


class TestBindingTable:
    def test_register_and_lookup(self):
        table = BindingTable()
        table.register(HOME, COA, now=0.0, lifetime=100.0)
        binding = table.lookup(HOME, now=50.0)
        assert binding is not None
        assert binding.care_of_address == COA

    def test_expiry(self):
        table = BindingTable()
        table.register(HOME, COA, now=0.0, lifetime=100.0)
        assert table.lookup(HOME, now=100.0) is None
        assert table.expirations == 1
        assert len(table) == 0

    def test_expires_exactly_at_lifetime_boundary(self):
        table = BindingTable()
        table.register(HOME, COA, now=10.0, lifetime=100.0)
        assert table.lookup(HOME, now=109.999) is not None
        assert table.lookup(HOME, now=110.0) is None

    def test_reregistration_replaces_care_of(self):
        """A new registration = the mobile host moved again."""
        table = BindingTable()
        table.register(HOME, COA, now=0.0)
        table.register(HOME, COA2, now=1.0)
        assert table.lookup(HOME, now=2.0).care_of_address == COA2
        assert len(table) == 1

    def test_refresh_extends_lifetime(self):
        table = BindingTable()
        table.register(HOME, COA, now=0.0, lifetime=100.0)
        table.register(HOME, COA, now=90.0, lifetime=100.0)
        assert table.lookup(HOME, now=150.0) is not None

    def test_deregister(self):
        table = BindingTable()
        table.register(HOME, COA, now=0.0)
        removed = table.deregister(HOME)
        assert removed is not None
        assert table.lookup(HOME, now=0.0) is None
        assert table.deregistrations == 1

    def test_deregister_absent_is_noop(self):
        table = BindingTable()
        assert table.deregister(HOME) is None
        assert table.deregistrations == 0

    def test_active_listing_excludes_expired(self):
        table = BindingTable()
        table.register(HOME, COA, now=0.0, lifetime=10.0)
        table.register(IPAddress("10.1.0.11"), COA2, now=0.0, lifetime=1000.0)
        active = table.active(now=100.0)
        assert len(active) == 1
        assert active[0].care_of_address == COA2

    def test_contains(self):
        table = BindingTable()
        table.register(HOME, COA, now=0.0)
        assert HOME in table
        assert COA not in table

    def test_binding_expires_at(self):
        binding = Binding(HOME, COA, registered_at=5.0, lifetime=60.0)
        assert binding.expires_at == 65.0
        assert binding.valid_at(64.9)
        assert not binding.valid_at(65.0)

    def test_validity_is_strict_at_the_boundary(self):
        # "Valid through, not at, expiry" — a tunnel decision made at
        # exactly expires_at must treat the binding as gone, or the home
        # agent and a refreshing mobile host disagree for one instant.
        binding = Binding(HOME, COA, registered_at=0.0, lifetime=100.0)
        assert binding.valid_at(binding.expires_at - 1e-9)
        assert not binding.valid_at(binding.expires_at)
        table = BindingTable()
        table.register(HOME, COA, now=0.0, lifetime=100.0)
        assert table.lookup(HOME, now=100.0) is None
        assert table.expirations == 1
        assert HOME not in table

    def test_flush_is_crash_semantics_not_deregistration(self):
        table = BindingTable()
        table.register(HOME, COA, now=0.0, lifetime=100.0)
        table.register(IPAddress("10.1.0.11"), COA2, now=0.0, lifetime=100.0)
        assert table.flush() == 2
        assert len(table) == 0
        assert table.deregistrations == 0
        assert table.expirations == 0
        assert table.registrations == 2  # history preserved
        assert table.flush() == 0  # idempotent on an empty table


class TestRefreshRacesExpiry:
    def test_80_percent_refresh_keeps_binding_alive(self):
        # A short lifetime makes the race tight: the refresh fires at
        # 80% of the granted lifetime and must land (including the
        # round trip to the home agent) before the binding lapses.
        from repro.analysis import build_scenario

        scenario = build_scenario(seed=61, ch_awareness=None,
                                  mobile_starts_away=False)
        scenario.mh.reg_lifetime = 10.0
        scenario.mh.move_to(scenario.net, "visited")
        scenario.sim.run_for(35)  # ~3 refresh cycles past first expiry
        assert scenario.mh.registered
        table = scenario.ha.bindings
        # The binding was refreshed, never allowed to lapse.
        assert table.expirations == 0
        binding = table.lookup(scenario.mh.home_address, scenario.sim.now)
        assert binding is not None
        assert binding.lifetime == 10.0
        # Multiple refresh registrations happened (initial + >= 2).
        assert table.registrations >= 3


class TestRegistrationMessages:
    def test_deregistration_is_lifetime_zero(self):
        request = RegistrationRequest(HOME, HOME, lifetime=0.0, ident=1)
        assert request.is_deregistration

    def test_normal_registration(self):
        request = RegistrationRequest(HOME, COA, lifetime=300.0, ident=2)
        assert not request.is_deregistration
        assert request.size == 28

    def test_reply_accepted(self):
        reply = RegistrationReply(ReplyCode.ACCEPTED, HOME, 300.0, ident=2)
        assert reply.accepted

    def test_reply_denied(self):
        reply = RegistrationReply(
            ReplyCode.DENIED_UNKNOWN_HOME_ADDRESS, HOME, 0.0, ident=2
        )
        assert not reply.accepted


def _block_table(count=8, base=None, now=0.0, lifetime=100.0):
    """A table with one PoolBlock covering HOME..HOME+count-1."""
    from array import array

    base = HOME.value if base is None else base
    table = BindingTable()
    block = table.register_many(
        base, count,
        care_of=array("I", range(COA.value, COA.value + count)),
        registered_at=array("d", [now] * count),
        lifetime=array("d", [lifetime] * count),
    )
    return table, block


class TestPoolBlocks:
    def test_register_many_counts_as_registrations(self):
        table, block = _block_table(count=8)
        assert table.registrations == 8
        assert block.live == 8
        assert len(table) == 8
        assert table.pool_stats()["pooled"] == 8

    def test_lookup_materializes_a_binding_lazily(self):
        table, _ = _block_table()
        target = IPAddress(HOME.value + 3)
        binding = table.lookup(target, now=50.0)
        assert binding is not None
        assert binding.home_address == target
        assert binding.care_of_address.value == COA.value + 3
        # The dict tier stays empty: blocks never leak Binding objects
        # into per-host storage.
        assert table.active(now=50.0) == []

    def test_contains_sees_block_entries(self):
        table, _ = _block_table(count=4)
        assert IPAddress(HOME.value + 3) in table
        assert IPAddress(HOME.value + 4) not in table

    def test_block_entry_expires_exactly_at_the_boundary(self):
        # Same strict boundary the dict tier pins above: valid through,
        # not at, expires_at.
        table, block = _block_table(now=10.0, lifetime=100.0)
        target = IPAddress(HOME.value)
        assert table.lookup(target, now=109.999) is not None
        assert table.lookup(target, now=110.0) is None
        assert table.expirations == 1
        assert block.live == 7
        # The slot stays dead on later lookups.
        assert table.lookup(target, now=10.0) is None

    def test_overlapping_blocks_rejected(self):
        from array import array

        table, _ = _block_table(count=8)
        with pytest.raises(ValueError):
            table.register_many(
                HOME.value + 4, 8,
                care_of=array("I", [COA.value] * 8),
                registered_at=array("d", [0.0] * 8),
                lifetime=array("d", [100.0] * 8),
            )

    def test_explicit_register_shadows_and_retires_the_slot(self):
        table, block = _block_table()
        target = IPAddress(HOME.value + 2)
        table.register(target, COA2, now=5.0, lifetime=100.0)
        assert block.alive[2] == 0
        assert block.live == 7
        binding = table.lookup(target, now=50.0)
        assert binding.care_of_address == COA2
        assert table.deregistrations == 0  # replacement, not removal
        assert len(table) == 8  # 7 pooled + 1 dict

    def test_deregister_kills_the_slot(self):
        table, block = _block_table()
        target = IPAddress(HOME.value + 1)
        removed = table.deregister(target)
        assert removed is not None
        assert removed.care_of_address.value == COA.value + 1
        assert block.live == 7
        assert table.deregistrations == 1
        assert table.lookup(target, now=0.0) is None

    def test_prune_respects_the_expiry_floor(self):
        table, block = _block_table(now=0.0, lifetime=100.0)
        assert table.prune(now=99.0) == 0  # floor ahead of clock: no scan
        assert block.live == 8
        assert table.prune(now=100.0) == 8
        assert block.live == 0
        assert table.expirations == 8

    def test_prune_boundary_is_exact(self):
        table, block = _block_table(now=10.0, lifetime=100.0)
        # Refresh half the block to a later timestamp, as the wheel would.
        for index in range(4):
            block.registered_at[index] = 60.0
        pruned = table.prune(now=110.0)
        assert pruned == 4  # exactly the unrefreshed half, at the boundary
        assert [bool(b) for b in block.alive] == [True] * 4 + [False] * 4
        # The floor now reflects the survivors' expiry.
        assert block.expiry_floor == 160.0

    def test_prune_is_safe_during_active_snapshot_iteration(self):
        # prune() collects then deletes: mutating while a caller walks a
        # snapshot of active() must not blow up or skip entries.
        table = BindingTable()
        for offset in range(6):
            table.register(IPAddress(HOME.value + offset), COA,
                           now=0.0, lifetime=10.0 if offset % 2 else 1000.0)
        snapshot = table.active(now=0.0)
        for binding in snapshot:
            table.prune(now=500.0)  # expires the short-lived half
            assert binding.home_address is not None
        assert len(table) == 3
        assert table.expirations == 3

    def test_earliest_expiry_sees_block_floor(self):
        table, block = _block_table(now=0.0, lifetime=100.0)
        assert table.earliest_expiry() == 100.0
        table.register(IPAddress("10.9.0.1"), COA, now=0.0, lifetime=40.0)
        assert table.earliest_expiry() == 40.0
        # A dead block contributes nothing.
        table.prune(now=200.0)
        assert table.earliest_expiry(horizon=999.0) == 999.0

    def test_flush_counts_block_entries(self):
        table, _ = _block_table(count=5)
        table.register(IPAddress("10.9.0.1"), COA, now=0.0)
        assert table.flush() == 6
        assert len(table) == 0
        assert table.pool_stats()["blocks"] == 0

    def test_peek_reads_without_expiring(self):
        table, block = _block_table(now=0.0, lifetime=100.0)
        target = IPAddress(HOME.value)
        binding = table.peek(target)
        assert binding is not None and binding.lifetime == 100.0
        assert block.live == 8  # peek never kills
