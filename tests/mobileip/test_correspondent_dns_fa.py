"""Tests for correspondent hosts, the DNS extension, and foreign agents."""

import pytest

from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.mobileip import Awareness, Resolver
from repro.netsim import IPAddress
from repro.netsim.packet import IPProto


class TestConventionalCorrespondent:
    def test_cannot_decapsulate(self):
        scenario = build_scenario(seed=71, ch_awareness=Awareness.CONVENTIONAL,
                                  visited_filtering=False)
        assert scenario.ch.tunnel is None
        # An Out-DE tunnel packet sent at it produces a proto-unreachable
        # (exercised in the mobile-host ICMP test); here just check that
        # a tunneled packet is not delivered as data.
        got = []
        sock = scenario.ch.stack.udp_socket(5000)
        sock.on_receive(lambda *a: got.append(a))
        from repro.core.modes import AddressPlan, OutMode, build_outgoing
        from repro.transport import UDPDatagram

        plan = AddressPlan(MH_HOME_ADDRESS, scenario.mh.care_of,
                           scenario.ha_ip, scenario.ch_ip)
        datagram = UDPDatagram(6000, 5000, "x", 10)
        outer = build_outgoing(OutMode.OUT_DE, plan, payload=datagram,
                               payload_size=datagram.size, proto=IPProto.UDP)
        # Replace inner proto with UDP but keep tunnel outer proto.
        scenario.mh.ip_send(outer, bypass_overrides=True)
        scenario.sim.run_for(5)
        assert got == []

    def test_ignores_care_of_advisory(self):
        scenario = build_scenario(seed=72, ch_awareness=Awareness.CONVENTIONAL,
                                  notify_correspondents=True)
        sock = scenario.mh.stack.udp_socket(8000)
        sock.on_receive(lambda *a: None)
        ch_sock = scenario.ch.stack.udp_socket()
        for index in range(3):
            scenario.sim.events.schedule(
                index * 1.0, lambda: ch_sock.sendto("x", 10, MH_HOME_ADDRESS, 8000)
            )
        scenario.sim.run_for(15)
        # Advisory was sent but the conventional host keeps triangling.
        assert scenario.ha.advisories_sent >= 1
        assert len(scenario.ch.bindings) == 0
        assert scenario.ha.packets_tunneled == 3


class TestDecapCapableCorrespondent:
    def test_receives_out_de(self):
        from repro.core import ProbeStrategy

        scenario = build_scenario(seed=73, ch_awareness=Awareness.DECAP_CAPABLE,
                                  strategy=ProbeStrategy.AGGRESSIVE_FIRST)
        got = []
        sock = scenario.ch.stack.udp_socket(5000)
        sock.on_receive(lambda d, s, ip, p: got.append((d, str(ip))))
        # Mark Out-DH failed so the engine lands on Out-DE.
        scenario.mh.engine.cache.mode_for(scenario.ch_ip)
        scenario.mh.engine.cache.on_suspect(scenario.ch_ip)
        mh_sock = scenario.mh.stack.udp_socket()
        mh_sock.sendto("tunneled", 10, scenario.ch_ip, 5000,
                       src_override=MH_HOME_ADDRESS)
        scenario.sim.run_for(5)
        assert got == [("tunneled", str(MH_HOME_ADDRESS))]
        assert scenario.ch.tunnel.decapsulated_count == 1

    def test_paranoid_host_refuses_unknown_peers(self):
        """§6.1: automatic decapsulation weakens address-trust; the
        paranoid knob refuses tunnels from unknown peers."""
        from repro.core import ProbeStrategy

        scenario = build_scenario(seed=74, ch_awareness=Awareness.DECAP_CAPABLE,
                                  strategy=ProbeStrategy.AGGRESSIVE_FIRST)
        scenario.ch.require_known_peer = True
        got = []
        sock = scenario.ch.stack.udp_socket(5000)
        sock.on_receive(lambda *a: got.append(a))
        scenario.mh.engine.cache.mode_for(scenario.ch_ip)
        scenario.mh.engine.cache.on_suspect(scenario.ch_ip)
        mh_sock = scenario.mh.stack.udp_socket()
        mh_sock.sendto("tunneled", 10, scenario.ch_ip, 5000,
                       src_override=MH_HOME_ADDRESS)
        scenario.sim.run_for(5)
        assert got == []
        assert scenario.ch.decap_refused == 1

    def test_paranoid_host_accepts_known_peer(self):
        from repro.core import ProbeStrategy

        scenario = build_scenario(seed=75, ch_awareness=Awareness.MOBILE_AWARE,
                                  strategy=ProbeStrategy.AGGRESSIVE_FIRST)
        scenario.ch.require_known_peer = True
        scenario.ch.learn_binding(MH_HOME_ADDRESS, scenario.mh.care_of, 300.0)
        got = []
        sock = scenario.ch.stack.udp_socket(5000)
        sock.on_receive(lambda d, s, ip, p: got.append(d))
        scenario.mh.engine.cache.mode_for(scenario.ch_ip)
        scenario.mh.engine.cache.on_suspect(scenario.ch_ip)
        mh_sock = scenario.mh.stack.udp_socket()
        mh_sock.sendto("tunneled", 10, scenario.ch_ip, 5000,
                       src_override=MH_HOME_ADDRESS)
        scenario.sim.run_for(5)
        assert got == ["tunneled"]


class TestMobileAwareCorrespondent:
    def test_advisory_installs_binding_and_upgrades_to_in_de(self):
        """Figure 5 via the ICMP mechanism."""
        scenario = build_scenario(seed=76, ch_awareness=Awareness.MOBILE_AWARE,
                                  notify_correspondents=True)
        sock = scenario.mh.stack.udp_socket(8000)
        sock.on_receive(lambda *a: None)
        ch_sock = scenario.ch.stack.udp_socket()
        for index in range(4):
            scenario.sim.events.schedule(
                index * 1.0, lambda: ch_sock.sendto("x", 10, MH_HOME_ADDRESS, 8000)
            )
        scenario.sim.run_for(20)
        assert scenario.ha.packets_tunneled == 1      # only the first
        assert scenario.ch.direct_tunneled == 3       # the rest went In-DE

    def test_binding_expiry_falls_back_to_triangle(self):
        scenario = build_scenario(seed=77, ch_awareness=Awareness.MOBILE_AWARE)
        scenario.ch.learn_binding(MH_HOME_ADDRESS, scenario.mh.care_of,
                                  lifetime=2.0)
        sock = scenario.mh.stack.udp_socket(8000)
        got = []
        sock.on_receive(lambda d, *a: got.append(d))
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.sendto("fresh", 10, MH_HOME_ADDRESS, 8000)
        scenario.sim.run_for(5)   # binding now expired
        ch_sock.sendto("stale", 10, MH_HOME_ADDRESS, 8000)
        scenario.sim.run_for(10)
        assert got == ["fresh", "stale"]
        assert scenario.ch.direct_tunneled == 1
        assert scenario.ha.packets_tunneled == 1

    def test_same_segment_uses_in_dh(self):
        """§7.2: binding's care-of on my own segment -> one-hop In-DH."""
        scenario = build_scenario(seed=78, ch_awareness=Awareness.MOBILE_AWARE,
                                  ch_in_visited_lan=True)
        scenario.ch.learn_binding(MH_HOME_ADDRESS, scenario.mh.care_of, 300.0)
        got = []
        sock = scenario.mh.stack.udp_socket(8000)
        sock.on_receive(lambda d, s, ip, p: got.append(d))
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.sendto("one-hop", 10, MH_HOME_ADDRESS, 8000)
        scenario.sim.run_for(5)
        assert got == ["one-hop"]
        assert scenario.ch.link_directed == 1
        assert scenario.ch.direct_tunneled == 0
        assert scenario.ha.packets_tunneled == 0
        # The mobile host received it unencapsulated at its home address.
        assert scenario.mh.tunnel.decapsulated_count == 0


class TestDNSExtension:
    def build(self, want_tmp=True, register_tmp=True, seed=79):
        scenario = build_scenario(seed=seed, ch_awareness=Awareness.MOBILE_AWARE,
                                  with_dns=True)
        if register_tmp:
            scenario.dns.register_temporary(
                "mh.home.example", scenario.mh.care_of, lifetime=120.0
            )
        resolver = Resolver(scenario.ch.stack, scenario.dns_ip, want_tmp=want_tmp)
        return scenario, resolver

    def test_smart_resolver_sees_temporary_record(self):
        scenario, resolver = self.build()
        answers = []
        resolver.lookup("mh.home.example", answers.append)
        scenario.sim.run_for(5)
        assert len(answers) == 1
        assert answers[0].address == MH_HOME_ADDRESS
        assert answers[0].temporary == scenario.mh.care_of

    def test_conventional_resolver_gets_only_a_record(self):
        scenario, resolver = self.build(want_tmp=False)
        answers = []
        resolver.lookup("mh.home.example", answers.append)
        scenario.sim.run_for(5)
        assert answers[0].address == MH_HOME_ADDRESS
        assert answers[0].temporary is None

    def test_tmp_record_expires(self):
        scenario, resolver = self.build()
        scenario.dns.register_temporary("mh.home.example", scenario.mh.care_of,
                                        lifetime=1.0)
        answers = []
        scenario.sim.run_for(5)  # past the lifetime
        resolver.lookup("mh.home.example", answers.append)
        scenario.sim.run_for(5)
        assert answers[0].temporary is None

    def test_withdraw_temporary(self):
        scenario, resolver = self.build()
        scenario.dns.withdraw_temporary("mh.home.example")
        answers = []
        resolver.lookup("mh.home.example", answers.append)
        scenario.sim.run_for(5)
        assert answers[0].temporary is None

    def test_unknown_name(self):
        scenario, resolver = self.build()
        answers = []
        resolver.lookup("nobody.example", answers.append)
        scenario.sim.run_for(5)
        assert answers[0].address is None

    def test_tmp_registration_requires_a_record(self):
        scenario, _resolver = self.build(register_tmp=False)
        with pytest.raises(KeyError):
            scenario.dns.register_temporary("ghost.example", IPAddress("1.2.3.4"))

    def test_lookup_enables_in_de(self):
        """§3.2's full loop: DNS TMP record -> binding -> direct send."""
        scenario, resolver = self.build(seed=80)
        got = []
        sock = scenario.mh.stack.udp_socket(8000)
        sock.on_receive(lambda d, *a: got.append(d))

        def on_answer(answer):
            if answer.temporary is not None:
                scenario.ch.learn_binding(answer.name and MH_HOME_ADDRESS,
                                          answer.temporary, answer.tmp_lifetime)
            ch_sock = scenario.ch.stack.udp_socket()
            ch_sock.sendto("found-you", 10, MH_HOME_ADDRESS, 8000)

        resolver.lookup("mh.home.example", on_answer)
        scenario.sim.run_for(10)
        assert got == ["found-you"]
        assert scenario.ha.packets_tunneled == 0
        assert scenario.ch.direct_tunneled == 1


class TestForeignAgent:
    def test_registration_relayed_and_accepted(self):
        scenario = build_scenario(seed=81, ch_awareness=None,
                                  with_foreign_agent=True)
        assert scenario.mh.registered
        binding = scenario.ha.bindings.lookup(MH_HOME_ADDRESS, scenario.sim.now)
        assert binding is not None
        assert binding.care_of_address == scenario.fa.care_of_address

    def test_incoming_via_fa_final_hop(self):
        """HA tunnels to the FA; FA decapsulates and link-delivers."""
        scenario = build_scenario(seed=82, ch_awareness=Awareness.CONVENTIONAL,
                                  with_foreign_agent=True)
        got = []
        sock = scenario.mh.stack.udp_socket(8000)
        sock.on_receive(lambda d, s, ip, p: got.append(d))
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.sendto("via-fa", 10, MH_HOME_ADDRESS, 8000)
        scenario.sim.run_for(10)
        assert got == ["via-fa"]
        assert scenario.fa.packets_delivered_final_hop == 1
        assert scenario.ha.packets_tunneled == 1

    def test_outgoing_via_fa_plain_routing(self):
        """FA mode restricts the MH to plain sends (paper §2's point
        about foreign agents limiting optimization freedom)."""
        scenario = build_scenario(seed=83, ch_awareness=Awareness.CONVENTIONAL,
                                  with_foreign_agent=True,
                                  visited_filtering=False)
        got = []
        sock = scenario.ch.stack.udp_socket(5000)
        sock.on_receive(lambda d, s, ip, p: got.append(str(ip)))
        mh_sock = scenario.mh.stack.udp_socket()
        mh_sock.sendto("x", 10, scenario.ch_ip, 5000,
                       src_override=MH_HOME_ADDRESS)
        scenario.sim.run_for(10)
        assert got == [str(MH_HOME_ADDRESS)]
        assert scenario.mh.tunnel.encapsulated_count == 0

    def test_outgoing_via_fa_killed_by_filtering(self):
        """...and therefore dies when the visited domain filters."""
        scenario = build_scenario(seed=84, ch_awareness=Awareness.CONVENTIONAL,
                                  with_foreign_agent=True,
                                  visited_filtering=True)
        got = []
        sock = scenario.ch.stack.udp_socket(5000)
        sock.on_receive(lambda d, s, ip, p: got.append(str(ip)))
        mh_sock = scenario.mh.stack.udp_socket()
        mh_sock.sendto("x", 10, scenario.ch_ip, 5000,
                       src_override=MH_HOME_ADDRESS)
        scenario.sim.run_for(10)
        assert got == []
        drops = scenario.sim.trace.drops_by_reason
        assert drops.get("source-address-filter:foreign-source-leaving-site", 0) >= 1

    def test_advertisements_broadcast(self):
        scenario = build_scenario(seed=85, ch_awareness=None,
                                  with_foreign_agent=True)
        scenario.fa._schedule_advertisement()
        scenario.sim.run_for(1)
        assert scenario.fa.advertisements_sent >= 1
