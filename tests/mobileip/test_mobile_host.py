"""Tests for the mobile host: movement, registration, route override,
mode mechanics, and receive paths."""


from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.core import ProbeStrategy
from repro.core.policy import MobilityPolicyTable
from repro.mobileip import Awareness


class TestMovement:
    def test_move_acquires_care_of_and_registers(self):
        scenario = build_scenario(seed=41, ch_awareness=None)
        assert scenario.mh.registered
        assert scenario.mh.care_of is not None
        assert scenario.visited.prefix.contains(scenario.mh.care_of)
        assert len(scenario.ha.bindings) == 1

    def test_home_address_kept_as_secondary_while_away(self):
        scenario = build_scenario(seed=42, ch_awareness=None)
        assert scenario.mh.owns_address(MH_HOME_ADDRESS)

    def test_return_home_deregisters_and_reclaims(self):
        scenario = build_scenario(seed=43, ch_awareness=None)
        scenario.mh.return_home(scenario.net, "home")
        scenario.sim.run(until=scenario.sim.now + 5)
        assert scenario.mh.at_home
        assert scenario.mh.care_of is None
        assert len(scenario.ha.bindings) == 0
        # Reachable again by plain IP.
        replies = []
        scenario.ha.ping(MH_HOME_ADDRESS, replies.append)
        scenario.sim.run(until=scenario.sim.now + 5)
        assert len(replies) == 1

    def test_second_move_updates_binding(self):
        scenario = build_scenario(seed=44, ch_awareness=None)
        first_coa = scenario.mh.care_of
        scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=2)
        second_coa = scenario.mh.move_to(scenario.net, "visited2")
        scenario.sim.run(until=scenario.sim.now + 5)
        assert second_coa != first_coa
        binding = scenario.ha.bindings.lookup(MH_HOME_ADDRESS, scenario.sim.now)
        assert binding.care_of_address == second_coa

    def test_care_of_released_on_departure(self):
        scenario = build_scenario(seed=45, ch_awareness=None)
        first_coa = scenario.mh.care_of
        scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=2)
        scenario.mh.move_to(scenario.net, "visited2")
        assert first_coa not in scenario.visited.allocator.in_use

    def test_moves_counted_and_engine_reset(self):
        scenario = build_scenario(seed=46, ch_awareness=None)
        assert scenario.mh.moves == 1
        scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=2)
        scenario.mh.move_to(scenario.net, "visited2")
        assert scenario.mh.moves == 2


class TestRegistrationClient:
    def test_registration_retries_until_reply(self):
        scenario = build_scenario(seed=47, ch_awareness=None,
                                  mobile_starts_away=False)
        # Unplug the home agent before the move so the first requests die.
        ha_iface = scenario.ha.interfaces["eth0"]
        ha_iface.up = False
        scenario.sim.events.schedule(2.5, lambda: setattr(ha_iface, "up", True))
        scenario.mh.move_to(scenario.net, "visited")
        scenario.sim.run_for(30)
        assert scenario.mh.registered
        assert scenario.mh.registration_attempts >= 3

    def test_registration_failure_reported(self):
        scenario = build_scenario(seed=48, ch_awareness=None,
                                  mobile_starts_away=False)
        scenario.ha.interfaces["eth0"].up = False
        failures = []
        scenario.mh.on_registration_failed = failures.append
        scenario.mh.move_to(scenario.net, "visited")
        scenario.sim.run_for(60)
        assert failures == ["registration-timeout"]
        assert not scenario.mh.registered

    def test_retries_back_off_exponentially(self):
        scenario = build_scenario(seed=51, ch_awareness=None,
                                  mobile_starts_away=False)
        scenario.ha.interfaces["eth0"].up = False
        start = scenario.sim.now
        scenario.mh.move_to(scenario.net, "visited")
        scenario.sim.run_for(40)
        sends = [
            entry.time - start for entry in scenario.sim.trace.entries
            if entry.node == "mh" and entry.action == "send"
            and entry.dst == str(scenario.ha_ip) and "UDP" in entry.packet_repr
        ]
        assert len(sends) == 5  # original + REGISTRATION_MAX_RETRIES
        gaps = [b - a for a, b in zip(sends, sends[1:])]
        # First retry after exactly the base interval (no jitter draw in
        # the common path); each later gap doubles, plus up to +10%.
        assert gaps[0] == 1.0
        for index, gap in enumerate(gaps[1:], start=1):
            nominal = 2.0 ** (index)
            assert nominal <= gap <= nominal * 1.1 + 1e-9
        assert gaps == sorted(gaps)

    def test_giveup_clears_retry_state_and_counts_failure(self):
        scenario = build_scenario(seed=52, ch_awareness=None,
                                  mobile_starts_away=False)
        scenario.ha.interfaces["eth0"].up = False
        scenario.mh.move_to(scenario.net, "visited")
        scenario.sim.run_for(40)  # give-up lands around t=31
        mh = scenario.mh
        assert mh.registration_failures == 1
        assert not mh.registered
        # The stale retry handle is cleared on give-up, so a later
        # cancel cannot spuriously cancel an already-run event.
        assert mh._pending_retry is None
        assert mh._pending_ident is None
        counter = scenario.sim.metrics.get("mh.registration_failures", node="mh")
        assert counter.value == 1
        mh._cancel_pending_registration()  # harmless on cleared state

    def test_reregisters_after_giveup_when_ha_returns(self):
        scenario = build_scenario(seed=53, ch_awareness=None,
                                  mobile_starts_away=False)
        ha_iface = scenario.ha.interfaces["eth0"]
        ha_iface.up = False
        scenario.mh.move_to(scenario.net, "visited")
        # Home agent returns well after the first cycle's give-up (~31s);
        # the post-give-up re-registration timer must pick it back up.
        scenario.sim.events.schedule(40.0, lambda: setattr(ha_iface, "up", True))
        scenario.sim.run_for(80)
        assert scenario.mh.registration_failures == 1
        assert scenario.mh.registered

    def test_registration_uses_temporary_address(self):
        """§6.4: registration itself is Out-DT — verify on the wire."""
        scenario = build_scenario(seed=49, ch_awareness=None,
                                  mobile_starts_away=False)
        scenario.mh.move_to(scenario.net, "visited")
        scenario.sim.run_for(10)
        reg_sends = [
            entry for entry in scenario.sim.trace.entries
            if entry.node == "mh" and entry.action == "send"
            and entry.dst == str(scenario.ha_ip) and "UDP" in entry.packet_repr
        ]
        assert reg_sends
        assert all(entry.src == str(scenario.mh.care_of) for entry in reg_sends)

    def test_on_registered_callback(self):
        scenario = build_scenario(seed=50, ch_awareness=None,
                                  mobile_starts_away=False)
        replies = []
        scenario.mh.on_registered = replies.append
        scenario.mh.move_to(scenario.net, "visited")
        scenario.sim.run_for(10)
        assert len(replies) == 1 and replies[0].accepted


class TestRouteOverride:
    def test_at_home_no_interception(self):
        scenario = build_scenario(seed=51, mobile_starts_away=False,
                                  ch_awareness=Awareness.CONVENTIONAL)
        got = []
        sock = scenario.ch.stack.udp_socket(5000)
        sock.on_receive(lambda d, s, ip, p: got.append(str(ip)))
        mh_sock = scenario.mh.stack.udp_socket()
        mh_sock.sendto("x", 10, scenario.ch_ip, 5000)
        scenario.sim.run_for(5)
        assert got == [str(MH_HOME_ADDRESS)]
        assert scenario.mh.tunnel.encapsulated_count == 0

    def test_privacy_mode_tunnels_everything(self):
        scenario = build_scenario(seed=52, privacy=True,
                                  ch_awareness=Awareness.CONVENTIONAL)
        got = []
        # Port 53 would normally take the Out-DT shortcut; privacy
        # overrides the heuristic and uses the home address anyway.
        sock = scenario.ch.stack.udp_socket(53)
        sock.on_receive(lambda d, s, ip, p: got.append(str(ip)))
        mh_sock = scenario.mh.stack.udp_socket()
        mh_sock.sendto("x", 10, scenario.ch_ip, 53)
        scenario.sim.run_for(10)
        assert got == [str(MH_HOME_ADDRESS)]
        assert scenario.mh.tunnel.encapsulated_count >= 1

    def test_out_dt_bypasses_mobile_ip(self):
        scenario = build_scenario(seed=53, ch_awareness=Awareness.CONVENTIONAL)
        got = []
        sock = scenario.ch.stack.udp_socket(53)
        sock.on_receive(lambda d, s, ip, p: got.append(str(ip)))
        mh_sock = scenario.mh.stack.udp_socket()
        mh_sock.sendto("query", 30, scenario.ch_ip, 53)
        scenario.sim.run_for(5)
        assert got == [str(scenario.mh.care_of)]
        assert scenario.mh.tunnel.encapsulated_count == 0

    def test_out_ie_wire_format(self):
        """Figure 7 on the wire: s=COA, d=HA, S=home, D=CH."""
        policy = MobilityPolicyTable()  # default pessimistic -> Out-IE
        scenario = build_scenario(seed=54, policy=policy,
                                  ch_awareness=Awareness.CONVENTIONAL)
        captured = []
        original = scenario.mh.tunnel.send_encapsulated

        def spy(inner, outer_src, outer_dst, scheme=None):
            outer = original(inner, outer_src, outer_dst, scheme)
            captured.append(outer)
            return outer

        scenario.mh.tunnel.send_encapsulated = spy
        mh_sock = scenario.mh.stack.udp_socket()
        mh_sock.sendto("x", 10, scenario.ch_ip, 9999,
                       src_override=MH_HOME_ADDRESS)
        scenario.sim.run_for(5)
        assert len(captured) == 1
        outer = captured[0]
        assert outer.src == scenario.mh.care_of
        assert outer.dst == scenario.ha_ip
        assert outer.innermost.src == MH_HOME_ADDRESS
        assert outer.innermost.dst == scenario.ch_ip

    def test_same_segment_uses_link_direct(self):
        """Row C: CH on the visited LAN, one link-layer hop, no routers."""
        scenario = build_scenario(seed=55, ch_awareness=Awareness.CONVENTIONAL,
                                  ch_in_visited_lan=True,
                                  strategy=ProbeStrategy.CONSERVATIVE_FIRST)
        got = []
        sock = scenario.ch.stack.udp_socket(7000)
        sock.on_receive(lambda d, s, ip, p: got.append(str(ip)))
        mh_sock = scenario.mh.stack.udp_socket()
        mh_sock.sendto("x", 10, scenario.ch_ip, 7000,
                       src_override=MH_HOME_ADDRESS)
        scenario.sim.run_for(5)
        assert got == [str(MH_HOME_ADDRESS)]
        # No router forwarded it and nothing was encapsulated.
        assert scenario.mh.tunnel.encapsulated_count == 0
        lan_name = scenario.visited.lan_segment_name
        deliveries = [e for e in scenario.sim.trace.entries
                      if e.action == "deliver" and e.node == "ch"]
        assert deliveries and all("forward" != e.action for e in deliveries)

    def test_registration_traffic_never_intercepted(self):
        scenario = build_scenario(seed=56, ch_awareness=None)
        # Registration completed despite the override being installed.
        assert scenario.mh.registered
        assert scenario.mh.tunnel.encapsulated_count == 0


class TestReceivePaths:
    def test_in_ie_reception(self):
        scenario = build_scenario(seed=57, ch_awareness=Awareness.CONVENTIONAL)
        got = []
        sock = scenario.mh.stack.udp_socket(8000)
        sock.on_receive(lambda d, s, ip, p: got.append(d))
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.sendto("via-ha", 20, MH_HOME_ADDRESS, 8000)
        scenario.sim.run_for(10)
        assert got == ["via-ha"]
        assert scenario.mh.tunnel.decapsulated_count == 1

    def test_in_de_reception_learns_awareness(self):
        scenario = build_scenario(seed=58, ch_awareness=Awareness.MOBILE_AWARE)
        scenario.ch.learn_binding(MH_HOME_ADDRESS, scenario.mh.care_of, 300.0)
        got = []
        sock = scenario.mh.stack.udp_socket(8000)
        sock.on_receive(lambda d, s, ip, p: got.append(d))
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.sendto("direct", 20, MH_HOME_ADDRESS, 8000)
        scenario.sim.run_for(10)
        assert got == ["direct"]
        assert scenario.ha.packets_tunneled == 0
        knowledge = scenario.mh.engine.knowledge_for(scenario.ch_ip)
        assert knowledge.mobile_aware is True

    def test_in_dt_reception(self):
        scenario = build_scenario(seed=59, ch_awareness=Awareness.CONVENTIONAL)
        got = []
        sock = scenario.mh.stack.udp_socket(8000)
        sock.on_receive(lambda d, s, ip, p: got.append((d, str(ip))))
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.sendto("to-coa", 20, scenario.mh.care_of, 8000)
        scenario.sim.run_for(10)
        assert got == [("to-coa", str(scenario.ch_ip))]

    def test_icmp_proto_unreachable_teaches_engine(self):
        """Extension: a CH that cannot decapsulate says so via ICMP."""
        scenario = build_scenario(seed=60, ch_awareness=Awareness.CONVENTIONAL,
                                  strategy=ProbeStrategy.AGGRESSIVE_FIRST,
                                  visited_filtering=False)
        # Force Out-DE by marking DH failed.
        scenario.mh.engine.cache.mode_for(scenario.ch_ip)
        scenario.mh.engine.cache.on_suspect(scenario.ch_ip)
        mh_sock = scenario.mh.stack.udp_socket()
        mh_sock.sendto("x", 10, scenario.ch_ip, 9999,
                       src_override=MH_HOME_ADDRESS)
        scenario.sim.run_for(10)
        assert scenario.mh.engine.knowledge_for(scenario.ch_ip).decap_capable is False
