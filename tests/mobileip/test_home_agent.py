"""Tests for the home agent: registration service, proxy-ARP capture,
In-IE forwarding, reverse tunneling, advisories."""

import pytest

from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.mobileip import (
    MOBILE_IP_PORT,
    HomeAgent,
    RegistrationRequest,
    ReplyCode,
)
from repro.netsim import Internet, IPAddress, Node, Packet, Simulator
from repro.netsim.encap import encapsulate
from repro.netsim.packet import IPProto
from repro.transport import TransportStack


@pytest.fixture
def stage():
    """Home agent on its LAN plus an outside host, no mobile host yet."""
    sim = Simulator(seed=21)
    net = Internet(sim, backbone_size=2)
    home = net.add_domain("home", "10.1.0.0/16", attach_at=0)
    net.add_domain("outside", "10.2.0.0/16", attach_at=1, source_filtering=False)
    ha = HomeAgent("ha", sim, home_network=home.prefix)
    ha_ip = net.add_host("home", ha)
    remote = Node("remote", sim)
    remote_ip = net.add_host("outside", remote)
    return sim, net, ha, ha_ip, remote, remote_ip


def register(sim, ha_ip, remote, home_addr, care_of, lifetime=300.0, ident=1):
    """Send a registration from an outside node, return replies seen."""
    stack = TransportStack(remote)
    socket = stack.udp_socket(MOBILE_IP_PORT)
    replies = []
    socket.on_receive(lambda d, s, ip, p: replies.append(d))
    request = RegistrationRequest(home_addr, care_of, lifetime, ident)
    socket.sendto(request, request.size, ha_ip, MOBILE_IP_PORT)
    sim.run(until=sim.now + 5)
    return replies


class TestRegistrationService:
    def test_accepts_home_network_address(self, stage):
        sim, _net, ha, ha_ip, remote, remote_ip = stage
        replies = register(sim, ha_ip, remote, MH_HOME_ADDRESS, remote_ip)
        assert len(replies) == 1
        assert replies[0].accepted
        assert len(ha.bindings) == 1

    def test_denies_foreign_home_address(self, stage):
        sim, _net, ha, ha_ip, remote, remote_ip = stage
        replies = register(sim, ha_ip, remote, IPAddress("10.9.0.1"), remote_ip)
        assert replies[0].code is ReplyCode.DENIED_UNKNOWN_HOME_ADDRESS
        assert len(ha.bindings) == 0

    def test_deregistration_clears_binding(self, stage):
        sim, _net, ha, ha_ip, remote, remote_ip = stage
        register(sim, ha_ip, remote, MH_HOME_ADDRESS, remote_ip, ident=1)
        replies = register(sim, ha_ip, remote, MH_HOME_ADDRESS, remote_ip,
                           lifetime=0.0, ident=2)
        assert replies[-1].accepted
        assert len(ha.bindings) == 0

    def test_binding_cap(self, stage):
        sim, _net, ha, ha_ip, remote, remote_ip = stage
        ha.max_bindings = 1
        register(sim, ha_ip, remote, IPAddress("10.1.0.100"), remote_ip, ident=1)
        replies = register(sim, ha_ip, remote, IPAddress("10.1.0.101"), remote_ip,
                           ident=2)
        assert replies[-1].code is ReplyCode.DENIED_TOO_MANY_BINDINGS

    def test_refresh_not_blocked_by_cap(self, stage):
        sim, _net, ha, ha_ip, remote, remote_ip = stage
        ha.max_bindings = 1
        register(sim, ha_ip, remote, MH_HOME_ADDRESS, remote_ip, ident=1)
        replies = register(sim, ha_ip, remote, MH_HOME_ADDRESS, remote_ip, ident=2)
        assert replies[-1].accepted

    def test_proxy_arp_installed_on_registration(self, stage):
        sim, _net, ha, ha_ip, remote, remote_ip = stage
        register(sim, ha_ip, remote, MH_HOME_ADDRESS, remote_ip)
        iface = ha._home_iface()
        assert MH_HOME_ADDRESS in ha.arp.proxies_on(iface)

    def test_proxy_arp_removed_on_deregistration(self, stage):
        sim, _net, ha, ha_ip, remote, remote_ip = stage
        register(sim, ha_ip, remote, MH_HOME_ADDRESS, remote_ip, ident=1)
        register(sim, ha_ip, remote, MH_HOME_ADDRESS, remote_ip, lifetime=0.0,
                 ident=2)
        assert MH_HOME_ADDRESS not in ha.arp.proxies_on(ha._home_iface())


class TestCaptureAndForward:
    def test_captured_packet_tunneled_to_care_of(self, stage):
        sim, net, ha, ha_ip, remote, remote_ip = stage
        register(sim, ha_ip, remote, MH_HOME_ADDRESS, remote_ip)
        # The remote (acting as its own care-of endpoint) should get the
        # tunneled packet when a third party on the home LAN sends to
        # the home address.
        arrivals = []
        remote.register_proto_handler(IPProto.IPIP, arrivals.append)
        # A host on the home LAN sends to the absent mobile host.
        neighbor = Node("neighbor", sim)
        neighbor_ip = net.add_host("home", neighbor)
        packet = Packet(src=neighbor_ip, dst=MH_HOME_ADDRESS, proto=IPProto.UDP,
                        payload="x", payload_size=50)
        neighbor.ip_send(packet)
        sim.run(until=sim.now + 5)
        assert len(arrivals) == 1
        assert arrivals[0].innermost.dst == MH_HOME_ADDRESS
        assert ha.packets_tunneled == 1

    def test_expired_binding_stops_capture(self, stage):
        sim, net, ha, ha_ip, remote, remote_ip = stage
        register(sim, ha_ip, remote, MH_HOME_ADDRESS, remote_ip, lifetime=2.0)
        # Let the binding expire.
        sim.events.schedule(10.0, lambda: None)
        sim.run()
        neighbor = Node("neighbor", sim)
        neighbor_ip = net.add_host("home", neighbor)
        packet = Packet(src=neighbor_ip, dst=MH_HOME_ADDRESS, proto=IPProto.UDP,
                        payload="x", payload_size=50)
        neighbor.ip_send(packet)
        sim.run(until=sim.now + 5)
        assert ha.packets_tunneled == 0

    def test_reverse_tunnel_forwarded_on_behalf(self, stage):
        """Figure 3's return half: Out-IE inner packets are re-sent by
        the HA."""
        sim, net, ha, ha_ip, remote, remote_ip = stage
        neighbor = Node("neighbor", sim)
        neighbor_ip = net.add_host("home", neighbor)
        seen = []
        neighbor.register_proto_handler(IPProto.UDP, seen.append)
        inner = Packet(src=MH_HOME_ADDRESS, dst=neighbor_ip, proto=IPProto.UDP,
                       payload="x", payload_size=50)
        outer = encapsulate(inner, remote_ip, ha_ip)
        remote.ip_send(outer)
        sim.run(until=sim.now + 5)
        assert len(seen) == 1
        assert seen[0].src == MH_HOME_ADDRESS
        assert ha.packets_reverse_forwarded == 1

    def test_mobile_to_mobile_retunneled(self, stage):
        """A reverse-tunneled inner packet addressed to another
        registered mobile host is re-encapsulated to its care-of."""
        sim, _net, ha, ha_ip, remote, remote_ip = stage
        other_home = IPAddress("10.1.0.11")
        register(sim, ha_ip, remote, other_home, remote_ip)
        tunnels = []
        remote.register_proto_handler(IPProto.IPIP, tunnels.append)
        inner = Packet(src=MH_HOME_ADDRESS, dst=other_home, proto=IPProto.UDP,
                       payload="x", payload_size=50)
        outer = encapsulate(inner, remote_ip, ha_ip)
        remote.ip_send(outer)
        sim.run(until=sim.now + 5)
        assert len(tunnels) == 1
        assert tunnels[0].innermost.dst == other_home


class TestAdvisories:
    def test_advisory_sent_once_per_interval(self):
        from repro.mobileip import Awareness

        scenario = build_scenario(
            seed=31, ch_awareness=Awareness.CONVENTIONAL,
            notify_correspondents=True,
        )
        mh_sock = scenario.mh.stack.udp_socket(8000)
        mh_sock.on_receive(lambda *a: None)
        ch_sock = scenario.ch.stack.udp_socket(8001)
        for index in range(3):
            scenario.sim.events.schedule(
                index * 0.5,
                lambda: ch_sock.sendto("x", 10, MH_HOME_ADDRESS, 8000),
            )
        scenario.sim.run(until=scenario.sim.now + 10)
        assert scenario.ha.packets_tunneled == 3
        assert scenario.ha.advisories_sent == 1   # rate-limited

    def test_no_advisory_for_local_correspondents(self):
        scenario = build_scenario(seed=32, ch_awareness=None,
                                  notify_correspondents=True)
        neighbor = Node("neighbor", scenario.sim)
        neighbor_ip = scenario.net.add_host("home", neighbor)
        packet = Packet(src=neighbor_ip, dst=MH_HOME_ADDRESS, proto=IPProto.UDP,
                        payload="x", payload_size=20)
        neighbor.ip_send(packet)
        scenario.sim.run(until=scenario.sim.now + 5)
        assert scenario.ha.packets_tunneled == 1
        assert scenario.ha.advisories_sent == 0
