"""Tests for the movement models."""

import pytest

from repro.analysis import RandomWaypoint, Tour, build_scenario
from repro.apps import TelnetServer, TelnetSession
from repro.mobileip import Awareness


@pytest.fixture
def world():
    scenario = build_scenario(seed=1301, ch_awareness=Awareness.CONVENTIONAL,
                              mobile_starts_away=False)
    scenario.net.add_domain("visit-b", "10.5.0.0/16", attach_at=2)
    scenario.net.add_domain("visit-c", "10.6.0.0/16", attach_at=3)
    return scenario


class TestTour:
    def test_follows_itinerary(self, world):
        tour = Tour(world.mh, world.net,
                    [("visited", 5.0), ("visit-b", 5.0), ("home", 5.0)])
        tour.start(initial_delay=1.0)
        world.sim.run_for(30)
        assert tour.completed
        assert [stop for _t, stop in tour.history] == [
            "visited", "visit-b", "home"]
        assert world.mh.at_home

    def test_stop_halts_midway(self, world):
        tour = Tour(world.mh, world.net,
                    [("visited", 3.0), ("visit-b", 3.0), ("visit-c", 3.0)])
        tour.start()
        world.sim.events.schedule(4.0, tour.stop)
        world.sim.run_for(30)
        assert not tour.completed
        assert len(tour.history) <= 2

    def test_timestamps_recorded(self, world):
        tour = Tour(world.mh, world.net, [("visited", 2.0), ("visit-b", 2.0)])
        tour.start(initial_delay=1.0)
        world.sim.run_for(20)
        times = [t for t, _stop in tour.history]
        assert times[0] == pytest.approx(1.0)
        assert times[1] == pytest.approx(3.0)


class TestRandomWaypoint:
    def test_never_picks_current_domain(self, world):
        walker = RandomWaypoint(world.mh, world.net,
                                ["visited", "visit-b", "visit-c"],
                                min_dwell=2.0, max_dwell=4.0)
        walker.start()
        world.sim.run_for(60)
        stops = [stop for _t, stop in walker.history]
        assert len(stops) >= 10
        for previous, current in zip(stops, stops[1:]):
            assert previous != current

    def test_deterministic_per_seed(self):
        walks = []
        for _ in range(2):
            scenario = build_scenario(seed=1302, ch_awareness=None,
                                      mobile_starts_away=False)
            scenario.net.add_domain("visit-b", "10.5.0.0/16", attach_at=2)
            walker = RandomWaypoint(scenario.mh, scenario.net,
                                    ["visited", "visit-b"],
                                    min_dwell=2.0, max_dwell=5.0)
            walker.start()
            scenario.sim.run_for(60)
            walks.append([stop for _t, stop in walker.history])
        assert walks[0] == walks[1]

    def test_registration_kept_through_walk(self, world):
        walker = RandomWaypoint(world.mh, world.net,
                                ["visited", "visit-b", "visit-c"],
                                min_dwell=3.0, max_dwell=6.0,
                                include_home=False)
        walker.start()
        world.sim.run_for(90)
        assert not world.mh.at_home
        assert world.mh.registered

    def test_session_survives_random_walk(self, world):
        TelnetServer(world.ch.stack)
        walker = RandomWaypoint(world.mh, world.net,
                                ["visited", "visit-b", "visit-c"],
                                min_dwell=4.0, max_dwell=8.0,
                                include_home=False)
        walker.start(initial_delay=0.5)
        world.sim.run_for(2)
        session = TelnetSession(world.mh.stack, world.ch_ip,
                                think_time=2.0, keystrokes=15)
        world.sim.run_for(200)
        assert session.survived
        assert session.echoes_received == 15
        assert len(walker.history) >= 3

    def test_parameter_validation(self, world):
        with pytest.raises(ValueError):
            RandomWaypoint(world.mh, world.net, [], min_dwell=1, max_dwell=2)
        with pytest.raises(ValueError):
            RandomWaypoint(world.mh, world.net, ["visited"],
                           min_dwell=5, max_dwell=2)
