"""Tests for metrics, reporting, and the scenario builder itself."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    TextTable,
    build_scenario,
    delivery_ratio,
    overhead_fraction,
    path_stretch,
    render_kv,
    summarize,
)
from repro.mobileip import Awareness


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.median == 3.0

    def test_single_value(self):
        summary = summarize([7.0])
        assert summary.median == 7.0
        assert summary.p95 == 7.0

    def test_p95_interpolates(self):
        summary = summarize(range(101))
        assert summary.p95 == 95.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9,
                              allow_nan=False), min_size=1))
    def test_invariants(self, values):
        summary = summarize(values)
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.minimum <= summary.mean <= summary.maximum
        assert summary.minimum <= summary.p95 <= summary.maximum


class TestRatios:
    def test_path_stretch(self):
        assert path_stretch(30.0, 10.0) == 3.0
        assert path_stretch(10.0, 10.0) == 1.0

    def test_path_stretch_bad_direct(self):
        with pytest.raises(ValueError):
            path_stretch(1.0, 0.0)

    def test_overhead_fraction(self):
        assert overhead_fraction(1520, 1500) == pytest.approx(20 / 1500)

    def test_overhead_bad_baseline(self):
        with pytest.raises(ValueError):
            overhead_fraction(100, 0)

    def test_delivery_ratio(self):
        assert delivery_ratio(3, 4) == 0.75

    def test_delivery_ratio_validation(self):
        with pytest.raises(ValueError):
            delivery_ratio(5, 4)
        with pytest.raises(ValueError):
            delivery_ratio(0, 0)


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable("Demo", ["mode", "latency"])
        table.add_row("Out-IE", 0.123456)
        table.add_row("Out-DH", 0.05)
        rendered = table.render()
        assert "Demo" in rendered
        assert "Out-IE" in rendered and "0.1235" in rendered

    def test_row_arity_checked(self):
        table = TextTable("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_render_kv(self):
        rendered = render_kv("Result", [("ratio", 0.5), ("name", "x")])
        assert "ratio: 0.5" in rendered and "name: x" in rendered


class TestScenarioBuilder:
    def test_determinism_same_seed(self):
        first = build_scenario(seed=201, ch_awareness=Awareness.CONVENTIONAL)
        second = build_scenario(seed=201, ch_awareness=Awareness.CONVENTIONAL)
        assert str(first.mh.care_of) == str(second.mh.care_of)
        assert first.sim.trace.action_counts == second.sim.trace.action_counts

    def test_ch_in_visited_lan_shares_segment(self):
        scenario = build_scenario(seed=202, ch_awareness=Awareness.CONVENTIONAL,
                                  ch_in_visited_lan=True)
        assert scenario.visited.prefix.contains(scenario.ch_ip)

    def test_backbone_distances(self):
        scenario = build_scenario(seed=203, backbone_size=7, ch_attach=3,
                                  ch_awareness=Awareness.CONVENTIONAL)
        assert scenario.backbone_distance("home", "visited") == 6
        assert scenario.backbone_distance("chdom", "visited") == 3

    def test_settled_scenario_is_registered(self):
        scenario = build_scenario(seed=204, ch_awareness=None)
        assert scenario.mh.registered


class TestAsciiSeries:
    def test_bars_scale_to_maximum(self):
        from repro.analysis import ascii_series

        rendered = ascii_series("S", ["a", "b"], [1.0, 2.0], width=10)
        lines = rendered.splitlines()
        assert lines[0] == "== S =="
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10

    def test_unit_suffix(self):
        from repro.analysis import ascii_series

        rendered = ascii_series("S", ["x"], [3.0], unit="ms")
        assert "3ms" in rendered

    def test_empty_series(self):
        from repro.analysis import ascii_series

        assert "(no data)" in ascii_series("S", [], [])

    def test_mismatched_lengths_rejected(self):
        from repro.analysis import ascii_series

        with pytest.raises(ValueError):
            ascii_series("S", ["a"], [1.0, 2.0])

    def test_all_zero_values(self):
        from repro.analysis import ascii_series

        rendered = ascii_series("S", ["a", "b"], [0.0, 0.0], width=10)
        assert "#" not in rendered
