"""Tests for the scenario statistics collector."""

import pytest

from repro.analysis import (
    DarkTraceError,
    MH_HOME_ADDRESS,
    build_scenario,
    diff,
    snapshot,
)
from repro.mobileip import Awareness


@pytest.fixture
def stage():
    return build_scenario(seed=1101, ch_awareness=Awareness.CONVENTIONAL)


class TestSnapshot:
    def test_counts_present_for_all_nodes(self, stage):
        snap = snapshot(stage)
        for name in ("mh", "ha", "ch"):
            assert name in snap.packets_sent
            assert name in snap.packets_received

    def test_registration_traffic_visible(self, stage):
        snap = snapshot(stage)
        assert snap.packets_sent["mh"] >= 1       # the registration
        assert snap.packets_received["ha"] >= 1
        assert snap.wide_area_bytes > 0

    def test_mobile_ip_packets_aggregate(self, stage):
        sock = stage.mh.stack.udp_socket(8000)
        sock.on_receive(lambda *a: None)
        ch_sock = stage.ch.stack.udp_socket()
        ch_sock.sendto("x", 50, MH_HOME_ADDRESS, 8000)
        stage.sim.run_for(10)
        snap = snapshot(stage)
        assert snap.tunneled_by_ha == 1
        assert snap.mobile_ip_packets >= 1

    def test_total_sent(self, stage):
        snap = snapshot(stage)
        assert snap.total_sent == sum(snap.packets_sent.values())


class TestDiff:
    def test_delta_isolates_a_phase(self, stage):
        before = snapshot(stage)
        sock = stage.mh.stack.udp_socket(8000)
        sock.on_receive(lambda *a: None)
        ch_sock = stage.ch.stack.udp_socket()
        for _ in range(3):
            ch_sock.sendto("x", 50, MH_HOME_ADDRESS, 8000)
        stage.sim.run_for(10)
        delta = diff(before, snapshot(stage))
        assert delta.tunneled_by_ha == 3
        assert delta.packets_sent["ch"] == 3
        assert delta.time > 0

    def test_new_nodes_appear_in_delta(self, stage):
        from repro.netsim import Node

        before = snapshot(stage)
        newcomer = Node("late", stage.sim)
        stage.net.add_host("visited", newcomer)
        replies = []
        newcomer.ping(stage.ch_ip, replies.append)
        stage.sim.run_for(10)
        delta = diff(before, snapshot(stage))
        assert delta.packets_sent.get("late", 0) >= 1

    def test_out_of_order_rejected(self, stage):
        before = snapshot(stage)
        stage.sim.run_for(1)
        after = snapshot(stage)
        with pytest.raises(ValueError):
            diff(after, before)

    def test_drop_deltas(self, stage):
        before = snapshot(stage)
        # Generate a drop: Out-DH from a filtered visited network.
        mh_sock = stage.mh.stack.udp_socket()
        record = stage.mh.engine.cache.record_for(stage.ch_ip)
        from repro.core import OutMode

        record.current = OutMode.OUT_DH
        mh_sock.sendto("x", 50, stage.ch_ip, 9000,
                       src_override=MH_HOME_ADDRESS)
        stage.sim.run_for(5)
        delta = diff(before, snapshot(stage))
        assert any("source-address-filter" in reason or "transit" in reason
                   for reason, count in delta.drops.items() if count > 0)


class TestDarkRunGuard:
    """A fully-dark run must not be snapshotted silently as all-zeros."""

    @pytest.fixture
    def dark_stage(self):
        return build_scenario(
            seed=1101,
            ch_awareness=Awareness.CONVENTIONAL,
            trace_entries=False,
            trace_aggregates=False,
        )

    def test_strict_snapshot_raises(self, dark_stage):
        with pytest.raises(DarkTraceError, match="dark run"):
            snapshot(dark_stage)

    def test_dark_trace_error_is_a_runtime_error(self):
        assert issubclass(DarkTraceError, RuntimeError)

    def test_non_strict_warns_and_returns(self, dark_stage):
        with pytest.warns(RuntimeWarning, match="dark run"):
            snap = snapshot(dark_stage, strict=False)
        # Registry-backed node counters still work; the trace-backed
        # aggregates are the zeroed-out part the warning is about.
        assert snap.packets_sent["mh"] >= 1
        assert snap.wide_area_bytes == 0
        assert snap.drops == {}

    def test_entries_off_aggregates_on_is_fine(self):
        stage = build_scenario(
            seed=1101,
            ch_awareness=Awareness.CONVENTIONAL,
            trace_entries=False,
        )
        snap = snapshot(stage)  # no raise, no warning
        assert stage.sim.trace.entries == []
        assert snap.wide_area_bytes > 0
