"""Crash durability: a SIGKILLed sweep leaves a valid ledger prefix.

The ledger's append path is a single ``os.write`` on an ``O_APPEND``
descriptor, so killing the writer mid-sweep can tear at most the final
line.  These tests run real ``repro-mobility sweep`` subprocesses,
SIGKILL them mid-grid, and check what survives: the ledger as a valid
prefix (cache-based resume), and the sweep checkpoint as a resumable
journal whose ``--resume`` pass lands the byte-identical digest set of
an uninterrupted serial run.
"""

import json
import os
import signal
import subprocess
import sys
import time

from repro.experiment.supervise import SweepCheckpoint
from repro.obs.ledger import read_ledger, validate_record

_GRID = {
    "base": {
        "duration": 30.0,
        "seed": 1401,
        "arm_invariants": True,
        "traffic": {
            "uniform": {
                "datagrams": 120, "spacing": 0.1, "size": 100,
                "direction": "both",
            },
        },
    },
    "axes": {"seed": [1401 + i for i in range(12)]},
}


def _env_with_absolute_pythonpath():
    env = dict(os.environ)
    paths = env.get("PYTHONPATH", "")
    if paths:
        env["PYTHONPATH"] = os.pathsep.join(
            os.path.abspath(p) for p in paths.split(os.pathsep) if p)
    return env


def _sweep_argv(grid_path, ledger_path, cache_dir):
    return [
        sys.executable, "-m", "repro", "sweep",
        "--grid", str(grid_path),
        "--ledger", str(ledger_path),
        "--cache-dir", str(cache_dir),
        "--no-flightrec", "--jobs", "1",
    ]


def _run_records(path):
    if not path.exists():
        return []
    records, _ = read_ledger(str(path))
    return [r for r in records if r["kind"] == "run"]


class TestLedgerCrashDurability:
    def test_sigkill_leaves_valid_prefix_and_cache_resumes(self, tmp_path):
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(json.dumps(_GRID))
        ledger_path = tmp_path / "ledger.jsonl"
        cache_dir = tmp_path / "cache"
        env = _env_with_absolute_pythonpath()

        proc = subprocess.Popen(
            _sweep_argv(grid_path, ledger_path, cache_dir),
            cwd=tmp_path, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if len(_run_records(ledger_path)) >= 2:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            killed = proc.poll() is None
            if killed:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        records, skipped = read_ledger(str(ledger_path))
        # Atomic appends: at most the very last line can be torn.
        assert skipped <= 1
        assert records, "no complete ledger records survived the kill"
        assert records[0]["kind"] == "sweep-start"
        assert records[0]["total"] == 12
        for record in records:
            assert validate_record(record) == []
        completed = [r for r in records if r["kind"] == "run"]
        assert len(completed) >= 2
        assert all(r["provenance"] == "run" for r in completed)
        if killed:
            # The kill landed mid-grid: no sweep-end bookend.
            assert records[-1]["kind"] != "sweep-end"

        # Resume: the cache already holds every completed cell, so a
        # fresh sweep replays them as cache hits.
        ledger2 = tmp_path / "ledger-resume.jsonl"
        result = subprocess.run(
            _sweep_argv(grid_path, ledger2, cache_dir),
            cwd=tmp_path, env=env, capture_output=True, text=True,
            timeout=240)
        assert result.returncode == 0, result.stderr
        records2, skipped2 = read_ledger(str(ledger2))
        assert skipped2 == 0
        assert records2[-1]["kind"] == "sweep-end"
        assert records2[-1]["completed"] == 12
        cached = [r for r in records2
                  if r["kind"] == "run" and r["provenance"] == "cache"]
        assert len(cached) >= len(completed)


class TestCheckpointResumeAfterSigkill:
    """The tentpole's determinism bar, live: SIGKILL a ``--checkpoint``
    sweep mid-grid, ``--resume`` it, and the merged digest set must be
    byte-identical to an undisturbed serial run (no cache involved)."""

    def test_resume_after_sigkill_matches_serial_digests(self, tmp_path):
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(json.dumps(_GRID))
        checkpoint_path = tmp_path / "checkpoint.jsonl"
        env = _env_with_absolute_pythonpath()

        def argv(json_out, extra):
            return [
                sys.executable, "-m", "repro", "sweep",
                "--grid", str(grid_path), "--no-cache", "--no-flightrec",
                "--json-out", str(json_out), *extra,
            ]

        proc = subprocess.Popen(
            argv(tmp_path / "killed.json",
                 ["--jobs", "1", "--checkpoint", str(checkpoint_path)]),
            cwd=tmp_path, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                completed, _ = SweepCheckpoint.load(str(checkpoint_path))
                if len(completed) >= 2:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            killed = proc.poll() is None
            if killed:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        completed, torn = SweepCheckpoint.load(str(checkpoint_path))
        # Atomic single-write appends: at most one torn trailing line.
        assert torn <= 1
        assert len(completed) >= 2
        if killed:
            assert len(completed) < 12, "kill landed after the grid finished"

        resumed_out = tmp_path / "resumed.json"
        result = subprocess.run(
            argv(resumed_out,
                 ["--jobs", "1", "--resume", str(checkpoint_path),
                  "--ledger", str(tmp_path / "resume-ledger.jsonl")]),
            cwd=tmp_path, env=env, capture_output=True, text=True,
            timeout=240)
        assert result.returncode == 0, result.stderr
        assert "resuming:" in result.stderr

        serial_out = tmp_path / "serial.json"
        result = subprocess.run(
            argv(serial_out, ["--jobs", "1"]),
            cwd=tmp_path, env=env, capture_output=True, text=True,
            timeout=240)
        assert result.returncode == 0, result.stderr

        resumed = json.load(open(resumed_out))
        serial = json.load(open(serial_out))
        assert [r["digest"] for r in resumed["results"]] == \
            [r["digest"] for r in serial["results"]]

        # The resumed ledger shows the split: checkpointed cells carry
        # provenance "checkpoint", the rest ran live.
        records, _ = read_ledger(str(tmp_path / "resume-ledger.jsonl"))
        assert all(validate_record(r) == [] for r in records)
        provenance = [r["provenance"] for r in records
                      if r["kind"] == "run"]
        assert provenance.count("checkpoint") == len(completed)
        assert provenance.count("run") == 12 - len(completed)
