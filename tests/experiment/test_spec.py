"""Tests for the declarative experiment spec."""

import json

import pytest

from repro.analysis.scenarios import SCENARIO_KNOBS
from repro.experiment import (
    ExperimentSpec,
    SpecError,
    TrafficProgram,
    canonical_traffic_spec,
)


class TestJsonRoundTrip:
    def test_default_spec_round_trips(self):
        spec = ExperimentSpec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_rich_spec_round_trips(self):
        spec = ExperimentSpec(
            seed=7,
            label="rich",
            duration=12.0,
            settle_margin=5.0,
            awareness="decap-capable",
            visited_filtering=False,
            strategy="conservative-first",
            encap="gre",
            auth_key="secret",
            traffic=TrafficProgram(
                port=6200, ch_bind=True, payload_style="indexed",
                events=[{"at": 0.5, "direction": "mh->ch", "size": 300}],
            ),
            faults={"events": [{"time": 8.0, "kind": "link-flap",
                                "target": "visited-uplink",
                                "duration": 2.0}]},
            adversary=[{"at": 3.0, "kind": "spoof"}],
            arm_invariants=True,
            max_tunnel_depth=2,
            invariant_grace=1.5,
        )
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.to_dict() == spec.to_dict()

    def test_link_shaping_knobs_round_trip(self):
        spec = ExperimentSpec(
            queue_capacity=16,
            queue_capacities={"uplink-home": 4},
            link_bandwidths={"uplink-home": 1.5e6},
        )
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        kwargs = spec.scenario_kwargs()
        assert kwargs["queue_capacity"] == 16
        assert kwargs["queue_capacities"] == {"uplink-home": 4}
        assert kwargs["link_bandwidths"] == {"uplink-home": 1.5e6}

    def test_traffic_dict_is_coerced(self):
        spec = ExperimentSpec(traffic={"uniform": {"datagrams": 3}})
        assert isinstance(spec.traffic, TrafficProgram)

    def test_replace_returns_validated_copy(self):
        base = ExperimentSpec()
        changed = base.replace(seed=5, label="x")
        assert (changed.seed, changed.label) == (5, "x")
        assert base.seed == 1996  # original untouched
        with pytest.raises(SpecError):
            base.replace(encap="carrier-pigeon")

    def test_from_file_accepts_bare_spec_and_fuzz_repro(self, tmp_path):
        spec = canonical_traffic_spec(datagrams=3)
        bare = tmp_path / "spec.json"
        bare.write_text(spec.to_json())
        assert ExperimentSpec.from_file(str(bare)) == spec
        repro = tmp_path / "repro.json"
        repro.write_text(json.dumps(
            {"case": {}, "violations": [], "spec": spec.to_dict()}))
        assert ExperimentSpec.from_file(str(repro)) == spec

    def test_from_file_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SpecError, match="invalid JSON"):
            ExperimentSpec.from_file(str(path))


class TestValidation:
    @pytest.mark.parametrize("changes,match", [
        ({"awareness": "psychic"}, "unknown awareness"),
        ({"strategy": "yolo"}, "unknown strategy"),
        ({"encap": "carrier-pigeon"}, "unknown encap"),
        ({"duration": -1.0}, "duration must be > 0"),
        ({"settle_margin": -0.1}, "settle_margin"),
        ({"seed": "abc"}, "seed must be an int"),
        ({"backbone_size": 1}, "backbone_size"),
        ({"home_attach": 99}, "home_attach"),
        ({"ch_attach": -1}, "ch_attach"),
        ({"visited_attach": 7}, "visited_attach"),
        ({"obs_cadence": 0}, "obs_cadence"),
        ({"max_tunnel_depth": -1}, "max_tunnel_depth"),
        ({"invariant_grace": -2}, "invariant_grace"),
        ({"adversary": [{"at": 1.0, "kind": "nuke"}]}, "adversary kind"),
        ({"adversary": [{"at": -1.0, "kind": "spoof"}]}, "'at' >= 0"),
        ({"faults": {"events": [{"time": 1.0, "kind": "meteor",
                                 "target": "x"}]}}, "invalid fault plan"),
        ({"arm_invariants": "yes"}, "must be a bool"),
        ({"queue_capacity": -1}, "queue_capacity"),
        ({"queue_capacity": True}, "queue_capacity"),
        ({"queue_capacities": {"lan": -2}}, "queue_capacities"),
        ({"queue_capacities": {3: 4}}, "queue_capacities"),
        ({"queue_capacities": "lots"}, "queue_capacities"),
        ({"link_bandwidths": {"lan": 0}}, "link_bandwidths"),
        ({"link_bandwidths": {"lan": -1e6}}, "link_bandwidths"),
        ({"link_bandwidths": [1e6]}, "link_bandwidths"),
    ])
    def test_bad_field_raises(self, changes, match):
        with pytest.raises(SpecError, match=match):
            ExperimentSpec(**changes)

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(SpecError, match="unknown fields.*bogus"):
            ExperimentSpec.from_dict({"seed": 1, "bogus": True})

    def test_traffic_needs_a_correspondent(self):
        with pytest.raises(SpecError, match="needs a correspondent"):
            ExperimentSpec(awareness=None,
                           traffic={"uniform": {"datagrams": 1}})

    @pytest.mark.parametrize("traffic,match", [
        ({"port": 0}, "port"),
        ({"payload_style": "morse"}, "payload_style"),
        ({"events": [{"at": 1.0, "direction": "up", "size": 10}]},
         "direction"),
        ({"events": [{"at": 1.0, "direction": "mh->ch", "size": 0}]},
         "size"),
        ({"events": [{"at": 1.0, "direction": "mh->ch", "size": 10,
                      "color": "red"}]}, "unknown fields"),
        ({"events": [{"at": 1.0, "direction": "mh->ch", "size": 10}],
          "uniform": {"datagrams": 2}}, "not both"),
        ({"uniform": {"datagrams": 0}}, "datagrams"),
        ({"uniform": {"datagrams": 2, "direction": "sideways"}},
         "direction"),
        ({"uniform": {"datagrams": 2, "volume": 11}}, "unknown fields"),
    ])
    def test_bad_traffic_raises(self, traffic, match):
        with pytest.raises(SpecError, match=match):
            ExperimentSpec(traffic=traffic)

    def test_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            ExperimentSpec(encap="nope")


class TestScenarioBridge:
    def test_kwargs_match_builder_signature(self):
        assert set(ExperimentSpec().scenario_kwargs()) <= SCENARIO_KNOBS

    def test_defaults_mirror_builder_defaults(self):
        import inspect

        from repro.analysis.scenarios import build_scenario

        signature = inspect.signature(build_scenario)
        kwargs = ExperimentSpec().scenario_kwargs()
        for name, value in kwargs.items():
            parameter = signature.parameters[name]
            if name in ("seed", "ch_awareness"):
                continue  # spec pins its own seed; awareness is explicit
            assert value == parameter.default, (
                f"spec default for {name!r} drifted from build_scenario")

    def test_enums_translate(self):
        kwargs = ExperimentSpec(
            awareness="mobile-aware", strategy="aggressive-first",
            encap="minimal").scenario_kwargs()
        assert kwargs["ch_awareness"].value == "mobile-aware"
        assert kwargs["strategy"].value == "aggressive-first"
        assert kwargs["scheme"].value == "minimal"

    def test_null_awareness_means_no_correspondent(self):
        assert ExperimentSpec(
            awareness=None).scenario_kwargs()["ch_awareness"] is None


class TestTrafficProgram:
    def test_uniform_expansion(self):
        program = TrafficProgram(
            uniform={"datagrams": 3, "spacing": 0.5, "size": 64,
                     "direction": "mh->ch"})
        assert program.resolved_events() == [
            {"at": 0.0, "direction": "mh->ch", "size": 64},
            {"at": 0.5, "direction": "mh->ch", "size": 64},
            {"at": 1.0, "direction": "mh->ch", "size": 64},
        ]

    def test_both_alternates_directions(self):
        program = TrafficProgram(
            uniform={"datagrams": 4, "spacing": 1.0, "size": 10,
                     "direction": "both"})
        directions = [e["direction"] for e in program.resolved_events()]
        assert directions == ["ch->mh", "mh->ch", "ch->mh", "mh->ch"]

    def test_explicit_events_pass_through(self):
        events = [{"at": 2.0, "direction": "ch->mh", "size": 99}]
        assert TrafficProgram(events=events).resolved_events() == events


class TestCanonicalSpec:
    def test_shape(self):
        spec = canonical_traffic_spec()
        assert spec.seed == 1401
        assert spec.duration == 30.0
        assert spec.awareness == "conventional"
        events = spec.traffic.resolved_events()
        assert len(events) == 200
        assert events[1]["at"] == pytest.approx(0.01)
        assert all(e["direction"] == "ch->mh" for e in events)

    def test_overrides_apply(self):
        spec = canonical_traffic_spec(seed=9, datagrams=5, observe=True)
        assert spec.seed == 9
        assert spec.observe is True
        assert len(spec.traffic.resolved_events()) == 5
