"""Fault tolerance: supervised workers, retries, quarantine, resume.

The executor error paths the anonymous pool could not survive — a
worker exception, a worker SIGKILLed mid-cell, a hung cell — plus the
poison-cell quarantine and checkpoint/resume semantics.  Faults are
injected deterministically through the ``REPRO_SWEEP_FAULT`` hook (the
same one the CI resume-smoke job uses), so every scenario is
reproducible and the determinism bar stays pinned: a sweep that
crashed, hung, retried, and resumed must land the byte-identical
digests of an undisturbed serial run.
"""

import json

import pytest

from repro.experiment import (
    CellFailedError,
    ExperimentSpec,
    SweepCheckpoint,
    SweepExecutor,
    TrafficProgram,
)
from repro.experiment.supervise import (
    FAULT_ENV,
    InjectedFault,
    describe_exception,
    maybe_inject_fault,
    parse_fault_directives,
)


def _specs(n=4, datagrams=5):
    """N cheap labelled cells with distinct traffic (distinct digests)."""
    return [
        ExperimentSpec(
            seed=1401 + i, label=f"cell-{i}", duration=10.0,
            traffic=TrafficProgram(uniform={
                "datagrams": datagrams + i, "spacing": 0.25, "size": 100,
                "direction": "both"}),
            arm_invariants=True)
        for i in range(n)
    ]


class TestFaultDirectives:
    def test_parse_single(self):
        assert parse_fault_directives("crash:cell-1") == \
            [("crash", "cell-1", 1)]

    def test_parse_times_and_label_with_colons_kept_apart(self):
        assert parse_fault_directives("fail:cell-1:99") == \
            [("fail", "cell-1", 99)]
        # A non-numeric tail stays part of the label.
        assert parse_fault_directives("fail:cell:a") == \
            [("fail", "cell:a", 1)]

    def test_parse_multiple_directives_with_grid_labels(self):
        # Grid labels contain "," and "="; ";" separates directives.
        text = "crash:seed=1,encap=ipip;hang:seed=2,encap=gre:3"
        assert parse_fault_directives(text) == [
            ("crash", "seed=1,encap=ipip", 1),
            ("hang", "seed=2,encap=gre", 3),
        ]

    @pytest.mark.parametrize("bad", ["explode:cell", "crash", "crash:"])
    def test_bad_directives_raise(self, bad):
        with pytest.raises(ValueError, match="bad fault directive"):
            parse_fault_directives(bad)

    def test_inject_fail_raises_while_attempt_below_times(self):
        with pytest.raises(InjectedFault):
            maybe_inject_fault("cell-1", 0, env="fail:cell-1:2")
        with pytest.raises(InjectedFault):
            maybe_inject_fault("cell-1", 1, env="fail:cell-1:2")
        maybe_inject_fault("cell-1", 2, env="fail:cell-1:2")  # retired

    def test_inject_ignores_other_labels_and_empty_env(self):
        maybe_inject_fault("cell-2", 0, env="fail:cell-1")
        maybe_inject_fault("cell-1", 0, env="")
        maybe_inject_fault("", 0, env=None)


class TestDescribeException:
    def test_shape_and_bound(self):
        try:
            raise ValueError("boom " + "x" * 10000)
        except ValueError as exc:
            detail = describe_exception(exc)
        assert detail["type"] == "ValueError"
        assert detail["message"].startswith("boom")
        assert len(detail["traceback"]) <= 4000
        json.dumps(detail)  # JSON-clean


class TestSweepCheckpoint:
    def test_round_trip_last_wins(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with SweepCheckpoint(str(path)) as checkpoint:
            checkpoint.record("sha-a", {"digest": "old"})
            checkpoint.record("sha-b", {"digest": "b"})
            checkpoint.record("sha-a", {"digest": "new"})
        assert checkpoint.appended == 3
        completed, torn = SweepCheckpoint.load(str(path))
        assert torn == 0
        assert completed == {"sha-a": {"digest": "new"},
                             "sha-b": {"digest": "b"}}

    def test_missing_file_is_empty(self, tmp_path):
        assert SweepCheckpoint.load(str(tmp_path / "nope.jsonl")) == ({}, 0)

    def test_torn_and_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with SweepCheckpoint(str(path)) as checkpoint:
            checkpoint.record("sha-a", {"digest": "a"})
        with open(path, "a") as handle:
            handle.write('{"schema": "something-else"}\n')
            handle.write('{"torn half of a lin')
        completed, torn = SweepCheckpoint.load(str(path))
        assert completed == {"sha-a": {"digest": "a"}}
        assert torn == 2

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "ck.jsonl"
        with SweepCheckpoint(str(path)) as checkpoint:
            checkpoint.record("sha", {"digest": "d"})
        assert path.exists()


class TestSupervisedFaultTolerance:
    """The acceptance scenario: crash + hang + poison in one sweep."""

    def test_crash_hang_and_poison_in_one_sweep(self, monkeypatch):
        specs = _specs(4)
        monkeypatch.delenv(FAULT_ENV, raising=False)
        serial = SweepExecutor(jobs=1).run(specs)
        assert len(set(serial.digests())) == 4

        # cell-0: worker SIGKILLs itself once (crash, retry succeeds);
        # cell-1: hangs once (cell timeout reaps it, retry succeeds);
        # cell-2: poison — fails every attempt, must quarantine.
        monkeypatch.setenv(
            FAULT_ENV, "crash:cell-0;hang:cell-1;fail:cell-2:99")
        result = SweepExecutor(
            jobs=2, cell_timeout=5.0, max_retries=1, retry_backoff=0.05,
        ).run(specs)

        assert len(result.results) == 4
        assert result.failed_count == 1
        quarantined = result.failures[0]
        assert quarantined.label == "cell-2"
        assert quarantined.outcome == "failed"
        assert quarantined.failure["reason"] == "exception"
        assert quarantined.failure["attempts"] == 2
        assert quarantined.digest == ""
        # Crash and hang each cost one retry; the poison cell another.
        assert result.retries >= 3
        # Determinism: every non-quarantined cell matches its serial twin.
        survivors = [r.digest for r in result.results if r.failure is None]
        expected = [d for s, d in zip(specs, serial.digests())
                    if s.label != "cell-2"]
        assert survivors == expected
        # No real invariant violations: the sweep is "not ok" only
        # because of the quarantine.
        assert result.violation_count == 0
        assert not result.ok

    def test_strict_cells_fails_fast(self, monkeypatch):
        specs = _specs(3)
        monkeypatch.setenv(FAULT_ENV, "fail:cell-1:99")
        with pytest.raises(CellFailedError, match="cell-1"):
            SweepExecutor(jobs=2, strict_cells=True,
                          retry_backoff=0.05).run(specs)

    def test_failure_events_reach_ledger_and_progress(
            self, tmp_path, monkeypatch):
        from repro.obs.ledger import RunLedger, read_ledger, validate_record

        specs = _specs(3)
        monkeypatch.setenv(FAULT_ENV, "fail:cell-1:99")
        events = []
        path = tmp_path / "ledger.jsonl"
        with RunLedger(str(path)) as ledger:
            result = SweepExecutor(
                jobs=2, max_retries=1, retry_backoff=0.05,
                ledger=ledger, progress=events.append).run(specs)
        assert result.failed_count == 1
        records, skipped = read_ledger(str(path))
        assert skipped == 0
        assert all(validate_record(r) == [] for r in records)
        failed = [r for r in records if r.get("outcome") == "failed"]
        assert len(failed) == 1
        assert failed[0]["label"] == "cell-1"
        assert failed[0]["failure"]["reason"] == "exception"
        assert failed[0]["attempts"] == 2
        failed_events = [e for e in events if e["failed"]]
        assert len(failed_events) == 1
        assert failed_events[0]["failures_total"] == 1
        assert events[-1]["retries_total"] >= 1


class TestInlineFaultTolerance:
    """jobs=1 gets the same retry/quarantine policy, minus timeouts."""

    def test_inline_exception_retries_then_succeeds(self, monkeypatch):
        specs = _specs(2)
        monkeypatch.delenv(FAULT_ENV, raising=False)
        serial = SweepExecutor(jobs=1).run(specs)
        monkeypatch.setenv(FAULT_ENV, "fail:cell-0")
        result = SweepExecutor(jobs=1, retry_backoff=0.05).run(specs)
        assert result.digests() == serial.digests()
        assert result.retries == 1

    def test_inline_poison_quarantines(self, monkeypatch):
        specs = _specs(2)
        monkeypatch.setenv(FAULT_ENV, "fail:cell-0:99")
        result = SweepExecutor(
            jobs=1, max_retries=1, retry_backoff=0.05).run(specs)
        assert result.failed_count == 1
        assert result.failures[0].label == "cell-0"
        assert result.failures[0].failure["attempts"] == 2

    def test_inline_strict_cells_raises(self, monkeypatch):
        specs = _specs(2)
        monkeypatch.setenv(FAULT_ENV, "fail:cell-0:99")
        with pytest.raises(CellFailedError, match="cell-0"):
            SweepExecutor(jobs=1, strict_cells=True).run(specs)


class TestCheckpointResume:
    def test_checkpoint_then_resume_skips_completed_cells(
            self, tmp_path, monkeypatch):
        monkeypatch.delenv(FAULT_ENV, raising=False)
        specs = _specs(3)
        path = tmp_path / "ck.jsonl"
        with SweepCheckpoint(str(path)) as checkpoint:
            first = SweepExecutor(jobs=1, checkpoint=checkpoint).run(specs)
        completed, torn = SweepCheckpoint.load(str(path))
        assert torn == 0 and len(completed) == 3

        events = []
        resumed = SweepExecutor(
            jobs=1, resume=completed, progress=events.append).run(specs)
        assert resumed.digests() == first.digests()
        assert [e["provenance"] for e in events] == ["checkpoint"] * 3

    def test_partial_checkpoint_reruns_only_missing_cells(
            self, tmp_path, monkeypatch):
        monkeypatch.delenv(FAULT_ENV, raising=False)
        specs = _specs(3)
        path = tmp_path / "ck.jsonl"
        with SweepCheckpoint(str(path)) as checkpoint:
            first = SweepExecutor(jobs=1, checkpoint=checkpoint).run(specs[:2])
        completed, _ = SweepCheckpoint.load(str(path))
        events = []
        resumed = SweepExecutor(
            jobs=1, resume=completed, progress=events.append).run(specs)
        assert [e["provenance"] for e in sorted(
            events, key=lambda e: e["index"])] == \
            ["checkpoint", "checkpoint", "run"]
        assert resumed.digests()[:2] == first.digests()

    def test_failed_cells_are_not_checkpointed(self, tmp_path, monkeypatch):
        specs = _specs(2)
        monkeypatch.setenv(FAULT_ENV, "fail:cell-0:99")
        path = tmp_path / "ck.jsonl"
        with SweepCheckpoint(str(path)) as checkpoint:
            result = SweepExecutor(
                jobs=1, max_retries=0, checkpoint=checkpoint).run(specs)
        assert result.failed_count == 1
        completed, _ = SweepCheckpoint.load(str(path))
        # Only the healthy cell is journaled: a resume retries cell-0.
        assert len(completed) == 1

    def test_unusable_checkpoint_payload_is_a_miss(self, monkeypatch):
        monkeypatch.delenv(FAULT_ENV, raising=False)
        specs = _specs(1)
        from repro.obs.ledger import spec_content_digest

        bogus = {spec_content_digest(specs[0].to_dict()): {"not": "a result"}}
        result = SweepExecutor(jobs=1, resume=bogus).run(specs)
        # The cell re-ran live instead of crashing on the bad payload.
        assert result.runs == 1
        assert result.results[0].digest
