"""Tests for the experiment runner lifecycle."""

from repro.experiment import Runner, RunResult, canonical_traffic_spec

# The pinned golden digest (tests/netsim/test_golden_trace.py): the
# runner must reproduce the legacy hand-rolled workload byte-for-byte.
GOLDEN_DIGEST = "6c91661118a78681dfe5624d953ae85bb5a3f6e3b7e88fc4d166a9a121cf8a8f"
GOLDEN_ENTRIES = 3618


def _legacy_canonical_run():
    """The hand-rolled loop the runner replaced, inline."""
    from repro.analysis import MH_HOME_ADDRESS, build_scenario
    from repro.bench.golden import trace_digest
    from repro.mobileip import Awareness

    scenario = build_scenario(seed=1401, ch_awareness=Awareness.CONVENTIONAL)
    sock = scenario.mh.stack.udp_socket(7000)
    sock.on_receive(lambda *args: None)
    ch_sock = scenario.ch.stack.udp_socket()
    for index in range(200):
        scenario.sim.events.schedule(
            index * 0.01,
            lambda: ch_sock.sendto("x", 100, MH_HOME_ADDRESS, 7000),
        )
    scenario.sim.run_for(30)
    return trace_digest(scenario.sim.trace)


class TestDigestFidelity:
    def test_runner_reproduces_pinned_golden_digest(self):
        result = Runner().run(canonical_traffic_spec())
        assert result.digest == GOLDEN_DIGEST
        assert result.trace_entries == GOLDEN_ENTRIES

    def test_runner_matches_legacy_inline_workload(self):
        legacy_digest, legacy_entries = _legacy_canonical_run()
        result = Runner().run(canonical_traffic_spec())
        assert result.digest == legacy_digest
        assert result.trace_entries == legacy_entries

    def test_arming_invariants_does_not_change_digest(self):
        bare = Runner().run(canonical_traffic_spec(datagrams=40))
        armed = Runner().run(canonical_traffic_spec(
            datagrams=40, arm_invariants=True))
        assert armed.digest == bare.digest
        assert armed.invariants["armed"] is True
        assert armed.invariants["violation_count"] == 0
        assert bare.invariants == {"armed": False}

    def test_observability_does_not_change_digest(self):
        bare = Runner().run(canonical_traffic_spec(datagrams=40))
        observed = Runner().run(canonical_traffic_spec(
            datagrams=40, observe=True))
        assert observed.digest == bare.digest
        assert observed.obs is not None
        assert observed.obs["spans"]["count"] >= 40
        assert bare.obs is None


class TestCollection:
    def test_result_summaries(self):
        result = Runner().run(canonical_traffic_spec(datagrams=40))
        assert result.ok
        assert result.registered is True
        assert result.seed == 1401
        assert result.sim_time > 30.0
        assert result.deliverability["sent"] >= 40
        assert result.deliverability["delivered"] >= 40
        assert result.overhead["tunneled_by_ha"] == 40
        assert result.overhead["bytes_by_link"]
        assert result.metrics  # full registry snapshot present

    def test_result_round_trips_as_plain_data(self):
        result = Runner().run(canonical_traffic_spec(datagrams=10))
        clone = RunResult.from_dict(result.to_dict())
        assert clone == result

    def test_runner_keeps_live_scenario(self):
        runner = Runner()
        runner.run(canonical_traffic_spec(datagrams=10))
        assert runner.scenario is not None
        assert runner.scenario.ha.packets_tunneled == 10

    def test_zero_tunnel_depth_forces_deterministic_violation(self):
        # max_tunnel_depth=0 declares *any* encapsulation illegal, so
        # the canonical tunnelled workload must violate — the knob CI
        # uses to prove the sweep's nonzero exit path.
        result = Runner().run(canonical_traffic_spec(
            datagrams=10, arm_invariants=True, max_tunnel_depth=0))
        assert not result.ok
        assert result.invariants["violation_count"] > 0
        assert any(v["invariant"] == "tunnel-depth"
                   for v in result.violations)


class TestDriverHook:
    def test_driver_runs_and_collects_extras(self):
        seen = {}

        def driver(scenario, spec):
            seen["mh"] = scenario.mh.name
            seen["seed"] = spec.seed
            return lambda: {"note": "collected"}

        result = Runner().run(canonical_traffic_spec(datagrams=5), driver)
        assert seen["seed"] == 1401
        assert seen["mh"]  # driver saw the built scenario
        assert result.extras["note"] == "collected"
        # The fast-forward engine reports alongside driver extras.
        assert result.extras["fast_forward"]["enabled"] is True

    def test_driver_without_collector(self):
        result = Runner().run(
            canonical_traffic_spec(datagrams=5), lambda sc, sp: None)
        assert set(result.extras) == {"fast_forward"}


class TestPhaseTimings:
    def test_every_phase_is_timed(self):
        result = Runner().run(canonical_traffic_spec(datagrams=5))
        assert set(result.timings) == {
            "build", "arm", "drive", "collect", "total"}
        for phase, seconds in result.timings.items():
            assert seconds >= 0.0, phase
        assert result.timings["total"] >= result.timings["drive"]
        phases = (result.timings["build"] + result.timings["arm"]
                  + result.timings["drive"] + result.timings["collect"])
        assert result.timings["total"] >= phases * 0.5

    def test_timings_round_trip_as_plain_data(self):
        result = Runner().run(canonical_traffic_spec(datagrams=5))
        clone = RunResult.from_dict(result.to_dict())
        assert clone.timings == result.timings
