"""Tests for the spec-digest result cache."""

import dataclasses
import json
import pathlib

import repro.experiment.cache as cache_mod
from repro.experiment import (
    ExperimentSpec,
    ResultCache,
    Runner,
    SweepExecutor,
    canonical_traffic_spec,
    spec_digest,
)

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _specs(n=3, datagrams=8):
    base = canonical_traffic_spec(datagrams=datagrams)
    return [dataclasses.replace(base, seed=1401 + i, label=f"cell-{i}")
            for i in range(n)]


def _results_json(sweep):
    return json.dumps([r.to_dict() for r in sweep.results], sort_keys=True)


class TestSpecDigest:
    def test_digest_is_stable_for_equal_specs(self):
        a = canonical_traffic_spec(datagrams=5)
        b = canonical_traffic_spec(datagrams=5)
        assert spec_digest(a) == spec_digest(b)

    def test_digest_tracks_spec_content(self):
        a = canonical_traffic_spec(datagrams=5)
        b = dataclasses.replace(a, seed=a.seed + 1)
        assert spec_digest(a) != spec_digest(b)

    def test_digest_tracks_salt(self):
        spec = canonical_traffic_spec(datagrams=5)
        assert spec_digest(spec) != spec_digest(spec, salt="other")


class TestResultCache:
    def test_round_trip(self, tmp_path):
        spec = canonical_traffic_spec(datagrams=6)
        result = Runner().run(spec)
        cache = ResultCache(root=str(tmp_path))
        assert cache.lookup(spec) is None
        cache.store(spec, result)
        hit = cache.lookup(spec)
        assert hit is not None
        assert hit.to_dict() == result.to_dict()
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["stores"] == 1
        assert cache.stats()["bytes_written"] > 0

    def test_index_logs_every_store(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        for spec in _specs(2, datagrams=5):
            cache.store(spec, Runner().run(spec))
        lines = [json.loads(line) for line in
                 (tmp_path / "index.jsonl").read_text().splitlines()]
        assert len(lines) == 2
        assert {line["label"] for line in lines} == {"cell-0", "cell-1"}
        assert all(line["bytes"] > 0 for line in lines)

    def test_spec_content_change_misses(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = canonical_traffic_spec(datagrams=6)
        cache.store(spec, Runner().run(spec))
        changed = dataclasses.replace(spec, seed=spec.seed + 1)
        assert cache.lookup(changed) is None
        assert cache.stats()["misses"] == 1

    def test_salt_change_invalidates(self, tmp_path, monkeypatch):
        spec = canonical_traffic_spec(datagrams=6)
        cache = ResultCache(root=str(tmp_path))
        cache.store(spec, Runner().run(spec))
        key = cache.key_for(spec)
        # Simulate a code-version bump: the stored entry's embedded
        # salt no longer matches the running code.  Pin the key so the
        # lookup actually reaches the stale file.
        monkeypatch.setattr(cache_mod, "CACHE_SALT", "vNext")
        monkeypatch.setattr(ResultCache, "key_for", lambda self, s: key)
        stale = ResultCache(root=str(tmp_path))
        assert stale.lookup(spec) is None
        assert stale.stats()["invalidations"] == 1
        # The stale entry was deleted eagerly.
        assert not (tmp_path / key[:2] / f"{key}.json").exists()

    def test_corrupt_entry_invalidates(self, tmp_path):
        spec = canonical_traffic_spec(datagrams=6)
        cache = ResultCache(root=str(tmp_path))
        cache.store(spec, Runner().run(spec))
        key = cache.key_for(spec)
        (tmp_path / key[:2] / f"{key}.json").write_text("{not json")
        fresh = ResultCache(root=str(tmp_path))
        assert fresh.lookup(spec) is None
        assert fresh.stats()["invalidations"] == 1

    def test_index_appends_are_single_complete_lines(
            self, tmp_path, monkeypatch):
        # The satellite contract: index appends go through one os.write
        # on an O_APPEND descriptor, so two sweeps sharing a cache dir
        # interleave whole lines, never torn ones.
        import os

        writes = []
        real_write = os.write

        def spy_write(fd, data):
            writes.append(data)
            return real_write(fd, data)

        monkeypatch.setattr(os, "write", spy_write)
        cache = ResultCache(root=str(tmp_path))
        spec = _specs(1, datagrams=5)[0]
        cache.store(spec, Runner().run(spec))
        index_writes = [w for w in writes if w.endswith(b"\n")
                        and b'"key"' in w]
        assert len(index_writes) == 1
        assert index_writes[0].count(b"\n") == 1

    def test_read_index_tolerates_torn_lines(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        for spec in _specs(2, datagrams=5):
            cache.store(spec, Runner().run(spec))
        with open(cache.index_path, "a") as handle:
            handle.write('{"torn half of a lin')
        entries, torn = cache.read_index()
        assert len(entries) == 2
        assert torn == 1
        assert {e["label"] for e in entries} == {"cell-0", "cell-1"}

    def test_read_index_of_missing_file_is_empty(self, tmp_path):
        assert ResultCache(root=str(tmp_path)).read_index() == ([], 0)

    def test_failed_results_are_never_cached(self, tmp_path):
        from repro.experiment import failed_result

        cache = ResultCache(root=str(tmp_path))
        spec = _specs(1, datagrams=5)[0]
        cache.store(spec, failed_result(spec, {
            "reason": "exception", "attempts": 3, "message": "boom",
            "history": []}))
        assert cache.stats()["stores"] == 0
        assert cache.lookup(spec) is None

    def test_register_metrics_family(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        cache = ResultCache(root=str(tmp_path))
        cache.register_metrics(registry)
        spec = canonical_traffic_spec(datagrams=5)
        cache.lookup(spec)
        family = registry.read_family("result_cache")
        assert family["misses"] == 1.0
        assert family["hits"] == 0.0


class TestSweepCaching:
    def test_second_sweep_is_all_hits_and_byte_identical(self, tmp_path):
        specs = _specs(3)
        first = SweepExecutor(
            jobs=1, cache=ResultCache(root=str(tmp_path))).run(specs)
        assert first.cache["misses"] == 3
        assert first.cache["stores"] == 3
        second_cache = ResultCache(root=str(tmp_path))
        second = SweepExecutor(jobs=1, cache=second_cache).run(specs)
        assert second.cache["hits"] == 3
        assert second.cache["misses"] == 0
        assert _results_json(first) == _results_json(second)
        assert "cache 3 hit(s)" in second.render()

    def test_partial_warm_cache_fills_the_gaps(self, tmp_path):
        specs = _specs(3)
        SweepExecutor(
            jobs=1, cache=ResultCache(root=str(tmp_path))).run(specs[:2])
        sweep = SweepExecutor(
            jobs=1, cache=ResultCache(root=str(tmp_path))).run(specs)
        assert sweep.cache["hits"] == 2
        assert sweep.cache["misses"] == 1
        # Results come back in spec order regardless of cache state.
        assert [r.label for r in sweep.results] == [s.label for s in specs]

    def test_no_cache_executor_reports_none(self):
        sweep = SweepExecutor(jobs=1).run(_specs(1))
        assert sweep.cache is None
        assert "cache" not in sweep.render().splitlines()[0]

    def test_cached_cells_still_count_violations(self, tmp_path):
        spec = ExperimentSpec.from_file(
            str(EXAMPLES / "violating_spec.json"))
        first = SweepExecutor(
            jobs=1, cache=ResultCache(root=str(tmp_path))).run([spec])
        assert first.violation_count > 0
        second = SweepExecutor(
            jobs=1, cache=ResultCache(root=str(tmp_path))).run([spec])
        assert second.cache["hits"] == 1
        assert second.violation_count == first.violation_count
        assert not second.ok
