"""Tests for grid expansion and the (parallel) sweep executor."""

import pathlib

import pytest

from repro.experiment import (
    ExperimentSpec,
    SpecError,
    SpecGrid,
    SweepExecutor,
    canonical_traffic_spec,
    demo_grid,
)


def _small_grid(datagrams=8):
    """A 16-spec grid cheap enough to run twice in one test."""
    base = canonical_traffic_spec(datagrams=datagrams).to_dict()
    del base["label"]
    return SpecGrid(
        base=base,
        axes={
            "seed": [1401, 1996],
            "awareness": ["conventional", "decap-capable"],
            "visited_filtering": [True, False],
            "encap": ["ipip", "minimal"],
        },
    )


class TestSpecGrid:
    def test_expansion_order_is_nested_loops(self):
        grid = SpecGrid(axes={"seed": [1, 2], "encap": ["ipip", "gre"]})
        specs = grid.expand()
        assert len(grid) == len(specs) == 4
        assert [(s.seed, s.encap) for s in specs] == [
            (1, "ipip"), (1, "gre"), (2, "ipip"), (2, "gre")]

    def test_labels_name_coordinates(self):
        specs = SpecGrid(axes={"seed": [7], "encap": ["gre"]}).expand()
        assert specs[0].label == "seed=7,encap=gre"

    def test_base_label_wins(self):
        specs = SpecGrid(base={"label": "fixed"},
                         axes={"seed": [1, 2]}).expand()
        assert [s.label for s in specs] == ["fixed", "fixed"]

    def test_json_round_trip(self):
        grid = _small_grid()
        clone = SpecGrid.from_json(grid.to_json())
        assert clone.to_dict() == grid.to_dict()
        assert [s.to_dict() for s in clone.expand()] == \
            [s.to_dict() for s in grid.expand()]

    @pytest.mark.parametrize("data,match", [
        ({"axes": {"warp_factor": [1]}}, "not an experiment-spec field"),
        ({"axes": {"seed": []}}, "non-empty list"),
        ({"axes": {"seed": 5}}, "non-empty list"),
        ({"base": {"bogus": 1}}, "unknown spec fields"),
        ({"base": [], "axes": {}}, "must be an object"),
        ({"extra": {}}, "unknown fields"),
    ])
    def test_bad_grid_raises(self, data, match):
        with pytest.raises(SpecError, match=match):
            SpecGrid.from_dict(data)

    def test_expansion_validates_each_cell(self):
        grid = SpecGrid(axes={"encap": ["ipip", "smoke-signals"]})
        with pytest.raises(SpecError, match="unknown encap"):
            grid.expand()

    def test_demo_grid_covers_sixteen_plus_cells(self):
        specs = demo_grid().expand()
        assert len(specs) >= 16
        assert all(s.arm_invariants for s in specs)
        assert len({s.label for s in specs}) == len(specs)


class TestSweepExecutor:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            SweepExecutor(jobs=0)

    def test_serial_sweep_preserves_spec_order(self):
        specs = _small_grid().expand()[:4]
        result = SweepExecutor(jobs=1).run(specs)
        assert [r.label for r in result.results] == \
            [s.label for s in specs]
        assert result.jobs == 1
        assert result.runs == 4
        assert result.elapsed > 0

    def test_parallel_digests_match_serial(self):
        # The PR's determinism bar: a fixed-seed sweep over >= 16
        # specs yields byte-identical per-run trace digests whether
        # run inline or across a 4-worker spawn pool.
        specs = _small_grid().expand()
        assert len(specs) == 16
        serial = SweepExecutor(jobs=1).run(specs)
        parallel = SweepExecutor(jobs=4).run(specs)
        assert serial.digests() == parallel.digests()
        assert [r.label for r in parallel.results] == \
            [s.label for s in specs]
        # The grid genuinely varies the world: distinct digests exist.
        assert len(set(serial.digests())) > 1

    def test_violations_surface_in_sweep_result(self):
        bad = canonical_traffic_spec(
            datagrams=5, arm_invariants=True, max_tunnel_depth=0)
        result = SweepExecutor(jobs=1).run([bad])
        assert not result.ok
        assert result.violation_count > 0

    def test_render_mentions_every_label(self):
        specs = _small_grid().expand()[:2]
        rendered = SweepExecutor(jobs=1).run(specs).render()
        assert "sweep: 2 runs" in rendered
        for spec in specs:
            assert spec.label[:44] in rendered

    def test_result_dict_is_json_clean(self):
        import json

        result = SweepExecutor(jobs=1).run(_small_grid().expand()[:2])
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["runs"] == 2
        assert len(payload["results"]) == 2

    def test_single_spec_skips_the_pool(self):
        # jobs>1 with one spec must not pay spawn cost; digest still
        # matches the inline path.
        spec = canonical_traffic_spec(datagrams=5)
        inline = SweepExecutor(jobs=1).run([spec])
        fanned = SweepExecutor(jobs=4).run([spec])
        assert inline.digests() == fanned.digests()


class TestSpecFieldCoverage:
    def test_grid_axes_accept_any_spec_field(self):
        # Guard: every public spec field can be an axis name.
        for name in ExperimentSpec.__dataclass_fields__:
            SpecGrid(axes={name: [getattr(ExperimentSpec(), name)]})


class TestExampleFiles:
    """The committed example grid/spec files stay loadable and honest."""

    EXAMPLES = (pathlib.Path(__file__).resolve().parent.parent.parent
                / "examples")

    def test_grid_4x4_expands_to_sixteen_plus_cells(self):
        grid = SpecGrid.from_file(str(self.EXAMPLES / "grid_4x4.json"))
        specs = grid.expand()
        assert len(specs) >= 16
        assert all(s.arm_invariants for s in specs)
        # It is exactly the worked demo grid the CLI runs by default.
        assert grid.to_dict() == demo_grid().to_dict()

    def test_violating_spec_violates(self):
        spec = ExperimentSpec.from_file(
            str(self.EXAMPLES / "violating_spec.json"))
        assert spec.arm_invariants and spec.max_tunnel_depth == 0
        result = SweepExecutor(jobs=1).run([spec])
        assert result.violation_count > 0
