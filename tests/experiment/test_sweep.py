"""Tests for grid expansion and the (parallel) sweep executor."""

import pathlib

import pytest

from repro.experiment import (
    ExperimentSpec,
    SpecError,
    SpecGrid,
    SweepExecutor,
    canonical_traffic_spec,
    demo_grid,
)


def _small_grid(datagrams=8):
    """A 16-spec grid cheap enough to run twice in one test."""
    base = canonical_traffic_spec(datagrams=datagrams).to_dict()
    del base["label"]
    return SpecGrid(
        base=base,
        axes={
            "seed": [1401, 1996],
            "awareness": ["conventional", "decap-capable"],
            "visited_filtering": [True, False],
            "encap": ["ipip", "minimal"],
        },
    )


class TestSpecGrid:
    def test_expansion_order_is_nested_loops(self):
        grid = SpecGrid(axes={"seed": [1, 2], "encap": ["ipip", "gre"]})
        specs = grid.expand()
        assert len(grid) == len(specs) == 4
        assert [(s.seed, s.encap) for s in specs] == [
            (1, "ipip"), (1, "gre"), (2, "ipip"), (2, "gre")]

    def test_labels_name_coordinates(self):
        specs = SpecGrid(axes={"seed": [7], "encap": ["gre"]}).expand()
        assert specs[0].label == "seed=7,encap=gre"

    def test_base_label_wins(self):
        specs = SpecGrid(base={"label": "fixed"},
                         axes={"seed": [1, 2]}).expand()
        assert [s.label for s in specs] == ["fixed", "fixed"]

    def test_json_round_trip(self):
        grid = _small_grid()
        clone = SpecGrid.from_json(grid.to_json())
        assert clone.to_dict() == grid.to_dict()
        assert [s.to_dict() for s in clone.expand()] == \
            [s.to_dict() for s in grid.expand()]

    @pytest.mark.parametrize("data,match", [
        ({"axes": {"warp_factor": [1]}}, "not an experiment-spec field"),
        ({"axes": {"seed": []}}, "non-empty list"),
        ({"axes": {"seed": 5}}, "non-empty list"),
        ({"base": {"bogus": 1}}, "unknown spec fields"),
        ({"base": [], "axes": {}}, "must be an object"),
        ({"extra": {}}, "unknown fields"),
    ])
    def test_bad_grid_raises(self, data, match):
        with pytest.raises(SpecError, match=match):
            SpecGrid.from_dict(data)

    def test_expansion_validates_each_cell(self):
        grid = SpecGrid(axes={"encap": ["ipip", "smoke-signals"]})
        with pytest.raises(SpecError, match="unknown encap"):
            grid.expand()

    def test_demo_grid_covers_sixteen_plus_cells(self):
        specs = demo_grid().expand()
        assert len(specs) >= 16
        assert all(s.arm_invariants for s in specs)
        assert len({s.label for s in specs}) == len(specs)


class TestSweepExecutor:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            SweepExecutor(jobs=0)

    def test_serial_sweep_preserves_spec_order(self):
        specs = _small_grid().expand()[:4]
        result = SweepExecutor(jobs=1).run(specs)
        assert [r.label for r in result.results] == \
            [s.label for s in specs]
        assert result.jobs == 1
        assert result.runs == 4
        assert result.elapsed > 0

    def test_parallel_digests_match_serial(self):
        # The PR's determinism bar: a fixed-seed sweep over >= 16
        # specs yields byte-identical per-run trace digests whether
        # run inline or across a 4-worker spawn pool.
        specs = _small_grid().expand()
        assert len(specs) == 16
        serial = SweepExecutor(jobs=1).run(specs)
        parallel = SweepExecutor(jobs=4).run(specs)
        assert serial.digests() == parallel.digests()
        assert [r.label for r in parallel.results] == \
            [s.label for s in specs]
        # The grid genuinely varies the world: distinct digests exist.
        assert len(set(serial.digests())) > 1

    def test_violations_surface_in_sweep_result(self):
        bad = canonical_traffic_spec(
            datagrams=5, arm_invariants=True, max_tunnel_depth=0)
        result = SweepExecutor(jobs=1).run([bad])
        assert not result.ok
        assert result.violation_count > 0

    def test_render_mentions_every_label(self):
        specs = _small_grid().expand()[:2]
        rendered = SweepExecutor(jobs=1).run(specs).render()
        assert "sweep: 2 runs" in rendered
        for spec in specs:
            assert spec.label[:44] in rendered

    def test_result_dict_is_json_clean(self):
        import json

        result = SweepExecutor(jobs=1).run(_small_grid().expand()[:2])
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["runs"] == 2
        assert len(payload["results"]) == 2

    def test_zero_elapsed_result_round_trips_as_json(self):
        # Regression: runs_per_sec was runs/elapsed, so elapsed == 0
        # produced float("inf") and json.dumps emitted the non-standard
        # "Infinity" token into --json-out.
        import json

        from repro.experiment.sweep import SweepResult

        empty = SweepResult(results=[], jobs=1, elapsed=0.0)
        payload = json.loads(json.dumps(empty.to_dict()))
        assert payload["runs_per_sec"] == 0.0
        assert json.loads(
            json.dumps(payload)) == payload  # strictly valid JSON

    def test_quarantined_cell_surfaces_in_dict_and_render(self):
        import json

        from repro.experiment import failed_result
        from repro.experiment.sweep import SweepResult

        spec = canonical_traffic_spec(datagrams=5)
        failed = failed_result(spec, {
            "reason": "timeout", "attempts": 3,
            "message": "cell exceeded 2.0s wall clock", "history": []})
        result = SweepResult(results=[failed], jobs=2, elapsed=1.0,
                             retries=2)
        assert result.failed_count == 1
        assert not result.ok
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["failed"] == 1
        assert payload["retries"] == 2
        assert payload["failures"][0]["reason"] == "timeout"
        rendered = result.render()
        assert "1 quarantined" in rendered
        assert "FAILED" in rendered
        assert "timeout after 3 attempt(s)" in rendered

    def test_single_spec_skips_the_pool(self):
        # jobs>1 with one spec must not pay spawn cost; digest still
        # matches the inline path.
        spec = canonical_traffic_spec(datagrams=5)
        inline = SweepExecutor(jobs=1).run([spec])
        fanned = SweepExecutor(jobs=4).run([spec])
        assert inline.digests() == fanned.digests()


class TestSpecFieldCoverage:
    def test_grid_axes_accept_any_spec_field(self):
        # Guard: every public spec field can be an axis name.
        for name in ExperimentSpec.__dataclass_fields__:
            SpecGrid(axes={name: [getattr(ExperimentSpec(), name)]})


class TestExampleFiles:
    """The committed example grid/spec files stay loadable and honest."""

    EXAMPLES = (pathlib.Path(__file__).resolve().parent.parent.parent
                / "examples")

    def test_grid_4x4_expands_to_sixteen_plus_cells(self):
        grid = SpecGrid.from_file(str(self.EXAMPLES / "grid_4x4.json"))
        specs = grid.expand()
        assert len(specs) >= 16
        assert all(s.arm_invariants for s in specs)
        # It is exactly the worked demo grid the CLI runs by default.
        assert grid.to_dict() == demo_grid().to_dict()

    def test_violating_spec_violates(self):
        spec = ExperimentSpec.from_file(
            str(self.EXAMPLES / "violating_spec.json"))
        assert spec.arm_invariants and spec.max_tunnel_depth == 0
        result = SweepExecutor(jobs=1).run([spec])
        assert result.violation_count > 0


class TestSweepTelemetry:
    """The parent-side hooks: progress stream, ledger, flight dumps."""

    def _specs(self, n=3, datagrams=5):
        base = canonical_traffic_spec(datagrams=datagrams).to_dict()
        del base["label"]
        return SpecGrid(
            base=base, axes={"seed": [1401 + i for i in range(n)]},
        ).expand()

    def test_progress_events_stream_per_cell(self):
        events = []
        executor = SweepExecutor(jobs=1, progress=events.append)
        result = executor.run(self._specs(3))
        assert len(events) == result.runs == 3
        assert [e["completed"] for e in events] == [1, 2, 3]
        assert all(e["total"] == 3 for e in events)
        final = events[-1]
        assert final["completed"] == final["total"]
        assert final["eta_sec"] == 0.0
        for event in events:
            assert {"index", "label", "digest", "cache_hit", "violations",
                    "elapsed", "cells_per_sec", "eta_sec", "cache_hits",
                    "cache_hit_rate", "violations_total"} <= set(event)
            assert event["cache_hit"] is False

    def test_ledger_records_bookend_the_sweep(self, tmp_path):
        from repro.experiment import ResultCache
        from repro.obs.ledger import RunLedger, read_ledger, validate_record

        specs = self._specs(2)
        cache = ResultCache(str(tmp_path / "cache"))
        path = tmp_path / "ledger.jsonl"
        with RunLedger(str(path)) as ledger:
            SweepExecutor(jobs=1, cache=cache, ledger=ledger).run(specs)
            # Warm second pass: every cell should land as a cache hit.
            SweepExecutor(jobs=1, cache=cache, ledger=ledger).run(specs)
        records, skipped = read_ledger(str(path))
        assert skipped == 0
        assert [r["kind"] for r in records] == [
            "sweep-start", "run", "run", "sweep-end",
            "sweep-start", "run", "run", "sweep-end"]
        assert all(validate_record(r) == [] for r in records)
        assert [r["provenance"] for r in records if r["kind"] == "run"] == [
            "run", "run", "cache", "cache"]
        assert records[3]["cache"]["misses"] == 2
        assert records[7]["cache"]["hits"] == 2

    def test_per_cell_flightrec_paths(self):
        executor = SweepExecutor(flightrec_path="out/flightrec.json")
        assert executor._cell_flightrec_path(7, 16) == \
            "out/flightrec-007.json"
        assert executor._cell_flightrec_path(0, 1) == "out/flightrec.json"
        assert SweepExecutor()._cell_flightrec_path(7, 16) is None

    def test_violating_sweep_dumps_per_cell_flightrecs(self, tmp_path):
        base = canonical_traffic_spec(
            datagrams=5, arm_invariants=True, max_tunnel_depth=0).to_dict()
        del base["label"]
        specs = SpecGrid(base=base, axes={"seed": [1401, 1402]}).expand()
        path = tmp_path / "flightrec.json"
        executor = SweepExecutor(jobs=1, flightrec_path=str(path))
        result = executor.run(specs)
        assert result.violation_count > 0
        dumps = result.flightrec_dumps()
        assert dumps == [
            str(tmp_path / "flightrec-000.json"),
            str(tmp_path / "flightrec-001.json")]
        for dump in dumps:
            assert pathlib.Path(dump).exists()
