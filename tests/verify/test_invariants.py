"""Tests for the runtime invariant monitor."""

import pytest

from repro.analysis.chaos import run_chaos
from repro.analysis.scenarios import build_scenario
from repro.netsim.addressing import IPAddress
from repro.netsim.encap import EncapScheme, encapsulate
from repro.netsim.fragmentation import fragment
from repro.netsim.packet import IPProto, Packet
from repro.netsim.router import Router
from repro.netsim.trace import TraceLog
from repro.verify.invariants import INVARIANTS, InvariantMonitor


def make_packet(size=100, src="10.9.0.1", dst="10.9.0.2", ttl=64):
    return Packet(
        src=IPAddress(src), dst=IPAddress(dst), proto=IPProto.UDP,
        payload="data", payload_size=size, ttl=ttl,
    )


def run_udp_conversation(scenario, count=5):
    """A few UDP datagrams each way so the monitor sees real traffic."""
    sim = scenario.sim
    ch_socket = scenario.ch.stack.udp_socket(7000)
    ch_socket.on_receive(lambda *args: None)
    mh_socket = scenario.mh.stack.udp_socket(7000)
    mh_socket.on_receive(lambda *args: None)
    for i in range(count):
        sim.events.schedule(
            i + 1.0,
            lambda i=i: mh_socket.sendto(("up", i), 200, scenario.ch_ip, 7000),
        )
        sim.events.schedule(
            i + 1.5,
            lambda i=i: ch_socket.sendto(
                ("down", i), 200, scenario.mh.home_address, 7000),
        )
    sim.run(until=sim.now + count + 10.0)


class TestAttachment:
    def test_attach_wraps_and_detach_restores_note(self):
        trace = TraceLog()
        monitor = InvariantMonitor()
        monitor.attach(trace)
        assert "note" in trace.__dict__          # instance-level wrap
        trace.note(0.0, "n", "send", make_packet())
        assert len(trace.entries) == 1           # original still records
        monitor.detach()
        assert "note" not in trace.__dict__      # class method again
        trace.note(1.0, "n", "deliver", make_packet())
        assert len(trace.entries) == 2

    def test_double_attach_refused(self):
        trace = TraceLog()
        monitor = InvariantMonitor()
        monitor.attach(trace)
        with pytest.raises(RuntimeError):
            monitor.attach(trace)

    def test_enable_invariants_twice_refused(self):
        scenario = build_scenario()
        scenario.sim.enable_invariants()
        with pytest.raises(RuntimeError):
            scenario.sim.enable_invariants()


class TestCleanRuns:
    def test_canonical_scenario_is_violation_free(self):
        scenario = build_scenario()
        monitor = scenario.sim.enable_invariants()
        run_udp_conversation(scenario)
        monitor.finish(scenario.sim.now)
        assert monitor.ok, [str(v) for v in monitor.violations]
        # The monitor actually worked: forwards were checked.
        assert monitor.checks["no-loop"] > 0
        assert monitor.checks["ttl-decreases"] > 0
        assert monitor.checks["termination"] > 0

    def test_every_invariant_is_named(self):
        monitor = InvariantMonitor()
        assert set(monitor.checks) == set(INVARIANTS)

    def test_arming_the_monitor_never_changes_the_digest(self):
        """The golden-trace property: the monitor is a pure observer, so
        an armed run is byte-identical to an unarmed one."""
        bare = run_chaos(duration=40.0, arm_invariants=False)
        armed = run_chaos(duration=40.0, arm_invariants=True)
        assert armed.digest == bare.digest
        assert armed.trace_entries == bare.trace_entries
        assert armed.invariants_armed and not bare.invariants_armed


class TestLoopInvariant:
    def test_revisiting_a_forwarder_in_one_phase_is_flagged(self):
        monitor = InvariantMonitor()
        packet = make_packet(ttl=64)
        monitor.on_event(0.0, "host", "send", packet)
        packet.ttl = 63
        monitor.on_event(0.1, "r1", "forward", packet)
        packet.ttl = 62
        monitor.on_event(0.2, "r2", "forward", packet)
        packet.ttl = 61
        monitor.on_event(0.3, "r1", "forward", packet)   # the loop
        assert [v.invariant for v in monitor.violations] == ["no-loop"]
        assert monitor.violations[0].node == "r1"

    def test_revisit_across_phases_is_legitimate(self):
        """Decapsulation starts a new phase: the home agent's LAN router
        legitimately sees the same datagram twice (outer, then inner)."""
        monitor = InvariantMonitor()
        packet = make_packet(ttl=64)
        monitor.on_event(0.0, "host", "send", packet)
        packet.ttl = 63
        monitor.on_event(0.1, "r1", "forward", packet)
        monitor.on_event(0.2, "ha", "decapsulate", packet)
        packet.ttl = 64                                   # inner's own TTL
        monitor.on_event(0.3, "r1", "forward", packet)    # same router, ok
        assert monitor.ok

    def test_retransmission_is_not_a_loop(self):
        """TCP retransmits reuse the trace id; each 'send' is a phase."""
        monitor = InvariantMonitor()
        packet = make_packet(ttl=64)
        for _ in range(3):
            monitor.on_event(0.0, "host", "send", packet)
            packet.ttl = 63
            monitor.on_event(0.1, "r1", "forward", packet)
            packet.ttl = 64
        assert monitor.ok


class TestTtlInvariant:
    def test_non_decreasing_ttl_is_flagged(self):
        monitor = InvariantMonitor()
        packet = make_packet(ttl=64)
        monitor.on_event(0.0, "host", "send", packet)
        monitor.on_event(0.1, "r1", "forward", packet)
        monitor.on_event(0.2, "r2", "forward", packet)   # still 64
        assert [v.invariant for v in monitor.violations] == ["ttl-decreases"]
        assert "64 -> 64" in monitor.violations[0].message

    def test_negative_ttl_is_flagged(self):
        monitor = InvariantMonitor()
        packet = make_packet(ttl=-1)
        monitor.on_event(0.0, "r1", "forward", packet)
        assert [v.invariant for v in monitor.violations] == ["ttl-decreases"]

    def test_broken_router_caught_end_to_end(self, monkeypatch):
        """The acceptance sabotage: a router build that forgets to
        decrement TTL must be caught on the real stage."""
        monkeypatch.setattr(Router, "ttl_decrement", 0)
        scenario = build_scenario()
        monitor = scenario.sim.enable_invariants()
        run_udp_conversation(scenario)
        monitor.finish(scenario.sim.now)
        assert not monitor.ok
        assert any(v.invariant == "ttl-decreases" for v in monitor.violations)


class TestTunnelDepthInvariant:
    def test_nesting_beyond_the_bound_is_flagged(self):
        monitor = InvariantMonitor(max_tunnel_depth=2)
        packet = make_packet()
        for hop in range(3):
            packet = encapsulate(
                packet, IPAddress(f"1.1.1.{hop + 1}"), IPAddress("2.2.2.2"))
        monitor.on_event(0.0, "ha", "encapsulate", packet)
        assert [v.invariant for v in monitor.violations] == ["tunnel-depth"]
        assert "depth 3 exceeds bound 2" in monitor.violations[0].message

    def test_minimal_encapsulation_layers_are_counted(self):
        """MINENC hides the inner packet in a shim header; the depth
        walker must see through it."""
        monitor = InvariantMonitor(max_tunnel_depth=1)
        inner = make_packet()
        outer = encapsulate(
            inner, IPAddress("1.1.1.1"), IPAddress("2.2.2.2"),
            scheme=EncapScheme.MINIMAL)
        doubled = encapsulate(
            outer, IPAddress("3.3.3.3"), IPAddress("2.2.2.2"))
        monitor.on_event(0.0, "ha", "encapsulate", doubled)
        assert [v.invariant for v in monitor.violations] == ["tunnel-depth"]

    def test_normal_single_tunnel_passes(self):
        monitor = InvariantMonitor()
        packet = encapsulate(
            make_packet(), IPAddress("1.1.1.1"), IPAddress("2.2.2.2"))
        monitor.on_event(0.0, "ha", "encapsulate", packet)
        assert monitor.ok


class TestFragmentConservation:
    def test_honest_fragmentation_passes(self):
        monitor = InvariantMonitor()
        packet = make_packet(3000)
        pieces = fragment(packet, 1500)
        monitor.on_event(
            0.0, "r1", "fragment", packet,
            f"into {len(pieces)} pieces (mtu 1500)")
        assert monitor.ok
        assert monitor.checks["fragment-conservation"] == 1

    def test_wrong_piece_count_is_flagged(self):
        monitor = InvariantMonitor()
        packet = make_packet(3000)                       # really 3 pieces
        monitor.on_event(
            0.0, "r1", "fragment", packet, "into 7 pieces (mtu 1500)")
        assert [v.invariant for v in monitor.violations] == [
            "fragment-conservation"]
        assert "traced 7, got 3" in monitor.violations[0].message

    def test_unparseable_detail_is_flagged(self):
        monitor = InvariantMonitor()
        monitor.on_event(0.0, "r1", "fragment", make_packet(3000), "???")
        assert [v.invariant for v in monitor.violations] == [
            "fragment-conservation"]


class TestBindingConsistency:
    def test_tunneling_via_an_expired_binding_is_flagged(self):
        scenario = build_scenario()
        sim = scenario.sim
        monitor = sim.enable_invariants()
        # Replace the live binding with one that expired long ago; the
        # monitor's peek sees it even though lookup() would drop it.
        scenario.ha.bindings.register(
            scenario.mh.home_address, scenario.mh.care_of,
            now=sim.now - 100.0, lifetime=1.0)
        packet = make_packet(
            src=str(scenario.ch_ip), dst=str(scenario.mh.home_address))
        scenario.ha._forward_to_mobile(packet, scenario.mh.care_of)
        assert any(
            v.invariant == "binding-consistency" and "expired" in v.message
            for v in monitor.violations)

    def test_tunneling_to_the_wrong_care_of_is_flagged(self):
        scenario = build_scenario()
        sim = scenario.sim
        monitor = sim.enable_invariants()
        stale_care_of = IPAddress("10.99.0.1")
        packet = make_packet(
            src=str(scenario.ch_ip), dst=str(scenario.mh.home_address))
        scenario.ha._forward_to_mobile(packet, stale_care_of)
        assert any(
            v.invariant == "binding-consistency"
            and str(stale_care_of) in v.message
            for v in monitor.violations)

    def test_tunneling_to_the_bound_care_of_passes(self):
        scenario = build_scenario()
        sim = scenario.sim
        monitor = sim.enable_invariants()
        packet = make_packet(
            src=str(scenario.ch_ip), dst=str(scenario.mh.home_address))
        scenario.ha._forward_to_mobile(packet, scenario.mh.care_of)
        assert monitor.ok
        assert monitor.checks["binding-consistency"] == 1


class TestFilterSoundness:
    def test_filter_verdict_from_a_permissive_router_is_flagged(self):
        scenario = build_scenario(visited_filtering=False)
        sim = scenario.sim
        monitor = sim.enable_invariants()
        packet = make_packet()
        # A filter verdict the posture cannot produce (the bug this
        # invariant exists for: stale rules after a posture change).
        sim.trace.note(sim.now, "visited-gw", "drop", packet,
                       "source-address-filter: 10.9.0.1 not inside")
        sim.trace.note(sim.now, "visited-gw", "drop", packet,
                       "transit-traffic-forbidden")
        kinds = [v.invariant for v in monitor.violations]
        assert kinds == ["filter-soundness", "filter-soundness"]

    def test_filter_verdict_from_a_filtering_router_passes(self):
        scenario = build_scenario(visited_filtering=True)
        sim = scenario.sim
        monitor = sim.enable_invariants()
        packet = make_packet()
        sim.trace.note(sim.now, "visited-gw", "drop", packet,
                       "source-address-filter: 10.9.0.1 not inside")
        assert monitor.ok
        assert monitor.checks["filter-soundness"] == 1


class TestTermination:
    def test_vanished_datagram_is_flagged(self):
        monitor = InvariantMonitor(grace=2.0)
        packet = make_packet()
        monitor.on_event(0.0, "host", "send", packet)
        monitor.on_event(0.1, "r1", "forward", packet)
        violations = monitor.finish(now=100.0)
        assert [v.invariant for v in violations] == ["termination"]

    def test_delivered_datagram_passes(self):
        monitor = InvariantMonitor()
        packet = make_packet()
        monitor.on_event(0.0, "host", "send", packet)
        monitor.on_event(0.2, "dst", "deliver", packet)
        assert monitor.finish(now=100.0) == []

    def test_classified_drop_and_traced_loss_pass(self):
        monitor = InvariantMonitor()
        dropped, lost = make_packet(), make_packet()
        monitor.on_event(0.0, "host", "send", dropped)
        monitor.on_event(0.1, "r1", "drop", dropped, "no-route")
        monitor.on_event(0.0, "host", "send", lost)
        monitor.on_event(0.1, "lan", "lost", lost, "link-loss")
        assert monitor.finish(now=100.0) == []

    def test_still_in_flight_within_grace_is_excused(self):
        monitor = InvariantMonitor(grace=2.0)
        packet = make_packet()
        monitor.on_event(99.0, "host", "send", packet)
        assert monitor.finish(now=100.0) == []

    def test_broadcast_and_multicast_are_exempt(self):
        monitor = InvariantMonitor()
        bcast = make_packet(dst="255.255.255.255")
        mcast = make_packet(dst="224.0.0.9")
        monitor.on_event(0.0, "host", "send", bcast)
        monitor.on_event(0.0, "host", "send", mcast)
        assert monitor.finish(now=100.0) == []

    def test_finish_is_idempotent(self):
        monitor = InvariantMonitor()
        packet = make_packet()
        monitor.on_event(0.0, "host", "send", packet)
        first = list(monitor.finish(now=100.0))
        assert monitor.finish(now=100.0) == first
        assert monitor.violation_count == 1
