"""Tests for the self-shrinking fuzz harness."""

import json

from repro.netsim.router import Router
from repro.verify.fuzz import (
    FuzzCase,
    generate_case,
    replay_repro,
    run_case,
    run_fuzz,
    shrink_case,
)


class TestCaseGeneration:
    def test_same_seed_same_case(self):
        assert generate_case(12345) == generate_case(12345)

    def test_different_seeds_differ(self):
        cases = {generate_case(seed).to_json() for seed in range(10)}
        assert len(cases) == 10

    def test_events_are_time_sorted(self):
        case = generate_case(7)
        for events, key in ((case.traffic, "at"), (case.faults, "time"),
                            (case.adversary, "at")):
            times = [e[key] for e in events]
            assert times == sorted(times)

    def test_json_round_trip(self):
        case = generate_case(99)
        assert FuzzCase.from_json(case.to_json()) == case


class TestRunCase:
    def test_same_case_same_result(self):
        case = generate_case(4242)
        first = run_case(case)
        second = run_case(case)
        assert first.trace_entries == second.trace_entries
        assert first.checks == second.checks
        assert first.violations == second.violations

    def test_case_runs_are_violation_free_and_checked(self):
        case = generate_case(4242)
        result = run_case(case)
        assert result.ok, result.violations
        assert result.checks["no-loop"] > 0
        assert result.checks["termination"] > 0


class TestFuzzLoop:
    def test_short_campaign_finds_nothing(self):
        report = run_fuzz(iterations=5, seed=4)
        assert not report.failed
        assert report.cases_run == 5

    def test_campaign_is_seed_deterministic(self):
        first = run_fuzz(iterations=3, seed=17)
        second = run_fuzz(iterations=3, seed=17)
        assert first.to_dict() == second.to_dict()

    def test_broken_ttl_is_caught_and_shrunk(self, monkeypatch, tmp_path):
        """The acceptance sabotage: a router that forgets to decrement
        TTL must be caught and shrunk to a tiny repro."""
        monkeypatch.setattr(Router, "ttl_decrement", 0)
        out = tmp_path / "repro.json"
        report = run_fuzz(iterations=5, seed=4, out=str(out))
        assert report.failed
        assert any(v["invariant"] == "ttl-decreases"
                   for v in report.violations)
        shrunk = FuzzCase.from_dict(report.shrunk_case)
        assert shrunk.event_count <= 10
        # The repro file replays to the same violation.
        payload = json.loads(out.read_text())
        assert payload["case"] == report.shrunk_case
        result = replay_repro(str(out))
        assert "ttl-decreases" in result.violated_invariants()

    def test_shrinking_preserves_the_target_violation(self, monkeypatch):
        monkeypatch.setattr(Router, "ttl_decrement", 0)
        case = generate_case(4242)
        assert "ttl-decreases" in run_case(case).violated_invariants()
        shrunk = shrink_case(case, "ttl-decreases", max_runs=40)
        assert shrunk.event_count <= case.event_count
        assert "ttl-decreases" in run_case(shrunk).violated_invariants()


class TestCaseAsSpec:
    def test_spec_json_round_trip(self):
        from repro.experiment import ExperimentSpec

        spec = generate_case(4242).to_spec()
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec

    def test_spec_replays_identically_to_run_case(self):
        from repro.experiment import Runner

        case = generate_case(4242)
        legacy = run_case(case)
        result = Runner().run(case.to_spec())
        assert result.trace_entries == legacy.trace_entries
        assert result.invariants["checks"] == legacy.checks
        assert result.violations == legacy.violations

    def test_repro_file_embeds_a_loadable_spec(self, monkeypatch, tmp_path):
        from repro.experiment import ExperimentSpec, Runner

        monkeypatch.setattr(Router, "ttl_decrement", 0)
        out = tmp_path / "repro.json"
        report = run_fuzz(iterations=5, seed=4, out=str(out))
        assert report.failed
        payload = json.loads(out.read_text())
        # The shrunken world ships as a spec alongside the case…
        spec = ExperimentSpec.from_dict(payload["spec"])
        assert spec == FuzzCase.from_dict(payload["case"]).to_spec()
        # …and ExperimentSpec.from_file unwraps the repro envelope, so
        # the sweep CLI replays it to the same violation.
        assert ExperimentSpec.from_file(str(out)) == spec
        result = Runner().run(spec)
        assert any(v["invariant"] == "ttl-decreases"
                   for v in result.violations)
