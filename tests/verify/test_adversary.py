"""Adversarial hardening: spoofing, replay, and malformed tunnels."""

import pytest

from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.mobileip.registration import (
    RegistrationRequest,
    ReplyCode,
    compute_authenticator,
)
from repro.verify.adversary import Adversary

KEY = "shared-secret"


def build_stage(auth_key=None):
    scenario = build_scenario(auth_key=auth_key)
    adversary = Adversary("adv", scenario.sim)
    scenario.net.add_host("visited", adversary)
    return scenario, adversary


def settle(scenario, duration=5.0):
    scenario.sim.run(until=scenario.sim.now + duration)


class TestSpoofing:
    def test_spoof_rejected_when_authentication_is_on(self):
        scenario, adversary = build_stage(auth_key=KEY)
        legit_care_of = scenario.mh.care_of
        adversary.spoof_registration(scenario.ha_ip, MH_HOME_ADDRESS)
        settle(scenario)
        assert adversary.replies
        assert adversary.replies[-1].code is ReplyCode.DENIED_FAILED_AUTHENTICATION
        assert scenario.ha.auth_failures == 1
        # The legitimate binding is untouched: traffic still reaches mh.
        binding = scenario.ha.bindings.peek(MH_HOME_ADDRESS)
        assert binding is not None
        assert binding.care_of_address == legit_care_of

    def test_spoof_hijacks_an_unauthenticated_agent(self):
        """Without a key the agent is as trusting as the paper's
        original design — the attack the auth extension exists for."""
        scenario, adversary = build_stage(auth_key=None)
        adversary.spoof_registration(scenario.ha_ip, MH_HOME_ADDRESS)
        settle(scenario)
        assert adversary.replies
        assert adversary.replies[-1].code is ReplyCode.ACCEPTED
        binding = scenario.ha.bindings.peek(MH_HOME_ADDRESS)
        assert binding is not None
        assert binding.care_of_address != scenario.mh.care_of  # hijacked

    def test_guessed_authenticator_still_rejected(self):
        scenario, adversary = build_stage(auth_key=KEY)
        adversary.spoof_registration(
            scenario.ha_ip, MH_HOME_ADDRESS, auth=0xDEADBEEF)
        settle(scenario)
        assert adversary.replies[-1].code is ReplyCode.DENIED_FAILED_AUTHENTICATION


class TestReplay:
    def _captured_request(self, scenario, ident):
        """A verbatim copy of a legitimate request: valid authenticator
        (the attacker has the bytes, not the key), chosen ident."""
        care_of = scenario.mh.care_of
        lifetime = scenario.mh.reg_lifetime
        return RegistrationRequest(
            home_address=MH_HOME_ADDRESS,
            care_of_address=care_of,
            lifetime=lifetime,
            ident=ident,
            auth=compute_authenticator(
                KEY, MH_HOME_ADDRESS, care_of, lifetime, ident),
        )

    def test_replay_rejected_by_ident_protection(self):
        scenario, adversary = build_stage(auth_key=KEY)
        # Ident 1 predates the mobile host's own registration, so the
        # authenticator verifies but the ident check must trip.
        adversary.capture(self._captured_request(scenario, ident=1))
        adversary.replay_captured(scenario.ha_ip)
        settle(scenario)
        assert adversary.replies
        assert adversary.replies[-1].code is ReplyCode.DENIED_IDENT_MISMATCH
        assert scenario.ha.replays_rejected == 1
        # The binding survives with the legitimate care-of address.
        binding = scenario.ha.bindings.peek(MH_HOME_ADDRESS)
        assert binding is not None
        assert binding.care_of_address == scenario.mh.care_of

    def test_legitimate_reregistration_still_accepted(self):
        """The replay shield must not lock out the real mobile host,
        whose idents keep increasing."""
        scenario, _ = build_stage(auth_key=KEY)
        scenario.mh.register_with_home_agent()
        settle(scenario)
        assert scenario.mh.registered
        assert scenario.ha.replays_rejected == 0


class TestMalformedTunnels:
    def test_bogus_tunnel_payload_is_a_classified_drop(self):
        scenario, adversary = build_stage()
        adversary.send_bogus_tunnel(scenario.ha_ip)
        settle(scenario)
        assert scenario.ha.tunnel.bad_encap_count == 1
        drops = [e for e in scenario.sim.trace.entries
                 if e.action == "drop" and e.detail == "bad-encap"]
        assert len(drops) == 1 and drops[0].node == "ha"

    def test_truncated_minimal_encapsulation_is_a_classified_drop(self):
        scenario, adversary = build_stage()
        adversary.send_truncated_tunnel(scenario.ha_ip)
        settle(scenario)
        assert scenario.ha.tunnel.bad_encap_count == 1

    def test_malformed_tunnels_never_escape_as_exceptions(self):
        """The engine survives a barrage at every decap-capable node and
        ordinary traffic keeps flowing afterwards."""
        scenario, adversary = build_stage()
        monitor = scenario.sim.enable_invariants()
        for target in (scenario.ha_ip, scenario.mh.care_of):
            adversary.send_bogus_tunnel(target)
            adversary.send_truncated_tunnel(target)
        settle(scenario)
        scenario.mh.register_with_home_agent()
        settle(scenario)
        assert scenario.mh.registered
        monitor.finish(scenario.sim.now)
        assert monitor.ok, [str(v) for v in monitor.violations]

    def test_schedule_drives_attacks_through_the_event_engine(self):
        scenario, adversary = build_stage()
        adversary.run_schedule([
            (scenario.sim.now + 1.0, "bogus", {"dst": scenario.ha_ip}),
            (scenario.sim.now + 2.0, "truncated", {"dst": scenario.ha_ip}),
        ])
        settle(scenario)
        assert adversary.attacks_sent == 2
        assert scenario.ha.tunnel.bad_encap_count == 2

    def test_unknown_schedule_kind_is_refused(self):
        scenario, adversary = build_stage()
        with pytest.raises(ValueError):
            adversary.run_schedule([(1.0, "teleport", {})])
