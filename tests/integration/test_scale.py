"""Scale test: one home agent serving a fleet of roaming mobile hosts.

The paper's home agent "acts as a proxy on behalf of the mobile host
for the duration of its absence" — per host.  This test checks the
machinery stays correct (not just fast) when many hosts share one
agent: independent bindings, independent proxy-ARP entries, per-host
mode ladders, and no cross-talk between conversations.
"""

import pytest

from repro.core import ProbeStrategy
from repro.mobileip import Awareness, CorrespondentHost, HomeAgent, MobileHost
from repro.netsim import Internet, IPAddress, Simulator

FLEET = 12


@pytest.fixture
def fleet():
    sim = Simulator(seed=961)
    net = Internet(sim, backbone_size=4)
    home = net.add_domain("home", "10.1.0.0/16", attach_at=0)
    net.add_domain("visited-a", "10.2.0.0/16", attach_at=3)
    net.add_domain("visited-b", "10.4.0.0/16", attach_at=2)
    chdom = net.add_domain("chdom", "10.3.0.0/16", attach_at=1,
                           source_filtering=False, forbid_transit=False)
    ha = HomeAgent("ha", sim, home_network=home.prefix)
    ha_ip = net.add_host("home", ha)
    ch = CorrespondentHost("ch", sim, awareness=Awareness.CONVENTIONAL)
    ch_ip = net.add_host("chdom", ch)

    hosts = []
    for index in range(FLEET):
        mh = MobileHost(
            f"mh{index}", sim,
            home_address=IPAddress(f"10.1.1.{index + 1}"),
            home_network=home.prefix,
            home_agent_address=ha_ip,
            strategy=ProbeStrategy.CONSERVATIVE_FIRST,
        )
        mh.attach_home(net, "home")
        hosts.append(mh)
    return sim, net, ha, ch, ch_ip, hosts


class TestFleet:
    def test_all_register_independently(self, fleet):
        sim, net, ha, _ch, _ch_ip, hosts = fleet
        for index, mh in enumerate(hosts):
            mh.move_to(net, "visited-a" if index % 2 == 0 else "visited-b")
        sim.run(until=sim.now + 10)
        assert all(mh.registered for mh in hosts)
        assert len(ha.bindings) == FLEET
        care_ofs = {mh.care_of for mh in hosts}
        assert len(care_ofs) == FLEET   # no address collisions

    def test_conversations_do_not_cross_talk(self, fleet):
        sim, net, ha, ch, ch_ip, hosts = fleet
        for index, mh in enumerate(hosts):
            mh.move_to(net, "visited-a" if index % 2 == 0 else "visited-b")
        sim.run(until=sim.now + 10)

        inboxes = {mh.name: [] for mh in hosts}
        for mh in hosts:
            sock = mh.stack.udp_socket(7000)
            sock.on_receive(
                lambda d, s, ip, p, name=mh.name: inboxes[name].append(d)
            )
        ch_sock = ch.stack.udp_socket()
        for index, mh in enumerate(hosts):
            ch_sock.sendto(f"for-{mh.name}", 50, mh.home_address, 7000)
        sim.run(until=sim.now + 30)
        for mh in hosts:
            assert inboxes[mh.name] == [f"for-{mh.name}"]
        assert ha.packets_tunneled == FLEET

    def test_fleet_roundtrips_with_replies(self, fleet):
        sim, net, ha, ch, ch_ip, hosts = fleet
        for index, mh in enumerate(hosts):
            mh.move_to(net, "visited-a" if index % 2 == 0 else "visited-b")
        sim.run(until=sim.now + 10)
        got = []
        ch_sock = ch.stack.udp_socket(6000)
        ch_sock.on_receive(lambda d, s, ip, p: got.append((d, str(ip))))
        for mh in hosts:
            sock = mh.stack.udp_socket()
            sock.sendto(mh.name, 50, ch_ip, 6000,
                        src_override=mh.home_address)
        sim.run(until=sim.now + 30)
        assert sorted(d for d, _src in got) == sorted(mh.name for mh in hosts)
        # Each reply source is the corresponding permanent address.
        for name, src in got:
            index = int(name[2:])
            assert src == f"10.1.1.{index + 1}"

    def test_partial_fleet_returns_home(self, fleet):
        sim, net, ha, _ch, _ch_ip, hosts = fleet
        for mh in hosts:
            mh.move_to(net, "visited-a")
        sim.run(until=sim.now + 10)
        returning = hosts[: FLEET // 2]
        for mh in returning:
            mh.return_home(net, "home")
        sim.run(until=sim.now + 10)
        assert len(ha.bindings) == FLEET - len(returning)
        for mh in returning:
            assert mh.at_home
            replies = []
            ha.ping(mh.home_address, replies.append)
            sim.run(until=sim.now + 5)
            assert len(replies) == 1
