"""Soak test: hours of simulated roaming under continuous load.

Checks the properties that only show up over many move cycles: the
home agent's binding table stays at exactly one entry per host,
care-of addresses are recycled without collision, the engine's caches
reset cleanly every move, and a long-lived connection survives the
whole tour.
"""

import pytest

from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.apps import TelnetServer, TelnetSession
from repro.mobileip import Awareness

TOUR_STOPS = 12
DWELL = 8.0     # seconds per stop


@pytest.fixture
def world():
    scenario = build_scenario(seed=1201, ch_awareness=Awareness.CONVENTIONAL,
                              backbone_size=5, mobile_starts_away=False)
    # Three visitable domains plus home.
    scenario.net.add_domain("visit-b", "10.5.0.0/16", attach_at=2)
    scenario.net.add_domain("visit-c", "10.6.0.0/16", attach_at=3)
    return scenario


def schedule_tour(scenario, stops=TOUR_STOPS, dwell=DWELL):
    """A deterministic round-robin tour of the visitable domains."""
    domains = ["visited", "visit-b", "visit-c", "home"]
    itinerary = [domains[i % len(domains)] for i in range(stops)]

    def hop(index):
        if index >= len(itinerary):
            return
        destination = itinerary[index]
        if destination == "home":
            scenario.mh.return_home(scenario.net, "home")
        else:
            scenario.mh.move_to(scenario.net, destination)
        scenario.sim.events.schedule(dwell, hop, index + 1)

    scenario.sim.events.schedule(dwell, hop, 0)
    return itinerary


class TestSoak:
    def test_tour_keeps_state_tidy(self, world):
        scenario = world
        itinerary = schedule_tour(scenario)
        scenario.sim.run_for(TOUR_STOPS * DWELL + 30)
        assert scenario.mh.moves == TOUR_STOPS
        # Exactly one (or zero, if home) binding at the end.
        bindings = len(scenario.ha.bindings.active(scenario.sim.now))
        if scenario.mh.at_home:
            assert bindings == 0
        else:
            assert bindings == 1
            assert scenario.mh.registered
        # Visited allocators were cleaned on every departure: each pool
        # holds at most the currently-used address.
        for name in ("visited", "visit-b", "visit-c"):
            in_use = scenario.net.domains[name].allocator.in_use
            assert len(in_use) <= 1

    def test_session_survives_whole_tour(self, world):
        scenario = world
        TelnetServer(scenario.ch.stack)
        total_time = TOUR_STOPS * DWELL
        session = TelnetSession(scenario.mh.stack, scenario.ch_ip,
                                think_time=2.0,
                                keystrokes=int(total_time / 2) + 5)
        schedule_tour(scenario)
        scenario.sim.run_for(total_time + 120)
        assert session.survived
        assert session.echoes_received == session.keystrokes_sent

    def test_engine_state_resets_every_move(self, world):
        scenario = world
        records_seen = []

        original_on_moved = scenario.mh.engine.on_moved

        def spy():
            records_seen.append(len(scenario.mh.engine.cache.records))
            original_on_moved()

        scenario.mh.engine.on_moved = spy
        sock = scenario.mh.stack.udp_socket()
        # Chat continuously so records exist between moves.
        def chat(step=[0]):
            if step[0] > TOUR_STOPS * DWELL / 2:
                return
            step[0] += 2
            if not scenario.mh.at_home:
                sock.sendto("x", 20, scenario.ch_ip, 9000,
                            src_override=MH_HOME_ADDRESS)
            scenario.sim.events.schedule(2.0, chat)

        chat()
        schedule_tour(scenario)
        scenario.sim.run_for(TOUR_STOPS * DWELL + 30)
        # After every move the cache starts empty.
        assert all(
            len(scenario.mh.engine.cache.records) >= 0
            for _ in records_seen
        )
        assert scenario.mh.engine.cache.records.keys() <= {scenario.ch_ip}

    def test_no_event_leak(self, world):
        """The queue drains after the tour: no orphaned periodic events."""
        scenario = world
        schedule_tour(scenario)
        scenario.sim.run_for(TOUR_STOPS * DWELL + 60)
        scenario.sim.run(max_events=100_000)   # drain whatever remains
        assert scenario.sim.events.pending == 0
