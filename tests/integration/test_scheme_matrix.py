"""All three encapsulation schemes, end-to-end through every tunnel
path: HA forward tunnel, MH reverse tunnel, smart-CH direct tunnel,
and the foreign-agent final hop."""

import pytest

from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.core import ProbeStrategy
from repro.mobileip import Awareness
from repro.netsim import EncapScheme

SCHEMES = list(EncapScheme)


@pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.value)
class TestSchemeMatrix:
    def test_bidirectional_tunnel_roundtrip(self, scheme):
        """Figure 3 under each scheme: In-IE down, Out-IE back."""
        scenario = build_scenario(seed=931, ch_awareness=Awareness.CONVENTIONAL,
                                  scheme=scheme,
                                  strategy=ProbeStrategy.CONSERVATIVE_FIRST)
        got = {"mh": [], "ch": []}
        mh_sock = scenario.mh.stack.udp_socket(7000)

        def echo(data, size, src_ip, src_port):
            got["mh"].append(data)
            mh_sock.sendto("echo", size, src_ip, src_port,
                           src_override=MH_HOME_ADDRESS)

        mh_sock.on_receive(echo)
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.on_receive(lambda d, s, ip, p: got["ch"].append((d, str(ip))))
        ch_sock.sendto("ping", 100, MH_HOME_ADDRESS, 7000)
        scenario.sim.run_for(20)
        assert got["mh"] == ["ping"]
        assert got["ch"] == [("echo", str(MH_HOME_ADDRESS))]
        assert scenario.mh.tunnel.decapsulated_count == 1
        assert scenario.ha.tunnel.decapsulated_count == 1

    def test_smart_correspondent_in_de(self, scheme):
        scenario = build_scenario(seed=932, ch_awareness=Awareness.MOBILE_AWARE,
                                  scheme=scheme)
        scenario.ch.learn_binding(MH_HOME_ADDRESS, scenario.mh.care_of, 300.0)
        got = []
        sock = scenario.mh.stack.udp_socket(7000)
        sock.on_receive(lambda d, s, ip, p: got.append(d))
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.sendto("direct", 100, MH_HOME_ADDRESS, 7000)
        scenario.sim.run_for(20)
        assert got == ["direct"]
        assert scenario.ha.packets_tunneled == 0

    def test_out_de_to_decap_capable_ch(self, scheme):
        scenario = build_scenario(seed=933, ch_awareness=Awareness.DECAP_CAPABLE,
                                  scheme=scheme,
                                  strategy=ProbeStrategy.AGGRESSIVE_FIRST)
        scenario.mh.engine.cache.mode_for(scenario.ch_ip)
        scenario.mh.engine.cache.on_suspect(scenario.ch_ip)  # force Out-DE
        got = []
        sock = scenario.ch.stack.udp_socket(6000)
        sock.on_receive(lambda d, s, ip, p: got.append(str(ip)))
        mh_sock = scenario.mh.stack.udp_socket()
        mh_sock.sendto("x", 100, scenario.ch_ip, 6000,
                       src_override=MH_HOME_ADDRESS)
        scenario.sim.run_for(20)
        assert got == [str(MH_HOME_ADDRESS)]

    def test_foreign_agent_final_hop(self, scheme):
        scenario = build_scenario(seed=934, ch_awareness=Awareness.CONVENTIONAL,
                                  scheme=scheme, with_foreign_agent=True)
        got = []
        sock = scenario.mh.stack.udp_socket(7000)
        sock.on_receive(lambda d, s, ip, p: got.append(d))
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.sendto("via-fa", 100, MH_HOME_ADDRESS, 7000)
        scenario.sim.run_for(20)
        assert got == ["via-fa"]
        assert scenario.fa.tunnel.decapsulated_count == 1


class TestMinimalEncapSpecifics:
    def test_reverse_tunnel_uses_12_byte_form(self):
        """The reverse tunnel's outer src (care-of) differs from the
        inner src (home), forcing the source-preserving 12-byte form."""
        scenario = build_scenario(seed=935, ch_awareness=Awareness.CONVENTIONAL,
                                  scheme=EncapScheme.MINIMAL,
                                  strategy=ProbeStrategy.CONSERVATIVE_FIRST)
        sizes = []
        original = scenario.mh.tunnel.send_encapsulated

        def spy(inner, outer_src, outer_dst, scheme=None):
            before = inner.wire_size
            outer = original(inner, outer_src, outer_dst, scheme)
            sizes.append(outer.wire_size - before)
            return outer

        scenario.mh.tunnel.send_encapsulated = spy
        mh_sock = scenario.mh.stack.udp_socket()
        mh_sock.sendto("x", 100, scenario.ch_ip, 9000,
                       src_override=MH_HOME_ADDRESS)
        scenario.sim.run_for(10)
        assert sizes == [12]

    def test_forward_tunnel_also_12_byte(self):
        """The HA's forward tunnel preserves the CH's source, which also
        differs from the HA's own outer source: 12-byte form again."""
        scenario = build_scenario(seed=936, ch_awareness=Awareness.CONVENTIONAL,
                                  scheme=EncapScheme.MINIMAL)
        sizes = []
        original = scenario.ha.tunnel.send_encapsulated

        def spy(inner, outer_src, outer_dst, scheme=None):
            before = inner.wire_size
            outer = original(inner, outer_src, outer_dst, scheme)
            sizes.append(outer.wire_size - before)
            return outer

        scenario.ha.tunnel.send_encapsulated = spy
        sock = scenario.mh.stack.udp_socket(7000)
        sock.on_receive(lambda *a: None)
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.sendto("in", 100, MH_HOME_ADDRESS, 7000)
        scenario.sim.run_for(10)
        assert sizes == [12]
