"""Integration: the congestion scenario exercises real link contention.

A throttled, shallow-queued ``uplink-home`` bottleneck must actually
overflow, and the In-IE cell (every datagram dog-legs through the home
agent, crossing the bottleneck twice) must pay visibly more latency and
lose more goodput than the direct-path cells that route around it once
the correspondent learns the care-of binding.
"""

import pytest

from repro.analysis.congestion import BOTTLENECK_SEGMENT, run_congestion


@pytest.fixture(scope="module")
def report():
    return run_congestion(seed=1402, datagrams=200)


class TestCongestionScenario:
    def test_bottleneck_overflows_and_everything_is_accounted(self, report):
        assert report.total_queue_dropped > 0
        assert report.violation_count == 0
        for cell in report.cells:
            lost = sum(cell.losses_by_reason.values())
            assert cell.sent - cell.received <= lost + cell.queue_dropped

    def test_indirect_path_pays_more_latency_than_direct(self, report):
        indirect = report.cell("In-IE")
        direct = report.cell("In-DH")
        # p99 is not compared: the direct cell's tail still holds the
        # pre-binding datagrams that crossed the bottleneck before the
        # care-of advisory landed.
        assert indirect.latency_mean > direct.latency_mean
        assert indirect.latency_p50 > direct.latency_p50

    def test_indirect_path_loses_goodput_to_overflow(self, report):
        indirect = report.cell("In-IE")
        direct = report.cell("In-DH")
        assert indirect.goodput < direct.goodput
        assert indirect.queue_dropped > 0
        assert indirect.losses_by_reason.get("queue-overflow", 0) > 0

    def test_ranking_prefers_direct_paths(self, report):
        ranked = [cell.mode for cell in report.ranked()]
        assert ranked[-1] == "In-IE"

    def test_peak_queue_depth_lands_on_the_bottleneck(self, report):
        indirect = report.cell("In-IE")
        assert indirect.peak_queue_depth > 0
        assert indirect.bottleneck_busy > 0

    def test_report_renders(self, report):
        table = report.render()
        assert BOTTLENECK_SEGMENT in table
        for cell in report.cells:
            assert cell.mode in table
