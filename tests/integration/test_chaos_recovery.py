"""End-to-end chaos runs: determinism and scripted outage recovery.

These are the acceptance tests for the fault-injection subsystem: the
same plan and seed must reproduce a byte-identical trace, and a
scripted home-agent crash must drive the full recovery arc —
registration backoff, give-up, the slow re-registration loop picking
the restarted agent back up, and the delivery-method cache re-probing
its way up the ladder once the network heals.
"""

from __future__ import annotations

from repro.analysis.chaos import demo_plan, run_chaos
from repro.core.modes import OutMode
from repro.netsim import FaultKind, FaultPlan


class TestChaosDeterminism:
    def test_same_plan_and_seed_reproduce_digest(self):
        first = run_chaos(plan=demo_plan(), seed=7, duration=130.0)
        second = run_chaos(plan=demo_plan(), seed=7, duration=130.0)
        assert first.digest == second.digest
        assert first.trace_entries == second.trace_entries
        assert first.to_dict() == second.to_dict()
        assert first.faults  # the plan actually fired

    def test_different_seed_diverges(self):
        # Divergence needs genuinely probabilistic loss in play: a
        # rate-1.0 blackout drops everything whatever the RNG says, so
        # this plan uses a long partial-loss burst instead.
        def lossy_plan():
            return FaultPlan().add(5.0, FaultKind.LOSS_BURST, "visited-lan",
                                   duration=60.0, loss_rate=0.3)

        first = run_chaos(plan=lossy_plan(), seed=7, duration=80.0)
        other = run_chaos(plan=lossy_plan(), seed=8, duration=80.0)
        assert first.digest != other.digest


class TestHomeAgentOutageRecovery:
    def test_outage_restart_drives_backoff_and_reprobe(self):
        # Short registration lifetime so a refresh lands inside the
        # outage window: the refresh at ~48s hits a dead home agent and
        # the backoff ladder runs dry (~31s later, before the restart
        # at 100s — an outage shorter than the backoff window gets
        # rescued by requests queued behind ARP at the home router, so
        # no give-up would be recorded).  The post-give-up timer then
        # re-registers with the restarted agent.
        plan = FaultPlan()
        plan.add(20.0, FaultKind.LOSS_BURST, "visited-lan",
                 duration=8.0, loss_rate=1.0)
        plan.add(40.0, FaultKind.NODE_DOWN, "ha")
        plan.add(100.0, FaultKind.AGENT_RESTART, "ha", flush_bindings=True)
        report = run_chaos(plan=plan, seed=11, duration=200.0,
                           reg_lifetime=30.0)

        # Registration arc: at least one backoff give-up during the
        # outage, then recovery — registered again at the end, with the
        # restarted agent holding exactly the mobile host's binding.
        assert report.registration_failures >= 1
        assert report.registered
        assert report.ha_restarts == 1
        assert report.ha_bindings == 1

        # Delivery-mode arc: the blackout demoted the ladder, aging/
        # forgiveness let it climb back to direct delivery.
        assert report.mode_changes >= 2
        assert report.forgiveness >= 1
        assert report.final_mode == OutMode.OUT_DH.value

        # The conversation survived the whole ordeal: traffic flowed
        # again after the last fault (echo count keeps growing past
        # the outage, so late messages really were delivered).
        assert report.reconnects >= 1
        assert report.echoes > 0
        assert report.messages_sent > report.echoes  # some were lost

    def test_outage_without_refresh_pressure_stays_clean(self):
        # Same outage but with the default 300s lifetime: no refresh
        # falls inside the window, so no give-up is recorded — the
        # failure counter isolates genuine backoff exhaustion.
        plan = FaultPlan()
        plan.add(40.0, FaultKind.NODE_DOWN, "ha")
        plan.add(70.0, FaultKind.AGENT_RESTART, "ha", flush_bindings=False)
        report = run_chaos(plan=plan, seed=11, duration=120.0)
        assert report.registration_failures == 0
        assert report.registered
