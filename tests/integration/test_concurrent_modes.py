"""Figure 10's caption, live:

    "Note that a single host may have many different conversations in
    progress at the same time, choosing for each of them the
    communication mode that is most appropriate."

One mobile host simultaneously runs: a telnet session through the home
agent (Out-IE, its endpoint the home address), an HTTP fetch on the
temporary address (Out-DT), a one-hop exchange with a same-segment
neighbour (Out-DH link-direct), and a tunneled exchange with a
decap-capable host (Out-DE) — and every conversation completes, each
on its own wire format.

Also here: the §2 transition-loss claim ("during this transition
period it may be possible to lose packets, but higher-level Internet
protocols are already responsible for ... reliable packet delivery").
"""


from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.apps import HTTPClient, HTTPServer, TelnetServer, TelnetSession
from repro.core import OutMode, ProbeStrategy
from repro.mobileip import Awareness, CorrespondentHost
from repro.netsim import Node


class TestConcurrentModes:
    def test_four_conversations_four_modes(self):
        scenario = build_scenario(seed=991, ch_awareness=Awareness.CONVENTIONAL,
                                  strategy=ProbeStrategy.RULE_SEEDED)
        sim, net, mh = scenario.sim, scenario.net, scenario.mh

        # Cast: the conventional CH (telnet, HTTP), a same-segment
        # neighbour, and a decapsulation-capable host elsewhere.
        neighbour = Node("neighbour", sim)
        neighbour_ip = net.add_host("visited", neighbour)
        from repro.transport import TransportStack

        neighbour_stack = TransportStack(neighbour)
        decap = CorrespondentHost("decap", sim, awareness=Awareness.DECAP_CAPABLE)
        net.add_domain("decapdom", "10.6.0.0/16", attach_at=1,
                       source_filtering=False, forbid_transit=False)
        decap_ip = net.add_host("decapdom", decap)
        mh.engine.learn(decap_ip, decap_capable=True)
        # Seed the ladder so the decap host is reached via Out-DE.
        mh.engine.cache.record_for(decap_ip).current = OutMode.OUT_DE
        mh.engine.cache.record_for(decap_ip).failed.add(OutMode.OUT_DH)

        # 1. telnet to the conventional CH: Out-IE (pessimistic default).
        TelnetServer(scenario.ch.stack)
        telnet = TelnetSession(mh.stack, scenario.ch_ip, think_time=0.5,
                               keystrokes=6)
        # 2. HTTP to the conventional CH: Out-DT by port heuristic.
        HTTPServer(scenario.ch.stack, page_size=4000)
        http = HTTPClient(mh.stack)
        fetch = http.fetch(scenario.ch_ip)
        # 3. UDP exchange with the same-segment neighbour: Out-DH direct.
        neighbour_got = []
        nsock = neighbour_stack.udp_socket(7100)
        nsock.on_receive(lambda d, s, ip, p: neighbour_got.append(str(ip)))
        mh_sock = mh.stack.udp_socket()
        mh_sock.sendto("hi-neighbour", 40, neighbour_ip, 7100,
                       src_override=MH_HOME_ADDRESS)
        # 4. UDP exchange with the decap host: Out-DE.
        decap_got = []
        dsock = decap.stack.udp_socket(7200)
        dsock.on_receive(lambda d, s, ip, p: decap_got.append(str(ip)))
        mh_sock2 = mh.stack.udp_socket()
        mh_sock2.sendto("hi-decap", 40, decap_ip, 7200,
                        src_override=MH_HOME_ADDRESS)

        sim.run_for(60)

        # Every conversation completed...
        assert telnet.survived and telnet.echoes_received == 6
        assert fetch.completed
        assert neighbour_got == [str(MH_HOME_ADDRESS)]
        assert decap_got == [str(MH_HOME_ADDRESS)]
        # ...each via its own mechanism, concurrently:
        # telnet rode the tunnel (Out-IE) and the decap host's packet
        # was also encapsulated (Out-DE) — at least 2 encapsulations
        # beyond HTTP/neighbour which used none.
        assert mh.tunnel.encapsulated_count >= 2
        # The telnet endpoint is the home address; the HTTP connection
        # used the care-of address.
        assert telnet.connection.local_ip == MH_HOME_ADDRESS
        modes = [e.detail for e in sim.trace.entries
                 if e.node == "mh" and e.action == "mode-select"]
        assert OutMode.OUT_IE.value in modes
        assert OutMode.OUT_DE.value in modes
        assert OutMode.OUT_DH.value in modes
        # The neighbour exchange never touched a router.
        neighbour_deliver = [e for e in sim.trace.entries
                             if e.node == "neighbour" and e.action == "deliver"]
        assert neighbour_deliver


class TestTransitionLoss:
    def test_packets_lost_in_transition_recovered_by_tcp(self):
        """§2: packets sent during the re-registration window are lost;
        TCP's retransmission recovers them without Mobile IP's help."""
        scenario = build_scenario(seed=992, ch_awareness=Awareness.CONVENTIONAL)
        sim = scenario.sim
        scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=3)
        TelnetServer(scenario.ch.stack)
        session = TelnetSession(scenario.mh.stack, scenario.ch_ip,
                                think_time=0.4, keystrokes=20)

        # Move but *delay* the new registration: a real transition gap.
        def move_without_register():
            scenario.mh.move_to(scenario.net, "visited2", register=False)
            sim.events.schedule(
                3.0, lambda: scenario.mh.register_with_home_agent())

        sim.events.schedule(2.5, move_without_register)
        sim.run_for(200)
        # The session survived and everything was eventually echoed,
        # even though the binding pointed at the old care-of address
        # for three full seconds.
        assert session.survived
        assert session.echoes_received == 20
        # The gap really did cost retransmissions.
        assert session.connection.retransmissions >= 1
