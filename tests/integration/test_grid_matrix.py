"""Empirical Figure 10: run all sixteen (In, Out) combinations.

For every cell we stage a UDP request/response conversation with the
incoming packet delivered per the row's mechanism and the reply built
per the column's address table, on a permissive network.  A cell is
*empirically viable* when (a) the reply arrives at the correspondent,
and (b) the reply's visible source address matches the address the
correspondent originally sent to — the association rule of §6.5 ("the
correspondent host will have no way to associate the reply with the
packet that caused it").

The test asserts that empirical viability is exactly the grid's
works-with-TCP classification: the seven useful and three
valid-but-unlikely cells converse; the six dark cells do not.
"""

import pytest

from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.core.grid import GRID
from repro.core.modes import AddressPlan, InMode, OutMode, build_outgoing
from repro.mobileip import Awareness
from repro.netsim.packet import IPProto
from repro.transport import UDPDatagram

MH_PORT = 7000


def run_cell(in_mode: InMode, out_mode: OutMode, seed: int = 300):
    """Stage one conversation; returns (reply_arrived, visible_src, sent_to)."""
    ch_on_lan = in_mode is InMode.IN_DH
    scenario = build_scenario(
        seed=seed,
        ch_awareness=Awareness.MOBILE_AWARE,
        ch_in_visited_lan=ch_on_lan,
        visited_filtering=False,
        ch_filtering=False,
    )
    mh, ch, sim = scenario.mh, scenario.ch, scenario.sim
    plan = AddressPlan(
        home=MH_HOME_ADDRESS,
        care_of=mh.care_of,
        home_agent=scenario.ha_ip,
        correspondent=scenario.ch_ip,
    )

    # Row mechanism: binding only for rows B and C (In-DE / In-DH).
    if in_mode in (InMode.IN_DE, InMode.IN_DH):
        ch.learn_binding(MH_HOME_ADDRESS, mh.care_of, 300.0)
    sent_to = plan.care_of if in_mode is InMode.IN_DT else plan.home

    # The mobile host echoes with a reply built per the column's
    # address table (bypassing the engine so every cell can be forced,
    # including the valid-but-unlikely ones the engine would not pick).
    def on_request(data, size, src_ip, src_port):
        reply = UDPDatagram(MH_PORT, src_port, ("rep", data), 30)
        packet = build_outgoing(
            out_mode, plan, payload=reply, payload_size=reply.size,
            proto=IPProto.UDP,
        )
        mh.ip_send(packet, bypass_overrides=True)

    mh_sock = mh.stack.udp_socket(MH_PORT)
    mh_sock.on_receive(on_request)

    replies = []
    ch_sock = ch.stack.udp_socket()
    ch_sock.on_receive(lambda d, s, ip, p: replies.append(ip))
    ch_sock.sendto(("req", 1), 40, sent_to, MH_PORT)
    sim.run_for(20)

    arrived = bool(replies)
    visible_src = replies[0] if replies else None
    return arrived, visible_src, sent_to


class TestAllSixteenCells:
    @pytest.mark.parametrize(
        "in_mode,out_mode",
        [(i, o) for i in InMode for o in OutMode],
        ids=lambda m: m.value,
    )
    def test_cell_viability_matches_figure_10(self, in_mode, out_mode):
        arrived, visible_src, sent_to = run_cell(in_mode, out_mode)
        viable = arrived and visible_src == sent_to
        cell = GRID.cell(in_mode, out_mode)
        assert viable == cell.works_with_tcp, (
            f"{in_mode.value}/{out_mode.value}: empirical viable={viable} "
            f"(arrived={arrived}, saw {visible_src}, sent to {sent_to}) but "
            f"grid says {cell.cell_class.value}"
        )


class TestRequirementsBite:
    """Figure 10's per-cell requirements, violated on purpose."""

    def test_out_dh_fails_under_source_filtering(self):
        """(In-IE, Out-DH) requires a permissive path: turn filtering
        back on and the reply dies at the visited boundary."""
        scenario = build_scenario(seed=301, ch_awareness=Awareness.CONVENTIONAL,
                                  visited_filtering=True)
        plan = AddressPlan(MH_HOME_ADDRESS, scenario.mh.care_of,
                           scenario.ha_ip, scenario.ch_ip)
        replies = []
        mh_sock = scenario.mh.stack.udp_socket(MH_PORT)

        def on_request(data, size, src_ip, src_port):
            reply = UDPDatagram(MH_PORT, src_port, "rep", 30)
            packet = build_outgoing(OutMode.OUT_DH, plan, payload=reply,
                                    payload_size=reply.size, proto=IPProto.UDP)
            scenario.mh.ip_send(packet, bypass_overrides=True)

        mh_sock.on_receive(on_request)
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.on_receive(lambda d, s, ip, p: replies.append(d))
        ch_sock.sendto("req", 40, MH_HOME_ADDRESS, MH_PORT)
        scenario.sim.run_for(20)
        assert replies == []
        drops = scenario.sim.trace.drops_by_reason
        assert any("source-address-filter" in r or "transit" in r for r in drops)

    def test_out_de_fails_without_decap_capability(self):
        """(In-IE, Out-DE) requires a decapsulating correspondent."""
        scenario = build_scenario(seed=302, ch_awareness=Awareness.CONVENTIONAL,
                                  visited_filtering=False)
        plan = AddressPlan(MH_HOME_ADDRESS, scenario.mh.care_of,
                           scenario.ha_ip, scenario.ch_ip)
        replies = []
        mh_sock = scenario.mh.stack.udp_socket(MH_PORT)

        def on_request(data, size, src_ip, src_port):
            reply = UDPDatagram(MH_PORT, src_port, "rep", 30)
            packet = build_outgoing(OutMode.OUT_DE, plan, payload=reply,
                                    payload_size=reply.size, proto=IPProto.UDP)
            scenario.mh.ip_send(packet, bypass_overrides=True)

        mh_sock.on_receive(on_request)
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.on_receive(lambda d, s, ip, p: replies.append(d))
        ch_sock.sendto("req", 40, MH_HOME_ADDRESS, MH_PORT)
        scenario.sim.run_for(20)
        assert replies == []

    def test_out_ie_works_even_under_filtering_with_conventional_ch(self):
        """(In-IE, Out-IE): 'the only method that can be relied upon to
        work in all situations'."""
        scenario = build_scenario(seed=303, ch_awareness=Awareness.CONVENTIONAL,
                                  visited_filtering=True)
        plan = AddressPlan(MH_HOME_ADDRESS, scenario.mh.care_of,
                           scenario.ha_ip, scenario.ch_ip)
        replies = []
        mh_sock = scenario.mh.stack.udp_socket(MH_PORT)

        def on_request(data, size, src_ip, src_port):
            reply = UDPDatagram(MH_PORT, src_port, "rep", 30)
            packet = build_outgoing(OutMode.OUT_IE, plan, payload=reply,
                                    payload_size=reply.size, proto=IPProto.UDP)
            scenario.mh.ip_send(packet, bypass_overrides=True)

        mh_sock.on_receive(on_request)
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.on_receive(lambda d, s, ip, p: replies.append(str(ip)))
        ch_sock.sendto("req", 40, MH_HOME_ADDRESS, MH_PORT)
        scenario.sim.run_for(20)
        assert replies == [str(MH_HOME_ADDRESS)]
