"""Hardening tests: firewalls, fragmentation end-to-end, failure
injection, and recovery behaviours the figures imply but do not draw."""

import pytest

from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.core import ProbeStrategy
from repro.mobileip import Awareness, HomeAgent, MobileHost
from repro.netsim import Internet, IPAddress, Node, Simulator
from repro.netsim.filters import firewall_allow_only
from repro.transport import TransportStack


class TestFirewallHomeAgent:
    """§3.1: 'we anticipate that the firewall itself would be set up to
    act as the mobile user's home agent.'  We model the firewall as a
    default-deny boundary whose allow-list admits exactly the tunnel
    traffic terminating at the home-agent function (the HA host and the
    mobile addresses it proxies)."""

    def build(self, seed=901):
        sim = Simulator(seed=seed)
        net = Internet(sim, backbone_size=3)
        ha_ip = IPAddress("10.1.0.2")
        from repro.netsim import Network

        home_prefix = Network("10.1.0.0/16")
        rules = firewall_allow_only(
            home_prefix,
            allowed_protos=[],                      # default deny
            allowed_hosts=[ha_ip, MH_HOME_ADDRESS],  # HA + its proxied MH
        )
        home = net.add_domain("home", "10.1.0.0/16", attach_at=0,
                              source_filtering=False, forbid_transit=True,
                              extra_rules=rules)
        net.add_domain("visited", "10.2.0.0/16", attach_at=2)
        ha = HomeAgent("ha", sim, home_network=home.prefix)
        assert net.add_host("home", ha, address=ha_ip) == ha_ip
        mh = MobileHost("mh", sim, home_address=MH_HOME_ADDRESS,
                        home_network=home.prefix, home_agent_address=ha_ip,
                        strategy=ProbeStrategy.CONSERVATIVE_FIRST)
        mh.attach_home(net, "home")
        inside = Node("inside-server", sim)
        inside_ip = net.add_host("home", inside)
        mh.move_to(net, "visited")
        sim.run(until=sim.now + 5)
        return sim, net, ha, mh, inside, inside_ip

    def test_registration_passes_firewall(self):
        sim, _net, ha, mh, _inside, _ip = self.build()
        assert mh.registered
        assert len(ha.bindings) == 1

    def test_tunnel_traffic_reaches_protected_services(self):
        """The roaming user reaches home services through the firewall
        via the reverse tunnel (inner packets re-sent by the HA)."""
        sim, _net, _ha, mh, inside, inside_ip = self.build(seed=902)
        stack = TransportStack(inside)
        got = []
        sock = stack.udp_socket(6000)
        sock.on_receive(lambda d, s, ip, p: got.append((d, str(ip))))
        mh_sock = mh.stack.udp_socket(6001)
        replies = []
        mh_sock.on_receive(lambda d, s, ip, p: replies.append(d))

        mh_sock.sendto("inward", 50, inside_ip, 6000,
                       src_override=MH_HOME_ADDRESS)
        sim.run(until=sim.now + 10)
        assert got == [("inward", str(MH_HOME_ADDRESS))]
        # And the reply comes back out through the HA capture + tunnel.
        sock.sendto("outward", 50, MH_HOME_ADDRESS, 6001)
        sim.run(until=sim.now + 10)
        assert replies == ["outward"]

    def test_direct_probes_to_other_hosts_blocked(self):
        """Anything not addressed to the HA/MH allow-list dies at the
        firewall — including an outsider's direct UDP at the server."""
        sim, net, _ha, _mh, inside, inside_ip = self.build(seed=903)
        outsider = Node("outsider", sim)
        net.add_host("visited", outsider)
        stack = TransportStack(outsider)
        inside_stack = TransportStack(inside)
        got = []
        sock = inside_stack.udp_socket(7000)
        sock.on_receive(lambda *a: got.append(a))
        out_sock = stack.udp_socket()
        out_sock.sendto("knock", 50, inside_ip, 7000)
        sim.run(until=sim.now + 10)
        assert got == []
        assert sim.trace.drops_by_reason.get("firewall-policy", 0) >= 1


class TestFragmentationEndToEnd:
    """§3.3's doubling claim, across a real narrow link (not just the
    fragment() unit): a 576-byte-MTU backbone hop forces tunneled
    packets to fragment and reassemble transparently."""

    def build(self, seed=911):
        sim = Simulator(seed=seed)
        net = Internet(sim, backbone_size=2)
        net.add_domain("a", "10.1.0.0/16", attach_at=0, source_filtering=False)
        net.add_domain("b", "10.2.0.0/16", attach_at=1, source_filtering=False)
        # Shrink the inter-backbone link's MTU to ancient-internet 576.
        sim.segments["p2p-bb0-bb1"].mtu = 576
        a, b = Node("a1", sim), Node("b1", sim)
        ip_a = net.add_host("a", a)
        ip_b = net.add_host("b", b)
        return sim, a, ip_a, b, ip_b

    @pytest.mark.parametrize("payload", [500, 548, 600, 1400, 3000])
    def test_udp_payloads_cross_narrow_link(self, payload):
        sim, a, ip_a, b, ip_b = self.build()
        sa, sb = TransportStack(a), TransportStack(b)
        got = []
        sock = sb.udp_socket(6000)
        sock.on_receive(lambda d, s, ip, p: got.append((d, s)))
        client = sa.udp_socket()
        client.sendto("payload", payload, ip_b, 6000)
        sim.run(until=30)
        assert got == [("payload", payload)]

    def test_fragments_counted_on_narrow_link(self):
        sim, a, ip_a, b, ip_b = self.build(seed=912)
        sa, sb = TransportStack(a), TransportStack(b)
        sock = sb.udp_socket(6000)
        sock.on_receive(lambda *args: None)
        client = sa.udp_socket()
        client.sendto("big", 1400, ip_b, 6000)
        sim.run(until=30)
        # 1400+8+20 = 1428B packet over a 576 MTU: ceil(1408/552)=3 frags.
        assert sim.trace.action_counts["fragment"] == 1
        assert b.reassembler.reassembled == 1

    def test_tunneled_packet_fragments_and_reassembles(self):
        """An Out-IE tunnel packet crossing the narrow hop: the outer
        packet fragments; the HA reassembles before decapsulation."""
        sim = Simulator(seed=913)
        net = Internet(sim, backbone_size=2)
        home = net.add_domain("home", "10.1.0.0/16", attach_at=0)
        net.add_domain("visited", "10.2.0.0/16", attach_at=1)
        sim.segments["p2p-bb0-bb1"].mtu = 576
        ha = HomeAgent("ha", sim, home_network=home.prefix)
        ha_ip = net.add_host("home", ha)
        mh = MobileHost("mh", sim, home_address=MH_HOME_ADDRESS,
                        home_network=home.prefix, home_agent_address=ha_ip,
                        strategy=ProbeStrategy.CONSERVATIVE_FIRST)
        mh.attach_home(net, "home")
        inside = Node("server", sim)
        inside_ip = net.add_host("home", inside)
        mh.move_to(net, "visited")
        sim.run(until=sim.now + 5)
        stack = TransportStack(inside)
        got = []
        sock = stack.udp_socket(6000)
        sock.on_receive(lambda d, s, ip, p: got.append(s))
        mh_sock = mh.stack.udp_socket()
        mh_sock.sendto("big", 1200, inside_ip, 6000,
                       src_override=MH_HOME_ADDRESS)
        sim.run(until=sim.now + 10)
        assert got == [1200]
        assert ha.reassembler.reassembled >= 1


class TestFailureInjection:
    def test_home_agent_outage_kills_tunneled_traffic_only(self):
        """The home agent is Mobile IP's single point of failure — but
        only for the conversations that use it: Out-DT traffic
        continues."""
        scenario = build_scenario(seed=921,
                                  ch_awareness=Awareness.CONVENTIONAL,
                                  visited_filtering=True)
        sim = scenario.sim
        ch_tunnel, ch_direct = [], []
        tunnel_sock = scenario.ch.stack.udp_socket(6000)
        tunnel_sock.on_receive(lambda d, s, ip, p: ch_tunnel.append(d))
        direct_sock = scenario.ch.stack.udp_socket(53)
        direct_sock.on_receive(lambda d, s, ip, p: ch_direct.append(d))
        mh_sock = scenario.mh.stack.udp_socket()

        # Kill the home agent's interface.
        scenario.ha.interfaces["eth0"].up = False
        mh_sock.sendto("via-ha", 50, scenario.ch_ip, 6000,
                       src_override=MH_HOME_ADDRESS)
        mh_sock.sendto("direct", 50, scenario.ch_ip, 53)   # DNS heuristic
        sim.run_for(20)
        assert ch_tunnel == []          # tunnel endpoint is gone
        assert ch_direct == ["direct"]  # Out-DT does not care

    def test_binding_expiry_without_reregistration(self):
        """Registrations have lifetimes; a silent mobile host falls out
        of the binding table and incoming packets are dropped on the
        home LAN (nobody answers ARP for it)."""
        scenario = build_scenario(seed=922,
                                  ch_awareness=Awareness.CONVENTIONAL,
                                  mobile_starts_away=False)
        # Model the silent host: the keep-alive is off.
        scenario.mh.auto_reregister = False
        scenario.mh.move_to(scenario.net, "visited", lifetime=3.0)
        scenario.sim.run_for(10)   # binding now expired
        assert scenario.ha.bindings.lookup(MH_HOME_ADDRESS,
                                           scenario.sim.now) is None
        got = []
        sock = scenario.mh.stack.udp_socket(7000)
        sock.on_receive(lambda *a: got.append(a))
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.sendto("late", 50, MH_HOME_ADDRESS, 7000)
        scenario.sim.run_for(10)
        assert got == []

    def test_reregistration_refreshes_binding(self):
        scenario = build_scenario(seed=923, ch_awareness=None,
                                  mobile_starts_away=False)
        scenario.mh.move_to(scenario.net, "visited", lifetime=3.0)
        scenario.sim.run_for(2)
        scenario.mh.register_with_home_agent(lifetime=300.0)
        scenario.sim.run_for(10)
        assert scenario.ha.bindings.lookup(MH_HOME_ADDRESS,
                                           scenario.sim.now) is not None

    def test_smart_ch_recovers_after_stale_binding_expires(self):
        """Figure 5's cache gone stale: the CH tunnels to the old
        care-of address until the binding lifetime runs out, then falls
        back to the home agent — which re-advises the new binding."""
        scenario = build_scenario(seed=924,
                                  ch_awareness=Awareness.MOBILE_AWARE,
                                  notify_correspondents=True)
        scenario.ha.advisory_lifetime = 5.0
        scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=3)
        sim = scenario.sim
        got = []
        sock = scenario.mh.stack.udp_socket(7000)
        sock.on_receive(lambda d, s, ip, p: got.append(d))
        ch_sock = scenario.ch.stack.udp_socket()
        for index in range(16):
            sim.events.schedule(
                index * 1.0,
                lambda i=index: ch_sock.sendto(i, 50, MH_HOME_ADDRESS, 7000))
        sim.events.schedule(3.5, lambda: scenario.mh.move_to(scenario.net,
                                                             "visited2"))
        sim.run_for(60)
        # Some packets die against the stale binding, but delivery
        # resumes within the advisory lifetime.
        assert len(got) >= 16 - (5 + 2)
        assert got[-1] == 15   # the tail of the stream arrived
