"""End-to-end reproductions of Figures 1-5 as assertions.

(Figures 6-9 are address-table diagrams — covered by
tests/core/test_modes.py; Figure 10 by test_grid_matrix.py.)
"""


from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.core import ProbeStrategy
from repro.mobileip import Awareness


def udp_roundtrip(scenario, data="ping", port=7000, src_override=None):
    """CH sends to the home address; MH echoes; returns events."""
    events = {"mh_got": [], "ch_got": []}
    mh_sock = scenario.mh.stack.udp_socket(port)

    def echo(payload, size, src_ip, src_port):
        events["mh_got"].append(payload)
        mh_sock.sendto("echo:" + str(payload), size, src_ip, src_port,
                       src_override=src_override or MH_HOME_ADDRESS)

    mh_sock.on_receive(echo)
    ch_sock = scenario.ch.stack.udp_socket()
    ch_sock.on_receive(lambda d, s, ip, p: events["ch_got"].append((d, str(ip))))
    ch_sock.sendto(data, 100, MH_HOME_ADDRESS, port)
    scenario.sim.run_for(30)
    return events


class TestFigure1BasicMobileIP:
    """CH -> home network -> HA tunnel -> MH;  MH -> CH direct."""

    def test_incoming_travels_via_home_agent(self):
        scenario = build_scenario(seed=401, ch_awareness=Awareness.CONVENTIONAL,
                                  visited_filtering=False,
                                  strategy=ProbeStrategy.AGGRESSIVE_FIRST)
        events = udp_roundtrip(scenario)
        assert events["mh_got"] == ["ping"]
        assert scenario.ha.packets_tunneled == 1
        # The reply went direct (Out-DH), not through the home agent.
        assert events["ch_got"] == [("echo:ping", str(MH_HOME_ADDRESS))]
        assert scenario.ha.packets_reverse_forwarded == 0
        assert scenario.mh.tunnel.encapsulated_count == 0

    def test_incoming_path_visits_home_domain(self):
        scenario = build_scenario(seed=402, ch_awareness=Awareness.CONVENTIONAL,
                                  visited_filtering=False)
        udp_roundtrip(scenario)
        forwards = [e.node for e in scenario.sim.trace.entries
                    if e.action == "forward" and e.dst == str(MH_HOME_ADDRESS)]
        assert "home-gw" in forwards    # the triangle's corner


class TestFigure2SourceAddressFiltering:
    """The MH's plain home-source packets never reach the CH."""

    def test_out_dh_reply_discarded(self):
        scenario = build_scenario(seed=403, ch_awareness=Awareness.CONVENTIONAL,
                                  visited_filtering=True,
                                  strategy=ProbeStrategy.AGGRESSIVE_FIRST)
        # Disable demotion so the MH stubbornly keeps using Out-DH the
        # way Figure 2's naive host would.
        scenario.mh.engine.detector.threshold = 10**9
        events = udp_roundtrip(scenario)
        assert events["mh_got"] == ["ping"]      # inbound worked (via HA)
        assert events["ch_got"] == []            # reply was eaten
        drops = scenario.sim.trace.drops_by_reason
        assert drops.get(
            "source-address-filter:foreign-source-leaving-site", 0) >= 1

    def test_drop_happens_at_boundary_router(self):
        scenario = build_scenario(seed=404, ch_awareness=Awareness.CONVENTIONAL,
                                  visited_filtering=True,
                                  strategy=ProbeStrategy.AGGRESSIVE_FIRST)
        scenario.mh.engine.detector.threshold = 10**9
        udp_roundtrip(scenario)
        drop_nodes = [e.node for e in scenario.sim.trace.entries
                      if e.action == "drop" and "source-address-filter" in e.detail]
        assert drop_nodes and all(node == "visited-gw" for node in drop_nodes)


class TestFigure3BidirectionalTunneling:
    """Out-IE evades the boundary checks at the cost of path length."""

    def test_reverse_tunnel_restores_deliverability(self):
        scenario = build_scenario(seed=405, ch_awareness=Awareness.CONVENTIONAL,
                                  visited_filtering=True,
                                  strategy=ProbeStrategy.CONSERVATIVE_FIRST)
        events = udp_roundtrip(scenario)
        assert events["ch_got"] == [("echo:ping", str(MH_HOME_ADDRESS))]
        assert scenario.mh.tunnel.encapsulated_count >= 1
        assert scenario.ha.packets_reverse_forwarded >= 1

    def test_tunneled_path_is_longer_than_direct(self):
        """§3.2: indirect delivery costs hops."""
        # Out-IE path: visited -> home -> chdom; direct: visited -> chdom.
        tunneled = build_scenario(seed=406, ch_awareness=Awareness.CONVENTIONAL,
                                  visited_filtering=True,
                                  strategy=ProbeStrategy.CONSERVATIVE_FIRST)
        udp_roundtrip(tunneled)
        direct = build_scenario(seed=406, ch_awareness=Awareness.CONVENTIONAL,
                                visited_filtering=False,
                                strategy=ProbeStrategy.AGGRESSIVE_FIRST)
        udp_roundtrip(direct)

        def reply_hops(scenario):
            hops = [e for e in scenario.sim.trace.entries
                    if e.action == "forward"
                    and e.src in (str(MH_HOME_ADDRESS), str(scenario.mh.care_of))
                    and e.dst in (str(scenario.ch_ip), str(scenario.ha_ip))]
            return len(hops)

        assert reply_hops(tunneled) > reply_hops(direct)


class TestFigure4NearbyCorrespondent:
    """Triangle routing is painful exactly when the CH is near the MH."""

    @staticmethod
    def measure_rtt(scenario):
        mh_sock = scenario.mh.stack.udp_socket(7000)
        mh_sock.on_receive(
            lambda d, s, ip, p: mh_sock.sendto("echo", s, ip, p,
                                               src_override=MH_HOME_ADDRESS)
        )
        ch_sock = scenario.ch.stack.udp_socket()
        times = []
        start = {}

        def send():
            start["t"] = scenario.sim.now
            ch_sock.sendto("ping", 100, MH_HOME_ADDRESS, 7000)

        ch_sock.on_receive(lambda d, s, ip, p: times.append(
            scenario.sim.now - start["t"]))
        send()
        scenario.sim.run_for(30)
        return times[0] if times else None

    def test_stretch_grows_as_ch_approaches_mh(self):
        """In-IE RTT vs. CH position: nearer CH = worse triangle."""
        rtts = {}
        for ch_attach in (1, 4):   # near home vs. near visited
            scenario = build_scenario(
                seed=407, backbone_size=5, ch_attach=ch_attach,
                ch_awareness=Awareness.CONVENTIONAL,
                strategy=ProbeStrategy.CONSERVATIVE_FIRST,
            )
            rtts[ch_attach] = self.measure_rtt(scenario)
        # Both delivered, and the absolute RTT is similar (both cross
        # the backbone to home) even though attach=4 is adjacent to the
        # MH — that is precisely the waste Figure 4 depicts.
        assert rtts[1] is not None and rtts[4] is not None
        # Direct RTT for attach=4 would be tiny; via the HA it is not.
        direct = build_scenario(
            seed=408, backbone_size=5, ch_attach=4,
            ch_awareness=Awareness.MOBILE_AWARE, visited_filtering=False,
            strategy=ProbeStrategy.AGGRESSIVE_FIRST,
        )
        direct.ch.learn_binding(MH_HOME_ADDRESS, direct.mh.care_of, 300.0)
        direct_rtt = self.measure_rtt(direct)
        assert direct_rtt is not None
        assert rtts[4] > 3 * direct_rtt


class TestFigure5SmartCorrespondent:
    """A mobile-aware CH learns the binding and sends In-DE directly."""

    def test_advisory_learning_cuts_the_triangle(self):
        scenario = build_scenario(seed=409, ch_awareness=Awareness.MOBILE_AWARE,
                                  notify_correspondents=True,
                                  visited_filtering=False,
                                  strategy=ProbeStrategy.AGGRESSIVE_FIRST)
        mh_sock = scenario.mh.stack.udp_socket(7000)
        mh_sock.on_receive(lambda *a: None)
        ch_sock = scenario.ch.stack.udp_socket()
        for index in range(5):
            scenario.sim.events.schedule(
                index * 1.0,
                lambda: ch_sock.sendto("x", 50, MH_HOME_ADDRESS, 7000),
            )
        scenario.sim.run_for(30)
        assert scenario.ha.packets_tunneled == 1       # only the first packet
        assert scenario.ch.direct_tunneled == 4        # the rest: In-DE
        assert scenario.mh.tunnel.decapsulated_count == 5

    def test_in_de_latency_beats_in_ie_for_nearby_ch(self):
        near_args = dict(seed=410, backbone_size=5, ch_attach=4,
                         visited_filtering=False)
        triangle = build_scenario(ch_awareness=Awareness.CONVENTIONAL,
                                  strategy=ProbeStrategy.CONSERVATIVE_FIRST,
                                  **near_args)
        rtt_triangle = TestFigure4NearbyCorrespondent.measure_rtt(triangle)
        smart = build_scenario(ch_awareness=Awareness.MOBILE_AWARE,
                               strategy=ProbeStrategy.AGGRESSIVE_FIRST,
                               **near_args)
        smart.ch.learn_binding(MH_HOME_ADDRESS, smart.mh.care_of, 300.0)
        rtt_smart = TestFigure4NearbyCorrespondent.measure_rtt(smart)
        assert rtt_smart < rtt_triangle / 3
