"""Integration tests: §2 connection durability across movement, §7.1.2
probe strategies, and both-hosts-mobile operation (§1)."""


from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.apps import TelnetServer, TelnetSession
from repro.core import OutMode, ProbeStrategy
from repro.core.policy import Disposition, MobilityPolicyTable
from repro.mobileip import Awareness, HomeAgent, MobileHost
from repro.netsim import Internet, IPAddress, Simulator


class TestDurabilityAcrossMoves:
    def run_session(self, bound_to_care_of: bool, seed: int):
        scenario = build_scenario(seed=seed,
                                  ch_awareness=Awareness.CONVENTIONAL)
        TelnetServer(scenario.ch.stack)
        scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=3)
        session = TelnetSession(
            scenario.mh.stack, scenario.ch_ip, think_time=1.0, keystrokes=8,
            bound_ip=scenario.mh.care_of if bound_to_care_of else None,
        )
        scenario.sim.events.schedule(
            3.5, lambda: scenario.mh.move_to(scenario.net, "visited2")
        )
        scenario.sim.run_for(200)
        return session

    def test_mobile_ip_session_survives(self):
        session = self.run_session(bound_to_care_of=False, seed=501)
        assert session.survived
        assert session.echoes_received == 8

    def test_out_dt_session_breaks(self):
        session = self.run_session(bound_to_care_of=True, seed=502)
        assert not session.survived

    def test_multiple_moves_survived(self):
        scenario = build_scenario(seed=503, ch_awareness=Awareness.CONVENTIONAL)
        TelnetServer(scenario.ch.stack)
        scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=3)
        scenario.net.add_domain("visited3", "10.6.0.0/16", attach_at=1)
        session = TelnetSession(scenario.mh.stack, scenario.ch_ip,
                                think_time=1.0, keystrokes=12)
        scenario.sim.events.schedule(
            3.5, lambda: scenario.mh.move_to(scenario.net, "visited2"))
        scenario.sim.events.schedule(
            7.5, lambda: scenario.mh.move_to(scenario.net, "visited3"))
        scenario.sim.run_for(300)
        assert session.survived
        assert session.echoes_received == 12

    def test_return_home_mid_session(self):
        scenario = build_scenario(seed=504, ch_awareness=Awareness.CONVENTIONAL)
        TelnetServer(scenario.ch.stack)
        session = TelnetSession(scenario.mh.stack, scenario.ch_ip,
                                think_time=1.0, keystrokes=8)
        scenario.sim.events.schedule(
            3.5, lambda: scenario.mh.return_home(scenario.net, "home"))
        scenario.sim.run_for(200)
        assert session.survived
        assert session.echoes_received == 8


class TestProbeStrategyOutcomes:
    """§7.1.2: where each strategy lands, and what it costs."""

    def converse(self, strategy, visited_filtering, awareness, seed):
        """A TCP conversation so feedback signals arise naturally: the
        MH connects (port 6000 is not in the temporary-port heuristics,
        so the home address and the mode ladder are used) and sends a
        message every 2 seconds; the server echoes each one."""
        scenario = build_scenario(seed=seed, strategy=strategy,
                                  visited_filtering=visited_filtering,
                                  ch_awareness=awareness)
        got = []
        scenario.ch.stack.listen(
            6000,
            lambda conn: setattr(conn, "on_data",
                                 lambda d, s: conn.send(20, ("ack", d))),
        )
        conn = scenario.mh.stack.connect(scenario.ch_ip, 6000)
        conn.on_data = lambda d, s: got.append(d)

        def tick(count=[0]):
            if not conn.is_open and conn.state.value != "SYN_SENT":
                return
            if count[0] >= 12:
                return
            count[0] += 1
            conn.send(50, count[0])
            scenario.sim.events.schedule(2.0, tick)

        conn.on_established = tick
        scenario.sim.run_for(180)
        record = scenario.mh.engine.cache.records.get(scenario.ch_ip)
        return got, record, scenario

    def test_aggressive_lands_on_dh_when_permissive(self):
        got, record, _ = self.converse(
            ProbeStrategy.AGGRESSIVE_FIRST, False, Awareness.CONVENTIONAL, 511)
        assert record.current is OutMode.OUT_DH
        assert record.mode_changes == 0
        assert len(got) == 12

    def test_aggressive_falls_back_to_ie_when_filtered(self):
        got, record, _ = self.converse(
            ProbeStrategy.AGGRESSIVE_FIRST, True, Awareness.CONVENTIONAL, 512)
        assert record.current is OutMode.OUT_IE
        assert record.mode_changes >= 1
        assert got  # conversation eventually flows

    def test_conservative_upgrades_when_permissive(self):
        got, record, _ = self.converse(
            ProbeStrategy.CONSERVATIVE_FIRST, False, Awareness.DECAP_CAPABLE, 513)
        # Started at IE, climbed toward DH over the conversation.
        assert record.current in (OutMode.OUT_DE, OutMode.OUT_DH)
        assert record.mode_changes >= 1
        assert got

    def test_rule_seeded_skips_probing_with_correct_rule(self):
        policy = MobilityPolicyTable()
        policy.add("10.3.0.0/16", Disposition.OPTIMISTIC)
        scenario = build_scenario(seed=514, strategy=ProbeStrategy.RULE_SEEDED,
                                  policy=policy, visited_filtering=False,
                                  ch_awareness=Awareness.CONVENTIONAL)
        got = []
        sock = scenario.ch.stack.udp_socket(6000)
        sock.on_receive(lambda d, s, ip, p: got.append(d))
        mh_sock = scenario.mh.stack.udp_socket()
        mh_sock.sendto("x", 50, scenario.ch_ip, 6000,
                       src_override=MH_HOME_ADDRESS)
        scenario.sim.run_for(20)
        record = scenario.mh.engine.cache.records.get(scenario.ch_ip)
        assert got == ["x"]
        assert record.current is OutMode.OUT_DH
        assert record.mode_changes == 0
        assert scenario.mh.tunnel.encapsulated_count == 0

    def test_rule_seeded_home_only_never_leaves_tunnel(self):
        policy = MobilityPolicyTable()
        policy.add("0.0.0.0/0", Disposition.HOME_ONLY)
        got, record, scenario = self.converse(
            ProbeStrategy.RULE_SEEDED, False, Awareness.CONVENTIONAL, 515)
        # converse() builds its own scenario; emulate by direct check:
        cache = scenario.mh.engine.cache
        assert cache is not None  # structural sanity
        # Dedicated scenario for the pinning check:
        pinned = build_scenario(seed=516, strategy=ProbeStrategy.RULE_SEEDED,
                                policy=policy, visited_filtering=False,
                                ch_awareness=Awareness.CONVENTIONAL)
        sock = pinned.ch.stack.udp_socket(6000)
        seen = []
        sock.on_receive(lambda d, s, ip, p: seen.append(d))
        mh_sock = pinned.mh.stack.udp_socket(6001)
        mh_sock.on_receive(lambda *a: None)
        for index in range(6):
            pinned.sim.events.schedule(
                index * 1.0,
                lambda i=index: mh_sock.sendto(i, 50, pinned.ch_ip, 6000,
                                               src_override=MH_HOME_ADDRESS))
        pinned.sim.run_for(30)
        assert len(seen) == 6
        assert pinned.mh.tunnel.encapsulated_count == 6   # every packet Out-IE
        assert pinned.mh.engine.cache.record_for(pinned.ch_ip).pinned


class TestBothHostsMobile:
    """§1: 'the same techniques and optimizations apply equally well if
    both hosts are mobile' — two mobile hosts, both away from home,
    conversing through their home agents."""

    def test_two_mobile_hosts_converse(self):
        sim = Simulator(seed=521)
        net = Internet(sim, backbone_size=5)
        home_a = net.add_domain("home-a", "10.1.0.0/16", attach_at=0)
        home_b = net.add_domain("home-b", "10.7.0.0/16", attach_at=2)
        net.add_domain("visit-a", "10.2.0.0/16", attach_at=4)
        net.add_domain("visit-b", "10.8.0.0/16", attach_at=3)

        ha_a = HomeAgent("ha-a", sim, home_network=home_a.prefix)
        ha_a_ip = net.add_host("home-a", ha_a)
        ha_b = HomeAgent("ha-b", sim, home_network=home_b.prefix)
        ha_b_ip = net.add_host("home-b", ha_b)

        mh_a = MobileHost("mh-a", sim, home_address=IPAddress("10.1.0.10"),
                          home_network=home_a.prefix, home_agent_address=ha_a_ip)
        mh_a.attach_home(net, "home-a")
        mh_b = MobileHost("mh-b", sim, home_address=IPAddress("10.7.0.10"),
                          home_network=home_b.prefix, home_agent_address=ha_b_ip)
        mh_b.attach_home(net, "home-b")

        mh_a.move_to(net, "visit-a")
        mh_b.move_to(net, "visit-b")
        sim.run(until=sim.now + 5)
        assert mh_a.registered and mh_b.registered

        got_a, got_b = [], []
        sock_b = mh_b.stack.udp_socket(7000)

        def echo(d, s, ip, p):
            got_b.append(d)
            sock_b.sendto("echo", s, ip, p,
                          src_override=IPAddress("10.7.0.10"))

        sock_b.on_receive(echo)
        sock_a = mh_a.stack.udp_socket(7001)
        sock_a.on_receive(lambda d, s, ip, p: got_a.append((d, str(ip))))
        sock_a.sendto("hello", 50, IPAddress("10.7.0.10"), 7000,
                      src_override=IPAddress("10.1.0.10"))
        sim.run(until=sim.now + 30)
        assert got_b == ["hello"]
        assert got_a == [("echo", "10.7.0.10")]
        # Each direction transited the respective home agent.
        assert ha_b.packets_tunneled >= 1
        assert ha_a.packets_tunneled >= 1
