"""Tests for the simplified TCP: handshake, data, retransmission,
teardown, endpoint-identity semantics, and the §7.1.2 reporting."""

import pytest

from repro.netsim import IPAddress
from repro.transport import TransportStack, TCPFlags, TCPSegment, TCPState


@pytest.fixture
def pair(lan):
    sim, _segment, a, b = lan
    return sim, TransportStack(a), TransportStack(b)


def echo_server(stack, port=7):
    """Listen and echo every payload back."""
    connections = []

    def accept(conn):
        connections.append(conn)
        conn.on_data = lambda data, size: conn.send(size, data=data)

    stack.listen(port, accept)
    return connections


class TestHandshake:
    def test_three_way_establishes_both_sides(self, pair):
        sim, client_stack, server_stack = pair
        server_conns = echo_server(server_stack)
        conn = client_stack.connect(IPAddress("192.168.1.2"), 7)
        established = []
        conn.on_established = lambda: established.append(sim.now)
        sim.run(until=5)
        assert established
        assert conn.state is TCPState.ESTABLISHED
        assert server_conns[0].state is TCPState.ESTABLISHED

    def test_connect_to_closed_port_gets_rst(self, pair):
        sim, client_stack, _server_stack = pair
        conn = client_stack.connect(IPAddress("192.168.1.2"), 9999)
        failures = []
        conn.on_fail = failures.append
        sim.run(until=5)
        assert failures == ["reset-by-peer"]
        assert conn.state is TCPState.CLOSED

    def test_connection_key_is_four_tuple(self, pair):
        _sim, client_stack, server_stack = pair
        echo_server(server_stack)
        conn = client_stack.connect(IPAddress("192.168.1.2"), 7)
        assert conn.key == (
            IPAddress("192.168.1.1"), conn.local_port,
            IPAddress("192.168.1.2"), 7,
        )

    def test_listen_port_conflict(self, pair):
        _sim, _client_stack, server_stack = pair
        server_stack.listen(7, lambda c: None)
        with pytest.raises(OSError):
            server_stack.listen(7, lambda c: None)

    def test_stop_listening(self, pair):
        sim, client_stack, server_stack = pair
        server_stack.listen(7, lambda c: None)
        server_stack.stop_listening(7)
        conn = client_stack.connect(IPAddress("192.168.1.2"), 7)
        failures = []
        conn.on_fail = failures.append
        sim.run(until=5)
        assert failures == ["reset-by-peer"]


class TestDataTransfer:
    def test_echo_roundtrip(self, pair):
        sim, client_stack, server_stack = pair
        echo_server(server_stack)
        conn = client_stack.connect(IPAddress("192.168.1.2"), 7)
        received = []
        conn.on_established = lambda: conn.send(300, data="payload")
        conn.on_data = lambda data, size: received.append((data, size))
        sim.run(until=5)
        assert received == [("payload", 300)]

    def test_large_send_is_segmented(self, pair):
        sim, client_stack, server_stack = pair
        sizes = []

        def accept(conn):
            conn.on_data = lambda data, size: sizes.append(size)

        server_stack.listen(7, accept)
        conn = client_stack.connect(IPAddress("192.168.1.2"), 7)
        conn.on_established = lambda: conn.send(4000, data="big")
        sim.run(until=5)
        assert sum(sizes) == 4000
        assert len(sizes) == 3   # 1460 + 1460 + 1080
        assert conn.segments_sent >= 4

    def test_data_queued_until_established(self, pair):
        sim, client_stack, server_stack = pair
        received = []

        def accept(conn):
            conn.on_data = lambda data, size: received.append(data)

        server_stack.listen(7, accept)
        conn = client_stack.connect(IPAddress("192.168.1.2"), 7)
        conn.send(100, data="early")        # sent before SYN-ACK returns
        sim.run(until=5)
        assert received == ["early"]

    def test_bidirectional_transfer(self, pair):
        sim, client_stack, server_stack = pair
        client_got, server_got = [], []

        def accept(conn):
            def on_data(data, size):
                server_got.append(data)
                conn.send(50, data=f"ack-{data}")
            conn.on_data = on_data

        server_stack.listen(7, accept)
        conn = client_stack.connect(IPAddress("192.168.1.2"), 7)
        conn.on_data = lambda data, size: client_got.append(data)
        conn.on_established = lambda: [conn.send(10, data=i) for i in range(3)]
        sim.run(until=10)
        assert server_got == [0, 1, 2]
        assert client_got == ["ack-0", "ack-1", "ack-2"]

    def test_send_on_closed_connection_raises(self, pair):
        _sim, client_stack, _server_stack = pair
        conn = client_stack.connect(IPAddress("192.168.1.2"), 7)
        conn.abort()
        with pytest.raises(RuntimeError):
            conn.send(10)


class TestTeardown:
    def test_orderly_close_both_sides(self, pair):
        sim, client_stack, server_stack = pair
        server_conns = echo_server(server_stack)
        conn = client_stack.connect(IPAddress("192.168.1.2"), 7)
        closed = []
        conn.on_close = lambda: closed.append("client")
        conn.on_established = lambda: conn.close()
        sim.run(until=10)
        assert closed == ["client"]
        assert conn.state is TCPState.CLOSED
        assert server_conns[0].state is TCPState.CLOSED

    def test_connection_forgotten_after_close(self, pair):
        sim, client_stack, server_stack = pair
        echo_server(server_stack)
        conn = client_stack.connect(IPAddress("192.168.1.2"), 7)
        conn.on_established = lambda: conn.close()
        sim.run(until=10)
        assert conn not in client_stack.connections


class TestRetransmission:
    def test_lost_peer_triggers_retransmissions_then_failure(self, pair):
        sim, client_stack, server_stack = pair
        echo_server(server_stack)
        conn = client_stack.connect(IPAddress("192.168.1.2"), 7)

        def unplug():
            server_stack.node.interfaces["eth0"].detach()
            conn.send(100, data="into the void")

        conn.on_established = unplug
        failures = []
        conn.on_fail = failures.append
        sim.run(until=300)
        assert failures == ["retransmission-limit"]
        assert conn.retransmissions >= 5
        assert conn.state is TCPState.CLOSED

    def test_rto_backs_off_exponentially(self, pair):
        sim, client_stack, server_stack = pair
        echo_server(server_stack)
        conn = client_stack.connect(IPAddress("192.168.1.2"), 7)

        times = []
        original_emit = conn._emit

        def spy(segment):
            if segment.is_retransmission:
                times.append(sim.now)
            original_emit(segment)

        conn._emit = spy

        def unplug():
            server_stack.node.interfaces["eth0"].detach()
            conn.send(100)

        conn.on_established = unplug
        sim.run(until=300)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(later >= earlier for earlier, later in zip(gaps, gaps[1:]))
        assert gaps[0] >= 1.0

    def test_duplicate_data_counted_and_reacked(self, pair):
        sim, client_stack, server_stack = pair
        server_conns = echo_server(server_stack)
        conn = client_stack.connect(IPAddress("192.168.1.2"), 7)
        conn.on_established = lambda: conn.send(100, data="x")
        sim.run(until=5)
        server = server_conns[0]
        # Replay the data segment the server already consumed.
        replay = TCPSegment(
            src_port=conn.local_port, dst_port=7,
            seq=conn.snd_una - 100, ack=conn.rcv_nxt,
            flags=TCPFlags.ACK, data_size=100, data="x",
            is_retransmission=True,
        )
        server.segment_arrived(replay)
        assert server.duplicates_received == 1

    def test_observer_reports_retransmissions(self, pair):
        sim, client_stack, server_stack = pair
        echo_server(server_stack)
        reports = []

        class Spy:
            def on_send(self, remote, retx):
                reports.append(retx)

            def on_receive(self, remote, retx):
                pass

        client_stack.observers.append(Spy())
        conn = client_stack.connect(IPAddress("192.168.1.2"), 7)

        def unplug():
            server_stack.node.interfaces["eth0"].detach()
            conn.send(100)

        conn.on_established = unplug
        sim.run(until=60)
        assert True in reports     # retransmissions were flagged
        assert False in reports    # originals were flagged too


class TestEndpointIdentity:
    """§2: connections are named by addresses; changing address = loss."""

    def test_segments_to_unknown_four_tuple_are_not_delivered(self, pair):
        sim, client_stack, server_stack = pair
        server_conns = echo_server(server_stack)
        conn = client_stack.connect(IPAddress("192.168.1.2"), 7)
        sim.run(until=5)
        # The client host changes its address mid-connection.
        iface = client_stack.node.interfaces["eth0"]
        from repro.netsim import Network
        iface.configure(IPAddress("192.168.1.77"), Network("192.168.1.0/24"))
        conn.local_ip = IPAddress("192.168.1.77")  # as if the stack rebound
        conn.send(100, data="from the new address")
        failures = []
        conn.on_fail = failures.append
        sim.run(until=120)
        # The server's connection is keyed to .1, so the data never
        # arrives at the old connection object.
        assert server_conns[0].bytes_delivered == 0
