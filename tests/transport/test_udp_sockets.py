"""Tests for UDP datagrams and the socket layer."""

import pytest

from repro.netsim import IPAddress
from repro.netsim.packet import IPProto
from repro.transport import TransportStack, UDPDatagram
from repro.transport.udp import UDP_HEADER_SIZE


class TestUDPDatagram:
    def test_size_includes_header(self):
        assert UDPDatagram(1000, 2000, "x", 100).size == UDP_HEADER_SIZE + 100

    @pytest.mark.parametrize("port", [-1, 65536])
    def test_bad_ports_rejected(self, port):
        with pytest.raises(ValueError):
            UDPDatagram(port, 53)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UDPDatagram(1, 2, data_size=-1)


@pytest.fixture
def stacks(lan):
    sim, _segment, a, b = lan
    return sim, TransportStack(a), TransportStack(b)


class TestUDPSockets:
    def test_roundtrip(self, stacks):
        sim, sa, sb = stacks
        received = []
        server = sb.udp_socket(5000)
        server.on_receive(lambda d, s, ip, p: received.append((d, s, str(ip), p)))
        client = sa.udp_socket()
        client.sendto("hello", 64, IPAddress("192.168.1.2"), 5000)
        sim.run()
        assert received == [("hello", 64, "192.168.1.1", client.port)]

    def test_reply_path(self, stacks):
        sim, sa, sb = stacks
        answers = []
        server = sb.udp_socket(5000)
        server.on_receive(
            lambda d, s, ip, p: server.sendto("pong", 10, ip, p)
        )
        client = sa.udp_socket()
        client.on_receive(lambda d, s, ip, p: answers.append(d))
        client.sendto("ping", 10, IPAddress("192.168.1.2"), 5000)
        sim.run()
        assert answers == ["pong"]

    def test_port_already_bound(self, stacks):
        _sim, sa, _sb = stacks
        sa.udp_socket(6000)
        with pytest.raises(OSError):
            sa.udp_socket(6000)

    def test_close_releases_port(self, stacks):
        _sim, sa, _sb = stacks
        socket = sa.udp_socket(6000)
        socket.close()
        sa.udp_socket(6000)  # no error

    def test_unbound_port_datagram_ignored(self, stacks):
        sim, sa, sb = stacks
        client = sa.udp_socket()
        client.sendto("x", 10, IPAddress("192.168.1.2"), 9999)
        sim.run()  # nothing listening; no crash, no reply

    def test_ephemeral_ports_unique(self, stacks):
        _sim, sa, _sb = stacks
        ports = {sa.udp_socket().port for _ in range(10)}
        assert len(ports) == 10

    def test_bound_ip_filters_wrong_destination(self, stacks):
        sim, sa, sb = stacks
        received = []
        bound = IPAddress("192.168.1.200")
        sb.node.interfaces["eth0"].add_secondary(bound)
        server = sb.udp_socket(5000, bound_ip=bound)
        server.on_receive(lambda d, s, ip, p: received.append(d))
        client = sa.udp_socket()
        client.sendto("to-primary", 10, IPAddress("192.168.1.2"), 5000)
        client.sendto("to-bound", 10, bound, 5000)
        sim.run()
        assert received == ["to-bound"]

    def test_source_selector_consulted(self, stacks):
        sim, sa, sb = stacks
        chosen = []

        def selector(remote_ip, remote_port, proto, explicit):
            chosen.append((str(remote_ip), remote_port, proto, explicit))
            return IPAddress("192.168.1.1")

        sa.source_selector = selector
        client = sa.udp_socket()
        client.sendto("x", 10, IPAddress("192.168.1.2"), 53)
        assert chosen == [("192.168.1.2", 53, IPProto.UDP, None)]

    def test_explicit_bind_passed_to_selector(self, stacks):
        _sim, sa, _sb = stacks
        seen = []
        sa.source_selector = lambda ip, port, proto, explicit: (
            seen.append(explicit) or IPAddress("192.168.1.1")
        )
        bound = IPAddress("192.168.1.1")
        socket = sa.udp_socket(bound_ip=bound)
        socket.sendto("x", 10, IPAddress("192.168.1.2"), 53)
        assert seen == [bound]

    def test_observer_sees_sends_and_receives(self, stacks):
        sim, sa, sb = stacks
        events = []

        class Spy:
            def on_send(self, remote, retx):
                events.append(("send", str(remote), retx))

            def on_receive(self, remote, retx):
                events.append(("recv", str(remote), retx))

        sb.observers.append(Spy())
        server = sb.udp_socket(5000)
        server.on_receive(lambda d, s, ip, p: None)
        client = sa.udp_socket()
        client.sendto("x", 10, IPAddress("192.168.1.2"), 5000)
        sim.run()
        assert ("recv", "192.168.1.1", False) in events
