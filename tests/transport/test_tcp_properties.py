"""Property-based tests: TCP correctness over adversarial links.

Whatever the link does (loss, any seed), the application must see each
message exactly once and in order — the invariant every paper claim
about "connections" quietly assumes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import Internet, Node, Simulator
from repro.transport import TransportStack


def build_path(seed: int, loss: float):
    sim = Simulator(seed=seed)
    net = Internet(sim, backbone_size=2)
    net.add_domain("a", "10.1.0.0/16", attach_at=0, source_filtering=False)
    net.add_domain("b", "10.2.0.0/16", attach_at=1, source_filtering=False)
    sim.segments["p2p-bb0-bb1"].loss_rate = loss
    a, b = Node("a1", sim), Node("b1", sim)
    net.add_host("a", a)
    ip_b = net.add_host("b", b)
    return sim, TransportStack(a), TransportStack(b), ip_b


class TestTcpDeliveryProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        loss=st.floats(min_value=0.0, max_value=0.25),
        messages=st.integers(min_value=1, max_value=8),
    )
    def test_in_order_exactly_once(self, seed, loss, messages):
        sim, client_stack, server_stack, ip_b = build_path(seed, loss)
        received = []

        def accept(conn):
            conn.on_data = lambda data, size: received.append(data)

        server_stack.listen(7, accept)
        conn = client_stack.connect(ip_b, 7)

        def send_all():
            for index in range(messages):
                conn.send(200, data=index)

        conn.on_established = send_all
        sim.run(until=600)
        if conn.state.value == "CLOSED":
            # The connection may legitimately die under heavy loss
            # (retransmission limit) — then a *prefix* must have been
            # delivered, still in order and without duplicates.
            assert received == list(range(len(received)))
        else:
            assert received == list(range(messages))

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        loss=st.floats(min_value=0.0, max_value=0.2),
    )
    def test_echo_conversation_consistency(self, seed, loss):
        """Request/response pairs stay matched under loss."""
        sim, client_stack, server_stack, ip_b = build_path(seed, loss)

        def accept(conn):
            conn.on_data = lambda data, size: conn.send(50, data=("ack", data))

        server_stack.listen(7, accept)
        conn = client_stack.connect(ip_b, 7)
        acks = []
        conn.on_data = lambda data, size: acks.append(data)
        conn.on_established = lambda: [conn.send(100, data=i) for i in range(4)]
        sim.run(until=600)
        expected = [("ack", i) for i in range(len(acks))]
        assert acks == expected
