"""Tests for the adaptive RTO estimator and fast retransmit."""


from repro.netsim import Internet, Node, Simulator
from repro.transport import TransportStack
from repro.transport.tcp import MAX_RTO, MIN_RTO


def build_path(seed=31, backbone_latency=0.010, loss=0.0):
    sim = Simulator(seed=seed)
    net = Internet(sim, backbone_size=3, backbone_latency=backbone_latency)
    net.add_domain("a", "10.1.0.0/16", attach_at=0, source_filtering=False)
    net.add_domain("b", "10.2.0.0/16", attach_at=2, source_filtering=False)
    if loss:
        sim.segments["p2p-bb0-bb1"].loss_rate = loss
    a, b = Node("a1", sim), Node("b1", sim)
    net.add_host("a", a)
    ip_b = net.add_host("b", b)
    return sim, TransportStack(a), TransportStack(b), ip_b


def echo_server(stack, port=7):
    def accept(conn):
        conn.on_data = lambda data, size: conn.send(size, data=data)

    stack.listen(port, accept)


class TestAdaptiveRto:
    def test_rto_tracks_path_rtt(self):
        """A long path yields a proportionally long RTO; a short path a
        short one — both within [MIN_RTO, MAX_RTO]."""
        rtos = {}
        for label, latency in (("short", 0.001), ("long", 0.080)):
            sim, client, server, ip_b = build_path(backbone_latency=latency)
            echo_server(server)
            conn = client.connect(ip_b, 7)
            conn.on_established = lambda c=conn: [c.send(100, data=i)
                                                  for i in range(5)]
            sim.run(until=30)
            rtos[label] = conn.rto
        assert MIN_RTO <= rtos["short"] < rtos["long"] <= MAX_RTO
        # The long path's RTT is ~0.5s round trip; the RTO must exceed it.
        assert rtos["long"] > 0.3

    def test_karns_rule_ignores_retransmitted_samples(self):
        sim, client, server, ip_b = build_path()
        echo_server(server)
        conn = client.connect(ip_b, 7)
        sim.run(until=5)
        srtt_before = conn._srtt
        # Fabricate a retransmitted in-flight segment and ack it: the
        # estimator must not take a sample from it.
        conn.send(100, data="x")
        assert conn._unacked
        conn._unacked[0].retries = 1
        ack = conn._unacked[0].segment.seq + conn._unacked[0].segment.seq_space
        conn._process_ack(ack)
        assert conn._srtt == srtt_before

    def test_timeout_still_backs_off(self):
        sim, client, server, ip_b = build_path()
        echo_server(server)
        conn = client.connect(ip_b, 7)
        sim.run(until=5)
        base_rto = conn.rto
        server.node.interfaces["eth0"].detach()
        conn.send(100)
        sim.run(until=60)
        # Exponential backoff pushed the RTO upward before failure.
        assert conn.retransmissions >= 3


class TestFastRetransmit:
    def test_three_dup_acks_trigger_immediate_resend(self):
        sim, client, server, ip_b = build_path()
        echo_server(server)
        conn = client.connect(ip_b, 7)
        sim.run(until=5)
        conn.send(100, data="x")
        assert conn._unacked
        edge = conn.snd_una
        # Three duplicate ACKs at the current edge.
        for _ in range(4):
            conn._process_ack(edge)
        assert conn.fast_retransmits == 1
        assert conn.retransmissions >= 1

    def test_fast_retransmit_recovers_single_loss_quickly(self):
        """With a gap, the receiver's dup ACKs let the sender recover in
        round-trip time rather than a full RTO."""
        sim, client, server, ip_b = build_path()
        received = []

        def accept(conn):
            conn.on_data = lambda data, size: received.append(data)

        server.listen(7, accept)
        conn = client.connect(ip_b, 7)

        def send_burst():
            # Enough segments after the loss for three duplicate ACKs.
            for index in range(6):
                conn.send(100, data=index)

        conn.on_established = send_burst
        # Drop exactly one in-flight data frame by briefly unplugging
        # the narrow link for the second segment's flight window.
        link = sim.segments["p2p-bb0-bb1"]
        original_transmit = link.transmit
        state = {"dropped": False}

        def lossy_transmit(sender, frame):
            from repro.transport.tcp import TCPSegment

            payload = getattr(frame.payload, "payload", None)
            if (not state["dropped"] and isinstance(payload, TCPSegment)
                    and payload.data == 1 and not payload.is_retransmission):
                state["dropped"] = True
                return  # lost exactly once
            original_transmit(sender, frame)

        link.transmit = lossy_transmit
        sim.run(until=60)
        assert received == [0, 1, 2, 3, 4, 5]
        assert conn.fast_retransmits >= 1

    def test_dup_ack_counter_resets_on_progress(self):
        sim, client, server, ip_b = build_path()
        echo_server(server)
        conn = client.connect(ip_b, 7)
        sim.run(until=5)
        conn.send(100, data="x")
        edge = conn.snd_una
        conn._process_ack(edge)
        conn._process_ack(edge)
        # Real progress arrives before the third duplicate.
        ack = conn._unacked[0].segment.seq + conn._unacked[0].segment.seq_space
        conn._process_ack(ack)
        assert conn._dup_acks == 0
        assert conn.fast_retransmits == 0
