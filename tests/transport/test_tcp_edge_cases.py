"""Edge-case tests for the simplified TCP beyond the happy paths."""

import pytest

from repro.netsim import IPAddress
from repro.transport import TransportStack, TCPFlags, TCPSegment, TCPState


@pytest.fixture
def pair(lan):
    sim, _segment, a, b = lan
    return sim, TransportStack(a), TransportStack(b)


def echo_server(stack, port=7):
    conns = []

    def accept(conn):
        conns.append(conn)
        conn.on_data = lambda data, size: conn.send(size, data=data)

    stack.listen(port, accept)
    return conns


class TestConnectionManagement:
    def test_explicit_local_port(self, pair):
        sim, client, server = pair
        echo_server(server)
        conn = client.connect(IPAddress("192.168.1.2"), 7, local_port=12345)
        assert conn.local_port == 12345
        sim.run(until=5)
        assert conn.state is TCPState.ESTABLISHED

    def test_two_parallel_connections_to_same_server(self, pair):
        sim, client, server = pair
        server_conns = echo_server(server)
        first = client.connect(IPAddress("192.168.1.2"), 7)
        second = client.connect(IPAddress("192.168.1.2"), 7)
        got = {"first": [], "second": []}
        first.on_established = lambda: first.send(10, data="one")
        second.on_established = lambda: second.send(10, data="two")
        first.on_data = lambda d, s: got["first"].append(d)
        second.on_data = lambda d, s: got["second"].append(d)
        sim.run(until=10)
        assert got == {"first": ["one"], "second": ["two"]}
        assert len(server_conns) == 2
        assert first.local_port != second.local_port

    def test_abort_is_idempotent(self, pair):
        _sim, client, _server = pair
        conn = client.connect(IPAddress("192.168.1.2"), 7)
        failures = []
        conn.on_fail = failures.append
        conn.abort("first")
        conn.abort("second")
        assert failures == ["first"]

    def test_close_on_never_established_connection(self, pair):
        sim, client, _server = pair
        conn = client.connect(IPAddress("192.168.1.2"), 9)
        conn.on_fail = lambda reason: None
        sim.run(until=2)
        conn.close()   # already reset: must not raise
        assert conn.state is TCPState.CLOSED

    def test_connections_list_tracks_lifecycle(self, pair):
        sim, client, server = pair
        echo_server(server)
        conn = client.connect(IPAddress("192.168.1.2"), 7)
        assert conn in client.connections
        conn.on_established = conn.close
        sim.run(until=10)
        assert conn not in client.connections


class TestSegmentEdgeCases:
    def test_stray_ack_for_unknown_connection_ignored(self, pair):
        sim, client, server = pair
        echo_server(server)
        # A pure ACK (seq_space 0) for a nonexistent connection: no RST
        # storm, no crash.
        from repro.netsim.packet import IPProto, Packet

        stray = TCPSegment(src_port=50000, dst_port=7, seq=1, ack=1,
                           flags=TCPFlags.ACK)
        packet = Packet(src=IPAddress("192.168.1.1"),
                        dst=IPAddress("192.168.1.2"),
                        proto=IPProto.TCP, payload=stray,
                        payload_size=stray.size)
        client.node.ip_send(packet)
        sim.run(until=5)
        # The server answers with RST (not a listener hit) but nothing
        # else happens.
        assert not server.connections

    def test_rst_suppression_flag(self, pair):
        sim, client, server = pair
        server.send_rst_on_closed_port = False
        conn = client.connect(IPAddress("192.168.1.2"), 9)
        failures = []
        conn.on_fail = failures.append
        sim.run(until=3)
        # Without the RST the client keeps retrying instead of failing
        # fast.
        assert failures == []
        assert conn.state is TCPState.SYN_SENT

    def test_old_duplicate_segment_does_not_corrupt_stream(self, pair):
        sim, client, server = pair
        server_conns = echo_server(server)
        received = []
        conn = client.connect(IPAddress("192.168.1.2"), 7)
        conn.on_established = lambda: conn.send(100, data="first")
        conn.on_data = lambda d, s: received.append(d)
        sim.run(until=5)
        # Replay the handshake-era SYN at the server.
        syn_replay = TCPSegment(
            src_port=conn.local_port, dst_port=7,
            seq=conn.snd_una - 101 - 1, ack=0, flags=TCPFlags.SYN,
            is_retransmission=True,
        )
        server_conns[0].segment_arrived(syn_replay)
        conn.send(100, data="second")
        sim.run(until=10)
        assert received == ["first", "second"]

    def test_seq_space_accounting(self):
        syn = TCPSegment(1, 2, seq=0, ack=0, flags=TCPFlags.SYN)
        ack = TCPSegment(1, 2, seq=1, ack=1, flags=TCPFlags.ACK)
        fin = TCPSegment(1, 2, seq=1, ack=1, flags=TCPFlags.FIN)
        data = TCPSegment(1, 2, seq=1, ack=1, flags=TCPFlags.ACK,
                          data_size=500)
        assert syn.seq_space == 1
        assert ack.seq_space == 0
        assert fin.seq_space == 1
        assert data.seq_space == 500

    def test_segment_size_includes_header(self):
        segment = TCPSegment(1, 2, seq=0, ack=0, flags=TCPFlags.ACK,
                             data_size=100)
        assert segment.size == 120


class TestRetransmissionDetail:
    def test_ack_cancels_timer_and_adapts_rto(self, pair):
        sim, client, server = pair
        echo_server(server)
        conn = client.connect(IPAddress("192.168.1.2"), 7)
        conn.on_established = lambda: conn.send(100)
        sim.run(until=10)
        assert conn._unacked == []
        assert conn._retx_timer is None
        # The adaptive estimator has taken over: on a millisecond LAN
        # the RTO collapses to its floor, far below the 1 s initial.
        assert conn._srtt is not None
        assert conn.rto < 1.0

    def test_partial_ack_keeps_timer(self, pair):
        sim, client, server = pair
        server_conns = echo_server(server)
        conn = client.connect(IPAddress("192.168.1.2"), 7)
        sim.run(until=5)
        # Two in-flight segments; ack only the first manually.
        server.node.interfaces["eth0"].up = False
        conn.send(100, data="a")
        conn.send(100, data="b")
        first_end = conn.snd_una + 100
        conn._process_ack(first_end)
        assert len(conn._unacked) == 1
        assert conn._retx_timer is not None
