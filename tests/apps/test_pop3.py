"""Tests for the POP3 workload and its §7.1.1 heuristic integration."""

import pytest

from repro.analysis import MH_HOME_ADDRESS, build_scenario
from repro.apps import POP3_PORT, POP3Client, POP3Server
from repro.mobileip import Awareness
from repro.netsim.packet import IPProto


@pytest.fixture
def stage():
    scenario = build_scenario(seed=1601, ch_awareness=Awareness.CONVENTIONAL)
    server = POP3Server(scenario.ch.stack)
    client = POP3Client(scenario.mh.stack)
    return scenario, server, client


class TestPop3Workload:
    def test_retrieves_whole_spool(self, stage):
        scenario, server, client = stage
        for size in (500, 1200, 300):
            server.deliver_mail(size)
        check = client.check_mail(scenario.ch_ip)
        scenario.sim.run_for(60)
        assert check.completed
        assert check.messages_retrieved == 3
        assert check.bytes_retrieved == 2000
        assert server.mailbox == []           # spool drained

    def test_empty_mailbox_still_completes(self, stage):
        scenario, _server, client = stage
        check = client.check_mail(scenario.ch_ip)
        scenario.sim.run_for(60)
        assert check.completed
        assert check.messages_retrieved == 0

    def test_sequential_checks(self, stage):
        scenario, server, client = stage
        server.deliver_mail(400)
        first = client.check_mail(scenario.ch_ip)
        scenario.sim.run_for(30)
        server.deliver_mail(700)
        second = client.check_mail(scenario.ch_ip)
        scenario.sim.run_for(30)
        assert first.messages_retrieved == 1
        assert second.messages_retrieved == 1
        assert server.sessions_served == 2

    def test_default_rides_mobile_ip(self, stage):
        """Port 110 is not in the default heuristics: the mail check's
        endpoint is the home address (tunneled, durable)."""
        scenario, server, client = stage
        server.deliver_mail(100)
        client.check_mail(scenario.ch_ip)
        scenario.sim.run_for(60)
        conn_sources = {
            e.src for e in scenario.sim.trace.entries
            if e.node == "mh" and e.action == "send" and "TCP" in e.packet_repr
        }
        assert str(MH_HOME_ADDRESS) in conn_sources

    def test_user_rule_switches_to_out_dt(self):
        """§7.1.1's extensibility: add a rule for port 110 and the mail
        check forgoes Mobile IP like HTTP does."""
        scenario = build_scenario(seed=1602,
                                  ch_awareness=Awareness.CONVENTIONAL)
        scenario.mh.engine.heuristics.add_rule(IPProto.TCP, POP3_PORT)
        server = POP3Server(scenario.ch.stack)
        server.deliver_mail(800)
        client = POP3Client(scenario.mh.stack)
        check = client.check_mail(scenario.ch_ip)
        scenario.sim.run_for(60)
        assert check.completed
        tcp_sources = {
            e.src for e in scenario.sim.trace.entries
            if e.node == "mh" and e.action == "send" and "TCP" in e.packet_repr
        }
        assert tcp_sources == {str(scenario.mh.care_of)}
        assert scenario.mh.tunnel.encapsulated_count == 0
