"""Tests for the bulk-transfer workload."""

import pytest

from repro.analysis import build_scenario
from repro.apps import BulkClient, BulkServer
from repro.mobileip import Awareness


@pytest.fixture
def stage():
    return build_scenario(seed=1501, ch_awareness=Awareness.CONVENTIONAL,
                          visited_filtering=False)


class TestBulkTransfer:
    def test_transfer_completes_exactly(self, stage):
        server = BulkServer(stage.ch.stack)
        client = BulkClient(stage.mh.stack)
        done = []
        result = client.transfer(stage.ch_ip, 100_000, on_done=done.append,
                                 bound_ip=stage.mh.care_of)
        stage.sim.run_for(300)
        assert done == [result]
        assert not result.failed
        assert server.bytes_received == 100_000
        assert result.goodput_bps > 0

    def test_window_bounds_inflight(self, stage):
        BulkServer(stage.ch.stack)
        client = BulkClient(stage.mh.stack, window_segments=4)
        result = client.transfer(stage.ch_ip, 50_000,
                                 bound_ip=stage.mh.care_of)
        # Sample the in-flight queue while the transfer runs.
        samples = []

        def sample():
            for conn in stage.mh.stack.connections:
                samples.append(len(conn._unacked))
            if not result.finished_at:
                stage.sim.events.schedule(0.01, sample)

        stage.sim.events.schedule(0.05, sample)
        stage.sim.run_for(300)
        assert samples
        assert max(samples) <= 4 + 1   # +1: a pure FIN may join the queue

    def test_failure_reported_when_server_dies(self, stage):
        BulkServer(stage.ch.stack)
        client = BulkClient(stage.mh.stack)
        done = []
        result = client.transfer(stage.ch_ip, 200_000, on_done=done.append,
                                 bound_ip=stage.mh.care_of)
        stage.sim.events.schedule(
            0.5, lambda: stage.ch.interfaces["eth0"].detach())
        stage.sim.run_for(600)
        assert done and result.failed
        assert result.goodput_bps is not None  # partial timing still defined

    def test_transfer_survives_move_on_home_address(self, stage):
        stage.net.add_domain("visited2", "10.5.0.0/16", attach_at=3,
                             source_filtering=False, forbid_transit=False)
        server = BulkServer(stage.ch.stack)
        client = BulkClient(stage.mh.stack)
        done = []
        # Unbound socket on port 20 -> home address -> Mobile IP.
        result = client.transfer(stage.ch_ip, 150_000, on_done=done.append)
        stage.sim.events.schedule(
            1.0, lambda: stage.mh.move_to(stage.net, "visited2"))
        stage.sim.run_for(600)
        assert done and not result.failed
        assert server.bytes_received == 150_000
