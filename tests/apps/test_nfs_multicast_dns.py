"""Tests for the NFS, multicast, and DNS-lookup workloads."""

import pytest

from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.apps import (
    DNSLookupWorkload,
    HomeTunnelRelay,
    MulticastReceiver,
    MulticastSource,
    NFSClient,
    NFSServer,
)
from repro.netsim import IPAddress, Node


class TestNFS:
    def build(self, seed=101, **kwargs):
        scenario = build_scenario(seed=seed, ch_awareness=None, **kwargs)
        # The NFS server lives on the home LAN and exports to the home
        # network only (§3.1's source-address trust).
        server_node = Node("nfs", scenario.sim)
        server_ip = scenario.net.add_host("home", server_node)
        from repro.transport import TransportStack

        stack = TransportStack(server_node)
        server = NFSServer(stack, exports=[scenario.home.prefix])
        return scenario, server, server_ip

    def test_local_client_granted(self):
        scenario, server, server_ip = self.build()
        local = Node("workstation", scenario.sim)
        scenario.net.add_host("home", local)
        from repro.transport import TransportStack

        client = NFSClient(TransportStack(local), server_ip)
        results = []
        client.call("read", "/export/file", results.append)
        scenario.sim.run_for(10)
        assert results and results[0].ok
        assert server.requests_granted == 1

    def test_mobile_out_dh_killed_by_home_boundary(self):
        """Figure 2 with NFS: the legitimate mobile request with a home
        source address is dropped at the home boundary (inbound spoof
        check), so the RPC times out."""
        scenario, server, server_ip = self.build(seed=102)
        client = NFSClient(scenario.mh.stack, server_ip, max_retries=1)
        # Force Out-DH by policy: optimistic toward home.
        scenario.mh.engine.policy.add("10.1.0.0/16",
                                      __import__("repro.core.policy",
                                                 fromlist=["Disposition"]).Disposition.OPTIMISTIC)
        scenario.mh.engine.cache.reset_all()
        results = []
        client.call("read", "/export/file", results.append,
                    src_override=MH_HOME_ADDRESS)
        scenario.sim.run_for(30)
        assert results == [None]   # timed out
        assert server.requests_granted == 0
        drops = scenario.sim.trace.drops_by_reason
        assert any("source-address-filter" in reason for reason in drops)

    def test_mobile_out_ie_restores_access(self):
        """Figure 3 with NFS: reverse tunneling gets the request in."""
        scenario, server, server_ip = self.build(seed=103)
        client = NFSClient(scenario.mh.stack, server_ip)
        results = []
        client.call("read", "/export/file", results.append,
                    src_override=MH_HOME_ADDRESS)
        scenario.sim.run_for(30)
        assert results and results[0] is not None and results[0].ok
        # The request went through the reverse tunnel.
        assert scenario.ha.packets_reverse_forwarded >= 1

    def test_spoofed_source_refused_or_dropped(self):
        """§3.1: an outside host claiming an inside source."""
        scenario, server, server_ip = self.build(seed=104)
        outsider = Node("attacker", scenario.sim)
        scenario.net.add_host("visited", outsider)
        from repro.transport import TransportStack

        stack = TransportStack(outsider)
        client = NFSClient(stack, server_ip, max_retries=0)
        results = []
        client.call("read", "/export/secret", results.append,
                    src_override=IPAddress("10.1.0.99"))
        scenario.sim.run_for(30)
        # With filtering the packet never arrives; the server grants
        # nothing either way.
        assert server.requests_granted == 0

    def test_untrusted_source_denied_by_server(self):
        scenario, server, server_ip = self.build(seed=105,
                                                 visited_filtering=False,
                                                 home_filtering=False)
        outsider = Node("visitor", scenario.sim)
        scenario.net.add_host("visited", outsider)
        from repro.transport import TransportStack

        client = NFSClient(TransportStack(outsider), server_ip)
        results = []
        client.call("read", "/export/file", results.append)
        scenario.sim.run_for(30)
        assert results and results[0] is not None
        assert not results[0].ok
        assert server.requests_refused == 1


class TestMulticast:
    GROUP = IPAddress("224.5.6.7")

    def test_local_join_receives_stream(self):
        scenario = build_scenario(seed=111, ch_awareness=None)
        sender = Node("src", scenario.sim)
        scenario.net.add_host("visited", sender)
        from repro.transport import TransportStack

        source = MulticastSource(TransportStack(sender), self.GROUP,
                                 count=10, interval=0.05)
        receiver = MulticastReceiver(scenario.mh.stack, self.GROUP)
        source.start()
        scenario.sim.run_for(10)
        assert receiver.received == 10

    def test_home_tunnel_relay_delivers_with_overhead(self):
        """§6.4: the self-defeating alternative still works, but every
        packet crosses the backbone encapsulated."""
        scenario = build_scenario(seed=112, ch_awareness=None)
        sender = Node("src", scenario.sim)
        scenario.net.add_host("home", sender)
        from repro.transport import TransportStack

        source = MulticastSource(TransportStack(sender), self.GROUP,
                                 count=5, interval=0.05)
        relay = HomeTunnelRelay(scenario.ha, scenario.ha.tunnel, self.GROUP)
        relay.relay_to(scenario.mh.care_of)
        receiver = MulticastReceiver(scenario.mh.stack, self.GROUP)
        source.start()
        scenario.sim.run_for(10)
        assert relay.relayed == 5
        assert receiver.received == 5
        assert scenario.mh.tunnel.decapsulated_count == 5

    def test_source_requires_multicast_group(self):
        scenario = build_scenario(seed=113, ch_awareness=None)
        with pytest.raises(ValueError):
            MulticastSource(scenario.mh.stack, IPAddress("10.0.0.1"))

    def test_receiver_leave_stops_delivery(self):
        scenario = build_scenario(seed=114, ch_awareness=None)
        sender = Node("src", scenario.sim)
        scenario.net.add_host("visited", sender)
        from repro.transport import TransportStack

        source = MulticastSource(TransportStack(sender), self.GROUP,
                                 count=5, interval=0.05)
        receiver = MulticastReceiver(scenario.mh.stack, self.GROUP)
        receiver.leave()
        source.start()
        scenario.sim.run_for(10)
        assert receiver.received == 0


class TestDNSWorkload:
    def test_lookup_latency_recorded(self):
        scenario = build_scenario(seed=121, ch_awareness=None, with_dns=True)
        workload = DNSLookupWorkload(scenario.mh.stack, scenario.dns_ip)
        record = workload.lookup("mh.home.example")
        scenario.sim.run_for(10)
        assert record.resolved
        assert record.latency > 0
        assert workload.mean_latency() == record.latency

    def test_lookup_many_spacing(self):
        scenario = build_scenario(seed=122, ch_awareness=None, with_dns=True)
        workload = DNSLookupWorkload(scenario.mh.stack, scenario.dns_ip)
        workload.lookup_many(["mh.home.example"] * 5, interval=0.1)
        scenario.sim.run_for(10)
        assert len(workload.completed) == 5

    def test_lookup_uses_out_dt(self):
        """§7.1.1: DNS queries from an away host use the care-of source."""
        scenario = build_scenario(seed=123, ch_awareness=None, with_dns=True)
        workload = DNSLookupWorkload(scenario.mh.stack, scenario.dns_ip)
        workload.lookup("mh.home.example")
        scenario.sim.run_for(10)
        sends = [e for e in scenario.sim.trace.entries
                 if e.node == "mh" and e.action == "send"
                 and e.dst == str(scenario.dns_ip)]
        assert sends
        assert all(e.src == str(scenario.mh.care_of) for e in sends)
