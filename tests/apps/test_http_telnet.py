"""Tests for the HTTP and telnet workloads."""

import pytest

from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.apps import HTTPClient, HTTPServer, TelnetServer, TelnetSession
from repro.mobileip import Awareness


@pytest.fixture
def stage():
    scenario = build_scenario(seed=91, ch_awareness=Awareness.CONVENTIONAL)
    return scenario


class TestHTTP:
    def test_fetch_completes(self, stage):
        server = HTTPServer(stage.ch.stack, page_size=8000)
        client = HTTPClient(stage.mh.stack)
        done = []
        client.fetch(stage.ch_ip, on_done=done.append)
        stage.sim.run_for(30)
        assert len(done) == 1
        result = done[0]
        assert result.completed
        assert result.bytes_received == 8000
        assert result.latency is not None and result.latency > 0
        assert server.requests_served == 1

    def test_fetch_uses_out_dt_heuristic(self, stage):
        """§7.1.1: port 80 -> temporary address on the wire."""
        HTTPServer(stage.ch.stack)
        client = HTTPClient(stage.mh.stack)
        client.fetch(stage.ch_ip)
        stage.sim.run_for(30)
        conn_sends = [
            e for e in stage.sim.trace.entries
            if e.node == "mh" and e.action == "send" and "TCP" in e.packet_repr
        ]
        assert conn_sends
        assert all(e.src == str(stage.mh.care_of) for e in conn_sends)
        assert stage.mh.tunnel.encapsulated_count == 0

    def test_reload_after_connection_break(self):
        """§4 Out-DT: a move breaks the fetch; 'reload' retries it."""
        scenario = build_scenario(seed=92, ch_awareness=Awareness.CONVENTIONAL)
        HTTPServer(scenario.ch.stack, page_size=4000)
        client = HTTPClient(scenario.mh.stack, max_reloads=2)
        scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=3,
                                source_filtering=False, forbid_transit=False)
        done = []
        # Break the connection immediately after establishment by moving.
        client.fetch(scenario.ch_ip, on_done=done.append)
        scenario.sim.events.schedule(
            0.05, lambda: scenario.mh.move_to(scenario.net, "visited2")
        )
        scenario.sim.run_for(200)
        assert len(done) == 1
        result = done[0]
        assert result.reloads >= 1
        assert result.completed   # the reload from the new address worked

    def test_failed_after_max_reloads(self):
        """The user accepts 'the occasional incomplete image'."""
        scenario = build_scenario(seed=93, ch_awareness=Awareness.CONVENTIONAL)
        HTTPServer(scenario.ch.stack)
        client = HTTPClient(scenario.mh.stack, max_reloads=1)
        # Server vanishes entirely.
        scenario.net.detach_host(scenario.ch)
        done = []
        client.fetch(scenario.ch_ip, on_done=done.append)
        scenario.sim.run_for(600)
        assert len(done) == 1
        assert done[0].failed
        assert done[0].reloads == 1
        assert client.failed == [done[0]]


class TestTelnet:
    def test_session_types_and_receives_echoes(self, stage):
        TelnetServer(stage.ch.stack)
        session = TelnetSession(stage.mh.stack, stage.ch_ip,
                                think_time=0.5, keystrokes=5)
        stage.sim.run_for(60)
        assert session.keystrokes_sent == 5
        assert session.echoes_received == 5
        assert session.survived
        assert session.mean_echo_rtt() is not None

    def test_telnet_uses_home_address(self, stage):
        """§7.1.1: port 23 is not in the temporary-port list."""
        TelnetServer(stage.ch.stack)
        session = TelnetSession(stage.mh.stack, stage.ch_ip, keystrokes=1)
        stage.sim.run_for(30)
        assert session.connection.local_ip == MH_HOME_ADDRESS

    def test_session_survives_movement_with_mobile_ip(self):
        """§2's durability goal, end to end."""
        scenario = build_scenario(seed=94, ch_awareness=Awareness.CONVENTIONAL)
        TelnetServer(scenario.ch.stack)
        scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=3)
        session = TelnetSession(scenario.mh.stack, scenario.ch_ip,
                                think_time=1.0, keystrokes=10)
        scenario.sim.events.schedule(
            4.0, lambda: scenario.mh.move_to(scenario.net, "visited2")
        )
        scenario.sim.run_for(120)
        assert session.survived
        assert session.echoes_received == 10

    def test_session_dies_on_movement_with_out_dt(self):
        """The flip side: a temporary-address session breaks on a move."""
        scenario = build_scenario(seed=95, ch_awareness=Awareness.CONVENTIONAL)
        TelnetServer(scenario.ch.stack)
        scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=3,
                                source_filtering=False, forbid_transit=False)
        session = TelnetSession(scenario.mh.stack, scenario.ch_ip,
                                think_time=1.0, keystrokes=10,
                                bound_ip=scenario.mh.care_of)
        scenario.sim.events.schedule(
            4.0, lambda: scenario.mh.move_to(scenario.net, "visited2")
        )
        scenario.sim.run_for(300)
        assert not session.survived
        assert session.failure_reason == "retransmission-limit"
        assert session.echoes_received < 10
