#!/usr/bin/env python3
"""Roaming telnet: the paper's §2 durability story, live.

A long-lived telnet session runs while the mobile host hops across
three visited domains and finally returns home.  The session survives
every move because its endpoint identifier is the permanent home
address; the per-keystroke echo RTT changes with each location,
reflecting the distance to the correspondent.

For contrast, the same roaming pattern is repeated with a session bound
to the temporary care-of address (Out-DT, "no Mobile IP") — it breaks
at the first move, exactly as §4 warns.

Run:  python examples/roaming_telnet.py
"""

from repro.analysis import build_scenario
from repro.apps import TelnetServer, TelnetSession
from repro.mobileip import Awareness

MOVES = [
    (6.0, "visited2"),
    (12.0, "visited3"),
    (18.0, "home"),
]


def build():
    scenario = build_scenario(seed=2, ch_awareness=Awareness.CONVENTIONAL)
    scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=2)
    scenario.net.add_domain("visited3", "10.6.0.0/16", attach_at=1)
    TelnetServer(scenario.ch.stack)
    return scenario


def schedule_moves(scenario, narrate=True):
    def move(domain):
        if domain == "home":
            scenario.mh.return_home(scenario.net, "home")
        else:
            scenario.mh.move_to(scenario.net, domain)
        if narrate:
            where = "home" if scenario.mh.at_home else f"{domain} (care-of {scenario.mh.care_of})"
            print(f"  t={scenario.sim.now:6.2f}s  moved to {where}")

    for when, domain in MOVES:
        scenario.sim.events.schedule(when, move, domain)


def run_mobile_ip_session():
    print("=== Session 1: Mobile IP (endpoint = home address) ===")
    scenario = build()
    session = TelnetSession(scenario.mh.stack, scenario.ch_ip,
                            think_time=1.0, keystrokes=22)
    schedule_moves(scenario)
    scenario.sim.run_for(120)
    print(f"  survived: {session.survived}   echoes: "
          f"{session.echoes_received}/{session.keystrokes_sent}")
    rtts = session.echo_rtts
    for index in (0, 7, 13, 20):
        if index < len(rtts):
            print(f"  echo RTT for keystroke {index + 1:2d}: {rtts[index]*1000:7.2f} ms")
    print()


def run_out_dt_session():
    print("=== Session 2: no Mobile IP (endpoint = care-of address) ===")
    scenario = build()
    session = TelnetSession(scenario.mh.stack, scenario.ch_ip,
                            think_time=1.0, keystrokes=22,
                            bound_ip=scenario.mh.care_of)
    schedule_moves(scenario, narrate=False)
    scenario.sim.run_for(200)
    print(f"  survived: {session.survived}   echoes: "
          f"{session.echoes_received}/{session.keystrokes_sent}")
    if not session.survived:
        print(f"  connection broke: {session.failure_reason} "
              "(the old care-of address died with the first move)")
    print()


def main() -> None:
    run_mobile_ip_session()
    run_out_dt_session()
    print("Conclusion (paper §2/§4): keep long-lived connections on the home")
    print("address; use the temporary address only where breakage is cheap.")


if __name__ == "__main__":
    main()
