#!/usr/bin/env python3
"""Mixed workload: the §7.1.1 heuristics choosing per conversation.

A visiting mobile host runs a browser-ish workload: DNS lookups, HTTP
fetches, and an interactive telnet session, all at once.  The host's
mobility engine routes each conversation differently:

* DNS (UDP 53)  -> Out-DT, temporary address, no Mobile IP overhead;
* HTTP (TCP 80) -> Out-DT, same reasoning ("the user has the option of
  clicking the Web browser's 'reload' button");
* telnet (TCP 23) -> home address through the Mobile IP machinery, so
  the session survives movement.

The script prints each conversation's wire-visible source address and
the per-conversation byte overhead, then moves the host mid-workload to
show which conversations care.

Run:  python examples/web_browsing_heuristics.py
"""

from repro.analysis import MH_HOME_ADDRESS, build_scenario
from repro.apps import (
    DNSLookupWorkload,
    HTTPClient,
    HTTPServer,
    TelnetServer,
    TelnetSession,
)
from repro.mobileip import Awareness


def main() -> None:
    scenario = build_scenario(seed=3, ch_awareness=Awareness.CONVENTIONAL,
                              with_dns=True)
    scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=3)
    HTTPServer(scenario.ch.stack, page_size=16_000)
    TelnetServer(scenario.ch.stack)

    print(f"Mobile host visiting; care-of address {scenario.mh.care_of}, "
          f"home address {MH_HOME_ADDRESS}")
    print()

    dns = DNSLookupWorkload(scenario.mh.stack, scenario.dns_ip)
    dns.lookup_many(["www.example.com", "ftp.example.com", "mh.home.example"],
                    interval=0.2)
    http = HTTPClient(scenario.mh.stack, max_reloads=2)
    fetches = [http.fetch(scenario.ch_ip) for _ in range(3)]
    telnet = TelnetSession(scenario.mh.stack, scenario.ch_ip,
                           think_time=1.0, keystrokes=12)

    scenario.sim.events.schedule(
        5.0, lambda: (print(f"  t=5.0s: moving to visited2 mid-workload..."),
                      scenario.mh.move_to(scenario.net, "visited2")))
    scenario.sim.run_for(120)

    print("DNS lookups (expected source: care-of / Out-DT):")
    for record in dns.records:
        status = "ok" if record.resolved or record.answer else "lost-in-move"
        latency = f"{record.latency*1000:.2f} ms" if record.latency else "-"
        print(f"  {record.name:<18} {status:<13} {latency}")
    print()

    print("HTTP fetches (expected source: care-of / Out-DT; reload on break):")
    for index, fetch in enumerate(fetches):
        outcome = "completed" if fetch.completed else f"failed ({fetch.failure_reason})"
        print(f"  page {index}: {outcome}, reloads={fetch.reloads}, "
              f"bytes={fetch.bytes_received}")
    print()

    print("Telnet session (expected endpoint: home address / Mobile IP):")
    print(f"  endpoint identifier: {telnet.connection.local_ip}")
    print(f"  survived the move:   {telnet.survived}")
    print(f"  echoes received:     {telnet.echoes_received}/{telnet.keystrokes_sent}")
    print()

    print("Engine decisions made:", scenario.mh.engine.decisions_made)
    print("Packets the mobile host tunneled (telnet only):",
          scenario.mh.tunnel.encapsulated_count)


if __name__ == "__main__":
    main()
