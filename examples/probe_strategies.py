#!/usr/bin/env python3
"""§7.1.2 live: watching the delivery-method ladder adapt.

Runs the same TCP conversation under each probe strategy against a
filtering and a permissive visited network, narrating every mode change
the mobility engine makes (demotions driven by the retransmission
detector, tentative upgrades driven by success runs).

Run:  python examples/probe_strategies.py
"""

from repro.analysis import build_scenario
from repro.core import ProbeStrategy
from repro.core.policy import Disposition, MobilityPolicyTable
from repro.mobileip import Awareness

MESSAGES = 10


def run(strategy, filtering, policy=None):
    scenario = build_scenario(seed=5, strategy=strategy, policy=policy,
                              visited_filtering=filtering,
                              ch_awareness=Awareness.DECAP_CAPABLE)
    sim = scenario.sim
    changes = []
    scenario.mh.engine.on_mode_change = (
        lambda ip, mode, why: changes.append((sim.now, mode.value, why))
    )
    scenario.ch.stack.listen(
        6000,
        lambda conn: setattr(conn, "on_data",
                             lambda d, s: conn.send(20, ("ack", d))))
    conn = scenario.mh.stack.connect(scenario.ch_ip, 6000)
    echoes = []
    conn.on_data = lambda d, s: echoes.append(d)

    def tick(count=[0]):
        if count[0] >= MESSAGES or not conn.is_open:
            return
        count[0] += 1
        conn.send(50, count[0])
        sim.events.schedule(2.0, tick)

    conn.on_established = tick
    sim.run_for(200)

    record = scenario.mh.engine.cache.records.get(scenario.ch_ip)
    start_mode = {"conservative-first": "Out-IE",
                  "aggressive-first": "Out-DH"}.get(strategy.value)
    if start_mode is None:
        # Note: an empty policy table is falsy (it has __len__), so an
        # `or` default would silently discard it — test for None.
        table = policy if policy is not None else MobilityPolicyTable()
        disposition = table.lookup(scenario.ch_ip)
        start_mode = "Out-DH" if disposition is Disposition.OPTIMISTIC else "Out-IE"
    print(f"  started at {start_mode}")
    for when, mode, why in changes:
        print(f"  t={when:6.2f}s  -> {mode:<7} ({why})")
    print(f"  settled at {record.current.value}; "
          f"{len(echoes)}/{MESSAGES} messages echoed, "
          f"{conn.retransmissions} retransmissions, "
          f"{scenario.mh.tunnel.encapsulated_count} packets tunneled")
    print()


def main() -> None:
    for filtering in (True, False):
        environment = "FILTERING" if filtering else "PERMISSIVE"
        print(f"===== Visited network is {environment} =====\n")

        print("conservative-first [Fox96]:")
        run(ProbeStrategy.CONSERVATIVE_FIRST, filtering)

        print("aggressive-first:")
        run(ProbeStrategy.AGGRESSIVE_FIRST, filtering)

        print("rule-seeded with the correct rule for this environment:")
        policy = MobilityPolicyTable(
            default=Disposition.PESSIMISTIC if filtering
            else Disposition.OPTIMISTIC
        )
        run(ProbeStrategy.RULE_SEEDED, filtering, policy)

    print("The paper's resolution (§7.1.2): let the user seed the policy")
    print("table with address-and-mask rules, and let the retransmission")
    print("signal handle whatever the rules got wrong.")


if __name__ == "__main__":
    main()
