#!/usr/bin/env python3
"""§3.1's last paragraph, staged: the firewall as the home agent.

    "In situations where a mobile user is communicating with home
    services protected by a firewall, we anticipate that the firewall
    itself would be set up to act as the mobile user's home agent,
    sitting as it does on the boundary between the untrusted outside
    world and the trusted world inside."

The home domain runs a default-deny firewall whose only inbound
allowance is traffic terminating at the home-agent function.  The
roaming employee reaches the protected file server through the
bidirectional tunnel; an outside attacker probing the same server gets
nothing.

Run:  python examples/firewall_home_agent.py
"""

from repro.core import ProbeStrategy
from repro.mobileip import HomeAgent, MobileHost
from repro.netsim import Internet, IPAddress, Network, Node, Simulator
from repro.netsim.filters import firewall_allow_only
from repro.transport import TransportStack

MH_HOME = IPAddress("10.1.0.10")
HA_IP = IPAddress("10.1.0.2")


def main() -> None:
    sim = Simulator(seed=11)
    net = Internet(sim, backbone_size=3)
    home_prefix = Network("10.1.0.0/16")
    rules = firewall_allow_only(
        home_prefix,
        allowed_protos=[],                  # default deny everything inbound
        allowed_hosts=[HA_IP, MH_HOME],     # except the home-agent function
    )
    home = net.add_domain("home", "10.1.0.0/16", attach_at=0,
                          source_filtering=False, forbid_transit=True,
                          extra_rules=rules)
    net.add_domain("hotel", "10.2.0.0/16", attach_at=2)

    ha = HomeAgent("ha", sim, home_network=home.prefix)
    net.add_host("home", ha, address=HA_IP)
    mh = MobileHost("laptop", sim, home_address=MH_HOME,
                    home_network=home.prefix, home_agent_address=HA_IP,
                    strategy=ProbeStrategy.CONSERVATIVE_FIRST)
    mh.attach_home(net, "home")
    fileserver = Node("fileserver", sim)
    fileserver_ip = net.add_host("home", fileserver)
    server_stack = TransportStack(fileserver)

    got = []
    sock = server_stack.udp_socket(6000)

    def serve(data, size, src_ip, src_port):
        got.append((data, str(src_ip)))
        sock.sendto(("file-contents", data), 800, src_ip, src_port)

    sock.on_receive(serve)

    print("Employee leaves for a hotel network...")
    mh.move_to(net, "hotel")
    sim.run_for(5)
    print(f"  registered through the firewall: {mh.registered}")
    print()

    print("Employee requests a file from the protected server:")
    replies = []
    laptop_sock = mh.stack.udp_socket()
    laptop_sock.on_receive(lambda d, s, ip, p: replies.append(d))
    laptop_sock.sendto("quarterly-report.doc", 80, fileserver_ip, 6000,
                       src_override=MH_HOME)
    sim.run_for(10)
    print(f"  server saw request from: {got[0][1] if got else 'nobody'} "
          "(the home address — the tunnel is invisible to it)")
    print(f"  laptop received: {replies[0] if replies else 'nothing'}")
    print()

    print("An attacker on the same hotel network probes the server directly:")
    attacker = Node("attacker", sim)
    net.add_host("hotel", attacker)
    attacker_stack = TransportStack(attacker)
    probe_replies = []
    probe = attacker_stack.udp_socket()
    probe.on_receive(lambda *a: probe_replies.append(a))
    probe.sendto("gimme", 40, fileserver_ip, 6000)
    sim.run_for(10)
    drops = sim.trace.drops_by_reason.get("firewall-policy", 0)
    print(f"  attacker received: "
          f"{probe_replies[0] if probe_replies else 'nothing'}")
    print(f"  firewall drops so far: {drops}")
    print()
    print("The firewall admits exactly the mobility tunnel it terminates —")
    print("the roaming employee works; the outside world stays outside.")


if __name__ == "__main__":
    main()
