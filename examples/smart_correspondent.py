#!/usr/bin/env python3
"""Figures 4 & 5: the triangle-routing penalty and the two cures.

A correspondent sits one backbone hop away from the mobile host's
visited network, while the home agent is at the far end.  The script
measures a datagram stream three ways:

1. conventional correspondent — every packet triangles via the home
   agent (Figure 4's pathological case);
2. mobile-aware correspondent learning from the home agent's ICMP
   care-of advisory (Figure 5) — the first packet triangles, the rest
   go directly (In-DE);
3. mobile-aware correspondent that consults the DNS temporary-address
   record (§3.2's second mechanism) — no packet triangles at all.

Run:  python examples/smart_correspondent.py
"""

from repro.analysis import MH_HOME_ADDRESS, build_scenario
from repro.mobileip import Awareness, Resolver

STREAM = 5


def stream_latencies(scenario, before=None):
    sim = scenario.sim
    mh_sock = scenario.mh.stack.udp_socket(7000)
    mh_sock.on_receive(lambda *a: None)
    ch_sock = scenario.ch.stack.udp_socket()
    sent, latencies = {}, []
    mh_sock.on_receive(lambda d, s, ip, p: latencies.append(sim.now - sent[d]))
    if before is not None:
        before()
        sim.run_for(5)

    def send(index):
        sent[index] = sim.now
        ch_sock.sendto(index, 200, MH_HOME_ADDRESS, 7000)

    for index in range(STREAM):
        sim.events.schedule(index * 1.0, send, index)
    sim.run_for(30)
    return latencies


def build(awareness, notify=False, with_dns=False, seed=4):
    return build_scenario(
        seed=seed, backbone_size=7, ch_attach=5, ch_awareness=awareness,
        notify_correspondents=notify, with_dns=with_dns,
        visited_filtering=False,
    )


def show(label, latencies, scenario):
    print(f"{label}")
    for index, latency in enumerate(latencies):
        print(f"  packet {index}: {latency*1000:7.2f} ms")
    print(f"  (home agent tunneled {scenario.ha.packets_tunneled}, "
          f"correspondent sent {scenario.ch.direct_tunneled} In-DE)")
    print()


def main() -> None:
    print(f"Correspondent is 1 hop from the MH; home agent is 6 hops away.\n")

    conventional = build(Awareness.CONVENTIONAL)
    show("1. Conventional correspondent (every packet In-IE):",
         stream_latencies(conventional), conventional)

    advisory = build(Awareness.MOBILE_AWARE, notify=True)
    show("2. Mobile-aware + ICMP care-of advisory (Figure 5):",
         stream_latencies(advisory), advisory)

    dns_scenario = build(Awareness.MOBILE_AWARE, with_dns=True)
    dns_scenario.dns.register_temporary("mh.home.example",
                                        dns_scenario.mh.care_of, 300.0)
    resolver = Resolver(dns_scenario.ch.stack, dns_scenario.dns_ip)

    def lookup_first():
        resolver.lookup(
            "mh.home.example",
            lambda answer: dns_scenario.ch.learn_binding(
                MH_HOME_ADDRESS, answer.temporary, answer.tmp_lifetime)
            if answer.temporary else None,
        )

    show("3. Mobile-aware + DNS temporary-address record (§3.2):",
         stream_latencies(dns_scenario, before=lookup_first), dns_scenario)

    print("Shape to notice: (1) is uniformly slow; (2) is slow once then fast;")
    print("(3) is uniformly fast — the lookup happens before any data flows.")


if __name__ == "__main__":
    main()
