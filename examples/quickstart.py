#!/usr/bin/env python3
"""Quickstart: basic Mobile IP on the simulator in ~60 lines.

Builds the paper's standard stage (home domain + home agent, visited
domain, correspondent domain), moves the mobile host away from home,
and shows the Figure 1 asymmetry: packets *to* the mobile host triangle
through the home agent, while its replies travel directly.

Run:  python examples/quickstart.py
"""

from repro.analysis import MH_HOME_ADDRESS, build_scenario
from repro.core import GRID, ProbeStrategy
from repro.mobileip import Awareness


def main() -> None:
    print("Building the stage: home / visited / correspondent domains...")
    scenario = build_scenario(
        seed=1,
        ch_awareness=Awareness.CONVENTIONAL,
        visited_filtering=False,
        strategy=ProbeStrategy.AGGRESSIVE_FIRST,
    )
    mh, ch, sim = scenario.mh, scenario.ch, scenario.sim
    print(f"  mobile host home address : {MH_HOME_ADDRESS}")
    print(f"  care-of address (visited): {mh.care_of}")
    print(f"  registered with home agent: {mh.registered}")
    print()

    print("Correspondent sends a datagram to the *home* address...")
    mh_sock = mh.stack.udp_socket(7000)

    def echo(data, size, src_ip, src_port):
        print(f"  mobile host received {data!r} (addressed to its home address)")
        mh_sock.sendto("pong", size, src_ip, src_port,
                       src_override=MH_HOME_ADDRESS)

    mh_sock.on_receive(echo)
    ch_sock = ch.stack.udp_socket()
    ch_sock.on_receive(
        lambda d, s, ip, p: print(f"  correspondent received {d!r} from {ip}")
    )
    ch_sock.sendto("ping", 100, MH_HOME_ADDRESS, 7000)
    sim.run_for(10)

    print()
    print("Who carried what (Figure 1's asymmetric routing):")
    print(f"  packets tunneled by the home agent : {scenario.ha.packets_tunneled}")
    print(f"  packets the mobile host tunneled   : {mh.tunnel.encapsulated_count}")
    print("  -> incoming went CH -> home agent -> (encapsulated) -> MH,")
    print("     outgoing went MH -> CH directly (Out-DH).")
    print()

    print("The paper's Figure 10, as implemented in repro.core.grid:")
    print(GRID.render())


if __name__ == "__main__":
    main()
