#!/usr/bin/env python3
"""A guided tour of Figure 10: all sixteen cells, live.

For each (incoming, outgoing) combination the script stages a real
request/response conversation on the simulator — the correspondent
sends per the row's mechanism, the mobile host replies per the
column's address table — and reports whether the conversation works,
next to the paper's classification and the reason §6 gives.

Run:  python examples/grid_tour.py
"""

from repro.analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from repro.core import GRID, CellClass, InMode, OutMode
from repro.core.modes import AddressPlan, build_outgoing
from repro.mobileip import Awareness
from repro.netsim.packet import IPProto
from repro.transport import UDPDatagram

MH_PORT = 7000


def run_cell(in_mode: InMode, out_mode: OutMode):
    scenario = build_scenario(
        seed=6,
        ch_awareness=Awareness.MOBILE_AWARE,
        ch_in_visited_lan=(in_mode is InMode.IN_DH),
        visited_filtering=False,
        ch_filtering=False,
    )
    plan = AddressPlan(MH_HOME_ADDRESS, scenario.mh.care_of,
                       scenario.ha_ip, scenario.ch_ip)
    if in_mode in (InMode.IN_DE, InMode.IN_DH):
        scenario.ch.learn_binding(MH_HOME_ADDRESS, scenario.mh.care_of, 300.0)
    sent_to = plan.care_of if in_mode is InMode.IN_DT else plan.home

    def on_request(data, size, src_ip, src_port):
        reply = UDPDatagram(MH_PORT, src_port, "rep", 30)
        packet = build_outgoing(out_mode, plan, payload=reply,
                                payload_size=reply.size, proto=IPProto.UDP)
        scenario.mh.ip_send(packet, bypass_overrides=True)

    mh_sock = scenario.mh.stack.udp_socket(MH_PORT)
    mh_sock.on_receive(on_request)
    replies = []
    ch_sock = scenario.ch.stack.udp_socket()
    ch_sock.on_receive(lambda d, s, ip, p: replies.append(ip))
    ch_sock.sendto("req", 40, sent_to, MH_PORT)
    scenario.sim.run_for(20)
    if not replies:
        return "no reply arrived"
    if replies[0] != sent_to:
        return (f"reply came from {replies[0]}, but the correspondent "
                f"sent to {sent_to} — no way to associate them (§6.5)")
    return "works"


def main() -> None:
    marks = {
        CellClass.USEFUL: "useful",
        CellClass.VALID_UNLIKELY: "valid but unlikely",
        CellClass.INAPPLICABLE: "inapplicable (dark)",
    }
    agreements = 0
    for in_mode in InMode:
        print(f"--- Row {in_mode.value} ({in_mode.ch_requirement}) ---")
        for out_mode in OutMode:
            cell = GRID.cell(in_mode, out_mode)
            outcome = run_cell(in_mode, out_mode)
            works = outcome == "works"
            agrees = works == cell.works_with_tcp
            agreements += agrees
            status = "OK " if works else "DEAD"
            print(f"  {out_mode.value:<7} [{status}]  paper: "
                  f"{marks[cell.cell_class]:<20} "
                  f"{'<agrees>' if agrees else '<MISMATCH!>'}")
            if not works:
                print(f"           why: {outcome}")
            elif cell.cell_class is CellClass.VALID_UNLIKELY:
                print(f"           note: {cell.note}")
        print()
    print(f"{agreements}/16 cells agree with Figure 10.")


if __name__ == "__main__":
    main()
