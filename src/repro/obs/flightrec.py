"""Violation flight recorder: the last N trace events plus engine state.

When a sweep cell, chaos run, or fuzz case ends in an invariant
violation, the full trace is usually gone (large runs disable entry
recording) or buried (a 260-second chaos run produces tens of
thousands of entries).  The :class:`FlightRecorder` keeps a bounded
ring buffer of the most recent trace events — attached with the same
instance-rebinding ``TraceLog.note`` wrap the span recorder and the
invariant monitor use, so an unarmed run pays nothing at all — and,
on request, dumps the ring plus a snapshot of live engine state
(event-queue depth, clock, per-node reassembly backlog, mobility
bindings, segment health) to a ``flightrec.json`` for postmortem.

Digest neutrality is by construction: the wrapper calls the original
``note`` with unmodified arguments and only *reads* packet state, so
the trace stream, RNG, and event order are untouched.  The one
behavioral interaction is with the fast-forwarder: replayed cascades
append entries directly to ``TraceLog.entries`` without calling
``note()``, so the ring would silently miss them — the forwarder
therefore stands aside (plain execution) whenever a recorder is
armed, exactly as it does for observability and invariants.  The
replayed-vs-real trace is byte-identical either way, so arming the
recorder still never changes a digest.

Entry snapshots are eager (packets mutate in place — TTL decrements,
encapsulation), which makes the armed cost comparable to entry-level
tracing; the ``ledger_overhead`` bench workload records it honestly.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.simulator import Simulator
    from ..netsim.trace import TraceLog

__all__ = ["FlightRecorder", "DEFAULT_FLIGHT_LIMIT", "FLIGHTREC_SCHEMA"]

FLIGHTREC_SCHEMA = "repro-mobility-flightrec/v1"
DEFAULT_FLIGHT_LIMIT = 256


class FlightRecorder:
    """Bounded ring of recent trace events, dumpable with engine state."""

    def __init__(self, sim: "Simulator", limit: int = DEFAULT_FLIGHT_LIMIT):
        if limit < 1:
            raise ValueError(f"flight-recorder limit must be >= 1, got {limit}")
        self.sim = sim
        self.limit = limit
        self.ring: deque = deque(maxlen=limit)
        self.recorded = 0
        self.dumps = 0
        self._trace: Optional["TraceLog"] = None
        self._wrapped_note = None
        self._note_was_instance = False

    # ------------------------------------------------------------------
    # Attachment (same instance-rebinding wrap as obs.spans / invariants)
    # ------------------------------------------------------------------
    def attach(self, trace: "TraceLog") -> None:
        if self._trace is not None:
            raise RuntimeError("flight recorder is already attached")
        self._trace = trace
        self._note_was_instance = "note" in trace.__dict__
        original = trace.note
        self._wrapped_note = original
        ring = self.ring

        def note_with_flightrec(time, node, action, packet, detail=""):
            original(time, node, action, packet, detail)
            # Eager snapshot: packets mutate in place, so every field
            # is frozen at note() time (same rule as TraceLog itself).
            ring.append((
                time, node, action, packet.trace_id, str(packet.src),
                str(packet.dst), packet.wire_size, detail, repr(packet),
            ))
            self.recorded += 1

        trace.note = note_with_flightrec  # type: ignore[method-assign]

    def detach(self) -> None:
        if self._trace is None:
            return
        if self._note_was_instance:
            self._trace.note = self._wrapped_note  # type: ignore[method-assign]
        else:
            del self._trace.note  # fall back to the class method
        self._trace = None
        self._wrapped_note = None

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def entries(self) -> List[Dict[str, Any]]:
        """The ring's contents, oldest first, as JSON-clean dicts."""
        return [
            {
                "time": time, "node": node, "action": action,
                "trace_id": trace_id, "src": src, "dst": dst,
                "wire_size": wire_size, "detail": detail, "packet": packet,
            }
            for (time, node, action, trace_id, src, dst,
                 wire_size, detail, packet) in self.ring
        ]

    def engine_state(self) -> Dict[str, Any]:
        """Live engine internals at dump time (queue, nodes, segments)."""
        sim = self.sim
        events = sim.events
        heap = events.heap_size
        cancelled = events.cancelled_backlog
        nodes: Dict[str, Any] = {}
        for name, node in sim.nodes.items():
            info: Dict[str, Any] = {
                "reassembly_pending": node.reassembler.pending,
                "packets_sent": node.packets_sent,
                "packets_received": node.packets_received,
                "up": getattr(node, "up", True),
            }
            bindings = getattr(node, "bindings", None)
            snapshot = getattr(bindings, "snapshot", None)
            if snapshot is not None:
                info["bindings"] = snapshot(sim.now)
            nodes[name] = info
        segments = {
            name: {
                "up": segment.up,
                "loss_rate": segment.loss_rate,
                "bytes_carried": segment.bytes_carried,
            }
            for name, segment in sim.segments.items()
        }
        return {
            "clock": sim.now,
            "events": {
                "heap": heap,
                "cancelled": cancelled,
                "pending_live": heap - cancelled,
                "processed": events.processed,
            },
            "nodes": nodes,
            "segments": segments,
        }

    # ------------------------------------------------------------------
    # Dump
    # ------------------------------------------------------------------
    def dump(
        self,
        path: str,
        reason: str,
        violations: Optional[List[Dict[str, Any]]] = None,
    ) -> str:
        """Write the postmortem JSON atomically; returns ``path``."""
        payload = {
            "schema": FLIGHTREC_SCHEMA,
            "reason": reason,
            "limit": self.limit,
            "recorded": self.recorded,
            "entries": self.entries(),
            "engine": self.engine_state(),
            "violations": list(violations or []),
        }
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # Write-then-rename: a killed worker never leaves a torn dump.
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        self.dumps += 1
        return path
