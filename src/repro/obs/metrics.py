"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The paper's claims are observational — packet fates, byte costs, path
shapes — so every layer of the simulator carries counters.  Before this
module they were hand-rolled integer attributes scraped by name from
``analysis/collector.py``; now components *register* them here and the
analysis layer queries the registry.

The registry is **pull-first**: a component registers a metric with a
``read`` callback that returns the current value of the plain attribute
it already maintains (``node.packets_sent += 1`` stays a bare integer
increment).  The hot path therefore pays nothing — no method call, no
flag check — and the cost of observability is concentrated entirely in
:meth:`MetricsRegistry.collect`, which only runs when somebody asks for
a snapshot.  Push-style metrics (``inc``/``set``/``observe``) exist for
code that has no natural attribute to read, e.g. span summaries.

This mirrors how production metric systems handle instrumenting code
that cannot afford per-event overhead (Prometheus custom collectors,
ns-3's attribute probes).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
]

# Fixed bucket boundaries (seconds / bytes).  Fixed — not adaptive — so
# histograms from different runs and different modes are directly
# comparable and mergeable, the property the per-mode span summaries
# rely on.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0,
)
SIZE_BUCKETS: Tuple[float, ...] = (
    0, 8, 12, 16, 20, 24, 28, 32, 40, 64, 128, 256, 512, 1024, 1500,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically non-decreasing count.

    Either *push* (call :meth:`inc`) or *pull* (constructed with a
    ``read`` callback returning the backing attribute's value) — never
    both.
    """

    kind = "counter"
    __slots__ = ("name", "labels", "_value", "_read")

    def __init__(
        self,
        name: str,
        labels: Dict[str, str],
        read: Optional[Callable[[], float]] = None,
    ):
        self.name = name
        self.labels = labels
        self._value = 0
        self._read = read

    def inc(self, amount: int = 1) -> None:
        if self._read is not None:
            raise RuntimeError(f"{self.name} is a pull counter; mutate its source")
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._read() if self._read is not None else self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A value that can go up or down (queue depth, binding count)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value", "_read")

    def __init__(
        self,
        name: str,
        labels: Dict[str, str],
        read: Optional[Callable[[], float]] = None,
    ):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._read = read

    def set(self, value: float) -> None:
        if self._read is not None:
            raise RuntimeError(f"{self.name} is a pull gauge; mutate its source")
        self._value = value

    @property
    def value(self) -> float:
        return self._read() if self._read is not None else self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """A fixed-boundary histogram (push only).

    ``bounds`` are upper bucket edges; one implicit overflow bucket
    catches everything above the last edge.  Quantiles are estimated by
    linear interpolation inside the bucket that crosses the target
    rank, the standard fixed-bucket estimator.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "bucket_counts",
                 "count", "total", "min", "max")

    def __init__(self, name: str, labels: Dict[str, str], bounds: Sequence[float]):
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def value(self) -> float:
        """Observation count, for uniformity with counters/gauges."""
        return self.count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (q in [0, 1]) from the bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        lower = self.min if self.min is not None else 0.0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            if bucket and cumulative + bucket >= target:
                fraction = (target - cumulative) / bucket
                lower = min(lower, bound)
                return lower + (bound - lower) * fraction
            cumulative += bucket
            lower = bound
        return self.max if self.max is not None else lower

    def snapshot(self) -> Dict[str, Any]:
        buckets = [
            {"le": bound, "count": count}
            for bound, count in zip(self.bounds, self.bucket_counts)
        ]
        buckets.append({"le": "+Inf", "count": self.bucket_counts[-1]})
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "buckets": buckets,
        }


class MetricsRegistry:
    """All metrics of one simulation run, keyed by (name, labels).

    Registration is idempotent: registering an existing (name, labels)
    pair returns the existing metric — except that a new ``read``
    callback re-points a pull metric at its newest source, so a
    re-created component (a re-built segment, a fresh tunnel endpoint)
    transparently takes over its metric identity.

    *Families* cover dynamically-labelled data that already lives in a
    dict (drop reasons, per-link byte counters): a family is a callback
    returning ``{label_value: number}``, snapshotted on demand.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Dict[LabelKey, Any]] = {}
        self._families: Dict[str, Callable[[], Dict[str, float]]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def counter(
        self,
        name: str,
        read: Optional[Callable[[], float]] = None,
        **labels: str,
    ) -> Counter:
        return self._register(Counter, name, labels, read)

    def gauge(
        self,
        name: str,
        read: Optional[Callable[[], float]] = None,
        **labels: str,
    ) -> Gauge:
        return self._register(Gauge, name, labels, read)

    def histogram(
        self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS, **labels: str
    ) -> Histogram:
        key = _label_key(labels)
        by_label = self._metrics.setdefault(name, {})
        existing = by_label.get(key)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TypeError(
                    f"{name}{dict(labels)} already registered as {existing.kind}"
                )
            return existing
        metric = Histogram(name, dict(labels), bounds)
        by_label[key] = metric
        return metric

    def _register(self, cls: type, name: str, labels: Dict[str, str], read) -> Any:
        key = _label_key(labels)
        by_label = self._metrics.setdefault(name, {})
        existing = by_label.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"{name}{dict(labels)} already registered as {existing.kind}"
                )
            if read is not None:
                existing._read = read
            return existing
        metric = cls(name, dict(labels), read)
        by_label[key] = metric
        return metric

    def family(self, name: str, read: Callable[[], Dict[str, float]]) -> None:
        """Register a dynamically-labelled metric family."""
        self._families[name] = read

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, name: str, **labels: str) -> Optional[Any]:
        return self._metrics.get(name, {}).get(_label_key(labels))

    def value(self, name: str, **labels: str) -> float:
        metric = self.get(name, **labels)
        if metric is None:
            raise KeyError(f"no metric {name!r} with labels {dict(labels)}")
        return metric.value

    def series(self, name: str) -> Iterator[Tuple[Dict[str, str], float]]:
        """Iterate (labels, value) for every label set of ``name``."""
        for metric in self._metrics.get(name, {}).values():
            yield dict(metric.labels), metric.value

    def total(self, name: str) -> float:
        """Sum of ``name`` across all label sets."""
        return sum(value for _, value in self.series(name))

    def read_family(self, name: str) -> Dict[str, float]:
        read = self._families.get(name)
        return dict(read()) if read is not None else {}

    def names(self) -> List[str]:
        return sorted(set(self._metrics) | set(self._families))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def collect(self) -> Dict[str, Any]:
        """Snapshot every metric into a JSON-serializable structure."""
        out: Dict[str, Any] = {}
        for name in sorted(self._metrics):
            out[name] = [
                {"labels": metric.labels, "kind": metric.kind, **metric.snapshot()}
                for metric in self._metrics[name].values()
            ]
        for name in sorted(self._families):
            out[name] = [{
                "labels": {}, "kind": "family",
                "value": self.read_family(name),
            }]
        return out
