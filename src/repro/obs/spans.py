"""Packet-lifecycle spans.

Every logical datagram in the simulator keeps one ``trace_id`` across
encapsulation, tunneling, fragmentation, and reassembly (see
:mod:`repro.netsim.packet`).  The :class:`SpanRecorder` turns that
stream of per-packet trace events into a **span tree** per datagram:

* a root span opens at the first ``send`` and closes at final delivery
  (or drop);
* each ``encapsulate`` opens a child *tunnel* span under the current
  innermost open span, closed by the matching ``decapsulate``;
* each ``fragment`` opens a child *fragmentation* span, closed when the
  reassembled datagram is delivered.

Parent/child links therefore mirror the encapsulation stack, which is
exactly the structure the paper's byte-overhead arguments (§3.3) are
about: the cost of a mode is the extra spans its packets travel inside.

The recorder attaches by wrapping :meth:`TraceLog.note` — the same
instance-rebinding trick the trace log itself uses for its disabled
level — so a simulator with spans off pays nothing, not even a flag
check.

Spans export as Chrome ``trace_event`` JSON (load the file at
``chrome://tracing`` or https://ui.perfetto.dev) and summarize into
per-mode latency/overhead histograms.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Dict, List, Optional

from ..netsim.packet import IPProto, Packet
from ..netsim.trace import TraceLog
from .metrics import LATENCY_BUCKETS, SIZE_BUCKETS, Histogram

__all__ = ["Span", "SpanRecorder"]

_TUNNEL_PROTOS = frozenset((IPProto.IPIP, IPProto.GRE, IPProto.MINENC))


class Span:
    """One interval in a datagram's life, with a parent link."""

    __slots__ = ("span_id", "parent_id", "trace_id", "name", "cat",
                 "node", "start", "end", "args")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        trace_id: int,
        name: str,
        cat: str,
        node: str,
        start: float,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.name = name
        self.cat = cat
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.args: Dict[str, Any] = {}

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span(#{self.span_id} {self.name} trace={self.trace_id} "
                f"[{self.start}..{self.end}])")


class SpanRecorder:
    """Builds span trees from the trace-event stream of one run."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self.spans: List[Span] = []
        self._stacks: Dict[int, List[Span]] = {}
        self._finished: set = set()
        self._trace: Optional[TraceLog] = None
        self._wrapped_note = None
        self._note_was_instance = False

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, trace: TraceLog) -> None:
        """Wrap ``trace.note`` so every event also feeds the recorder.

        Composes with every :class:`TraceLog` level, including the
        fully-disabled one (whose no-op ``note`` is simply called and
        does nothing before the recorder sees the event).
        """
        if self._trace is not None:
            raise RuntimeError("span recorder is already attached")
        self._trace = trace
        # The disabled trace level stores its no-op note in the instance
        # dict; remember which case we wrapped so detach can restore it.
        self._note_was_instance = "note" in trace.__dict__
        original = trace.note
        self._wrapped_note = original
        on_event = self.on_event

        def note_with_spans(time, node, action, packet, detail=""):
            original(time, node, action, packet, detail)
            on_event(time, node, action, packet, detail)

        trace.note = note_with_spans  # type: ignore[method-assign]

    def detach(self) -> None:
        if self._trace is None:
            return
        if self._note_was_instance:
            self._trace.note = self._wrapped_note  # type: ignore[method-assign]
        else:
            del self._trace.note  # fall back to the class method
        self._trace = None
        self._wrapped_note = None

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def on_event(
        self, time: float, node: str, action: str, packet: Packet, detail: str = ""
    ) -> None:
        trace_id = packet.trace_id
        if trace_id in self._finished:
            return
        stack = self._stacks.get(trace_id)
        if stack is None:
            root = self._open(None, trace_id, f"datagram-{trace_id}",
                              "packet", node, time)
            root.args["src"] = str(packet.src)
            root.args["dst"] = str(packet.dst)
            root.args["base_bytes"] = packet.wire_size
            root.args["max_bytes"] = packet.wire_size
            stack = self._stacks[trace_id] = [root]
            if action == "send":
                return
        root = stack[0]
        wire_size = packet.wire_size
        if wire_size > root.args["max_bytes"]:
            root.args["max_bytes"] = wire_size

        if action == "mode-select":
            root.args["mode"] = detail
        elif action == "encapsulate":
            span = self._open(stack[-1].span_id, trace_id, "tunnel",
                              "encap", node, time)
            span.args["detail"] = detail
            stack.append(span)
        elif action == "decapsulate":
            for index in range(len(stack) - 1, 0, -1):
                if stack[index].name == "tunnel":
                    self._close(stack.pop(index), time, node)
                    break
        elif action == "fragment":
            span = self._open(stack[-1].span_id, trace_id, "fragmentation",
                              "frag", node, time)
            span.args["detail"] = detail
            stack.append(span)
            root.args["fragmented"] = True
        elif action == "forward":
            root.args["hops"] = root.args.get("hops", 0) + 1
        elif action == "send":
            root.args["resends"] = root.args.get("resends", 0) + 1
        elif action == "deliver":
            if stack[-1].name == "fragmentation":
                # Reassembly completed at the delivering node.
                self._close(stack.pop(), time, node)
            if packet.proto in _TUNNEL_PROTOS:
                return  # outer delivery; the tunnel span closes at decapsulate
            root.args["delivered"] = True
            while stack:
                self._close(stack.pop(), time, node)
            del self._stacks[trace_id]
            self._finished.add(trace_id)
        elif action == "drop":
            root.args["dropped"] = detail or "unknown"
            while stack:
                self._close(stack.pop(), time, node)
            del self._stacks[trace_id]
            self._finished.add(trace_id)

    def finish(self, now: float) -> None:
        """Close every still-open span (end of run, datagram in flight)."""
        for trace_id, stack in list(self._stacks.items()):
            stack[0].args["incomplete"] = True
            while stack:
                span = stack.pop()
                self._close(span, now, span.node)
            del self._stacks[trace_id]
            self._finished.add(trace_id)

    def _open(
        self,
        parent_id: Optional[int],
        trace_id: int,
        name: str,
        cat: str,
        node: str,
        time: float,
    ) -> Span:
        span = Span(next(self._ids), parent_id, trace_id, name, cat, node, time)
        self.spans.append(span)
        return span

    def _close(self, span: Span, time: float, node: str) -> None:
        span.end = time
        span.args.setdefault("end_node", node)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def open_count(self) -> int:
        return sum(len(stack) for stack in self._stacks.values())

    def roots(self) -> List[Span]:
        return [span for span in self.spans if span.parent_id is None]

    def tree(self, trace_id: int) -> List[Span]:
        return [span for span in self.spans if span.trace_id == trace_id]

    # ------------------------------------------------------------------
    # Chrome trace_event export
    # ------------------------------------------------------------------
    def chrome_trace(self) -> Dict[str, Any]:
        """The span set as a ``chrome://tracing``-loadable object.

        Every span becomes a complete ("ph": "X") event; timestamps are
        microseconds of simulation time; the datagram's trace id is the
        thread id so one datagram's spans share a row; parent links ride
        in ``args`` (span_id/parent_id).
        """
        events: List[Dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
            "args": {"name": "repro-mobility simulation"},
        }]
        for span in self.spans:
            end = span.end if span.end is not None else span.start
            events.append({
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (end - span.start) * 1e6,
                "pid": 1,
                "tid": span.trace_id,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "node": span.node,
                    **span.args,
                },
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome_trace(self, path) -> int:
        """Write the Chrome trace JSON; returns the event count."""
        trace = self.chrome_trace()
        with open(path, "w") as handle:
            json.dump(trace, handle)
            handle.write("\n")
        return len(trace["traceEvents"])

    # ------------------------------------------------------------------
    # Per-mode summaries
    # ------------------------------------------------------------------
    def summarize(self) -> Dict[str, Any]:
        """Per-mode latency/overhead histograms over the root spans.

        The mode is the engine's ``mode-select`` choice for outgoing
        datagrams; datagrams that never passed the mobility override
        (conventional senders, control traffic) group under
        ``"conventional"``.
        """
        per_mode: Dict[str, Dict[str, Any]] = {}
        for span in self.spans:
            if span.parent_id is not None:
                continue
            mode = span.args.get("mode", "conventional")
            bucket = per_mode.get(mode)
            if bucket is None:
                bucket = per_mode[mode] = {
                    "count": 0, "delivered": 0, "dropped": 0, "fragmented": 0,
                    "latency": Histogram("span.latency", {"mode": mode},
                                         LATENCY_BUCKETS),
                    "overhead_bytes": Histogram("span.overhead", {"mode": mode},
                                                SIZE_BUCKETS),
                }
            bucket["count"] += 1
            if span.args.get("fragmented"):
                bucket["fragmented"] += 1
            if span.args.get("dropped"):
                bucket["dropped"] += 1
            elif span.args.get("delivered"):
                bucket["delivered"] += 1
                if span.end is not None:
                    bucket["latency"].observe(span.end - span.start)
            bucket["overhead_bytes"].observe(
                span.args["max_bytes"] - span.args["base_bytes"]
            )
        return {
            mode: {
                "count": data["count"],
                "delivered": data["delivered"],
                "dropped": data["dropped"],
                "fragmented": data["fragmented"],
                "latency": data["latency"].snapshot(),
                "overhead_bytes": data["overhead_bytes"].snapshot(),
            }
            for mode, data in sorted(per_mode.items())
        }
