"""First-class observability for the simulation substrate.

Three layers, each usable on its own:

* :mod:`repro.obs.metrics` — a pull-first metrics registry (counters,
  gauges, fixed-bucket histograms).  Nodes, links, tunnels, and agents
  register their counters at construction; the analysis layer and the
  ``repro-mobility obs`` CLI query the registry instead of scraping
  attributes.  Every :class:`~repro.netsim.simulator.Simulator` owns a
  registry unconditionally — registration is one-time and reads are
  pull, so the hot path pays nothing.
* :mod:`repro.obs.spans` — packet-lifecycle span trees following each
  logical datagram through encapsulation, fragmentation, and
  reassembly, exportable as Chrome ``trace_event`` JSON.
* :mod:`repro.obs.engine` — sampled engine gauges: event-loop depth,
  heap size, cancelled-entry ratio, reassembly queue depths, per-link
  utilization.

:class:`Observability` bundles spans + sampler behind one switch.  It
is **opt-in**: nothing here runs unless
:meth:`~repro.netsim.simulator.Simulator.enable_observability` is
called, and the disabled path is identical to the pre-observability
simulator (the span recorder attaches by rebinding ``TraceLog.note``,
the same trick the trace log's own no-op level uses).  The
``obs_overhead`` workload in :mod:`repro.bench` keeps that promise
honest.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, Optional

from .engine import DEFAULT_CADENCE, EngineSampler
from .flightrec import DEFAULT_FLIGHT_LIMIT, FlightRecorder
from .ledger import RunLedger
from .metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .spans import Span, SpanRecorder

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.simulator import Simulator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "Span",
    "SpanRecorder",
    "EngineSampler",
    "FlightRecorder",
    "DEFAULT_FLIGHT_LIMIT",
    "RunLedger",
    "Observability",
]


class Observability:
    """Everything enabled: registry + spans + engine sampler."""

    def __init__(
        self,
        sim: "Simulator",
        spans: bool = True,
        engine_cadence: Optional[float] = DEFAULT_CADENCE,
    ):
        self.sim = sim
        self.registry = sim.metrics
        self.spans: Optional[SpanRecorder] = SpanRecorder() if spans else None
        self.sampler: Optional[EngineSampler] = (
            EngineSampler(sim, cadence=engine_cadence)
            if engine_cadence is not None else None
        )
        self.enabled = False

    # ------------------------------------------------------------------
    def enable(self) -> "Observability":
        if self.enabled:
            return self
        if self.spans is not None:
            self.spans.attach(self.sim.trace)
        if self.sampler is not None:
            self.sampler.start()
        self.enabled = True
        return self

    def finish(self) -> None:
        """Stop sampling and close in-flight spans (idempotent)."""
        if self.sampler is not None:
            self.sampler.stop()
        if self.spans is not None:
            self.spans.finish(self.sim.now)

    def disable(self) -> None:
        self.finish()
        if self.spans is not None:
            self.spans.detach()
        self.enabled = False

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """The combined observability report (JSON-serializable)."""
        out: Dict[str, Any] = {
            "sim_time": self.sim.now,
            "events_processed": self.sim.events.processed,
            "metrics": self.registry.collect(),
        }
        if self.spans is not None:
            out["spans"] = {
                "count": len(self.spans.spans),
                "open": self.spans.open_count,
                "per_mode": self.spans.summarize(),
            }
        if self.sampler is not None:
            out["engine"] = {
                "cadence": self.sampler.cadence,
                "summary": self.sampler.summary(),
                "samples": self.sampler.samples,
            }
        return out

    def write(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.report(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def export_chrome_trace(self, path) -> int:
        if self.spans is None:
            raise RuntimeError("span recording is not enabled")
        return self.spans.export_chrome_trace(path)
