"""Streaming run ledger: one durable JSONL record per experiment run.

A sweep is grid-shaped measurement (the paper's own 4x4 methodology);
the ledger makes every grid cell a first-class, durable record instead
of state trapped inside a worker process.  Each record is one JSON
object on one line, stamped with :data:`LEDGER_SCHEMA`, carrying the
spec content digest, seed, outcome, per-phase wall timings from the
:class:`~repro.experiment.runner.Runner` profiler, fast-forward
engagement stats, cache provenance, the final metrics snapshot, and
any invariant violations.

Durability contract: every append is a **single** ``os.write`` of one
complete line on an ``O_APPEND`` file descriptor.  POSIX appends of
one small buffer land atomically enough that a SIGKILLed sweep leaves
the ledger as a valid prefix — every completed cell present and
parseable, at worst one torn trailing line, which :func:`read_ledger`
tolerates and counts.  There is no rewrite step and no index to
corrupt; resuming a killed sweep is the result cache's job, and the
ledger shows exactly which cells it can resume from.

Record kinds:

* ``run`` — one Runner invocation (live or served from cache).
* ``sweep-start`` / ``sweep-end`` — sweep bracketing, with totals.

:func:`validate_record` checks any record against the published
per-kind schema; the ``repro-mobility report`` subcommand validates
every line and renders the summaries (slowest cells, phase breakdown,
fast-forward and cache efficacy, violation index).
"""

from __future__ import annotations

import hashlib
import json
import os
import time as _time
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "LEDGER_SCHEMA",
    "RunLedger",
    "run_record",
    "sweep_start_record",
    "sweep_end_record",
    "validate_record",
    "read_ledger",
    "summarize_ledger",
    "render_ledger_markdown",
    "spec_content_digest",
]

LEDGER_SCHEMA = "repro-mobility-ledger/v1"

_PHASES = ("build", "arm", "drive", "collect", "total")

# Published per-kind field requirements: name -> allowed types.  A
# tuple with ``type(None)`` marks a nullable field.  ``validate_record``
# is the single source of truth the CI schema-check step runs against.
_NUMBER = (int, float)
_REQUIRED: Dict[str, Dict[str, tuple]] = {
    "run": {
        "schema": (str,),
        "kind": (str,),
        "ts": _NUMBER,
        "label": (str,),
        "seed": (int,),
        "spec_sha256": (str,),
        "digest": (str,),
        "sim_time": _NUMBER,
        "trace_entries": (int,),
        "outcome": (str,),
        "invariants_armed": (bool,),
        "violation_count": (int,),
        "violations": (list,),
        "registered": (bool, type(None)),
        "provenance": (str,),
        "timings": (dict,),
        "fast_forward": (dict, type(None)),
        "deliverability": (dict,),
        "metrics": (dict,),
        "flightrec": (dict, type(None)),
    },
    "sweep-start": {
        "schema": (str,),
        "kind": (str,),
        "ts": _NUMBER,
        "total": (int,),
        "jobs": (int,),
        "cache": (bool,),
    },
    "sweep-end": {
        "schema": (str,),
        "kind": (str,),
        "ts": _NUMBER,
        "completed": (int,),
        "total": (int,),
        "elapsed": _NUMBER,
        "violation_count": (int,),
        "cache": (dict, type(None)),
    },
}

# Optional per-kind fields: validated when present, never required, so
# ledgers written before fault tolerance existed stay schema-valid.
_OPTIONAL: Dict[str, Dict[str, tuple]] = {
    "run": {
        # Quarantine detail for outcome "failed" cells.
        "failure": (dict, type(None)),
        # Dispatch attempts the supervisor spent on this cell (>= 1).
        "attempts": (int,),
    },
    "sweep-end": {
        # True when the sweep drained early on SIGINT/SIGTERM.
        "interrupted": (bool,),
        # Count of quarantined (outcome "failed") cells.
        "failed": (int,),
    },
}

_OUTCOMES = ("ok", "violations", "failed")
_PROVENANCES = ("run", "cache", "checkpoint")


def spec_content_digest(spec: Dict[str, Any]) -> str:
    """SHA-256 of a spec dict's canonical JSON.

    Pure content — unlike the result cache's key, no code-version salt
    is folded in, so the same spec hashes identically across PRs and a
    ledger can be joined against old ones.
    """
    canonical = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ----------------------------------------------------------------------
# Record builders
# ----------------------------------------------------------------------
def run_record(
    result: Any,
    provenance: str = "run",
    ts: Optional[float] = None,
    attempts: Optional[int] = None,
) -> Dict[str, Any]:
    """Build a ``run`` record from a RunResult (duck-typed: no import
    of the experiment layer, so the obs package stays dependency-free).
    """
    invariants = result.invariants
    extras = result.extras
    outcome = getattr(result, "outcome", None)
    if outcome is None:
        outcome = "ok" if result.ok else "violations"
    record = {
        "schema": LEDGER_SCHEMA,
        "kind": "run",
        "ts": _time.time() if ts is None else ts,
        "label": result.label,
        "seed": result.seed,
        "spec_sha256": spec_content_digest(result.spec),
        "digest": result.digest,
        "sim_time": result.sim_time,
        "trace_entries": result.trace_entries,
        "outcome": outcome,
        "invariants_armed": bool(invariants.get("armed")),
        "violation_count": invariants.get("violation_count", 0),
        "violations": list(invariants.get("violations", ())),
        "registered": result.registered,
        "provenance": provenance,
        "timings": dict(getattr(result, "timings", None) or {}),
        "fast_forward": extras.get("fast_forward"),
        "deliverability": {
            key: result.deliverability.get(key)
            for key in ("sent", "delivered", "dropped", "lost",
                        "losses_by_reason")
        },
        "metrics": result.metrics,
        "flightrec": extras.get("flightrec"),
    }
    failure = getattr(result, "failure", None)
    if failure is not None:
        record["failure"] = failure
    if attempts is not None:
        record["attempts"] = attempts
    return record


def sweep_start_record(
    total: int, jobs: int, cache: bool, ts: Optional[float] = None
) -> Dict[str, Any]:
    return {
        "schema": LEDGER_SCHEMA,
        "kind": "sweep-start",
        "ts": _time.time() if ts is None else ts,
        "total": total,
        "jobs": jobs,
        "cache": cache,
    }


def sweep_end_record(
    completed: int,
    total: int,
    elapsed: float,
    violation_count: int,
    cache: Optional[Dict[str, int]],
    ts: Optional[float] = None,
    interrupted: bool = False,
    failed: int = 0,
) -> Dict[str, Any]:
    record = {
        "schema": LEDGER_SCHEMA,
        "kind": "sweep-end",
        "ts": _time.time() if ts is None else ts,
        "completed": completed,
        "total": total,
        "elapsed": elapsed,
        "violation_count": violation_count,
        "cache": dict(cache) if cache is not None else None,
    }
    if interrupted:
        record["interrupted"] = True
    if failed:
        record["failed"] = failed
    return record


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def validate_record(record: Any) -> List[str]:
    """Errors for one record against the published schema ([] = valid)."""
    if not isinstance(record, dict):
        return [f"record must be an object, got {type(record).__name__}"]
    errors: List[str] = []
    schema = record.get("schema")
    if schema != LEDGER_SCHEMA:
        errors.append(f"schema must be {LEDGER_SCHEMA!r}, got {schema!r}")
    kind = record.get("kind")
    required = _REQUIRED.get(kind)
    if required is None:
        errors.append(f"unknown record kind {kind!r}")
        return errors
    for name, types in required.items():
        if name not in record:
            errors.append(f"{kind}: missing field {name!r}")
        elif not isinstance(record[name], types) or (
                isinstance(record[name], bool) and bool not in types):
            errors.append(
                f"{kind}: field {name!r} has type "
                f"{type(record[name]).__name__}")
    for name, types in _OPTIONAL.get(kind, {}).items():
        if name not in record:
            continue
        if not isinstance(record[name], types) or (
                isinstance(record[name], bool) and bool not in types):
            errors.append(
                f"{kind}: field {name!r} has type "
                f"{type(record[name]).__name__}")
    if kind == "run":
        if record.get("outcome") not in _OUTCOMES:
            errors.append(f"run: outcome must be one of {_OUTCOMES}")
        if record.get("provenance") not in _PROVENANCES:
            errors.append(f"run: provenance must be one of {_PROVENANCES}")
    return errors


# ----------------------------------------------------------------------
# The ledger itself
# ----------------------------------------------------------------------
class RunLedger:
    """Append-only JSONL sink with crash-durable single-write appends."""

    def __init__(self, path: str):
        self.path = str(path)
        self.appended = 0
        self._fd: Optional[int] = None

    def _ensure_open(self) -> int:
        if self._fd is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        return self._fd

    def append(self, record: Dict[str, Any]) -> None:
        """Validate and append one record as one complete line."""
        errors = validate_record(record)
        if errors:
            raise ValueError(f"invalid ledger record: {'; '.join(errors)}")
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        # One os.write of one complete line: the atomic-append unit the
        # crash-durability test pins.
        os.write(self._ensure_open(), (line + "\n").encode())
        self.appended += 1

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_ledger(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """All parseable records, plus the count of torn/invalid JSON lines.

    A killed writer can leave at most one torn trailing line; readers
    skip (and count) anything that does not parse rather than failing.
    """
    records: List[Dict[str, Any]] = []
    skipped = 0
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                skipped += 1
    return records, skipped


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def summarize_ledger(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a ledger into the report subcommand's summary shape."""
    runs = [r for r in records if r.get("kind") == "run"]
    phase_totals = {phase: 0.0 for phase in _PHASES}
    timed = 0
    for record in runs:
        timings = record.get("timings") or {}
        if timings:
            timed += 1
            for phase in _PHASES:
                phase_totals[phase] += timings.get(phase, 0.0)
    slowest = sorted(
        (r for r in runs if (r.get("timings") or {}).get("total")),
        key=lambda r: r["timings"]["total"], reverse=True)[:5]
    ff_totals = {
        "engaged_runs": 0, "replayed": 0, "captured": 0,
        "fallbacks": 0, "world_changes": 0,
    }
    for record in runs:
        stats = record.get("fast_forward") or {}
        for key in ff_totals:
            ff_totals[key] += stats.get(key, 0)
    cache_hits = sum(1 for r in runs if r.get("provenance") == "cache")
    checkpoint_hits = sum(
        1 for r in runs if r.get("provenance") == "checkpoint")
    failures = [
        {
            "label": r.get("label") or f"seed={r.get('seed')}",
            "seed": r.get("seed"),
            "reason": (r.get("failure") or {}).get("reason", "?"),
            "attempts": (r.get("failure") or {}).get("attempts"),
            "message": (r.get("failure") or {}).get("message", ""),
        }
        for r in runs if r.get("outcome") == "failed"
    ]
    retried = sum(1 for r in runs if (r.get("attempts") or 1) > 1)
    retries = sum(max(0, (r.get("attempts") or 1) - 1) for r in runs)
    violation_index: Dict[str, Dict[str, Any]] = {}
    for record in runs:
        for violation in record.get("violations", ()):
            name = violation.get("invariant", "?")
            entry = violation_index.setdefault(
                name, {"count": 0, "labels": []})
            entry["count"] += 1
            label = record.get("label") or f"seed={record.get('seed')}"
            if label not in entry["labels"] and len(entry["labels"]) < 10:
                entry["labels"].append(label)
    timestamps = [r["ts"] for r in records if isinstance(
        r.get("ts"), (int, float))]
    return {
        "records": len(records),
        "runs": len(runs),
        "sweeps": sum(1 for r in records if r.get("kind") == "sweep-start"),
        "outcomes": {
            "ok": sum(1 for r in runs if r.get("outcome") == "ok"),
            "violations": sum(
                1 for r in runs if r.get("outcome") == "violations"),
            "failed": len(failures),
        },
        "provenance": {
            "run": len(runs) - cache_hits - checkpoint_hits,
            "cache": cache_hits,
            "checkpoint": checkpoint_hits,
        },
        "cache_hit_rate": (cache_hits / len(runs)) if runs else 0.0,
        "failures": failures,
        "retried_runs": retried,
        "retries": retries,
        "interrupted_sweeps": sum(
            1 for r in records
            if r.get("kind") == "sweep-end" and r.get("interrupted")),
        "phase_totals": phase_totals,
        "phase_means": {
            phase: (total / timed if timed else 0.0)
            for phase, total in phase_totals.items()
        },
        "timed_runs": timed,
        "slowest": [
            {
                "label": r.get("label") or f"seed={r.get('seed')}",
                "seed": r.get("seed"),
                "timings": r.get("timings"),
                "provenance": r.get("provenance"),
            }
            for r in slowest
        ],
        "fast_forward": ff_totals,
        "violation_index": violation_index,
        "wall": {
            "first_ts": min(timestamps) if timestamps else None,
            "last_ts": max(timestamps) if timestamps else None,
            "elapsed": (max(timestamps) - min(timestamps))
            if timestamps else 0.0,
        },
    }


def render_ledger_markdown(summary: Dict[str, Any]) -> str:
    """The ``repro-mobility report`` markdown rendering of a summary."""
    outcomes = summary["outcomes"]
    provenance = summary["provenance"]
    checkpoint_note = (
        f", {provenance.get('checkpoint', 0)} checkpoint"
        if provenance.get("checkpoint") else "")
    lines = [
        "# Run-ledger report",
        "",
        f"- records: {summary['records']} "
        f"({summary['runs']} runs, {summary['sweeps']} sweep(s))",
        f"- outcomes: {outcomes['ok']} ok, "
        f"{outcomes['violations']} with violations, "
        f"{outcomes.get('failed', 0)} failed",
        f"- provenance: {provenance['run']} live, {provenance['cache']} "
        f"cache hits ({summary['cache_hit_rate']:.0%} hit rate)"
        f"{checkpoint_note}",
        f"- wall clock: {summary['wall']['elapsed']:.2f}s across records",
    ]
    if summary.get("retries"):
        lines.append(
            f"- retries: {summary['retries']} re-dispatch(es) across "
            f"{summary['retried_runs']} cell(s)")
    if summary.get("interrupted_sweeps"):
        lines.append(
            f"- interrupted: {summary['interrupted_sweeps']} sweep(s) "
            f"drained early (partial results)")
    lines += [
        "",
        "## Phase-time breakdown",
        "",
        "| phase | total (s) | mean (s) |",
        "|---|---|---|",
    ]
    for phase in _PHASES:
        lines.append(
            f"| {phase} | {summary['phase_totals'][phase]:.4f} "
            f"| {summary['phase_means'][phase]:.4f} |")
    if summary["slowest"]:
        lines += ["", "## Slowest cells", "",
                  "| label | total (s) | drive (s) | provenance |",
                  "|---|---|---|---|"]
        for cell in summary["slowest"]:
            timings = cell["timings"] or {}
            lines.append(
                f"| {cell['label']} | {timings.get('total', 0.0):.4f} "
                f"| {timings.get('drive', 0.0):.4f} "
                f"| {cell['provenance']} |")
    ff = summary["fast_forward"]
    lines += [
        "",
        "## Fast-forward / cache efficacy",
        "",
        f"- replayed {ff['replayed']} dispatch(es) across "
        f"{ff['engaged_runs']} engaged run(s); {ff['captured']} captured, "
        f"{ff['fallbacks']} fallback(s), {ff['world_changes']} world "
        f"change(s)",
        f"- cache: {provenance['cache']}/{summary['runs']} runs served "
        f"from cache",
    ]
    if summary.get("failures"):
        lines += ["", "## Failed / quarantined cells", ""]
        for failure in summary["failures"]:
            attempts = failure.get("attempts")
            attempt_note = (
                f" after {attempts} attempt(s)" if attempts else "")
            lines.append(
                f"- `{failure['label']}`: {failure['reason']}"
                f"{attempt_note} — {failure['message']}")
    if summary["violation_index"]:
        lines += ["", "## Violation index", ""]
        for name, entry in sorted(summary["violation_index"].items()):
            labels = ", ".join(entry["labels"])
            lines.append(f"- `{name}`: {entry['count']} violation(s) "
                         f"in {labels}")
    else:
        lines += ["", "No invariant violations recorded."]
    return "\n".join(lines) + "\n"
