"""Engine instrumentation: sampled gauges of the simulator's internals.

PR 1 made the event engine fast; this module makes it legible.  An
:class:`EngineSampler` rides the event queue itself, waking on a
configurable cadence of *simulation* time and recording:

* event-loop depth (live ``pending`` events) and raw heap size;
* the cancelled-entry ratio (how much of the heap is lazy-deletion
  corpses — the quantity PR 1's compaction threshold acts on);
* per-node queue depths (reassembly buffers awaiting fragments);
* per-link utilization (line-busy bits accumulated in the last
  interval over the link's bandwidth budget), transmit-queue depth,
  and queue-overflow drops.

Samples are plain dicts so they serialize straight into the ``obs``
report.  The sampler caps itself at ``max_samples`` so an unbounded
``run()`` cannot be kept alive forever by its own instrumentation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.simulator import Simulator

__all__ = ["EngineSampler"]

DEFAULT_CADENCE = 0.5
DEFAULT_MAX_SAMPLES = 4096


class EngineSampler:
    """Periodic sampler of engine, node, and link health."""

    def __init__(
        self,
        sim: "Simulator",
        cadence: float = DEFAULT_CADENCE,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ):
        if cadence <= 0:
            raise ValueError(f"cadence must be positive, got {cadence}")
        self.sim = sim
        self.cadence = cadence
        self.max_samples = max_samples
        self.samples: List[Dict[str, Any]] = []
        self._last_link_bytes: Dict[str, int] = {}
        self._last_busy_bits: Dict[str, int] = {}
        self._last_replayed = 0
        self._timer = None
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        # Prime the utilization deltas so the first sample measures the
        # first interval, not all traffic since t=0.
        for name, segment in self.sim.segments.items():
            self._last_link_bytes[name] = segment.bytes_carried
            self._last_busy_bits[name] = segment.busy_bits
        self._timer = self.sim.events.schedule(
            self.cadence, self._tick, label="obs:engine-sample"
        )

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        self._timer = None
        if not self._running:
            return
        self.samples.append(self.sample())
        if len(self.samples) >= self.max_samples:
            self._running = False
            return
        self._timer = self.sim.events.schedule(
            self.cadence, self._tick, label="obs:engine-sample"
        )

    # The tick only *reads* engine state, so the fast-forwarder treats
    # it as transparent: it neither blocks the replay horizon nor drops
    # templates when it fires (samples taken mid-replay are tagged —
    # see sample()).  Bound methods forward attribute lookups to the
    # underlying function, so the marker is visible on scheduled events.
    _tick.ff_transparent = True

    # ------------------------------------------------------------------
    def sample(self) -> Dict[str, Any]:
        """One instantaneous reading (also usable without the timer)."""
        events = self.sim.events
        heap = events.heap_size
        cancelled = events.cancelled_backlog
        # Not events.pending: the run() hot loop batches its live-count
        # bookkeeping until it returns, so polling pending from inside
        # an event action reads the value as of run() entry.  Heap size
        # and the cancelled count are maintained inline, so their
        # difference is the accurate mid-run live depth.
        live = heap - cancelled
        nodes = {}
        for name, node in self.sim.nodes.items():
            nodes[name] = {
                "reassembly_pending": node.reassembler.pending,
                "packets_sent": node.packets_sent,
                "packets_received": node.packets_received,
            }
        links = {}
        for name, segment in self.sim.segments.items():
            carried = segment.bytes_carried
            self._last_link_bytes[name] = carried
            # Utilization comes from the line-occupancy accumulator, not
            # the byte counter: with bounded-queue links the line serializes
            # exactly busy_bits over the interval, and on the legacy
            # infinite-capacity path busy_bits == bytes * 8, so this is
            # numerically identical to the old bytes-based reading.
            busy = segment.busy_bits
            delta_bits = busy - self._last_busy_bits.get(name, 0)
            self._last_busy_bits[name] = busy
            links[name] = {
                "bytes_carried": carried,
                "utilization": (delta_bits / segment.bandwidth) / self.cadence,
                "queue_depth": segment.queue_depth,
                "queue_dropped": segment.queue_dropped,
            }
        sample = {
            "time": self.sim.now,
            "pending": live,
            "heap": heap,
            "cancelled": cancelled,
            "cancelled_ratio": (cancelled / heap) if heap else 0.0,
            # Batched like the live count: as of the enclosing run()'s
            # entry when sampled from the timer, exact between runs.
            "processed": events.processed,
            "nodes": nodes,
            "links": links,
        }
        # Worlds carrying a flyweight population (see
        # repro.netsim.population) get a compact gauge block: pooled
        # hosts never appear in ``nodes`` above, so without this the
        # sampler would report a million-host world as a dozen nodes.
        population = getattr(self.sim, "population", None)
        if population is not None:
            pool = population.pool
            sample["population"] = {
                "hosts": pool.size,
                "live": pool.live,
                "promoted": pool.promoted_count,
                "refreshes": pool.refreshes,
                "wheel_depth": population.wheel.depth,
            }
        # Fast-forward replay advances the clock without executing
        # events, so depth/processed readings are misleading while a
        # template replays: tag such samples instead of pretending the
        # numbers are exact.  Samples from plain runs keep their shape.
        ff = getattr(self.sim, "fast_forward", None)
        if ff is not None:
            replayed_delta = ff.replayed - self._last_replayed
            if ff.active or replayed_delta:
                sample["fast_forwarded"] = True
                sample["replayed_since_last"] = replayed_delta
            self._last_replayed = ff.replayed
        return sample

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Aggregate the sample series into headline numbers."""
        if not self.samples:
            return {"samples": 0}
        peak_links: Dict[str, float] = {}
        peak_queues: Dict[str, int] = {}
        for sample in self.samples:
            for name, link in sample["links"].items():
                if link["utilization"] > peak_links.get(name, 0.0):
                    peak_links[name] = link["utilization"]
                depth = link.get("queue_depth", 0)
                if depth > peak_queues.get(name, 0):
                    peak_queues[name] = depth
        count = len(self.samples)
        fast_forwarded = sum(
            1 for s in self.samples if s.get("fast_forwarded"))
        out = {
            "samples": count,
            "peak_pending": max(s["pending"] for s in self.samples),
            "peak_heap": max(s["heap"] for s in self.samples),
            "mean_cancelled_ratio": (
                sum(s["cancelled_ratio"] for s in self.samples) / count
            ),
            "peak_reassembly_pending": max(
                (node["reassembly_pending"]
                 for s in self.samples for node in s["nodes"].values()),
                default=0,
            ),
            "peak_link_utilization": dict(sorted(peak_links.items())),
            "peak_queue_depth": dict(sorted(
                (k, v) for k, v in peak_queues.items() if v)),
        }
        last_population = next(
            (s["population"] for s in reversed(self.samples)
             if "population" in s), None)
        if last_population is not None:
            out["population"] = dict(last_population)
        if fast_forwarded:
            out["fast_forwarded_samples"] = fast_forwarded
            out["replayed_in_samples"] = sum(
                s.get("replayed_since_last", 0) for s in self.samples)
        return out
