"""The socket layer: binding semantics from §7.1.1 and the transport stack.

The paper's application-visible mechanism:

    "mobile-aware applications indicate their preferences to the
    networking software by binding their sockets to specific
    addresses.  If the application binds its socket to the source
    address of (any of) the machine's physical interface(s), then the
    packets sent through that socket are sent directly through that
    interface using Out-DT ...  If a socket is not bound to a
    particular address, or is bound to the host's permanent home
    address, then ... our Mobile IP software should use its heuristics
    to decide."

A :class:`TransportStack` attaches to one :class:`~repro.netsim.node.Node`
and owns its UDP bindings and TCP connections.  The *source selector*
hook is where the mobility machinery plugs in: it is consulted exactly
once per conversation — at UDP send and at TCP connect — mirroring the
paper's observation that the address decision is made "when TCP decides
what address to use as the endpoint identifier".

The stack also implements the §7.1.2 observer interface: every
transport send and receive is reported with an original/retransmission
flag, which :mod:`repro.core.feedback` turns into delivery-failure
signals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..netsim.addressing import IPAddress
from ..netsim.node import Node
from ..netsim.packet import IPProto, Packet
from .tcp import ConnectionKey, TCPConnection, TCPFlags, TCPSegment
from .udp import UDPDatagram

__all__ = ["SourceSelector", "TransportObserver", "UDPSocket", "TransportStack"]

# (remote_ip, remote_port, proto, explicit_bind) -> source address to use.
SourceSelector = Callable[[IPAddress, int, IPProto, Optional[IPAddress]], IPAddress]


class TransportObserver:
    """§7.1.2's proposed IP programming-interface addition.

    "all IP clients (e.g. TCP) could indicate, for every IP packet they
    send and receive, whether the packet is an 'original' packet or a
    retransmission."
    """

    def on_send(self, remote: IPAddress, retransmission: bool) -> None:  # pragma: no cover - interface
        pass

    def on_receive(self, remote: IPAddress, retransmission: bool) -> None:  # pragma: no cover - interface
        pass


@dataclass
class _UdpBinding:
    port: int
    bound_ip: Optional[IPAddress]
    callback: Callable[[Any, int, IPAddress, int], None]
    # callback(data, data_size, src_ip, src_port)


class UDPSocket:
    """A bound UDP endpoint."""

    def __init__(self, stack: "TransportStack", port: int, bound_ip: Optional[IPAddress]):
        self.stack = stack
        self.port = port
        self.bound_ip = bound_ip
        self._callback: Optional[Callable[[Any, int, IPAddress, int], None]] = None

    def on_receive(self, callback: Callable[[Any, int, IPAddress, int], None]) -> None:
        self._callback = callback

    def sendto(
        self,
        data: Any,
        data_size: int,
        dst_ip: IPAddress,
        dst_port: int,
        src_override: Optional[IPAddress] = None,
        is_retransmission: bool = False,
    ) -> None:
        """Send a datagram; the source address comes from the §7.1.1 path:
        an explicit bind wins, then the stack's source selector.

        ``is_retransmission`` is the §7.1.2 interface: "all IP clients
        (e.g. TCP) could indicate, for every IP packet they send ...
        whether the packet is an 'original' packet or a retransmission."
        UDP RPC clients (NFS, registration) set it on retries.
        """
        self.stack.udp_output(self, data, data_size, IPAddress(dst_ip), dst_port,
                              src_override, is_retransmission)

    def close(self) -> None:
        self.stack.udp_close(self)

    def _deliver(self, data: Any, size: int, src_ip: IPAddress, src_port: int) -> None:
        if self._callback is not None:
            self._callback(data, size, src_ip, src_port)


class TransportStack:
    """Per-node transport state: UDP demux, TCP connections, observers."""

    def __init__(self, node: Node):
        self.node = node
        node.register_proto_handler(IPProto.UDP, self._udp_input)
        node.register_proto_handler(IPProto.TCP, self._tcp_input)
        self._udp_sockets: Dict[int, UDPSocket] = {}
        self._connections: Dict[ConnectionKey, TCPConnection] = {}
        self._listeners: Dict[int, Callable[[TCPConnection], None]] = {}
        self._ephemeral = 49152
        self.observers: List[TransportObserver] = []
        self.source_selector: Optional[SourceSelector] = None
        self.send_rst_on_closed_port = True

    # ------------------------------------------------------------------
    # Simulator plumbing used by TCPConnection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.node.now

    def schedule(self, delay: float, action: Callable[[], None], label: str = ""):
        return self.node.simulator.events.schedule(delay, action, label=label)

    def ephemeral_port(self) -> int:
        port = self._ephemeral
        self._ephemeral += 1
        if self._ephemeral > 65535:
            self._ephemeral = 49152
        return port

    def _select_source(
        self,
        remote_ip: IPAddress,
        remote_port: int,
        proto: IPProto,
        explicit: Optional[IPAddress],
    ) -> IPAddress:
        if self.source_selector is not None:
            return self.source_selector(remote_ip, remote_port, proto, explicit)
        if explicit is not None:
            return explicit
        source = self.node._preferred_source()
        if source is None:
            raise RuntimeError(f"{self.node.name} has no address to send from")
        return source

    def report_send(self, remote: IPAddress, retransmission: bool) -> None:
        for observer in self.observers:
            observer.on_send(remote, retransmission)

    def report_receive(self, conn_or_ip, retransmission: bool) -> None:
        remote = conn_or_ip.remote_ip if isinstance(conn_or_ip, TCPConnection) else conn_or_ip
        for observer in self.observers:
            observer.on_receive(remote, retransmission)

    # ------------------------------------------------------------------
    # UDP
    # ------------------------------------------------------------------
    def udp_socket(
        self, port: Optional[int] = None, bound_ip: Optional[IPAddress] = None
    ) -> UDPSocket:
        if port is None:
            port = self.ephemeral_port()
            while port in self._udp_sockets:
                port = self.ephemeral_port()
        if port in self._udp_sockets:
            raise OSError(f"UDP port {port} already bound on {self.node.name}")
        socket = UDPSocket(self, port, bound_ip)
        self._udp_sockets[port] = socket
        return socket

    def udp_close(self, socket: UDPSocket) -> None:
        self._udp_sockets.pop(socket.port, None)

    def udp_output(
        self,
        socket: UDPSocket,
        data: Any,
        data_size: int,
        dst_ip: IPAddress,
        dst_port: int,
        src_override: Optional[IPAddress] = None,
        is_retransmission: bool = False,
    ) -> None:
        explicit = src_override if src_override is not None else socket.bound_ip
        src = self._select_source(dst_ip, dst_port, IPProto.UDP, explicit)
        datagram = UDPDatagram(socket.port, dst_port, data, data_size)
        packet = Packet(
            src=src,
            dst=dst_ip,
            proto=IPProto.UDP,
            payload=datagram,
            payload_size=datagram.size,
        )
        self.report_send(dst_ip, retransmission=is_retransmission)
        self.node.ip_send(packet)

    def _udp_input(self, packet: Packet) -> None:
        datagram = packet.payload
        if not isinstance(datagram, UDPDatagram):
            return
        socket = self._udp_sockets.get(datagram.dst_port)
        if socket is None:
            return  # port unreachable; ICMP elided for UDP
        if socket.bound_ip is not None and not packet.dst.is_multicast:
            if packet.dst != socket.bound_ip:
                return  # bound to a specific address; not ours
        self.report_receive(packet.src, retransmission=False)
        socket._deliver(datagram.data, datagram.data_size, packet.src, datagram.src_port)

    # ------------------------------------------------------------------
    # TCP
    # ------------------------------------------------------------------
    def listen(self, port: int, on_accept: Callable[[TCPConnection], None]) -> None:
        if port in self._listeners:
            raise OSError(f"TCP port {port} already listening on {self.node.name}")
        self._listeners[port] = on_accept

    def stop_listening(self, port: int) -> None:
        self._listeners.pop(port, None)

    def connect(
        self,
        remote_ip: IPAddress,
        remote_port: int,
        bound_ip: Optional[IPAddress] = None,
        local_port: Optional[int] = None,
    ) -> TCPConnection:
        """Active open.  The local endpoint address is fixed *now* —
        the paper's §7 decision point — via the source selector."""
        remote_ip = IPAddress(remote_ip)
        local_ip = self._select_source(remote_ip, remote_port, IPProto.TCP, bound_ip)
        if local_port is None:
            local_port = self.ephemeral_port()
        connection = TCPConnection(self, local_ip, local_port, remote_ip, remote_port)
        self._connections[connection.key] = connection
        connection.open_active()
        return connection

    def forget(self, connection: TCPConnection) -> None:
        self._connections.pop(connection.key, None)

    @property
    def connections(self) -> List[TCPConnection]:
        return list(self._connections.values())

    def tcp_output(self, connection: TCPConnection, segment: TCPSegment) -> None:
        packet = Packet(
            src=connection.local_ip,
            dst=connection.remote_ip,
            proto=IPProto.TCP,
            payload=segment,
            payload_size=segment.size,
        )
        self.report_send(connection.remote_ip, segment.is_retransmission)
        self.node.ip_send(packet)

    def _tcp_input(self, packet: Packet) -> None:
        segment = packet.payload
        if not isinstance(segment, TCPSegment):
            return
        key: ConnectionKey = (
            packet.dst,
            segment.dst_port,
            packet.src,
            segment.src_port,
        )
        connection = self._connections.get(key)
        if connection is not None:
            self.report_receive(packet.src, segment.is_retransmission)
            connection.segment_arrived(segment)
            return

        if segment.flags is TCPFlags.SYN:
            on_accept = self._listeners.get(segment.dst_port)
            if on_accept is not None:
                # Passive open: the local endpoint identifier is the
                # address the SYN was addressed to (for a mobile host
                # that may be the home address — In-IE — or the care-of
                # address — In-DT; the 4-tuple records the difference).
                connection = TCPConnection(
                    self, packet.dst, segment.dst_port, packet.src, segment.src_port
                )
                self._connections[connection.key] = connection
                connection.open_passive(segment)
                on_accept(connection)
                return
        if segment.flags is not TCPFlags.RST and self.send_rst_on_closed_port:
            self._send_rst(packet, segment)

    def _send_rst(self, packet: Packet, segment: TCPSegment) -> None:
        rst = TCPSegment(
            src_port=segment.dst_port,
            dst_port=segment.src_port,
            seq=segment.ack,
            ack=segment.seq + segment.seq_space,
            flags=TCPFlags.RST,
        )
        reply = Packet(
            src=packet.dst,
            dst=packet.src,
            proto=IPProto.TCP,
            payload=rst,
            payload_size=rst.size,
        )
        self.node.ip_send(reply)
