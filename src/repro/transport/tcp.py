"""A simplified but behaviourally faithful TCP.

The paper's claims that this layer must reproduce:

* **Endpoint identity** (§2): a connection is named by the 4-tuple
  (local IP, local port, remote IP, remote port).  "TCP connections to
  other Internet hosts would break every time the mobile host moved"
  if the address changed — here, segments arriving for a 4-tuple that
  no longer matches any connection are simply lost, so the breakage
  emerges rather than being scripted.
* **The address decision point** (§7): "this decision must also be
  made when TCP decides what address to use as the endpoint identifier
  for a TCP connection."  The local address is chosen once, at
  connect/accept time, through the same mobility decision path as
  packet sending.
* **Retransmission as a failure signal** (§7.1.2): every segment sent
  or received is reported to registered observers together with an
  original/retransmission flag — the exact programming-interface
  addition the paper proposes.  The :mod:`repro.core.feedback` module
  consumes these reports.

Simplifications relative to RFC 793 (documented for honesty): no
receive-window flow control, no congestion control, go-back-N
retransmission from the oldest unacked byte, no simultaneous-open, and
an abbreviated FIN handshake.  None of these affect the paper's claims.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

from ..netsim.addressing import IPAddress

if TYPE_CHECKING:  # pragma: no cover
    from .sockets import TransportStack

__all__ = [
    "TCP_HEADER_SIZE",
    "TCPFlags",
    "TCPSegment",
    "TCPState",
    "TCPConnection",
    "ConnectionKey",
]

TCP_HEADER_SIZE = 20
DEFAULT_MSS = 1460           # 1500 MTU - 20 IP - 20 TCP
INITIAL_RTO = 1.0            # seconds
MIN_RTO = 0.2                # floor for the adaptive estimator
MAX_RTO = 16.0
MAX_RETRIES = 7              # then the connection is declared broken.
# 7 gives the §7.1.2 probing machinery room to walk the whole mode
# ladder (two demotions at 2 retransmissions each) before giving up.


class TCPFlags(Enum):
    SYN = "SYN"
    SYN_ACK = "SYN_ACK"
    ACK = "ACK"
    FIN = "FIN"
    RST = "RST"


@dataclass(frozen=True)
class TCPSegment:
    """One TCP segment.  ``data_size`` models payload bytes; ``data``
    carries an opaque application object on the segment that completes
    a logical message (how the app workloads move structured data)."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: TCPFlags
    data_size: int = 0
    data: Any = None
    is_retransmission: bool = False

    @property
    def size(self) -> int:
        return TCP_HEADER_SIZE + self.data_size

    @property
    def seq_space(self) -> int:
        """Sequence space consumed (SYN/FIN count as one)."""
        if self.flags in (TCPFlags.SYN, TCPFlags.SYN_ACK, TCPFlags.FIN):
            return self.data_size + 1
        return self.data_size


class TCPState(Enum):
    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT = "FIN_WAIT"
    CLOSE_WAIT = "CLOSE_WAIT"
    TIME_WAIT = "TIME_WAIT"


# (local_ip, local_port, remote_ip, remote_port)
ConnectionKey = Tuple[IPAddress, int, IPAddress, int]

_isn_source = itertools.count(1000, 64000)


@dataclass
class _Unacked:
    """A sent-but-unacked segment awaiting acknowledgement."""

    segment: TCPSegment
    sent_at: float
    retries: int = 0


class TCPConnection:
    """One endpoint of a TCP connection.

    Created by :meth:`repro.transport.sockets.TransportStack.connect`
    (active open) or by a listening socket on SYN receipt (passive
    open).  Application callbacks:

    * ``on_established()`` — handshake completed,
    * ``on_data(data, size)`` — in-order payload delivered,
    * ``on_close()`` — orderly shutdown completed,
    * ``on_fail(reason)`` — retransmission limit exceeded or RST.
    """

    def __init__(
        self,
        stack: "TransportStack",
        local_ip: IPAddress,
        local_port: int,
        remote_ip: IPAddress,
        remote_port: int,
    ):
        self.stack = stack
        self.local_ip = IPAddress(local_ip)
        self.local_port = local_port
        self.remote_ip = IPAddress(remote_ip)
        self.remote_port = remote_port
        self.state = TCPState.CLOSED

        self.snd_nxt = next(_isn_source)
        self.snd_una = self.snd_nxt
        self.rcv_nxt = 0
        self.mss = DEFAULT_MSS
        self.rto = INITIAL_RTO

        self._unacked: List[_Unacked] = []
        self._retx_timer = None
        self._send_queue: List[Tuple[int, Any]] = []  # (size, data) pending

        # Adaptive RTO (Jacobson/Karels): smoothed RTT and variance,
        # seeded on the first valid sample.  Karn's rule: samples from
        # retransmitted segments are discarded.
        self._srtt: Optional[float] = None
        self._rttvar: float = 0.0
        # Fast retransmit (Reno-style): three duplicate ACKs trigger an
        # immediate resend of the oldest unacked segment.
        self._dup_acks = 0
        self._last_ack_seen: Optional[int] = None
        self.fast_retransmits = 0

        self._close_notified = False
        self.on_established: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[Any, int], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.on_fail: Optional[Callable[[str], None]] = None

        # Statistics the benchmarks read.
        self.segments_sent = 0
        self.retransmissions = 0
        self.duplicates_received = 0
        self.bytes_delivered = 0

    # ------------------------------------------------------------------
    @property
    def key(self) -> ConnectionKey:
        return (self.local_ip, self.local_port, self.remote_ip, self.remote_port)

    @property
    def is_open(self) -> bool:
        return self.state in (
            TCPState.ESTABLISHED,
            TCPState.CLOSE_WAIT,
            TCPState.FIN_WAIT,
        )

    # ------------------------------------------------------------------
    # Active/passive open
    # ------------------------------------------------------------------
    def open_active(self) -> None:
        self.state = TCPState.SYN_SENT
        self._transmit(TCPFlags.SYN)

    def open_passive(self, syn: TCPSegment) -> None:
        self.state = TCPState.SYN_RCVD
        self.rcv_nxt = syn.seq + syn.seq_space
        self._transmit(TCPFlags.SYN_ACK)

    # ------------------------------------------------------------------
    # Application sending
    # ------------------------------------------------------------------
    def send(self, size: int, data: Any = None) -> None:
        """Send ``size`` application bytes (``data`` rides on the last
        segment of the message)."""
        if not self.is_open and self.state not in (
            TCPState.SYN_SENT,
            TCPState.SYN_RCVD,
        ):
            raise RuntimeError(f"send on {self.state.value} connection")
        if self.state is not TCPState.ESTABLISHED:
            self._send_queue.append((size, data))
            return
        self._segment_and_send(size, data)

    def _segment_and_send(self, size: int, data: Any) -> None:
        remaining = size
        while True:
            chunk = min(self.mss, remaining)
            remaining -= chunk
            last = remaining <= 0
            self._transmit(
                TCPFlags.ACK, data_size=chunk, data=data if last else None
            )
            if last:
                break

    def close(self) -> None:
        """Orderly close: send FIN once all queued data is out."""
        if self.state is TCPState.ESTABLISHED:
            self.state = TCPState.FIN_WAIT
            self._transmit(TCPFlags.FIN)
        elif self.state is TCPState.CLOSE_WAIT:
            self.state = TCPState.TIME_WAIT
            self._transmit(TCPFlags.FIN)
        else:
            self.state = TCPState.CLOSED

    def abort(self, reason: str = "aborted") -> None:
        """Unilateral teardown (RST semantics, also used on failure)."""
        self._cancel_timer()
        previous = self.state
        self.state = TCPState.CLOSED
        self.stack.forget(self)
        if previous is not TCPState.CLOSED and self.on_fail is not None:
            self.on_fail(reason)

    # ------------------------------------------------------------------
    # Transmission machinery
    # ------------------------------------------------------------------
    def _transmit(
        self, flags: TCPFlags, data_size: int = 0, data: Any = None
    ) -> None:
        segment = TCPSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=self.snd_nxt,
            ack=self.rcv_nxt,
            flags=flags,
            data_size=data_size,
            data=data,
        )
        self.snd_nxt += segment.seq_space
        if segment.seq_space > 0:
            self._unacked.append(_Unacked(segment, self.stack.now))
            self._arm_timer()
        self._emit(segment)

    def _emit(self, segment: TCPSegment) -> None:
        self.segments_sent += 1
        if segment.is_retransmission:
            self.retransmissions += 1
        self.stack.tcp_output(self, segment)

    def _send_pure_ack(self) -> None:
        self._emit(
            TCPSegment(
                src_port=self.local_port,
                dst_port=self.remote_port,
                seq=self.snd_nxt,
                ack=self.rcv_nxt,
                flags=TCPFlags.ACK,
            )
        )

    # ------------------------------------------------------------------
    # Retransmission timer (go-back-N from oldest unacked)
    # ------------------------------------------------------------------
    def _arm_timer(self) -> None:
        if self._retx_timer is None and self._unacked:
            self._retx_timer = self.stack.schedule(
                self.rto, self._on_timeout, label=f"tcp-rto:{self.local_port}"
            )

    def _cancel_timer(self) -> None:
        if self._retx_timer is not None:
            self._retx_timer.cancel()
            self._retx_timer = None

    def _on_timeout(self) -> None:
        self._retx_timer = None
        if not self._unacked:
            return
        oldest = self._unacked[0]
        if oldest.retries >= MAX_RETRIES:
            self.abort("retransmission-limit")
            return
        self.rto = min(self.rto * 2, MAX_RTO)
        for entry in self._unacked:
            entry.retries += 1
            entry.sent_at = self.stack.now
            self._emit(replace(entry.segment, is_retransmission=True))
        self._arm_timer()

    # ------------------------------------------------------------------
    # Segment arrival
    # ------------------------------------------------------------------
    def segment_arrived(self, segment: TCPSegment) -> None:
        if segment.flags is TCPFlags.RST:
            self.abort("reset-by-peer")
            return
        self._process_ack(segment.ack)

        if self.state is TCPState.SYN_SENT:
            if segment.flags is TCPFlags.SYN_ACK:
                self.rcv_nxt = segment.seq + segment.seq_space
                self.state = TCPState.ESTABLISHED
                self.rto = INITIAL_RTO
                self._send_pure_ack()
                self._drain_queue()
                if self.on_established is not None:
                    self.on_established()
            return

        if self.state is TCPState.SYN_RCVD:
            if segment.flags is TCPFlags.ACK and segment.ack >= self.snd_nxt:
                self.state = TCPState.ESTABLISHED
                self.rto = INITIAL_RTO
                self._drain_queue()
                if self.on_established is not None:
                    self.on_established()
            # fall through: the ACK may carry data

        if segment.seq_space == 0:
            return  # pure ACK, done

        if segment.seq == self.rcv_nxt:
            self.rcv_nxt += segment.seq_space
            if segment.flags is TCPFlags.FIN:
                self._fin_arrived()
            elif segment.data_size > 0:
                self.bytes_delivered += segment.data_size
                self._send_pure_ack()
                if self.on_data is not None:
                    self.on_data(segment.data, segment.data_size)
        elif segment.seq < self.rcv_nxt:
            # Old duplicate: the peer is retransmitting — exactly the
            # signal §7.1.2 wants surfaced to the IP layer.
            self.duplicates_received += 1
            self.stack.report_receive(self, retransmission=True)
            self._send_pure_ack()
        else:
            # Out-of-order future segment: dropped (go-back-N receiver),
            # but the duplicate ACK it elicits is what lets the sender's
            # fast-retransmit fill the gap without a full timeout.
            self._send_pure_ack()

    def _process_ack(self, ack: int) -> None:
        if ack <= self.snd_una:
            # Duplicate ACK: if it re-acknowledges the current edge and
            # data is outstanding, count toward fast retransmit.
            if (
                ack == self.snd_una
                and self._unacked
                and self._last_ack_seen == ack
            ):
                self._dup_acks += 1
                if self._dup_acks == 3:
                    self._fast_retransmit()
            self._last_ack_seen = ack
            return
        self._last_ack_seen = ack
        self._dup_acks = 0
        # RTT sampling (Karn's rule: only never-retransmitted segments).
        for entry in self._unacked:
            end = entry.segment.seq + entry.segment.seq_space
            if end <= ack and entry.retries == 0:
                self._update_rto(self.stack.now - entry.sent_at)
                break
        self.snd_una = ack
        self._unacked = [
            entry
            for entry in self._unacked
            if entry.segment.seq + entry.segment.seq_space > ack
        ]
        self._cancel_timer()
        if self._unacked:
            self._arm_timer()
        else:
            if self.state is TCPState.TIME_WAIT:
                self._finish_close()
            elif self.state is TCPState.FIN_WAIT and self.rcv_nxt and not self._unacked:
                pass  # waiting for peer FIN

    def _update_rto(self, sample: float) -> None:
        """Jacobson/Karels smoothing: RTO = SRTT + 4 * RTTVAR."""
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2
        else:
            alpha, beta = 0.125, 0.25
            self._rttvar = (1 - beta) * self._rttvar + beta * abs(
                self._srtt - sample
            )
            self._srtt = (1 - alpha) * self._srtt + alpha * sample
        self.rto = min(max(self._srtt + 4 * self._rttvar, MIN_RTO), MAX_RTO)

    def _fast_retransmit(self) -> None:
        """Three duplicate ACKs: resend the oldest unacked immediately
        without waiting for the timer (Reno's loss recovery)."""
        if not self._unacked:
            return
        oldest = self._unacked[0]
        oldest.retries += 1
        oldest.sent_at = self.stack.now
        self.fast_retransmits += 1
        self._emit(replace(oldest.segment, is_retransmission=True))

    def _fin_arrived(self) -> None:
        if self.state is TCPState.ESTABLISHED:
            self.state = TCPState.CLOSE_WAIT
            self._send_pure_ack()
            # Give the application a chance to close(); if it does not,
            # complete the teardown ourselves (simplified half-close:
            # a peer FIN ends the whole conversation).
            if self.state is TCPState.CLOSE_WAIT:
                self.close()
        elif self.state in (TCPState.FIN_WAIT, TCPState.TIME_WAIT):
            self._send_pure_ack()
            self._finish_close()

    def _finish_close(self) -> None:
        self._cancel_timer()
        if self.state is TCPState.CLOSED:
            return
        self.state = TCPState.CLOSED
        self.stack.forget(self)
        if self.on_close is not None and not self._close_notified:
            self._close_notified = True
            self.on_close()

    def _drain_queue(self) -> None:
        queue, self._send_queue = self._send_queue, []
        for size, data in queue:
            self._segment_and_send(size, data)

    def __repr__(self) -> str:
        return (
            f"TCPConnection({self.local_ip}:{self.local_port} -> "
            f"{self.remote_ip}:{self.remote_port} {self.state.value})"
        )
