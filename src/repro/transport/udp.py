"""UDP: datagram transport with ports.

Used by the DNS workload (§7.1.1: "UDP packets addressed to UDP port 53
are likely to be DNS requests and can also safely use Out-DT"), by the
Mobile IP registration protocol itself (which, per §6.4 of the paper,
"communicates using the temporary address when registering with the
home agent"), and by the multicast experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["UDP_HEADER_SIZE", "UDPDatagram"]

UDP_HEADER_SIZE = 8


@dataclass(frozen=True)
class UDPDatagram:
    """A UDP datagram: ports, an opaque payload, and a data size."""

    src_port: int
    dst_port: int
    data: Any = None
    data_size: int = 0

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 65535:
                raise ValueError(f"port out of range: {port}")
        if self.data_size < 0:
            raise ValueError("negative data size")

    @property
    def size(self) -> int:
        return UDP_HEADER_SIZE + self.data_size
