"""Transport substrate: UDP, simplified TCP, and the socket layer.

See module docstrings for the paper-facing behaviours each piece
reproduces: endpoint-identity semantics (connections break when
addresses change), the connect-time address decision point, and the
original/retransmission reporting interface of §7.1.2.
"""

from .sockets import SourceSelector, TransportObserver, TransportStack, UDPSocket
from .tcp import (
    TCP_HEADER_SIZE,
    ConnectionKey,
    TCPConnection,
    TCPFlags,
    TCPSegment,
    TCPState,
)
from .udp import UDP_HEADER_SIZE, UDPDatagram

__all__ = [
    "SourceSelector",
    "TransportObserver",
    "TransportStack",
    "UDPSocket",
    "TCP_HEADER_SIZE",
    "ConnectionKey",
    "TCPConnection",
    "TCPFlags",
    "TCPSegment",
    "TCPState",
    "UDP_HEADER_SIZE",
    "UDPDatagram",
]
