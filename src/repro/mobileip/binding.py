"""Mobility bindings: home address -> care-of address, with lifetimes.

Used in three places, mirroring the paper:

* the **home agent's** registration table (§2): where to tunnel packets
  captured for each absent mobile host;
* a **mobile-aware correspondent's** binding cache (§3.2, Figure 5):
  learned from the home agent's ICMP advisory or from a DNS
  temporary-address lookup, enabling In-DE;
* a **foreign agent's** visitor list.

Every entry expires: registrations carry lifetimes, and a correspondent
must not tunnel to a care-of address the mobile host may have left.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netsim.addressing import IPAddress

__all__ = ["Binding", "BindingTable", "PoolBlock"]

DEFAULT_LIFETIME = 300.0


@dataclass(frozen=True)
class Binding:
    """One mobility binding."""

    home_address: IPAddress
    care_of_address: IPAddress
    registered_at: float
    lifetime: float = DEFAULT_LIFETIME

    @property
    def expires_at(self) -> float:
        return self.registered_at + self.lifetime

    def valid_at(self, now: float) -> bool:
        return now < self.expires_at


class PoolBlock:
    """A flyweight slab of bindings for contiguous home addresses.

    Struct-of-arrays storage for pooled hosts: home address ``base + i``
    maps to ``care_of[i]`` with ``registered_at[i]``/``lifetime[i]``.
    The arrays are *shared by reference* with the
    :class:`~repro.netsim.population.HostPool` that built them, so a
    timer-wheel refresh updates pool and binding table in one write and
    a million bindings never allocate a million :class:`Binding`
    objects (a ``Binding`` is materialized lazily, only on a hit).

    ``alive[i]`` gates every read: a dead slot (deregistered, expired,
    pruned) stays dead even though its timestamps keep being touched by
    the wheel's bulk slice refresh.
    """

    __slots__ = (
        "base", "count", "care_of", "registered_at", "lifetime",
        "alive", "live", "min_lifetime", "expiry_floor",
    )

    def __init__(
        self,
        base: int,
        count: int,
        care_of: "array",
        registered_at: "array",
        lifetime: "array",
        alive: bytearray,
    ):
        if not (len(care_of) == len(registered_at) == len(lifetime)
                == len(alive) == count):
            raise ValueError("pool block arrays must all have length count")
        self.base = int(base)
        self.count = count
        self.care_of = care_of
        self.registered_at = registered_at
        self.lifetime = lifetime
        self.alive = alive
        self.live = count - alive.count(0)
        self.min_lifetime = min(lifetime) if count else DEFAULT_LIFETIME
        # A conservative lower bound on the earliest expiry of any live
        # entry.  Refreshes only push expiries later, so a stale floor
        # errs small — which is the safe direction for both the
        # fast-forward horizon and the prune guard.  The timer wheel
        # advances it after each full refresh cycle.
        self.expiry_floor = (
            min(registered_at) + self.min_lifetime if count else float("inf")
        )

    def index_of(self, value: int) -> int:
        """Array index of a *live* entry for address ``value``, or -1."""
        index = value - self.base
        if 0 <= index < self.count and self.alive[index]:
            return index
        return -1

    def expires_at(self, index: int) -> float:
        return self.registered_at[index] + self.lifetime[index]

    def kill(self, index: int) -> None:
        if self.alive[index]:
            self.alive[index] = 0
            self.live -= 1

    def prune(self, now: float) -> int:
        """Mark every expired live entry dead; returns how many.

        Guarded by :attr:`expiry_floor`: in steady state the wheel
        refreshes every entry before it can expire, the floor stays
        ahead of the clock, and the scan is skipped entirely.
        """
        if now < self.expiry_floor or not self.live:
            return 0
        dead = 0
        registered_at, lifetime, alive = (
            self.registered_at, self.lifetime, self.alive)
        floor = float("inf")
        for index in range(self.count):
            if not alive[index]:
                continue
            expires = registered_at[index] + lifetime[index]
            if now >= expires:
                alive[index] = 0
                dead += 1
            elif expires < floor:
                floor = expires
        self.live -= dead
        self.expiry_floor = floor
        return dead

    def state_bytes(self) -> int:
        """Actual bytes of array state held for this block."""
        return (
            self.care_of.itemsize * len(self.care_of)
            + self.registered_at.itemsize * len(self.registered_at)
            + self.lifetime.itemsize * len(self.lifetime)
            + len(self.alive)
        )


class BindingTable:
    """home address -> current binding, with lazy expiry.

    Two storage tiers: a dict of full :class:`Binding` objects for
    individually registered hosts, and :class:`PoolBlock` slabs for
    pooled host populations.  The dict shadows the blocks — an explicit
    :meth:`register` for an address inside a block supersedes (and
    retires) the flyweight slot.
    """

    def __init__(self) -> None:
        self._bindings: Dict[IPAddress, Binding] = {}
        self._blocks: List[PoolBlock] = []
        self.registrations = 0
        self.deregistrations = 0
        self.expirations = 0

    def register(
        self,
        home_address: IPAddress,
        care_of_address: IPAddress,
        now: float,
        lifetime: float = DEFAULT_LIFETIME,
    ) -> Binding:
        """Install or refresh a binding (a new registration replaces any
        previous care-of address — the mobile host moved)."""
        binding = Binding(
            IPAddress(home_address), IPAddress(care_of_address), now, lifetime
        )
        self._bindings[binding.home_address] = binding
        # An explicit registration supersedes a flyweight slot for the
        # same address (a promoted host re-registering): retire the
        # slot silently — it is a replacement, not a deregistration.
        if self._blocks:
            self._block_discard(binding.home_address.value)
        self.registrations += 1
        return binding

    def register_many(
        self,
        home_base: int,
        count: int,
        care_of: "array",
        registered_at: "array",
        lifetime: "array",
        alive: Optional[bytearray] = None,
    ) -> PoolBlock:
        """Install ``count`` bindings for home addresses ``home_base +
        i`` as one struct-of-arrays :class:`PoolBlock`.

        The arrays are adopted by reference (the caller — a
        :class:`~repro.netsim.population.HostPool` — keeps writing to
        them), so this is O(1) in bindings: no per-host objects, no
        per-host dict entries, no IPAddress interning traffic.
        """
        if alive is None:
            alive = bytearray(b"\x01") * count
        for existing in self._blocks:
            if existing.base < home_base + count and home_base < (
                existing.base + existing.count
            ):
                raise ValueError(
                    f"pool block [{home_base}, {home_base + count}) overlaps "
                    f"existing block [{existing.base}, "
                    f"{existing.base + existing.count})"
                )
        block = PoolBlock(home_base, count, care_of, registered_at,
                          lifetime, alive)
        self._blocks.append(block)
        self.registrations += count
        return block

    @property
    def blocks(self) -> Tuple[PoolBlock, ...]:
        return tuple(self._blocks)

    def _block_entry(self, value: int) -> Optional[Tuple[PoolBlock, int]]:
        for block in self._blocks:
            index = block.index_of(value)
            if index >= 0:
                return block, index
        return None

    def _block_discard(self, value: int) -> None:
        entry = self._block_entry(value)
        if entry is not None:
            block, index = entry
            block.kill(index)

    def _materialize(self, home_address: IPAddress,
                     block: PoolBlock, index: int) -> Binding:
        return Binding(
            home_address,
            IPAddress(block.care_of[index]),
            block.registered_at[index],
            block.lifetime[index],
        )

    def deregister(self, home_address: IPAddress) -> Optional[Binding]:
        """Remove a binding (lifetime-zero registration: the host is home)."""
        home_address = IPAddress(home_address)
        binding = self._bindings.pop(home_address, None)
        if binding is not None:
            self.deregistrations += 1
            return binding
        entry = self._block_entry(home_address.value) if self._blocks else None
        if entry is not None:
            block, index = entry
            binding = self._materialize(home_address, block, index)
            block.kill(index)
            self.deregistrations += 1
            return binding
        return None

    def lookup(self, home_address: IPAddress, now: float) -> Optional[Binding]:
        """The valid binding for an address, expiring stale entries."""
        home_address = IPAddress(home_address)
        binding = self._bindings.get(home_address)
        if binding is not None:
            if not binding.valid_at(now):
                del self._bindings[binding.home_address]
                self.expirations += 1
                return None
            return binding
        entry = self._block_entry(home_address.value) if self._blocks else None
        if entry is None:
            return None
        block, index = entry
        if now >= block.expires_at(index):
            block.kill(index)
            self.expirations += 1
            return None
        return self._materialize(home_address, block, index)

    def peek(self, home_address: IPAddress) -> Optional[Binding]:
        """The stored binding for an address, valid or not, untouched.

        Unlike :meth:`lookup` this never mutates the table (no lazy
        expiry), which is what an outside observer — the invariant
        monitor — needs: checking a run must not change it.
        """
        home_address = IPAddress(home_address)
        binding = self._bindings.get(home_address)
        if binding is not None:
            return binding
        entry = self._block_entry(home_address.value) if self._blocks else None
        if entry is None:
            return None
        block, index = entry
        return self._materialize(home_address, block, index)

    def snapshot(self, now: float) -> Dict[str, Dict[str, object]]:
        """Non-mutating JSON-clean export of every stored binding.

        Like :meth:`peek`, this never triggers lazy expiry — it is for
        outside observers (the flight recorder's engine-state dump),
        and observing a run must not change it.  Entries past their
        lifetime are included with ``valid: false``.
        """
        return {
            str(home): {
                "care_of": str(binding.care_of_address),
                "registered_at": binding.registered_at,
                "expires_at": binding.expires_at,
                "valid": binding.valid_at(now),
            }
            for home, binding in self._bindings.items()
        }

    def prune(self, now: float) -> int:
        """Evict every expired entry; returns how many were dropped.

        Unlike the lazy expiry in :meth:`lookup`, this sweeps the whole
        table — at pool scale dead bindings must not accumulate waiting
        for a lookup that never comes.  The dict sweep collects first
        and deletes after, so a prune fired from inside an iteration
        over a snapshot (or from the timer wheel, mid-run) is safe.
        The block sweep is guarded by each block's ``expiry_floor`` and
        is a no-op in wheel-refreshed steady state.
        """
        dead = [
            home for home, binding in self._bindings.items()
            if not binding.valid_at(now)
        ]
        for home in dead:
            del self._bindings[home]
        pruned = len(dead)
        for block in self._blocks:
            pruned += block.prune(now)
        self.expirations += pruned
        return pruned

    def earliest_expiry(self, horizon: float = float("inf")) -> float:
        """The soonest expiry of any stored binding, bounded by ``horizon``.

        Block entries contribute their conservative ``expiry_floor``
        (never later than any live entry's true expiry), which is the
        safe direction for the fast-forward time horizon.
        """
        for binding in self._bindings.values():
            if binding.expires_at < horizon:
                horizon = binding.expires_at
        for block in self._blocks:
            if block.live and block.expiry_floor < horizon:
                horizon = block.expiry_floor
        return horizon

    def flush(self) -> int:
        """Drop every binding without counting deregistrations.

        This is crash semantics, not protocol semantics: a restarting
        home agent that kept its table only in memory comes back empty,
        and the mobile hosts must re-register to be reachable again
        (see :meth:`repro.mobileip.home_agent.HomeAgent.restart`).
        Pooled blocks are lost with everything else.  Returns the
        number of bindings lost.
        """
        lost = len(self._bindings) + sum(b.live for b in self._blocks)
        self._bindings.clear()
        self._blocks.clear()
        return lost

    def active(self, now: float) -> List[Binding]:
        """Valid dict-tier bindings (pooled blocks are excluded — at
        pool scale materializing a million Bindings is the wrong
        interface; see :meth:`pool_stats`)."""
        return [
            binding
            for binding in list(self._bindings.values())
            if self.lookup(binding.home_address, now) is not None
        ]

    def pool_stats(self) -> Dict[str, int]:
        """Aggregate block-tier counters for observers."""
        return {
            "blocks": len(self._blocks),
            "pooled": sum(block.count for block in self._blocks),
            "live": sum(block.live for block in self._blocks),
            "state_bytes": sum(block.state_bytes() for block in self._blocks),
        }

    def __len__(self) -> int:
        return len(self._bindings) + sum(b.live for b in self._blocks)

    def __contains__(self, home_address: IPAddress) -> bool:
        home_address = IPAddress(home_address)
        if home_address in self._bindings:
            return True
        return bool(self._blocks) and (
            self._block_entry(home_address.value) is not None
        )
