"""Mobility bindings: home address -> care-of address, with lifetimes.

Used in three places, mirroring the paper:

* the **home agent's** registration table (§2): where to tunnel packets
  captured for each absent mobile host;
* a **mobile-aware correspondent's** binding cache (§3.2, Figure 5):
  learned from the home agent's ICMP advisory or from a DNS
  temporary-address lookup, enabling In-DE;
* a **foreign agent's** visitor list.

Every entry expires: registrations carry lifetimes, and a correspondent
must not tunnel to a care-of address the mobile host may have left.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..netsim.addressing import IPAddress

__all__ = ["Binding", "BindingTable"]

DEFAULT_LIFETIME = 300.0


@dataclass(frozen=True)
class Binding:
    """One mobility binding."""

    home_address: IPAddress
    care_of_address: IPAddress
    registered_at: float
    lifetime: float = DEFAULT_LIFETIME

    @property
    def expires_at(self) -> float:
        return self.registered_at + self.lifetime

    def valid_at(self, now: float) -> bool:
        return now < self.expires_at


class BindingTable:
    """home address -> current binding, with lazy expiry."""

    def __init__(self) -> None:
        self._bindings: Dict[IPAddress, Binding] = {}
        self.registrations = 0
        self.deregistrations = 0
        self.expirations = 0

    def register(
        self,
        home_address: IPAddress,
        care_of_address: IPAddress,
        now: float,
        lifetime: float = DEFAULT_LIFETIME,
    ) -> Binding:
        """Install or refresh a binding (a new registration replaces any
        previous care-of address — the mobile host moved)."""
        binding = Binding(
            IPAddress(home_address), IPAddress(care_of_address), now, lifetime
        )
        self._bindings[binding.home_address] = binding
        self.registrations += 1
        return binding

    def deregister(self, home_address: IPAddress) -> Optional[Binding]:
        """Remove a binding (lifetime-zero registration: the host is home)."""
        binding = self._bindings.pop(IPAddress(home_address), None)
        if binding is not None:
            self.deregistrations += 1
        return binding

    def lookup(self, home_address: IPAddress, now: float) -> Optional[Binding]:
        """The valid binding for an address, expiring stale entries."""
        binding = self._bindings.get(IPAddress(home_address))
        if binding is None:
            return None
        if not binding.valid_at(now):
            del self._bindings[binding.home_address]
            self.expirations += 1
            return None
        return binding

    def peek(self, home_address: IPAddress) -> Optional[Binding]:
        """The stored binding for an address, valid or not, untouched.

        Unlike :meth:`lookup` this never mutates the table (no lazy
        expiry), which is what an outside observer — the invariant
        monitor — needs: checking a run must not change it.
        """
        return self._bindings.get(IPAddress(home_address))

    def snapshot(self, now: float) -> Dict[str, Dict[str, object]]:
        """Non-mutating JSON-clean export of every stored binding.

        Like :meth:`peek`, this never triggers lazy expiry — it is for
        outside observers (the flight recorder's engine-state dump),
        and observing a run must not change it.  Entries past their
        lifetime are included with ``valid: false``.
        """
        return {
            str(home): {
                "care_of": str(binding.care_of_address),
                "registered_at": binding.registered_at,
                "expires_at": binding.expires_at,
                "valid": binding.valid_at(now),
            }
            for home, binding in self._bindings.items()
        }

    def flush(self) -> int:
        """Drop every binding without counting deregistrations.

        This is crash semantics, not protocol semantics: a restarting
        home agent that kept its table only in memory comes back empty,
        and the mobile hosts must re-register to be reachable again
        (see :meth:`repro.mobileip.home_agent.HomeAgent.restart`).
        Returns the number of bindings lost.
        """
        lost = len(self._bindings)
        self._bindings.clear()
        return lost

    def active(self, now: float) -> List[Binding]:
        return [
            binding
            for binding in list(self._bindings.values())
            if self.lookup(binding.home_address, now) is not None
        ]

    def __len__(self) -> int:
        return len(self._bindings)

    def __contains__(self, home_address: IPAddress) -> bool:
        return IPAddress(home_address) in self._bindings
