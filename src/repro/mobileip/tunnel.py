"""Tunnel plumbing shared by home agents, mobile hosts, and smart
correspondents.

A :class:`TunnelEndpoint` bundles the two things every tunneling party
needs: a configured encapsulation scheme (IP-in-IP by default, minimal
encapsulation or GRE by choice — §2 notes both as overhead reducers)
and a decapsulation receive path registered for all three tunnel
protocol numbers.

Decapsulated inner packets are passed to a sink callback; the caller
decides what "receive" means (a mobile host delivers locally, a home
agent re-forwards on behalf of the mobile host, a correspondent host
feeds its transport stack).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..netsim.addressing import IPAddress
from ..netsim.encap import EncapError, EncapScheme, decapsulate, encapsulate
from ..netsim.node import Node
from ..netsim.packet import IPProto, Packet

__all__ = ["TunnelEndpoint"]

TUNNEL_PROTOS = (IPProto.IPIP, IPProto.GRE, IPProto.MINENC)


class TunnelEndpoint:
    """Encapsulation/decapsulation services for one node."""

    def __init__(
        self,
        node: Node,
        scheme: EncapScheme = EncapScheme.IPIP,
        on_inner: Optional[Callable[[Packet, Packet], None]] = None,
    ):
        """``on_inner(inner, outer)`` is called for every decapsulated
        packet; if None, inner packets are re-injected into the node's
        local delivery path when addressed to it."""
        self.node = node
        self.scheme = scheme
        self.on_inner = on_inner
        self.encapsulated_count = 0
        self.decapsulated_count = 0
        self.bad_encap_count = 0
        metrics = node.simulator.metrics
        metrics.counter("tunnel.encapsulated",
                        read=lambda: self.encapsulated_count, node=node.name)
        metrics.counter("tunnel.decapsulated",
                        read=lambda: self.decapsulated_count, node=node.name)
        metrics.counter("tunnel.bad_encap",
                        read=lambda: self.bad_encap_count, node=node.name)
        for proto in TUNNEL_PROTOS:
            node.register_proto_handler(proto, self._tunnel_input)

    # ------------------------------------------------------------------
    def send_encapsulated(
        self,
        inner: Packet,
        outer_src: IPAddress,
        outer_dst: IPAddress,
        scheme: Optional[EncapScheme] = None,
    ) -> Packet:
        """Encapsulate ``inner`` and submit the outer packet to IP.

        The outer packet bypasses route overrides — this is the
        "resubmits it to IP" step of §7's virtual interface, and
        without the bypass the override would encapsulate forever.
        """
        outer = encapsulate(
            inner, outer_src, outer_dst, scheme=scheme or self.scheme
        )
        self.encapsulated_count += 1
        self.node.trace.note(
            self.node.now, self.node.name, "encapsulate", outer,
            detail=f"{(scheme or self.scheme).value} to {outer_dst}",
        )
        self.node.ip_send(outer, bypass_overrides=True)
        return outer

    # ------------------------------------------------------------------
    def _tunnel_input(self, outer: Packet) -> None:
        try:
            inner = decapsulate(outer)
        except EncapError:
            # A malformed or truncated tunnel packet — whether from a
            # buggy peer or an adversary probing the endpoint — must
            # die here as a classified drop, never as an exception
            # unwinding the event engine mid-run.
            self.bad_encap_count += 1
            self.node.trace.note(
                self.node.now, self.node.name, "drop", outer,
                detail="bad-encap",
            )
            return
        self.decapsulated_count += 1
        self.node.trace.note(
            self.node.now, self.node.name, "decapsulate", inner,
            detail=f"outer was {outer.src}->{outer.dst}",
        )
        if self.on_inner is not None:
            self.on_inner(inner, outer)
            return
        if self.node.owns_address(inner.dst):
            self.node._local_deliver(inner)
        else:
            self.node.trace.note(
                self.node.now, self.node.name, "drop", inner,
                detail="decapsulated-inner-not-mine",
            )
