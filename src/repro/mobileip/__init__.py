"""Mobile IP on the simulator: agents, hosts, registration, DNS.

The cast of the paper's figures:

* :class:`HomeAgent` — proxy-ARP capture, binding table, In-IE tunnel,
  reverse-tunnel endpoint, optional ICMP care-of advisories.
* :class:`MobileHost` — the self-sufficient mobile host with the §7
  route-override framework and the :class:`~repro.core.MobilityEngine`.
* :class:`CorrespondentHost` — conventional / decapsulation-capable /
  mobile-aware correspondents (Figure 10's rows).
* :class:`ForeignAgent` — the IETF alternative, for comparison.
* :class:`DNSServer` / :class:`Resolver` — the §3.2 temporary-address
  record extension.
"""

from .binding import Binding, BindingTable
from .correspondent import Awareness, CorrespondentHost
from .dns import (
    DNS_PORT,
    DNSAnswer,
    DNSQuery,
    DNSServer,
    DNSUpdate,
    DNSUpdateAck,
    Resolver,
)
from .foreign_agent import ForeignAgent
from .home_agent import HomeAgent
from .mobile_host import MobileHost
from .registration import (
    MOBILE_IP_PORT,
    AgentAdvertisement,
    AgentSolicitation,
    RegistrationReply,
    RegistrationRequest,
    ReplyCode,
)
from .tunnel import TunnelEndpoint

__all__ = [
    "Binding",
    "BindingTable",
    "Awareness",
    "CorrespondentHost",
    "DNS_PORT",
    "DNSAnswer",
    "DNSQuery",
    "DNSServer",
    "DNSUpdate",
    "DNSUpdateAck",
    "Resolver",
    "ForeignAgent",
    "HomeAgent",
    "MobileHost",
    "MOBILE_IP_PORT",
    "AgentAdvertisement",
    "AgentSolicitation",
    "RegistrationReply",
    "RegistrationRequest",
    "ReplyCode",
    "TunnelEndpoint",
]
