"""The mobile host: self-sufficient Mobile IP per the paper.

    "Our implementation of the protocol emphasizes self-sufficiency for
    mobile hosts.  They connect directly to the Internet and operate
    independently without requiring a foreign agent."

A :class:`MobileHost` is a :class:`~repro.netsim.node.Node` carrying:

* a permanent **home address** that never changes (§2);
* a :class:`~repro.core.decision.MobilityEngine` making the §7.1
  decisions, installed as the transport stack's source selector and
  observer;
* the §7 **route override**: every originated packet passes the
  mobility policy check before the normal routing table; home-address
  packets are dispatched per the engine's chosen
  :class:`~repro.core.modes.OutMode` (the encapsulating modes go
  through the virtual-interface tunnel endpoint, which "encapsulates
  the packet and resubmits it to IP");
* a registration client (UDP 434, retries with backoff) that sends its
  requests from the care-of address — the §6.4 bootstrap case;
* decapsulation of In-IE/In-DE arrivals and direct reception of In-DH
  (its interface keeps the home address configured as a secondary
  while away, so link-layer-direct frames addressed to the home
  address are accepted);
* movement: DHCP-style care-of acquisition when attaching to a visited
  domain, IETF foreign-agent attachment as an alternative, and
  returning home (gratuitous ARP to reclaim the home address).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Set, Tuple

from ..core.decision import MobilityEngine
from ..core.modes import OutMode
from ..core.policy import MobilityPolicyTable
from ..core.selection import ProbeStrategy
from ..netsim.addressing import IPAddress, Network
from ..netsim.encap import EncapScheme
from ..netsim.node import Node, RouteTarget, VirtualRoute
from ..netsim.packet import Packet
from ..transport.sockets import TransportStack
from .registration import (
    MOBILE_IP_PORT,
    RegistrationReply,
    RegistrationRequest,
    compute_authenticator,
)
from .tunnel import TunnelEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.simulator import Simulator
    from ..netsim.topology import Internet
    from .foreign_agent import ForeignAgent

__all__ = ["MobileHost"]

REGISTRATION_RETRY_INTERVAL = 1.0   # base (first) retry delay
REGISTRATION_RETRY_CAP = 16.0       # backoff ceiling
REGISTRATION_RETRY_JITTER = 0.1     # up to +10% random spread per retry
REGISTRATION_MAX_RETRIES = 4
REREGISTER_AFTER_GIVEUP = 30.0      # keep trying (slowly) after give-up
DEFAULT_REG_LIFETIME = 300.0
# Failed-mode aging defaults for the engine's delivery cache: a failure
# verdict expires after this long, and a sustained success run clears
# the whole failed set (see repro.core.selection).
FAILED_MODE_TTL = 30.0
FORGIVE_AFTER_SUCCESSES = 8


class MobileHost(Node):
    """A self-sufficient Mobile IP host."""

    def __init__(
        self,
        name: str,
        simulator: "Simulator",
        home_address: IPAddress,
        home_network: Network,
        home_agent_address: IPAddress,
        strategy: ProbeStrategy = ProbeStrategy.RULE_SEEDED,
        policy: Optional[MobilityPolicyTable] = None,
        scheme: EncapScheme = EncapScheme.IPIP,
        privacy: bool = False,
        reg_lifetime: float = DEFAULT_REG_LIFETIME,
        auto_reregister: bool = True,
        auth_key: Optional[str] = None,
    ):
        """``auto_reregister`` keeps the home-agent binding alive by
        re-registering at 80% of the lifetime, the way a real client
        must (a silent host falls out of the binding table and becomes
        unreachable at its home address)."""
        super().__init__(name, simulator)
        self.home_address = IPAddress(home_address)
        self.home_network = home_network
        self.home_agent_address = IPAddress(home_agent_address)
        self.reg_lifetime = reg_lifetime
        # Shared registration key; when set, every request carries the
        # keyed authenticator the home agent demands (see
        # repro.mobileip.registration).
        self.auth_key = auth_key

        self.engine = MobilityEngine(
            self.home_address,
            strategy=strategy,
            policy=policy,
            privacy=privacy,
            clock=lambda: simulator.clock.now,
            failed_ttl=FAILED_MODE_TTL,
            forgive_after=FORGIVE_AFTER_SUCCESSES,
        )
        self.engine.physical_addresses = self._physical_addresses
        self.engine.care_of_address = lambda: self.care_of
        self.engine.same_segment_test = self._same_segment
        self.engine.at_home_test = lambda: self.at_home
        self.engine.control_addresses = lambda: {self.home_agent_address}

        self.stack = TransportStack(self)
        self.stack.source_selector = self.engine.select_source
        self.stack.observers.append(self.engine)

        self.tunnel = TunnelEndpoint(self, scheme=scheme, on_inner=self._tunnel_inner)
        self.route_overrides.append(self._mobility_route_override)

        self._reg_socket = self.stack.udp_socket(MOBILE_IP_PORT)
        self._reg_socket.on_receive(self._registration_reply_input)
        self.icmp_hooks.append(self._icmp_hook)

        # Attachment state.
        self.at_home = True
        self.care_of: Optional[IPAddress] = None
        self.registered = False
        self.via_foreign_agent: Optional["ForeignAgent"] = None
        self.current_domain: Optional[str] = None
        self._current_allocation: Optional[Tuple[str, IPAddress]] = None
        self._iface_name = "eth0"

        # Registration client state.
        self._pending_ident: Optional[int] = None
        self._pending_retry = None
        self._pending_retries = 0
        self._giveup_retry = None
        self.registration_failures = 0
        self.on_registered: Optional[Callable[[RegistrationReply], None]] = None
        self.on_registration_failed: Optional[Callable[[str], None]] = None
        # Agent discovery: advertisements heard on the current LAN.
        self.discovered_agents: dict = {}
        self.on_agent_discovered: Optional[Callable] = None
        # Binding keep-alive.
        self.auto_reregister = auto_reregister
        self._refresh_timer = None
        self.registration_attempts = 0
        self.moves = 0
        metrics = simulator.metrics
        metrics.counter("mh.moves", read=lambda: self.moves, node=name)
        metrics.counter("mh.registration_attempts",
                        read=lambda: self.registration_attempts, node=name)
        metrics.counter("mh.registration_failures",
                        read=lambda: self.registration_failures, node=name)
        metrics.counter("mh.engine_decisions",
                        read=lambda: self.engine.decisions_made, node=name)
        metrics.counter("mh.mode_changes",
                        read=lambda: self.engine.cache.total_mode_changes(),
                        node=name)
        metrics.gauge("mh.registered",
                      read=lambda: 1 if self.registered else 0, node=name)

    # ------------------------------------------------------------------
    # Attachment and movement
    # ------------------------------------------------------------------
    def ff_flow_signature(self, dst):
        # Mobile-host sends route through the §7 decision engine, whose
        # knowledge/cache/detector state mutates on every dispatch in
        # ways a capture cannot verify from the outside.  Never
        # fast-forward flows originating here.
        return None

    def attach_home(self, internet: "Internet", domain_name: str) -> None:
        """Initial placement on the home network with the home address."""
        internet.add_host(domain_name, self, address=self.home_address)
        self._iface_name = self._newest_iface_name()
        self.at_home = True
        self.care_of = None
        self.current_domain = domain_name

    def move_to(
        self,
        internet: "Internet",
        domain_name: str,
        register: bool = True,
        lifetime: Optional[float] = None,
    ) -> IPAddress:
        """Move to a visited domain, acquiring a care-of address by the
        DHCP-style allocator ("having an address assigned automatically
        by DHCP", §2), and register the new location with the home
        agent.  Returns the new care-of address."""
        self._detach_current(internet)
        care_of = internet.add_host(domain_name, self)
        self._iface_name = self._newest_iface_name()
        iface = self.interfaces[self._iface_name]
        # Keep the home address configured so In-DH frames and
        # decapsulated inner packets addressed to it are accepted.
        iface.add_secondary(self.home_address)
        self._current_allocation = (domain_name, care_of)
        self.care_of = care_of
        self.at_home = False
        self.via_foreign_agent = None
        self.current_domain = domain_name
        self.registered = False
        self.moves += 1
        self.engine.on_moved()
        if register:
            self.register_with_home_agent(
                lifetime if lifetime is not None else self.reg_lifetime
            )
        return care_of

    def move_to_foreign_agent(
        self,
        internet: "Internet",
        domain_name: str,
        agent: "ForeignAgent",
        register: bool = True,
        lifetime: Optional[float] = None,
    ) -> None:
        """IETF foreign-agent attachment: no address of our own; the
        FA's address is the care-of address and the FA relays the
        registration and delivers the final hop (§2, §5 In-DH)."""
        self._detach_current(internet)
        domain = internet.domains[domain_name]
        lan = internet.sim.segments[domain.lan_segment_name]
        iface = self.add_interface(f"eth{len(self.interfaces)}", lan)
        iface.add_secondary(self.home_address)
        self._iface_name = iface.name
        self.care_of = agent.care_of_address
        self.at_home = False
        self.via_foreign_agent = agent
        self.current_domain = domain_name
        self.registered = False
        self.moves += 1
        self.engine.on_moved()
        # All traffic leaves at the link layer via the agent.
        self.routes.clear()
        self.routes.add(domain.prefix, iface.name)
        self.routes.add_default(iface.name, agent.advertised_address)
        if register:
            request = self._build_request(
                agent.care_of_address,
                lifetime if lifetime is not None else self.reg_lifetime,
            )
            # The FA relays; arm the reply matcher so the relayed reply
            # is recognized (the FA hands it to our registration input).
            self._pending_ident = request.ident
            self._pending_retries = 0
            self.registration_attempts += 1
            agent.relay_registration_from(self, request)

    def return_home(self, internet: "Internet", home_domain: str) -> None:
        """Come home: deregister, reclaim the home address with
        gratuitous ARP, and resume life as "a normal non-mobile
        Internet host" (§2)."""
        self._detach_current(internet)
        internet.add_host(home_domain, self, address=self.home_address, claim=False)
        self._iface_name = self._newest_iface_name()
        self.at_home = True
        self.care_of = None
        self.via_foreign_agent = None
        self.current_domain = home_domain
        self.moves += 1
        self.engine.on_moved()
        # Reclaim the address from the home agent's proxy ARP.
        iface = self.interfaces[self._iface_name]
        self.arp.announce(iface, self.home_address)
        self._send_deregistration()

    def _detach_current(self, internet: "Internet") -> None:
        for iface_name in list(self.interfaces):
            internet.detach_host(self, iface_name)
            del self.interfaces[iface_name]
        if self._current_allocation is not None:
            domain_name, address = self._current_allocation
            internet.domains[domain_name].allocator.release(address)
            self._current_allocation = None
        self._cancel_pending_registration()
        self._cancel_refresh()

    def _newest_iface_name(self) -> str:
        return sorted(self.interfaces)[-1]

    # ------------------------------------------------------------------
    # Registration client
    # ------------------------------------------------------------------
    def register_with_home_agent(self, lifetime: Optional[float] = None) -> None:
        if self.care_of is None:
            raise RuntimeError("cannot register without a care-of address")
        request = self._build_request(
            self.care_of,
            lifetime if lifetime is not None else self.reg_lifetime,
        )
        self._send_registration(request)

    def _build_request(
        self, care_of: IPAddress, lifetime: float
    ) -> RegistrationRequest:
        ident = self.simulator.next_token()
        auth = (
            compute_authenticator(
                self.auth_key, self.home_address, care_of, lifetime, ident
            )
            if self.auth_key is not None
            else None
        )
        return RegistrationRequest(
            home_address=self.home_address,
            care_of_address=care_of,
            lifetime=lifetime,
            ident=ident,
            auth=auth,
        )

    def _send_registration(self, request: RegistrationRequest) -> None:
        self._cancel_pending_registration()
        self._pending_ident = request.ident
        self._pending_retries = 0
        self.registration_attempts += 1
        self._emit_registration(request)
        self._arm_registration_retry(request)

    def _emit_registration(self, request: RegistrationRequest) -> None:
        # §6.4: registration itself uses the temporary address (Out-DT)
        # — "until it has registered with the home agent the other
        # Mobile IP delivery services are not available."
        self._reg_socket.sendto(
            request,
            request.size,
            self.home_agent_address,
            MOBILE_IP_PORT,
            src_override=self.care_of if not self.at_home else self.home_address,
            is_retransmission=self._pending_retries > 0,
        )

    def _retry_delay(self) -> float:
        """Exponential backoff with jitter for registration retries.

        The first arm (no retries yet) uses the exact base interval and
        draws no randomness — the common, healthy case where the reply
        arrives long before the timer fires must not perturb the seeded
        RNG stream.  Actual retries back off exponentially up to a cap
        and add up to +10% jitter so a fleet of hosts knocked offline by
        the same outage does not re-register in lockstep.
        """
        delay = min(
            REGISTRATION_RETRY_INTERVAL * (2 ** self._pending_retries),
            REGISTRATION_RETRY_CAP,
        )
        if self._pending_retries:
            delay *= 1.0 + REGISTRATION_RETRY_JITTER * self.simulator.rng.random()
        return delay

    def _arm_registration_retry(self, request: RegistrationRequest) -> None:
        def retry() -> None:
            if self._pending_ident != request.ident:
                return
            if self._pending_retries >= REGISTRATION_MAX_RETRIES:
                # Give up on this cycle — but a mobile host away from
                # home cannot simply stop: its binding is expiring (or
                # gone), so it keeps trying on a slow cadence until the
                # home agent answers again.
                self._pending_retry = None
                self._pending_ident = None
                self.registered = False
                self.registration_failures += 1
                if self.on_registration_failed is not None:
                    self.on_registration_failed("registration-timeout")
                self._arm_reregister_after_giveup()
                return
            self._pending_retries += 1
            self.registration_attempts += 1
            self._emit_registration(request)
            self._pending_retry = self.simulator.events.schedule(
                self._retry_delay(), retry, label=f"{self.name}:reg-retry"
            )

        self._pending_retry = self.simulator.events.schedule(
            self._retry_delay(), retry, label=f"{self.name}:reg-retry"
        )

    def _arm_reregister_after_giveup(self) -> None:
        if self.at_home or self.care_of is None or self.via_foreign_agent:
            return

        def reregister() -> None:
            self._giveup_retry = None
            if self.at_home or self.care_of is None or self.via_foreign_agent:
                return
            self.register_with_home_agent(self.reg_lifetime)

        self._giveup_retry = self.simulator.events.schedule(
            REREGISTER_AFTER_GIVEUP, reregister, label=f"{self.name}:reg-giveup-retry"
        )

    def _cancel_pending_registration(self) -> None:
        if self._pending_retry is not None:
            self._pending_retry.cancel()
            self._pending_retry = None
        if self._giveup_retry is not None:
            self._giveup_retry.cancel()
            self._giveup_retry = None
        self._pending_ident = None

    def _registration_reply_input(
        self, data: object, size: int, src_ip: IPAddress, src_port: int
    ) -> None:
        from .registration import AgentAdvertisement

        if isinstance(data, AgentAdvertisement):
            # Agent discovery: a foreign agent announced itself on our
            # current LAN (§2: connection "may be obtained via
            # communication with an IETF 'foreign agent'").
            self.discovered_agents[data.agent_address] = data
            if self.on_agent_discovered is not None:
                self.on_agent_discovered(data)
            return
        if not isinstance(data, RegistrationReply):
            return
        if data.ident != self._pending_ident:
            return  # stale or duplicate reply
        self._cancel_pending_registration()
        if data.accepted and data.lifetime > 0:
            self.registered = True
            if self.auto_reregister:
                self._arm_refresh(data.lifetime)
        if self.on_registered is not None:
            self.on_registered(data)

    def _arm_refresh(self, lifetime: float) -> None:
        """Re-register at 80% of the granted lifetime."""
        self._cancel_refresh()

        def refresh() -> None:
            self._refresh_timer = None
            if self.at_home or self.care_of is None or self.via_foreign_agent:
                return
            self.register_with_home_agent(self.reg_lifetime)

        self._refresh_timer = self.simulator.events.schedule(
            lifetime * 0.8, refresh, label=f"{self.name}:reg-refresh"
        )

    def _cancel_refresh(self) -> None:
        if self._refresh_timer is not None:
            self._refresh_timer.cancel()
            self._refresh_timer = None

    def _send_deregistration(self) -> None:
        request = self._build_request(self.home_address, 0.0)
        self.registered = False
        self._send_registration(request)

    # ------------------------------------------------------------------
    # Agent solicitation
    # ------------------------------------------------------------------
    def solicit_agents(self) -> None:
        """Broadcast an agent solicitation on the current LAN.

        A foreign agent that hears it answers with an advertisement
        (delivered to the registration socket and surfaced through
        ``on_agent_discovered``) — the active half of §2's discovery,
        for a host that does not want to wait for the periodic beacon.
        """
        from ..netsim.addressing import LIMITED_BROADCAST
        from .registration import AgentSolicitation

        sender = self.care_of if self.care_of is not None else self.home_address
        solicitation = AgentSolicitation(sender=sender)
        self._reg_socket.sendto(
            solicitation, solicitation.size, LIMITED_BROADCAST, MOBILE_IP_PORT,
            src_override=sender,
        )

    # ------------------------------------------------------------------
    # DNS temporary-address registration (§3.2)
    # ------------------------------------------------------------------
    def update_dns(
        self,
        name: str,
        dns_server: IPAddress,
        lifetime: float = 60.0,
        withdraw: bool = False,
    ) -> None:
        """Register (or withdraw) the care-of address with the extended
        DNS service (§3.2) — a host "not currently changing location
        frequently" advertises where smart correspondents can reach it.

        The update travels as an ordinary UDP datagram to port 53, so
        the §7.1.1 heuristics naturally send it Out-DT.
        """
        from .dns import DNS_PORT, DNSUpdate

        if not withdraw and self.care_of is None:
            raise RuntimeError("no care-of address to register with DNS")
        update = DNSUpdate(
            name=name,
            ident=self.simulator.next_token(),
            care_of=None if withdraw else self.care_of,
            lifetime=lifetime,
        )
        socket = self.stack.udp_socket()
        socket.on_receive(lambda *args: socket.close())
        socket.sendto(update, update.size, IPAddress(dns_server), DNS_PORT)

    # ------------------------------------------------------------------
    # The §7 route override
    # ------------------------------------------------------------------
    def _mobility_route_override(self, packet: Packet) -> Optional[RouteTarget]:
        if self.at_home or self.care_of is None:
            return None  # at home: completely conventional operation
        if packet.dst.is_multicast or packet.dst.is_broadcast:
            return None  # §6.4: multicast uses the real local interface
        if self.via_foreign_agent is not None:
            return None  # FA mode restricts us to plain sends (see §2)
        if packet.src != self.home_address:
            return None  # Out-DT or infrastructure traffic: normal path
        if packet.dst == self.home_agent_address:
            return None  # registration/control traffic to the HA itself

        mode = self.engine.out_mode_for(packet.dst)
        self.trace.note(
            self.now, self.name, "mode-select", packet, detail=mode.value
        )
        if mode is OutMode.OUT_IE:
            return VirtualRoute(
                handler=lambda p: self.tunnel.send_encapsulated(
                    p, self.care_of, self.home_agent_address
                ),
                name="Out-IE",
            )
        if mode is OutMode.OUT_DE:
            return VirtualRoute(
                handler=lambda p: self.tunnel.send_encapsulated(
                    p, self.care_of, p.dst
                ),
                name="Out-DE",
            )
        # Out-DH: a plain packet.  On the same segment deliver it in one
        # link-layer hop (Row C); otherwise let the normal table route it.
        if self._same_segment(packet.dst):
            return VirtualRoute(
                handler=lambda p: self.link_send_direct(
                    self._iface_name, p, p.dst
                ),
                name="Out-DH-link-direct",
            )
        return None

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def _tunnel_inner(self, inner: Packet, outer: Packet) -> None:
        if outer.src != self.home_agent_address and outer.src == inner.src:
            # In-DE: the correspondent encapsulated this itself, so it
            # is demonstrably mobile-aware (§5).
            self.engine.learn(outer.src, mobile_aware=True)
        if self.owns_address(inner.dst) or (
            inner.dst.is_multicast and inner.dst in self.multicast_groups
        ):
            # The multicast case is §6.4's home-tunnel path: the home
            # network relays a joined group's stream through the tunnel.
            self._local_deliver(inner)
        else:
            self.trace.note(
                self.now, self.name, "drop", inner,
                detail="decapsulated-inner-not-mine",
            )

    def _icmp_hook(self, packet: Packet, message) -> None:
        """Use ICMP errors as an extra knowledge source (extension).

        A protocol-unreachable from a correspondent means it cannot
        decapsulate — Out-DE can be skipped for it from now on instead
        of being rediscovered by retransmission timeouts each time.
        """
        from ..netsim.icmp import IcmpType, UnreachableCode, UnreachableData

        if message.icmp_type is not IcmpType.DEST_UNREACHABLE:
            return
        data = message.data
        if not isinstance(data, UnreachableData):
            return
        if data.code is UnreachableCode.PROTO_UNREACHABLE:
            self.engine.learn(packet.src, decap_capable=False)
            self.engine._on_suspect(packet.src, "icmp-proto-unreachable")

    # ------------------------------------------------------------------
    # Engine callbacks
    # ------------------------------------------------------------------
    def _physical_addresses(self) -> Set[IPAddress]:
        addresses: Set[IPAddress] = set()
        for iface in self.interfaces.values():
            if iface.ip is not None:
                addresses.add(iface.ip)
        return addresses

    def _same_segment(self, dst: IPAddress) -> bool:
        for iface in self.interfaces.values():
            if iface.segment is None or not iface.up:
                continue
            if iface.network is not None and iface.network.contains(dst):
                return dst != iface.ip
        return False
