"""The DNS extension of §3.2: temporary-address records.

    "The second is an extension to the Domain Name Service, similar to
    the current MX records which provide alternative addresses for mail
    delivery.  A mobile host that is away from home, but not currently
    changing location frequently, could register its care-of address
    with the extended DNS service.  When a smart correspondent looks up
    a host name and sees that it has a temporary address record in
    addition to the normal permanent address record, it then knows that
    it has the option to send packets directly to that temporary
    address."

:class:`DNSServer` is an in-simulator name server holding conventional
A records plus "TMP" records (the MX-like extension).  Mobile hosts
register/withdraw their care-of address; correspondents query over UDP
port 53.  A mobile-aware correspondent that sees a TMP record installs
a binding and upgrades to In-DE; a conventional resolver simply ignores
the extra record — the backward-compatibility property the paper's
design requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

from ..netsim.addressing import IPAddress
from ..netsim.node import Node
from ..transport.sockets import TransportStack, UDPSocket

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.simulator import Simulator

__all__ = [
    "DNS_PORT",
    "DNSQuery",
    "DNSAnswer",
    "DNSUpdate",
    "DNSUpdateAck",
    "DNSServer",
    "Resolver",
]

DNS_PORT = 53
QUERY_SIZE = 32
ANSWER_SIZE = 48
UPDATE_SIZE = 40


@dataclass(frozen=True)
class DNSQuery:
    name: str
    ident: int
    want_tmp: bool = True   # smart resolvers ask for temporary records too

    @property
    def size(self) -> int:
        return QUERY_SIZE + len(self.name)


@dataclass(frozen=True)
class DNSAnswer:
    name: str
    ident: int
    address: Optional[IPAddress]          # the permanent A record
    temporary: Optional[IPAddress] = None  # the §3.2 TMP record
    tmp_lifetime: float = 60.0

    @property
    def size(self) -> int:
        return ANSWER_SIZE + len(self.name)


@dataclass(frozen=True)
class DNSUpdate:
    """A mobile host registering/withdrawing its TMP record remotely.

    §3.2: "a mobile host that is away from home, but not currently
    changing location frequently, could register its care-of address
    with the extended DNS service."  ``care_of=None`` withdraws.
    A real deployment would authenticate this (like RFC 2136 dynamic
    update); the simulator has no adversaries.
    """

    name: str
    ident: int
    care_of: Optional[IPAddress] = None
    lifetime: float = 60.0

    @property
    def size(self) -> int:
        return UPDATE_SIZE + len(self.name)


@dataclass(frozen=True)
class DNSUpdateAck:
    ident: int
    ok: bool

    @property
    def size(self) -> int:
        return 12


@dataclass
class _ZoneEntry:
    address: IPAddress
    temporary: Optional[IPAddress] = None
    tmp_registered_at: float = 0.0
    tmp_lifetime: float = 0.0


class DNSServer(Node):
    """An authoritative name server with the TMP-record extension."""

    def __init__(self, name: str, simulator: "Simulator"):
        super().__init__(name, simulator)
        self.stack = TransportStack(self)
        self._socket = self.stack.udp_socket(DNS_PORT)
        self._socket.on_receive(self._query_input)
        self._zone: Dict[str, _ZoneEntry] = {}
        self.queries_served = 0

    # ------------------------------------------------------------------
    # Zone management
    # ------------------------------------------------------------------
    def add_record(self, name: str, address: IPAddress) -> None:
        self._zone[name] = _ZoneEntry(IPAddress(address))

    def register_temporary(
        self, name: str, care_of: IPAddress, lifetime: float = 60.0
    ) -> None:
        """Install a TMP record (the mobile host's registration)."""
        entry = self._zone.get(name)
        if entry is None:
            raise KeyError(f"no A record for {name!r}")
        entry.temporary = IPAddress(care_of)
        entry.tmp_registered_at = self.now
        entry.tmp_lifetime = lifetime

    def withdraw_temporary(self, name: str) -> None:
        entry = self._zone.get(name)
        if entry is not None:
            entry.temporary = None

    def _current_tmp(self, entry: _ZoneEntry) -> Optional[IPAddress]:
        if entry.temporary is None:
            return None
        if self.now - entry.tmp_registered_at > entry.tmp_lifetime:
            entry.temporary = None
            return None
        return entry.temporary

    # ------------------------------------------------------------------
    # Query service
    # ------------------------------------------------------------------
    def _query_input(
        self, data: object, size: int, src_ip: IPAddress, src_port: int
    ) -> None:
        if isinstance(data, DNSUpdate):
            self._update_input(data, src_ip, src_port)
            return
        if not isinstance(data, DNSQuery):
            return
        self.queries_served += 1
        entry = self._zone.get(data.name)
        if entry is None:
            answer = DNSAnswer(data.name, data.ident, None)
        else:
            tmp = self._current_tmp(entry) if data.want_tmp else None
            answer = DNSAnswer(
                data.name,
                data.ident,
                entry.address,
                temporary=tmp,
                tmp_lifetime=entry.tmp_lifetime,
            )
        self._socket.sendto(answer, answer.size, src_ip, src_port)

    def _update_input(
        self, update: DNSUpdate, src_ip: IPAddress, src_port: int
    ) -> None:
        """Handle a remote TMP-record registration/withdrawal."""
        ok = True
        try:
            if update.care_of is None:
                self.withdraw_temporary(update.name)
            else:
                self.register_temporary(
                    update.name, update.care_of, update.lifetime
                )
        except KeyError:
            ok = False
        ack = DNSUpdateAck(update.ident, ok)
        self._socket.sendto(ack, ack.size, src_ip, src_port)


class Resolver:
    """Client-side stub resolver for any node with a transport stack.

    ``want_tmp=False`` models a conventional resolver that never asks
    for (and would ignore) temporary records.
    """

    def __init__(self, stack: TransportStack, server: IPAddress, want_tmp: bool = True):
        self.stack = stack
        self.server = IPAddress(server)
        self.want_tmp = want_tmp
        self._socket: UDPSocket = stack.udp_socket()
        self._socket.on_receive(self._answer_input)
        self._pending: Dict[int, Callable[[DNSAnswer], None]] = {}
        self.lookups = 0

    def lookup(self, name: str, callback: Callable[[DNSAnswer], None]) -> int:
        ident = self.stack.node.simulator.next_token()
        self._pending[ident] = callback
        self.lookups += 1
        query = DNSQuery(name, ident, want_tmp=self.want_tmp)
        self._socket.sendto(query, query.size, self.server, DNS_PORT)
        return ident

    def _answer_input(
        self, data: object, size: int, src_ip: IPAddress, src_port: int
    ) -> None:
        if not isinstance(data, DNSAnswer):
            return
        callback = self._pending.pop(data.ident, None)
        if callback is not None:
            callback(data)
