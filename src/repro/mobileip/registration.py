"""The registration protocol between mobile host and home agent (§2).

    "After the mobile host has connected to the visited network
    (directly, or via a foreign agent), it registers its new location
    with its home agent."

Message formats follow the IETF draft's shape (request/reply with
lifetime and a match identifier) without its authentication extensions
— the simulator has no adversaries registering bindings.  Registration
runs over UDP port 434 (the real Mobile IP port).  Note the §6.4
bootstrap observation, reproduced faithfully here: the request is sent
*from the care-of address* (In-DT/Out-DT), "since until it has
registered with the home agent the other Mobile IP delivery services
are not available."
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from ..netsim.addressing import IPAddress

__all__ = [
    "MOBILE_IP_PORT",
    "ReplyCode",
    "RegistrationRequest",
    "RegistrationReply",
    "AgentAdvertisement",
    "AgentSolicitation",
]

MOBILE_IP_PORT = 434
REQUEST_SIZE = 28        # fixed part of the real request
REPLY_SIZE = 20
ADVERT_SIZE = 24


class ReplyCode(IntEnum):
    """Registration reply codes (subset of the IETF draft's)."""

    ACCEPTED = 0
    DENIED_UNKNOWN_HOME_ADDRESS = 128
    DENIED_TOO_MANY_BINDINGS = 129
    DENIED_LIFETIME_TOO_LONG = 130
    DENIED_FA_UNREACHABLE = 136


@dataclass(frozen=True)
class RegistrationRequest:
    """MH -> HA (possibly relayed by a foreign agent).

    A ``lifetime`` of 0 is a deregistration: the mobile host has
    returned home (or wants the binding dropped).
    """

    home_address: IPAddress
    care_of_address: IPAddress
    lifetime: float
    ident: int

    @property
    def is_deregistration(self) -> bool:
        return self.lifetime <= 0

    @property
    def size(self) -> int:
        return REQUEST_SIZE


@dataclass(frozen=True)
class RegistrationReply:
    """HA -> MH (possibly relayed by a foreign agent)."""

    code: ReplyCode
    home_address: IPAddress
    lifetime: float
    ident: int

    @property
    def accepted(self) -> bool:
        return self.code is ReplyCode.ACCEPTED

    @property
    def size(self) -> int:
        return REPLY_SIZE


@dataclass(frozen=True)
class AgentAdvertisement:
    """Foreign agent's periodic presence announcement on its LAN.

    ``care_of_address`` is the FA's own address — in IETF
    foreign-agent mode, visiting hosts register the FA's address as
    their care-of address and receive final-hop delivery at the link
    layer (paper §5, In-DH: "the foreign agent uses this delivery
    technique to deliver the packet over the final hop").
    """

    agent_address: IPAddress
    care_of_address: IPAddress
    lifetime: float = 300.0

    @property
    def size(self) -> int:
        return ADVERT_SIZE


@dataclass(frozen=True)
class AgentSolicitation:
    """A newly-arrived mobile host asking whether an FA is present."""

    sender: IPAddress

    @property
    def size(self) -> int:
        return 8
