"""The registration protocol between mobile host and home agent (§2).

    "After the mobile host has connected to the visited network
    (directly, or via a foreign agent), it registers its new location
    with its home agent."

Message formats follow the IETF draft's shape (request/reply with
lifetime and a match identifier).  The RFC 2002-shape authentication
extension is modelled too — optional, and off by default, because the
paper's own scenarios have no adversaries registering bindings; the
hardening scenarios of :mod:`repro.verify` turn it on.  A request may
carry a keyed authenticator (:func:`compute_authenticator`) over its
fixed fields; a home agent configured with the same key rejects
requests whose authenticator is absent or wrong
(``DENIED_FAILED_AUTHENTICATION``) and requests whose ``ident`` does
not advance past the last accepted one for that home address
(``DENIED_IDENT_MISMATCH`` — replay protection, the draft's
"identification" field).  Registration runs over UDP port 434 (the
real Mobile IP port).  Note the §6.4 bootstrap observation, reproduced
faithfully here: the request is sent *from the care-of address*
(In-DT/Out-DT), "since until it has registered with the home agent the
other Mobile IP delivery services are not available."
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import IntEnum
from typing import Optional

from ..netsim.addressing import IPAddress

__all__ = [
    "MOBILE_IP_PORT",
    "ReplyCode",
    "RegistrationRequest",
    "RegistrationReply",
    "AgentAdvertisement",
    "AgentSolicitation",
    "compute_authenticator",
]

MOBILE_IP_PORT = 434
REQUEST_SIZE = 28        # fixed part of the real request
REPLY_SIZE = 20
ADVERT_SIZE = 24
# Mobile-Home authentication extension: type + length + SPI + a
# 16-byte keyed digest (RFC 2002 §3.5.2's default algorithm).
AUTH_EXT_SIZE = 22


class ReplyCode(IntEnum):
    """Registration reply codes (subset of the IETF draft's)."""

    ACCEPTED = 0
    DENIED_UNKNOWN_HOME_ADDRESS = 128
    DENIED_TOO_MANY_BINDINGS = 129
    DENIED_LIFETIME_TOO_LONG = 130
    DENIED_FAILED_AUTHENTICATION = 131
    DENIED_IDENT_MISMATCH = 133
    DENIED_FA_UNREACHABLE = 136


def compute_authenticator(
    key: str,
    home_address: IPAddress,
    care_of_address: IPAddress,
    lifetime: float,
    ident: int,
) -> int:
    """Keyed digest over a registration request's fixed fields.

    Prefix-and-suffix keyed hashing, RFC 2002 §3.5.2 shape.  The value
    is deterministic (no RNG involved), so enabling authentication
    never perturbs the seeded random stream of a run.
    """
    digest = hashlib.sha256()
    digest.update(key.encode())
    digest.update(
        f"{home_address}|{care_of_address}|{lifetime!r}|{ident}".encode()
    )
    digest.update(key.encode())
    return int.from_bytes(digest.digest()[:8], "big")


@dataclass(frozen=True)
class RegistrationRequest:
    """MH -> HA (possibly relayed by a foreign agent).

    A ``lifetime`` of 0 is a deregistration: the mobile host has
    returned home (or wants the binding dropped).  ``auth`` is the
    optional keyed authenticator (:func:`compute_authenticator`);
    ``None`` means the extension is absent.
    """

    home_address: IPAddress
    care_of_address: IPAddress
    lifetime: float
    ident: int
    auth: Optional[int] = None

    @property
    def is_deregistration(self) -> bool:
        return self.lifetime <= 0

    @property
    def size(self) -> int:
        return REQUEST_SIZE + (AUTH_EXT_SIZE if self.auth is not None else 0)

    def authentic(self, key: str) -> bool:
        """Whether ``auth`` matches the keyed digest under ``key``."""
        return self.auth == compute_authenticator(
            key, self.home_address, self.care_of_address,
            self.lifetime, self.ident,
        )


@dataclass(frozen=True)
class RegistrationReply:
    """HA -> MH (possibly relayed by a foreign agent)."""

    code: ReplyCode
    home_address: IPAddress
    lifetime: float
    ident: int

    @property
    def accepted(self) -> bool:
        return self.code is ReplyCode.ACCEPTED

    @property
    def size(self) -> int:
        return REPLY_SIZE


@dataclass(frozen=True)
class AgentAdvertisement:
    """Foreign agent's periodic presence announcement on its LAN.

    ``care_of_address`` is the FA's own address — in IETF
    foreign-agent mode, visiting hosts register the FA's address as
    their care-of address and receive final-hop delivery at the link
    layer (paper §5, In-DH: "the foreign agent uses this delivery
    technique to deliver the packet over the final hop").
    """

    agent_address: IPAddress
    care_of_address: IPAddress
    lifetime: float = 300.0

    @property
    def size(self) -> int:
        return ADVERT_SIZE


@dataclass(frozen=True)
class AgentSolicitation:
    """A newly-arrived mobile host asking whether an FA is present."""

    sender: IPAddress

    @property
    def size(self) -> int:
        return 8
