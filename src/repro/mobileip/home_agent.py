"""The home agent (§2).

    "The home agent is a machine on the mobile host's home network that
    acts as a proxy on behalf of the mobile host for the duration of
    its absence.  The home agent uses gratuitous proxy ARP to capture
    all IP packets addressed to the mobile host.  When packets
    addressed to the mobile host arrive on its home network, the home
    agent intercepts them and uses encapsulation ... to forward them to
    the mobile host's current location."

Implemented behaviours:

* registration service on UDP 434 (accept/refresh/deregister bindings);
* gratuitous proxy ARP capture on the home LAN;
* In-IE forwarding: encapsulate captured packets to the care-of address;
* reverse-tunnel endpoint for Out-IE: decapsulate and re-send the inner
  packet "on behalf of the mobile host" (Figure 3);
* optional ICMP care-of advisories to correspondents (§3.2), rate-
  limited per correspondent so a packet flood does not become an
  advisory flood;
* mobile-to-mobile support: if a decapsulated inner packet is itself
  addressed to another registered mobile host, it is re-encapsulated
  toward that host's care-of address.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from ..netsim.addressing import IPAddress, Network
from ..netsim.encap import EncapError, EncapScheme
from ..netsim.icmp import CareOfAdvisory, IcmpMessage, IcmpType, make_icmp_packet
from ..netsim.link import Interface
from ..netsim.node import Node
from ..netsim.packet import Packet
from ..transport.sockets import TransportStack
from .binding import BindingTable, PoolBlock
from .registration import (
    MOBILE_IP_PORT,
    RegistrationReply,
    RegistrationRequest,
    ReplyCode,
)
from .tunnel import TunnelEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.simulator import Simulator

__all__ = ["HomeAgent"]

ADVISORY_MIN_INTERVAL = 10.0   # seconds between advisories per correspondent


class HomeAgent(Node):
    """A home agent serving mobile hosts of one home network."""

    def __init__(
        self,
        name: str,
        simulator: "Simulator",
        home_network: Network,
        scheme: EncapScheme = EncapScheme.IPIP,
        notify_correspondents: bool = False,
        max_bindings: int = 1024,
        advisory_lifetime: float = 60.0,
        auth_key: Optional[str] = None,
    ):
        super().__init__(name, simulator)
        self.home_network = home_network
        self.bindings = BindingTable()
        self.notify_correspondents = notify_correspondents
        self.max_bindings = max_bindings
        self.advisory_lifetime = advisory_lifetime
        # With a key configured every registration must carry a valid
        # authenticator AND a fresh (strictly increasing) ident; without
        # one the agent is as trusting as the paper's original design.
        self.auth_key = auth_key
        self._last_ident: Dict[IPAddress, int] = {}
        # Aggregate-expansion hook (see repro.netsim.population): called
        # with a captured destination before tunneling so a pooled host
        # can be promoted to a full node in time to receive the packet.
        self.promoter: Optional[Callable[[IPAddress], None]] = None
        self.tunnel = TunnelEndpoint(self, scheme=scheme, on_inner=self._reverse_inner)
        # Locally-originated traffic to a bound home address must be
        # captured too (ip_input only sees *arriving* packets).
        self.route_overrides.append(self._local_capture)
        self.stack = TransportStack(self)
        self._reg_socket = self.stack.udp_socket(MOBILE_IP_PORT)
        self._reg_socket.on_receive(self._registration_input)
        self._last_advisory: Dict[IPAddress, float] = {}
        self.packets_tunneled = 0
        self.packets_reverse_forwarded = 0
        self.advisories_sent = 0
        self.restarts = 0
        self.auth_failures = 0
        self.replays_rejected = 0
        self.encap_failures = 0
        metrics = simulator.metrics
        metrics.counter("ha.auth_failures",
                        read=lambda: self.auth_failures, node=name)
        metrics.counter("ha.replays_rejected",
                        read=lambda: self.replays_rejected, node=name)
        metrics.counter("ha.encap_failures",
                        read=lambda: self.encap_failures, node=name)
        metrics.counter("ha.restarts", read=lambda: self.restarts, node=name)
        metrics.counter("ha.packets_tunneled",
                        read=lambda: self.packets_tunneled, node=name)
        metrics.counter("ha.reverse_forwarded",
                        read=lambda: self.packets_reverse_forwarded, node=name)
        metrics.counter("ha.advisories_sent",
                        read=lambda: self.advisories_sent, node=name)
        metrics.gauge("ha.bindings", read=lambda: len(self.bindings), node=name)

    # ------------------------------------------------------------------
    # Registration service
    # ------------------------------------------------------------------
    def _registration_input(
        self, data: object, size: int, src_ip: IPAddress, src_port: int
    ) -> None:
        if not isinstance(data, RegistrationRequest):
            return
        reply = self._process_registration(data)
        self._reg_socket.sendto(reply, reply.size, src_ip, src_port)

    def _process_registration(self, request: RegistrationRequest) -> RegistrationReply:
        if not self.home_network.contains(request.home_address):
            return RegistrationReply(
                ReplyCode.DENIED_UNKNOWN_HOME_ADDRESS,
                request.home_address, 0.0, request.ident,
            )
        if self.auth_key is not None:
            if request.auth is None or not request.authentic(self.auth_key):
                self.auth_failures += 1
                return RegistrationReply(
                    ReplyCode.DENIED_FAILED_AUTHENTICATION,
                    request.home_address, 0.0, request.ident,
                )
            # Replay protection: idents are drawn from a monotonic
            # source, so a genuine request always advances past the last
            # accepted ident for its home address; a replayed capture
            # cannot.
            if request.ident <= self._last_ident.get(request.home_address, -1):
                self.replays_rejected += 1
                return RegistrationReply(
                    ReplyCode.DENIED_IDENT_MISMATCH,
                    request.home_address, 0.0, request.ident,
                )
            self._last_ident[request.home_address] = request.ident
        if request.is_deregistration:
            self._remove_binding(request.home_address)
            return RegistrationReply(
                ReplyCode.ACCEPTED, request.home_address, 0.0, request.ident
            )
        if (
            len(self.bindings) >= self.max_bindings
            and request.home_address not in self.bindings
        ):
            return RegistrationReply(
                ReplyCode.DENIED_TOO_MANY_BINDINGS,
                request.home_address, 0.0, request.ident,
            )
        self.bindings.register(
            request.home_address, request.care_of_address, self.now, request.lifetime
        )
        self._install_capture(request.home_address)
        return RegistrationReply(
            ReplyCode.ACCEPTED, request.home_address, request.lifetime, request.ident
        )

    def _home_iface(self) -> Interface:
        for iface in self.interfaces.values():
            if iface.network is not None and iface.network.overlaps(self.home_network):
                return iface
        raise RuntimeError(f"{self.name} has no interface on {self.home_network}")

    def _install_capture(self, home_address: IPAddress) -> None:
        """Gratuitous proxy ARP: claim the absent host's address."""
        iface = self._home_iface()
        self.arp.add_proxy(iface, home_address)
        self.arp.announce(iface, home_address)

    # ------------------------------------------------------------------
    # Bulk (pooled) registration — the SoA-backed path
    # ------------------------------------------------------------------
    def register_many(self, pool) -> PoolBlock:
        """Administratively install bindings for a whole host pool.

        ``pool`` is a :class:`~repro.netsim.population.HostPool` (or
        anything with ``home_base``/``size`` and ``care_of``/
        ``registered_at``/``lifetime`` arrays).  The arrays are adopted
        by reference into one :class:`~repro.mobileip.binding.PoolBlock`
        — a million bindings without a million ``Binding`` objects —
        and the whole home-address block is captured with a single
        proxy-ARP range entry instead of per-host proxy state.

        Silent by design: no registration packets, no trace entries, no
        gratuitous announces.  Both the pooled and the eagerly
        materialized build modes install registrations this way with
        identical timestamps, which is half of the digest-neutrality
        argument (the other half is that promotion writes no trace).
        """
        block = self.bindings.register_many(
            pool.home_base, pool.size, pool.care_of,
            pool.registered_at, pool.lifetime,
        )
        iface = self._home_iface()
        self.arp.add_proxy_range(iface, pool.home_base, pool.size)
        return block

    def _remove_binding(self, home_address: IPAddress) -> None:
        self.bindings.deregister(home_address)
        iface = self._home_iface()
        self.arp.remove_proxy(iface, home_address)

    # ------------------------------------------------------------------
    # Crash / restart (fault injection)
    # ------------------------------------------------------------------
    def restart(self, flush_bindings: bool = True) -> None:
        """Come back from a crash.

        With ``flush_bindings`` (the realistic default for an agent
        keeping soft state in memory) every binding — and its proxy-ARP
        capture — is lost; absent mobile hosts are unreachable at their
        home addresses until their registration retries get through
        again.  ``flush_bindings=False`` models an agent with stable
        storage: bindings survive, only the outage window is lost.
        All interfaces come back up either way.
        """
        if flush_bindings:
            iface = self._home_iface()
            for binding in list(self.bindings.active(self.now)):
                self.arp.remove_proxy(iface, binding.home_address)
            for base, count in self.arp.proxy_ranges_on(iface):
                self.arp.remove_proxy_range(iface, base, count)
            self.bindings.flush()
            self._last_advisory.clear()
        for iface in self.interfaces.values():
            iface.up = True
        self.restarts += 1

    # ------------------------------------------------------------------
    # Packet capture and In-IE forwarding
    # ------------------------------------------------------------------
    def ip_input(self, iface: Interface, packet: Packet) -> None:
        # Captured-by-proxy-ARP packets arrive addressed to a mobile
        # host's home address; intercept before normal processing.
        if not self.owns_address(packet.dst):
            binding = self.bindings.lookup(packet.dst, self.now)
            if binding is not None:
                if self.promoter is not None:
                    # Aggregate expansion: the destination may be a
                    # pooled flyweight — materialize it before the
                    # tunneled packet needs it on the visited LAN.
                    self.promoter(packet.dst)
                if packet.more_fragments or packet.frag_offset:
                    # A fragment cannot be encapsulated (the tunnel
                    # header describes a whole datagram); reassemble at
                    # the proxy, then tunnel the restored original.
                    whole = self.reassembler.accept(packet, self.now)
                    if whole is None:
                        self.trace.note(
                            self.now, self.name, "fragment-held", packet,
                            detail="awaiting more",
                        )
                        return
                    packet = whole
                self._forward_to_mobile(packet, binding.care_of_address)
                return
        super().ip_input(iface, packet)

    def _local_capture(self, packet: Packet):
        from ..netsim.node import VirtualRoute

        if packet.is_encapsulated:
            return None
        binding = self.bindings.lookup(packet.dst, self.now)
        if binding is None:
            return None
        if self.promoter is not None:
            self.promoter(packet.dst)
        care_of = binding.care_of_address
        return VirtualRoute(
            handler=lambda p: self._forward_to_mobile(p, care_of),
            name="ha-local-capture",
        )

    def _forward_to_mobile(self, packet: Packet, care_of: IPAddress) -> None:
        source = self._preferred_source()
        assert source is not None
        try:
            self.tunnel.send_encapsulated(packet, source, care_of)
        except EncapError as exc:
            # A packet the configured scheme cannot carry (e.g. nesting
            # under minimal encapsulation) dies as a classified drop,
            # never as an exception unwinding the event engine.
            self.encap_failures += 1
            self.trace.note(
                self.now, self.name, "drop", packet,
                detail=f"encap-failed:{exc}",
            )
            return
        self.packets_tunneled += 1
        if self.notify_correspondents and not packet.is_encapsulated:
            self._maybe_send_advisory(packet.src, packet.dst, care_of)

    def ff_time_horizon(self, now: float) -> float:
        # Beyond a binding's expiry the same packet would be dropped
        # instead of tunneled; beyond an advisory rate-limit boundary
        # the same packet would additionally emit an advisory.  Either
        # way the cascade changes, so replay must stop short of both.
        horizon = self.bindings.earliest_expiry(super().ff_time_horizon(now))
        if self.notify_correspondents and self._last_advisory:
            gate = min(self._last_advisory.values()) + ADVISORY_MIN_INTERVAL
            if gate < horizon:
                horizon = gate
        return horizon

    def _maybe_send_advisory(
        self, correspondent: IPAddress, home: IPAddress, care_of: IPAddress
    ) -> None:
        """§3.2's binding notification, rate-limited per correspondent."""
        if self.home_network.contains(correspondent):
            return  # a local peer should discover the MH itself
        last = self._last_advisory.get(correspondent)
        if last is not None and (self.now - last) < ADVISORY_MIN_INTERVAL:
            return
        self._last_advisory[correspondent] = self.now
        source = self._preferred_source()
        assert source is not None
        advisory = make_icmp_packet(
            source,
            correspondent,
            IcmpMessage(
                IcmpType.MOBILE_CARE_OF_ADVISORY,
                CareOfAdvisory(home, care_of, self.advisory_lifetime),
            ),
        )
        self.advisories_sent += 1
        self.ip_send(advisory)

    # ------------------------------------------------------------------
    # Reverse tunneling (Out-IE, Figure 3)
    # ------------------------------------------------------------------
    def _reverse_inner(self, inner: Packet, outer: Packet) -> None:
        """A mobile host tunneled a packet to us; act on its behalf."""
        if self.owns_address(inner.dst):
            self._local_deliver(inner)
            return
        next_binding = self.bindings.lookup(inner.dst, self.now)
        if next_binding is not None:
            # Mobile-to-mobile: re-tunnel toward the destination MH.
            if self.promoter is not None:
                self.promoter(inner.dst)
            self._forward_to_mobile(inner, next_binding.care_of_address)
            return
        self.packets_reverse_forwarded += 1
        self.trace.note(
            self.now, self.name, "reverse-forward", inner,
            detail=f"on behalf of {inner.src}",
        )
        self.ip_send(inner)
