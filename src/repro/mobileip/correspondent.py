"""Correspondent hosts at the three awareness levels of the paper.

Figure 10's rows correspond to what the correspondent can do:

* **CONVENTIONAL** — "today's correspondent hosts run conventional IP
  networking software that is unaware of mobility issues" (§5).  Sends
  plain packets to the home address (which the Internet routes to the
  home agent: In-IE) and cannot decapsulate.
* **DECAP_CAPABLE** — "some operating systems, such as recent versions
  of Linux, have this capability built-in" (§6.1).  Still sends In-IE,
  but can *receive* Out-DE tunnels.  The paper's caution about
  automatic decapsulation weakening firewall protection is modelled by
  the ``require_known_peer`` knob.
* **MOBILE_AWARE** — keeps a binding cache learned from the home
  agent's ICMP care-of advisory (§3.2) or from a DNS temporary-address
  lookup, and uses it: encapsulates directly to the care-of address
  (In-DE, Figure 5), or — when the care-of address is on its own
  segment — delivers in one link-layer hop (In-DH, §7.2).
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Optional

from ..netsim.addressing import IPAddress
from ..netsim.encap import EncapScheme
from ..netsim.icmp import CareOfAdvisory, IcmpMessage, IcmpType
from ..netsim.node import Node, RouteTarget, VirtualRoute
from ..netsim.packet import Packet
from ..transport.sockets import TransportStack
from .binding import BindingTable
from .tunnel import TunnelEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.simulator import Simulator

__all__ = ["Awareness", "CorrespondentHost"]


class Awareness(Enum):
    CONVENTIONAL = "conventional"
    DECAP_CAPABLE = "decap-capable"
    MOBILE_AWARE = "mobile-aware"


class CorrespondentHost(Node):
    """A correspondent host with a configurable mobility-awareness level."""

    def __init__(
        self,
        name: str,
        simulator: "Simulator",
        awareness: Awareness = Awareness.CONVENTIONAL,
        scheme: EncapScheme = EncapScheme.IPIP,
        require_known_peer: bool = False,
    ):
        super().__init__(name, simulator)
        self.awareness = awareness
        self.require_known_peer = require_known_peer
        self.stack = TransportStack(self)
        self.bindings = BindingTable()
        self.tunnel: Optional[TunnelEndpoint] = None
        self.decap_refused = 0
        self.direct_tunneled = 0
        self.link_directed = 0
        if awareness is not Awareness.CONVENTIONAL:
            self.tunnel = TunnelEndpoint(self, scheme=scheme, on_inner=self._tunnel_inner)
        if awareness is Awareness.MOBILE_AWARE:
            self.icmp_hooks.append(self._icmp_hook)
            self.route_overrides.append(self._binding_route_override)

    # ------------------------------------------------------------------
    # Receiving tunnels (DECAP_CAPABLE and MOBILE_AWARE)
    # ------------------------------------------------------------------
    def _tunnel_inner(self, inner: Packet, outer: Packet) -> None:
        if self.require_known_peer and outer.src not in self._known_peers():
            # §6.1: "automatic decapsulation should only be done on
            # hosts that use strong authentication" — this host insists
            # on a peer it has a binding for.
            self.decap_refused += 1
            self.trace.note(
                self.now, self.name, "drop", inner,
                detail="decapsulation-refused-unknown-peer",
            )
            return
        if self.owns_address(inner.dst):
            self._local_deliver(inner)
        else:
            self.trace.note(
                self.now, self.name, "drop", inner,
                detail="decapsulated-inner-not-mine",
            )

    def _known_peers(self) -> set[IPAddress]:
        peers = set()
        for binding in self.bindings.active(self.now):
            peers.add(binding.care_of_address)
            peers.add(binding.home_address)
        return peers

    # ------------------------------------------------------------------
    # Learning bindings (MOBILE_AWARE)
    # ------------------------------------------------------------------
    def _icmp_hook(self, packet: Packet, message: IcmpMessage) -> None:
        if message.icmp_type is not IcmpType.MOBILE_CARE_OF_ADVISORY:
            return
        advisory = message.data
        if not isinstance(advisory, CareOfAdvisory):
            return
        self.learn_binding(
            advisory.home_address, advisory.care_of_address, advisory.lifetime
        )

    def learn_binding(
        self, home: IPAddress, care_of: IPAddress, lifetime: float = 60.0
    ) -> None:
        """Install a binding (from ICMP advisory, DNS lookup, or manual
        configuration).  Only mobile-aware hosts act on bindings."""
        self.bindings.register(home, care_of, self.now, lifetime)

    def forget_binding(self, home: IPAddress) -> None:
        self.bindings.deregister(home)

    # ------------------------------------------------------------------
    # Sending with bindings (MOBILE_AWARE): In-DE / In-DH
    # ------------------------------------------------------------------
    def _binding_route_override(self, packet: Packet) -> Optional[RouteTarget]:
        if packet.is_encapsulated:
            return None  # already a tunnel packet: send normally
        binding = self.bindings.lookup(packet.dst, self.now)
        if binding is None:
            return None  # no binding: plain In-IE behaviour
        care_of = binding.care_of_address
        if self._on_my_segment(care_of):
            # §7.2: "If the correspondent host knows that the mobile
            # host is on the same Ethernet segment then it should also
            # reply directly, using the In-DH method."
            iface_name = self._segment_iface(care_of)
            self.link_directed += 1
            return VirtualRoute(
                handler=lambda p: self.link_send_direct(iface_name, p, care_of),
                name="In-DH",
            )
        source = self._preferred_source()
        if source is None or self.tunnel is None:
            return None
        self.direct_tunneled += 1
        return VirtualRoute(
            handler=lambda p: self.tunnel.send_encapsulated(p, source, care_of),
            name="In-DE",
        )

    def _on_my_segment(self, address: IPAddress) -> bool:
        return self._segment_iface(address) is not None

    def ff_flow_signature(self, dst: IPAddress):
        # Everything _binding_route_override reads at dispatch time:
        # awareness, source address, and (mobile-aware only) the cached
        # binding's care-of address plus whether it is link-local.  A
        # binding learned, refreshed, or expired between replays changes
        # the signature and forces real execution.
        source = self._preferred_source()
        if self.awareness is not Awareness.MOBILE_AWARE:
            return ("ch", self.awareness, source)
        binding = self.bindings.peek(dst)
        if binding is not None and binding.valid_at(self.now):
            care_of = binding.care_of_address
            return ("ch", self.awareness, source, care_of,
                    self._segment_iface(care_of))
        return ("ch", self.awareness, source, None, None)

    def _segment_iface(self, address: IPAddress) -> Optional[str]:
        for iface in self.interfaces.values():
            if iface.up and iface.network is not None and iface.network.contains(address):
                if address != iface.ip:
                    return iface.name
        return None
