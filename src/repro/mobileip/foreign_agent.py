"""The IETF-style foreign agent (§2).

    "When connecting via a foreign agent, the home agent tunnels
    packets to this foreign agent, which decapsulates them and delivers
    the enclosed packet to the mobile host."

The paper's own implementation deliberately avoids foreign agents
("it is impractical for mobile hosts to assume that foreign agent
services will be available everywhere"), but implements-for-comparison
is exactly what a reproduction should do: the FA here supports the
classic IETF triangle so benchmarks can compare it with the paper's
self-sufficient mode, and so the final-hop In-DH delivery the paper
cites ("the foreign agent uses this delivery technique to deliver the
packet over the final hop") is exercised.

Behaviours:

* periodic agent advertisements on the LAN (broadcast UDP on port 434);
* registration relay: visiting hosts hand their requests to the FA,
  which forwards them to the home agent with the FA's address as the
  care-of address, and relays replies back over the link;
* a visitor table; tunnel packets arriving for a visitor's home
  address are decapsulated and delivered in one link-layer hop;
* plain IP forwarding for the visitors' outgoing traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..netsim.addressing import IPAddress, LIMITED_BROADCAST
from ..netsim.encap import EncapScheme
from ..netsim.packet import Packet
from ..netsim.router import Router
from ..transport.sockets import TransportStack
from .registration import (
    MOBILE_IP_PORT,
    AgentAdvertisement,
    RegistrationReply,
    RegistrationRequest,
)
from .tunnel import TunnelEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.simulator import Simulator
    from .mobile_host import MobileHost

__all__ = ["ForeignAgent"]

ADVERT_INTERVAL = 30.0


class ForeignAgent(Router):
    """A foreign agent on one visited LAN.

    Subclasses :class:`Router` because visitors route their outgoing
    packets through the agent (it forwards them to the LAN's real
    gateway via its own default route)."""

    def __init__(
        self,
        name: str,
        simulator: "Simulator",
        scheme: EncapScheme = EncapScheme.IPIP,
        advertise: bool = False,
    ):
        # ``advertise`` keeps the periodic broadcast off by default so
        # that ``Simulator.run()`` without a time bound still drains;
        # enable it to model discovery, and run with ``until=``.
        super().__init__(name, simulator)
        self.tunnel = TunnelEndpoint(self, scheme=scheme, on_inner=self._tunnel_inner)
        self.stack = TransportStack(self)
        self._socket = self.stack.udp_socket(MOBILE_IP_PORT)
        self._socket.on_receive(self._mobileip_input)
        # home address -> the visiting MobileHost node (for link delivery)
        self._visitors: Dict[IPAddress, "MobileHost"] = {}
        self._pending_relays: Dict[int, IPAddress] = {}  # ident -> visitor home
        self.packets_delivered_final_hop = 0
        self.advertisements_sent = 0
        if advertise:
            self._schedule_advertisement()

    # ------------------------------------------------------------------
    @property
    def advertised_address(self) -> IPAddress:
        source = self._preferred_source()
        if source is None:
            raise RuntimeError(f"{self.name} has no configured address")
        return source

    @property
    def care_of_address(self) -> IPAddress:
        """Visitors register the FA's own address as their care-of."""
        return self.advertised_address

    # ------------------------------------------------------------------
    # Advertisements
    # ------------------------------------------------------------------
    def _schedule_advertisement(self) -> None:
        self.simulator.events.schedule(
            0.0, self._advertise, label=f"{self.name}:advert"
        )

    def _advertise(self) -> None:
        if self._preferred_source() is not None:
            advert = AgentAdvertisement(self.advertised_address, self.care_of_address)
            self._socket.sendto(
                advert, advert.size, LIMITED_BROADCAST, MOBILE_IP_PORT
            )
            self.advertisements_sent += 1
        self.simulator.events.schedule(
            ADVERT_INTERVAL, self._advertise, label=f"{self.name}:advert"
        )

    # ------------------------------------------------------------------
    # Registration relay
    # ------------------------------------------------------------------
    def relay_registration_from(
        self, visitor: "MobileHost", request: RegistrationRequest
    ) -> None:
        """Accept a visitor's registration and forward it to its HA.

        In the real protocol the request arrives over the link; the
        direct method call stands in for that single link-layer hop
        while keeping the FA->HA leg as real packets.
        """
        self._visitors[request.home_address] = visitor
        self._pending_relays[request.ident] = request.home_address
        self._socket.sendto(
            request, request.size, visitor.home_agent_address, MOBILE_IP_PORT
        )

    def _mobileip_input(
        self, data: object, size: int, src_ip: IPAddress, src_port: int
    ) -> None:
        from .registration import AgentSolicitation

        if isinstance(data, AgentSolicitation):
            # Answer a soliciting visitor with a unicast advertisement.
            if self._preferred_source() is not None:
                advert = AgentAdvertisement(self.advertised_address,
                                            self.care_of_address)
                self._socket.sendto(advert, advert.size, src_ip, src_port)
                self.advertisements_sent += 1
            return
        if isinstance(data, RegistrationReply):
            home = self._pending_relays.pop(data.ident, None)
            if home is None:
                return
            visitor = self._visitors.get(home)
            if visitor is None:
                return
            if not data.accepted:
                self._visitors.pop(home, None)
            # Relay the reply over the link to the visitor's stack.
            visitor._registration_reply_input(data, size, src_ip, src_port)

    # ------------------------------------------------------------------
    # Final-hop delivery
    # ------------------------------------------------------------------
    def _tunnel_inner(self, inner: Packet, outer: Packet) -> None:
        if self.owns_address(inner.dst):
            self._local_deliver(inner)
            return
        visitor = self._visitors.get(inner.dst)
        if visitor is None:
            self.trace.note(
                self.now, self.name, "drop", inner, detail="no-such-visitor"
            )
            return
        # In-DH over the final hop: frame straight to the visitor.
        iface_name = self._lan_iface_name()
        self.packets_delivered_final_hop += 1
        self.link_send_direct(iface_name, inner, inner.dst)

    def _lan_iface_name(self) -> str:
        for name, iface in self.interfaces.items():
            if iface.segment is not None:
                return name
        raise RuntimeError(f"{self.name} has no attached interface")
