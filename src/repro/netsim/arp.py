"""ARP: address resolution, gratuitous ARP, and proxy ARP.

The home agent of the paper captures packets addressed to an absent
mobile host by *gratuitous proxy ARP* (RFC 1027, cited in §2): it
answers (and pre-announces) ARP for the mobile host's home address with
its own link-layer address, so the home network's router hands it every
packet destined for the mobile host.

The ARP layer here implements:

* request/reply resolution with a per-interface cache,
* a pending-packet queue while resolution is in flight,
* gratuitous ARP announcements (used by the HA when a mobile host
  leaves and by the MH itself when it returns home),
* a proxy table consulted when answering requests for *other* hosts'
  addresses.

RFC 826's stale-cache problem, which §7.1.2 of the paper quotes, is
modelled too: cache entries have a lifetime, and gratuitous ARP
overwrites existing entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .addressing import IPAddress
from .link import BROADCAST_LINK_ADDR, Frame, Interface, LinkAddress
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node

__all__ = ["ArpMessage", "ArpEntry", "ArpService"]

ARP_CACHE_LIFETIME = 600.0   # seconds, generous: tests control time explicitly
ARP_MAX_PENDING = 16         # packets queued per unresolved address


@dataclass(frozen=True)
class ArpMessage:
    """An ARP request or reply."""

    op: str                      # "request" | "reply"
    sender_ip: IPAddress
    sender_link: LinkAddress
    target_ip: IPAddress
    target_link: Optional[LinkAddress] = None


@dataclass
class ArpEntry:
    link_address: LinkAddress
    learned_at: float

    def fresh(self, now: float) -> bool:
        return (now - self.learned_at) < ARP_CACHE_LIFETIME


class ArpService:
    """Per-node ARP state machine.

    One instance per node; caches are per-interface because the same IP
    address may legitimately map to different link addresses on
    different segments (e.g. a router's two sides).
    """

    def __init__(self, node: "Node"):
        self.node = node
        self._caches: Dict[str, Dict[IPAddress, ArpEntry]] = {}
        self._pending: Dict[Tuple[str, IPAddress], List[Packet]] = {}
        # Addresses this node answers ARP for on behalf of others
        # (the home agent's proxy entries), per interface name.
        self._proxy_for: Dict[str, set[IPAddress]] = {}
        # Contiguous address ranges proxied wholesale, per interface
        # name: (base, count) pairs.  A home agent fronting a pooled
        # block of a million absent hosts answers for the whole range
        # from one entry instead of a million set members.
        self._proxy_ranges: Dict[str, List[Tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    # Cache access
    # ------------------------------------------------------------------
    def _cache(self, iface: Interface) -> Dict[IPAddress, ArpEntry]:
        return self._caches.setdefault(iface.name, {})

    def lookup(self, iface: Interface, ip: IPAddress) -> Optional[LinkAddress]:
        entry = self._cache(iface).get(ip)
        if entry is not None and entry.fresh(self.node.now):
            return entry.link_address
        return None

    def learn(self, iface: Interface, ip: IPAddress, link: LinkAddress) -> None:
        self._cache(iface)[ip] = ArpEntry(link, self.node.now)
        self._flush_pending(iface, ip, link)

    def flush(self) -> None:
        """Drop all cached entries (used when a host changes segments)."""
        self._caches.clear()
        self._pending.clear()

    # ------------------------------------------------------------------
    # Proxy ARP (RFC 1027) — the home agent's capture mechanism
    # ------------------------------------------------------------------
    def add_proxy(self, iface: Interface, ip: IPAddress) -> None:
        """Start answering ARP requests for ``ip`` on ``iface``."""
        self._proxy_for.setdefault(iface.name, set()).add(IPAddress(ip))

    def remove_proxy(self, iface: Interface, ip: IPAddress) -> None:
        self._proxy_for.get(iface.name, set()).discard(IPAddress(ip))

    def add_proxy_range(self, iface: Interface, base: int, count: int) -> None:
        """Answer ARP for every address in ``[base, base + count)``.

        The range is stored as two integers, never expanded: this is
        the capture mechanism for pooled host blocks, where per-address
        proxy entries would cost more than the hosts themselves.
        """
        if count <= 0:
            raise ValueError(f"proxy range count must be positive, got {count}")
        self._proxy_ranges.setdefault(iface.name, []).append((int(base), count))

    def remove_proxy_range(self, iface: Interface, base: int, count: int) -> None:
        ranges = self._proxy_ranges.get(iface.name)
        if ranges is not None:
            try:
                ranges.remove((int(base), count))
            except ValueError:
                pass

    def proxies_on(self, iface: Interface) -> frozenset[IPAddress]:
        return frozenset(self._proxy_for.get(iface.name, set()))

    def proxy_ranges_on(self, iface: Interface) -> Tuple[Tuple[int, int], ...]:
        return tuple(self._proxy_ranges.get(iface.name, ()))

    def _proxied(self, iface_name: str, target: IPAddress) -> bool:
        if target in self._proxy_for.get(iface_name, ()):
            return True
        value = target.value
        return any(
            base <= value < base + count
            for base, count in self._proxy_ranges.get(iface_name, ())
        )

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_and_send(self, iface: Interface, next_hop: IPAddress, packet: Packet) -> None:
        """Send ``packet`` to ``next_hop`` on ``iface``, resolving first.

        If the link address is unknown, the packet is queued and an ARP
        request is broadcast; the queue drains when the reply arrives.
        """
        link = self.lookup(iface, next_hop)
        if link is not None:
            iface.transmit(Frame(iface.link_address, link, packet, kind="ip"))
            return
        key = (iface.name, next_hop)
        queue = self._pending.setdefault(key, [])
        if len(queue) >= ARP_MAX_PENDING:
            self.node.simulator.trace.note(
                self.node.now, self.node.name, "drop", packet,
                detail="arp-queue-overflow",
            )
            return
        queue.append(packet)
        # Request on every queued packet, not just the first: if the
        # initial request got no answer (target down, frame lost), the
        # sender's own retransmissions double as ARP retries.
        self._send_request(iface, next_hop)

    def _send_request(self, iface: Interface, target_ip: IPAddress) -> None:
        # Prefer the primary address; a host operating via a foreign
        # agent has only its home address (a secondary) on the visited
        # interface, and must still be able to ARP for the agent.
        sender_ip = iface.ip
        if sender_ip is None:
            addresses = iface.addresses
            if not addresses:
                return
            sender_ip = addresses[0]
        message = ArpMessage(
            op="request",
            sender_ip=sender_ip,
            sender_link=iface.link_address,
            target_ip=target_ip,
        )
        iface.transmit(
            Frame(iface.link_address, BROADCAST_LINK_ADDR, message, kind="arp")
        )

    def announce(self, iface: Interface, ip: IPAddress) -> None:
        """Gratuitous ARP: broadcast that ``ip`` is at this interface.

        Receivers overwrite any existing cache entry, which is how the
        home agent redirects the home network's traffic when the mobile
        host departs, and how the mobile host reclaims its address when
        it returns home.
        """
        message = ArpMessage(
            op="reply",
            sender_ip=IPAddress(ip),
            sender_link=iface.link_address,
            target_ip=IPAddress(ip),
            target_link=iface.link_address,
        )
        iface.transmit(
            Frame(iface.link_address, BROADCAST_LINK_ADDR, message, kind="arp")
        )

    # ------------------------------------------------------------------
    # Inbound ARP handling
    # ------------------------------------------------------------------
    def handle(self, iface: Interface, message: ArpMessage) -> None:
        # Learn opportunistically from every ARP message seen (RFC 826).
        self.learn(iface, message.sender_ip, message.sender_link)
        if message.op == "request":
            answers = iface.owns(message.target_ip) or self._proxied(
                iface.name, message.target_ip
            )
            if answers:
                reply = ArpMessage(
                    op="reply",
                    sender_ip=message.target_ip,
                    sender_link=iface.link_address,
                    target_ip=message.sender_ip,
                    target_link=message.sender_link,
                )
                iface.transmit(
                    Frame(iface.link_address, message.sender_link, reply, kind="arp")
                )

    def _flush_pending(self, iface: Interface, ip: IPAddress, link: LinkAddress) -> None:
        queue = self._pending.pop((iface.name, ip), [])
        for packet in queue:
            iface.transmit(Frame(iface.link_address, link, packet, kind="ip"))
