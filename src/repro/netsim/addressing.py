"""IPv4 addressing primitives for the network simulator.

The simulator models the 1996 Internet of the paper: IPv4 unicast
addresses, CIDR-style network prefixes, and per-network address
allocation.  Addresses are small immutable value objects so they can be
used freely as dictionary keys (routing tables, ARP caches, binding
caches) and compared for equality across the whole code base.

The paper's mechanisms turn entirely on *which* addresses appear in
*which* header fields, so the addressing layer is deliberately strict:
malformed dotted quads and out-of-range prefixes raise ``AddressError``
rather than being silently coerced.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, Optional, Union

__all__ = [
    "AddressError",
    "IPAddress",
    "Network",
    "AddressAllocator",
    "MULTICAST_NET",
    "LIMITED_BROADCAST",
    "UNSPECIFIED",
]


class AddressError(ValueError):
    """Raised for malformed addresses, prefixes, or exhausted allocators."""


_DOTTED_QUAD_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


def _parse_dotted_quad(text: str) -> int:
    match = _DOTTED_QUAD_RE.match(text)
    if match is None:
        raise AddressError(f"malformed IPv4 address: {text!r}")
    value = 0
    for octet_text in match.groups():
        octet = int(octet_text)
        if octet > 255:
            raise AddressError(f"octet out of range in address: {text!r}")
        value = (value << 8) | octet
    return value


# Bounded intern cache: raw constructor input (str or int) -> instance.
# Routing tables, binding caches and header rewrites rebuild addresses
# from a small working set of dotted quads on every packet, so interning
# turns the per-packet regex parse into a dict hit.  The bound guards
# against pathological workloads (e.g. allocator sweeps over /8 space);
# on overflow the cache is simply cleared — correctness never depends
# on a hit.
_INTERN_CACHE: Dict[Union[str, int], "IPAddress"] = {}
_INTERN_CACHE_MAX = 4096


class IPAddress:
    """An immutable, interned IPv4 address.

    Construct from a dotted quad string or a 32-bit integer::

        >>> IPAddress("10.0.0.1")
        IPAddress('10.0.0.1')
        >>> int(IPAddress("10.0.0.1"))
        167772161

    Instances are value objects: equality, ordering, and hashing follow
    the 32-bit integer value exactly as the original frozen-dataclass
    implementation did.  Construction from a previously seen string or
    int returns a cached instance (the hash is precomputed once), which
    makes dictionary-heavy code — routing tables, ARP caches, binding
    caches — cheap.
    """

    __slots__ = ("value", "_hash", "_str")

    value: int

    def __new__(cls, address: Union[str, int, "IPAddress"]):
        if type(address) is cls:
            # Copy-construction is a no-op: instances are immutable.
            return address
        try:
            cached = _INTERN_CACHE.get(address)
        except TypeError:
            cached = None  # unhashable input; rejected below
        if cached is not None:
            return cached
        if isinstance(address, IPAddress):
            value = address.value
        elif isinstance(address, str):
            value = _parse_dotted_quad(address)
        elif isinstance(address, int):
            value = address
        else:
            raise AddressError(f"cannot build IPAddress from {type(address).__name__}")
        if not 0 <= value <= 0xFFFFFFFF:
            raise AddressError(f"address out of 32-bit range: {value}")
        self = object.__new__(cls)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(value))
        if type(address) in (str, int):
            if len(_INTERN_CACHE) >= _INTERN_CACHE_MAX:
                _INTERN_CACHE.clear()
            _INTERN_CACHE[address] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"IPAddress is immutable: cannot set {name!r}")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"IPAddress is immutable: cannot delete {name!r}")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPAddress):
            return self.value == other.value
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if isinstance(other, IPAddress):
            return self.value != other.value
        return NotImplemented

    def __lt__(self, other: "IPAddress") -> bool:
        if isinstance(other, IPAddress):
            return self.value < other.value
        return NotImplemented

    def __le__(self, other: "IPAddress") -> bool:
        if isinstance(other, IPAddress):
            return self.value <= other.value
        return NotImplemented

    def __gt__(self, other: "IPAddress") -> bool:
        if isinstance(other, IPAddress):
            return self.value > other.value
        return NotImplemented

    def __ge__(self, other: "IPAddress") -> bool:
        if isinstance(other, IPAddress):
            return self.value >= other.value
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (IPAddress, (self.value,))

    def __int__(self) -> int:
        return self.value

    def __str__(self) -> str:
        # Instances are immutable and interned, so the dotted quad is
        # computed once (tracing stringifies addresses per packet hop).
        try:
            return self._str
        except AttributeError:
            v = self.value
            text = f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"
            object.__setattr__(self, "_str", text)
            return text

    def __repr__(self) -> str:
        return f"IPAddress('{self!s}')"

    @property
    def is_multicast(self) -> bool:
        """True for class-D (224.0.0.0/4) addresses."""
        return (self.value >> 28) == 0xE

    @property
    def is_broadcast(self) -> bool:
        """True for the limited broadcast address 255.255.255.255."""
        return self.value == 0xFFFFFFFF

    @property
    def is_unspecified(self) -> bool:
        """True for 0.0.0.0, used as 'bind to any' in the socket layer."""
        return self.value == 0

    def in_network(self, network: "Network") -> bool:
        """Convenience mirror of ``network.contains(self)``."""
        return network.contains(self)


UNSPECIFIED = IPAddress(0)
LIMITED_BROADCAST = IPAddress(0xFFFFFFFF)


class Network:
    """An immutable CIDR network prefix, e.g. ``Network("10.1.0.0/16")``.

    The host bits of the supplied address must be zero; this catches the
    most common configuration mistakes in topology definitions early.

    Like :class:`IPAddress` this is a ``__slots__`` value class with
    dataclass-style ``(prefix, prefix_len)`` equality, ordering, and
    hashing.
    """

    __slots__ = ("prefix", "prefix_len", "_mask")

    prefix: int
    prefix_len: int

    def __init__(self, spec: Union[str, "Network"], prefix_len: Optional[int] = None):
        if isinstance(spec, Network):
            prefix, length = spec.prefix, spec.prefix_len
        elif isinstance(spec, str) and "/" in spec:
            address_text, _, length_text = spec.partition("/")
            try:
                length = int(length_text)
            except ValueError:
                raise AddressError(f"malformed prefix length: {spec!r}") from None
            prefix = _parse_dotted_quad(address_text)
        elif prefix_len is not None:
            prefix = int(IPAddress(spec))
            length = prefix_len
        else:
            raise AddressError(f"network spec needs a prefix length: {spec!r}")
        if not 0 <= length <= 32:
            raise AddressError(f"prefix length out of range: {length}")
        mask = self._mask_for(length)
        if prefix & ~mask & 0xFFFFFFFF:
            raise AddressError(
                f"host bits set in network spec {IPAddress(prefix)}/{length}"
            )
        object.__setattr__(self, "prefix", prefix)
        object.__setattr__(self, "prefix_len", length)
        object.__setattr__(self, "_mask", mask)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"Network is immutable: cannot set {name!r}")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"Network is immutable: cannot delete {name!r}")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Network):
            return (self.prefix, self.prefix_len) == (other.prefix, other.prefix_len)
        return NotImplemented

    def __lt__(self, other: "Network") -> bool:
        if isinstance(other, Network):
            return (self.prefix, self.prefix_len) < (other.prefix, other.prefix_len)
        return NotImplemented

    def __le__(self, other: "Network") -> bool:
        if isinstance(other, Network):
            return (self.prefix, self.prefix_len) <= (other.prefix, other.prefix_len)
        return NotImplemented

    def __gt__(self, other: "Network") -> bool:
        if isinstance(other, Network):
            return (self.prefix, self.prefix_len) > (other.prefix, other.prefix_len)
        return NotImplemented

    def __ge__(self, other: "Network") -> bool:
        if isinstance(other, Network):
            return (self.prefix, self.prefix_len) >= (other.prefix, other.prefix_len)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.prefix, self.prefix_len))

    def __reduce__(self):
        return (Network, (str(self),))

    @staticmethod
    def _mask_for(length: int) -> int:
        return (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0

    @property
    def netmask(self) -> IPAddress:
        return IPAddress(self._mask_for(self.prefix_len))

    @property
    def network_address(self) -> IPAddress:
        return IPAddress(self.prefix)

    @property
    def broadcast_address(self) -> IPAddress:
        return IPAddress(self.prefix | (~self._mask_for(self.prefix_len) & 0xFFFFFFFF))

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.prefix_len)

    def contains(self, address: Union[IPAddress, "Network"]) -> bool:
        """True if ``address`` (or the whole sub-``Network``) lies inside."""
        mask = self._mask
        if isinstance(address, Network):
            return (
                address.prefix_len >= self.prefix_len
                and (address.prefix & mask) == self.prefix
            )
        return (address.value & mask) == self.prefix

    def overlaps(self, other: "Network") -> bool:
        """True if the two prefixes share any address."""
        return self.contains(other) or other.contains(self)

    def hosts(self) -> Iterator[IPAddress]:
        """Iterate over usable host addresses (skips network & broadcast)."""
        first = self.prefix + 1
        last = int(self.broadcast_address) - 1
        if self.prefix_len >= 31:  # point-to-point: use all addresses
            first, last = self.prefix, int(self.broadcast_address)
        for value in range(first, last + 1):
            yield IPAddress(value)

    def __str__(self) -> str:
        return f"{self.network_address}/{self.prefix_len}"

    def __repr__(self) -> str:
        return f"Network('{self}')"


MULTICAST_NET = Network("224.0.0.0/4")


class AddressAllocator:
    """Sequential allocator of host addresses within a network.

    Used by topology builders (a friendly network administrator) and by
    the DHCP-style care-of acquisition in :mod:`repro.mobileip`.
    Released addresses are recycled in FIFO order, which models address
    reuse after a visiting host departs.
    """

    def __init__(self, network: Network, reserve: int = 1):
        """``reserve`` low host addresses are skipped (routers, servers)."""
        self.network = network
        first = network.prefix + 1
        last = int(network.broadcast_address) - 1
        if network.prefix_len >= 31:  # point-to-point: use all addresses
            first, last = network.prefix, int(network.broadcast_address)
        # Integer cursor over the usable host range.  Allocation order is
        # identical to the generator this replaced (low to high, skipping
        # claimed addresses), but the cursor can also hand out contiguous
        # *blocks* — million-address reservations for host pools — without
        # materializing a million IPAddress objects.
        self._cursor = first + reserve
        self._last = last
        self._released: list[IPAddress] = []
        self._allocated: set[IPAddress] = set()
        self._blocks: list[tuple[int, int]] = []  # (base, count) ranges

    def _in_block(self, value: int) -> bool:
        return any(base <= value < base + count for base, count in self._blocks)

    def allocate(self) -> IPAddress:
        """Return a fresh (or recycled) address; raises when exhausted."""
        if self._released:
            address = self._released.pop(0)
        else:
            # Skip over addresses that were claim()ed statically or
            # swallowed by a block reservation — the sequential cursor
            # does not know about them.
            value = self._cursor
            while value <= self._last and (
                self._in_block(value) or IPAddress(value) in self._allocated
            ):
                value += 1
            if value > self._last:
                raise AddressError(f"address pool exhausted in {self.network}")
            self._cursor = value + 1
            address = IPAddress(value)
        self._allocated.add(address)
        return address

    def reserve_block(self, count: int) -> int:
        """Reserve ``count`` contiguous addresses; returns the base value.

        The block is returned (and tracked) as a plain integer base, not
        as ``count`` ``IPAddress`` objects: a million-host pool must not
        thrash the intern cache or allocate per-address bookkeeping.
        Subsequent :meth:`allocate`/:meth:`claim` calls skip the block.
        """
        if count <= 0:
            raise AddressError(f"block size must be positive, got {count}")
        base = self._cursor
        moved = True
        while moved:  # slide past anything already taken in the range
            moved = False
            for block_base, block_count in self._blocks:
                if block_base < base + count and base < block_base + block_count:
                    base = block_base + block_count
                    moved = True
            for address in self._allocated:
                if base <= address.value < base + count:
                    base = address.value + 1
                    moved = True
        if base + count - 1 > self._last:
            raise AddressError(
                f"no room for a {count}-address block in {self.network}"
            )
        self._blocks.append((base, count))
        self._cursor = max(self._cursor, base + count)
        return base

    def claim(self, address: IPAddress) -> IPAddress:
        """Mark a specific address as allocated (static assignment)."""
        if not self.network.contains(address):
            raise AddressError(f"{address} is not inside {self.network}")
        if address in self._allocated or self._in_block(address.value):
            raise AddressError(f"{address} already allocated")
        self._allocated.add(address)
        return address

    def release(self, address: IPAddress) -> None:
        """Return an address to the pool for later reuse."""
        if address not in self._allocated:
            raise AddressError(f"{address} was not allocated from this pool")
        self._allocated.discard(address)
        self._released.append(address)

    @property
    def in_use(self) -> frozenset[IPAddress]:
        return frozenset(self._allocated)
