"""Link layer: shared segments, interfaces, and frames.

The paper's In-DH optimization ("Both Hosts on Same Network Segment",
§5, Row C of the grid) depends on a real link-layer model: an IP packet
whose destination address "does not belong on this network segment" can
nevertheless be delivered in one hop by addressing the *frame* to the
mobile host's link-layer address.  Proxy ARP by the home agent
(RFC 1027) likewise operates at this layer.

A :class:`Segment` is a broadcast domain (an Ethernet): every attached
:class:`Interface` sees broadcast frames, and unicast frames are
delivered to the interface owning the destination link address.  Links
model latency (propagation) and bandwidth (serialization of the frame's
wire size), both of which feed the latency benchmarks (§3.2).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

from .addressing import IPAddress, Network
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .node import Node
    from .simulator import Simulator

__all__ = ["LinkAddress", "Frame", "Interface", "Segment", "BROADCAST_LINK_ADDR", "ETHERNET_MTU"]

ETHERNET_MTU = 1500
_link_addr_counter = itertools.count(1)


@dataclass(frozen=True, order=True)
class LinkAddress:
    """An opaque link-layer (MAC-like) address."""

    value: int

    def __str__(self) -> str:
        return f"L2:{self.value:04x}"


BROADCAST_LINK_ADDR = LinkAddress(0xFFFF)


def fresh_link_address() -> LinkAddress:
    """Mint the next unicast link address.

    The counter is open-ended (values past 16 bits format fine through
    ``:04x``), but it must never mint ``0xFFFF``: that value *is* the
    broadcast address, and an interface holding it would receive every
    unicast frame sent to broadcast — interface #65535 of a large run
    would silently become a packet sink.
    """
    value = next(_link_addr_counter)
    if value == BROADCAST_LINK_ADDR.value:
        value = next(_link_addr_counter)
    return LinkAddress(value)


@dataclass
class Frame:
    """A link-layer frame carrying either an IP packet or an ARP message."""

    src: LinkAddress
    dst: LinkAddress
    payload: Any                     # Packet or ArpMessage
    kind: str = "ip"                 # "ip" | "arp"

    @property
    def wire_size(self) -> int:
        if isinstance(self.payload, Packet):
            return self.payload.wire_size + 14  # Ethernet header
        return 42  # ARP packet in a minimum-size Ethernet frame


class Interface:
    """A node's attachment to a segment.

    An interface carries at most one primary IP address plus any number
    of secondary addresses (the mobile host keeps its *home* address
    configured alongside its care-of address so it can recognize
    packets addressed to either — paper §5, Figures 8/9).
    """

    def __init__(self, name: str, node: "Node"):
        self.name = name
        self.node = node
        self.link_address = fresh_link_address()
        self.segment: Optional[Segment] = None
        self.ip: Optional[IPAddress] = None
        self.network: Optional[Network] = None
        self.secondary_ips: List[IPAddress] = []
        self.up = True
        # Frames discarded because this interface was down at transmit
        # or receive time.  The trace records each loss; the counter
        # makes the total queryable without scanning entries.
        self.frames_dropped = 0
        node.simulator.metrics.counter(
            "interface.frames_dropped",
            read=lambda: self.frames_dropped,
            node=node.name, interface=name,
        )

    # ------------------------------------------------------------------
    def configure(self, ip: IPAddress, network: Network) -> None:
        """Assign the primary address and the directly-attached prefix."""
        if not network.contains(ip):
            raise ValueError(f"{ip} not in {network}")
        self.ip = IPAddress(ip)
        self.network = network

    def deconfigure(self) -> None:
        self.ip = None
        self.network = None
        self.secondary_ips.clear()

    def add_secondary(self, ip: IPAddress) -> None:
        ip = IPAddress(ip)
        if ip not in self.secondary_ips:
            self.secondary_ips.append(ip)

    @property
    def addresses(self) -> List[IPAddress]:
        addrs = []
        if self.ip is not None:
            addrs.append(self.ip)
        addrs.extend(self.secondary_ips)
        return addrs

    def owns(self, ip: IPAddress) -> bool:
        own = self.ip
        if own is not None and ip == own:
            return True
        return ip in self.secondary_ips

    # ------------------------------------------------------------------
    def attach(self, segment: "Segment") -> None:
        if self.segment is not None:
            self.detach()
        self.segment = segment
        segment._interfaces[self.link_address] = self

    def detach(self) -> None:
        if self.segment is not None:
            self.segment._interfaces.pop(self.link_address, None)
            self.segment = None

    def transmit(self, frame: Frame) -> None:
        """Hand a frame to the attached segment for delivery."""
        if self.segment is None or not self.up:
            # Cable unplugged: the frame is lost — but not silently.
            # Every loss is traced as a ``lost`` event so the invariant
            # monitor can account for the datagram's disappearance.
            self._note_lost(frame, "interface-down")
            return
        self.segment.transmit(self, frame)

    def receive(self, frame: Frame) -> None:
        """Called by the segment when a frame arrives for this interface."""
        if not self.up:
            self._note_lost(frame, "interface-down")
            return
        self.node.frame_received(self, frame)

    def _note_lost(self, frame: Frame, detail: str) -> None:
        self.frames_dropped += 1
        payload = frame.payload
        if isinstance(payload, Packet):
            sim = self.node.simulator
            sim.trace.note(
                sim.clock.now, f"{self.node.name}/{self.name}", "lost",
                payload, detail=detail,
            )

    def __repr__(self) -> str:
        return f"Interface({self.node.name}/{self.name} ip={self.ip})"


class Segment:
    """A shared broadcast segment (an Ethernet or a point-to-point wire).

    ``latency`` is one-way propagation delay in seconds; ``bandwidth``
    is bits/second used to compute serialization delay; ``mtu`` bounds
    the IP packet size carried in one frame (fragmentation happens at
    the IP layer of the sending node, see
    :mod:`repro.netsim.fragmentation`).
    """

    def __init__(
        self,
        name: str,
        simulator: "Simulator",
        latency: float = 0.001,
        bandwidth: float = 10e6,
        mtu: int = ETHERNET_MTU,
        loss_rate: float = 0.0,
        queue_capacity: Optional[int] = None,
    ):
        """``loss_rate`` drops each frame independently with the given
        probability (from the simulator's seeded RNG) — a crude model of
        the wireless media the paper's mobile hosts roam across, used to
        study the §7.1.2 detector's behaviour under genuine loss.  A
        rate of exactly 1.0 is a total blackout (every frame lost), the
        boundary the fault-injection scenarios use.

        ``up`` models the whole medium: a downed segment (cut cable,
        failed base station) silently discards every frame offered to
        it without consuming randomness, so toggling a segment down and
        up around a window of simulated time leaves the RNG stream —
        and therefore every later loss draw — exactly where it would
        have been (see :mod:`repro.netsim.faults`).

        ``queue_capacity`` selects the transmission-line model.  With
        the default ``None`` every offered frame is scheduled
        independently at ``latency + serialization`` — the historical
        no-contention behaviour, preserved exactly so existing traces
        (and the pinned golden digest) are unchanged.  With an integer,
        the segment owns a real line: one frame serializes at a time, up
        to ``queue_capacity`` further frames wait in a FIFO transmit
        queue, and a frame offered to a full queue is dropped as a
        traced ``queue-overflow`` loss."""
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")
        if queue_capacity is not None and queue_capacity < 0:
            raise ValueError("queue_capacity must be >= 0 (or None)")
        self.name = name
        self.simulator = simulator
        self.latency = latency
        self.bandwidth = bandwidth
        self.mtu = mtu
        self.loss_rate = loss_rate
        self.up = True
        self.queue_capacity = queue_capacity
        self._interfaces: Dict[LinkAddress, Interface] = {}
        self._queue: Deque[Tuple[Interface, Frame]] = deque()
        # True while a frame is serializing on the line (queueing mode).
        self._line_busy = False
        self.frames_carried = 0
        self.bytes_carried = 0
        self.frames_lost = 0
        self.queue_dropped = 0
        # Serialization occupancy, accumulated in *bits* so the counter
        # stays an integer (exact, and fast-forward-safe: replay cells
        # only track int attributes).  ``busy_seconds`` derives from it.
        # In the legacy (queue_capacity=None) model the sum can exceed
        # wall time — that is the infinite-capacity artifact, made
        # visible.
        self.busy_bits = 0
        metrics = simulator.metrics
        metrics.counter("link.bytes_carried",
                        read=lambda: self.bytes_carried, link=name)
        metrics.counter("link.frames_carried",
                        read=lambda: self.frames_carried, link=name)
        metrics.counter("link.frames_lost",
                        read=lambda: self.frames_lost, link=name)
        metrics.counter("link.queue_dropped",
                        read=lambda: self.queue_dropped, link=name)
        metrics.gauge("link.queue_depth",
                      read=lambda: self.queue_depth, link=name)
        metrics.gauge("link.busy_seconds",
                      read=lambda: self.busy_seconds, link=name)

    @property
    def queue_depth(self) -> int:
        """Frames waiting behind the line (not the one serializing)."""
        return len(self._queue)

    @property
    def busy_seconds(self) -> float:
        """Total serialization time this line has been occupied."""
        return self.busy_bits / self.bandwidth

    @property
    def interfaces(self) -> List[Interface]:
        return list(self._interfaces.values())

    def interface_with_ip(self, ip: IPAddress) -> Optional[Interface]:
        for iface in self._interfaces.values():
            if iface.owns(ip):
                return iface
        return None

    def transmit(self, sender: Interface, frame: Frame) -> None:
        """Deliver a frame after serialization + propagation delay."""
        if not self.up:
            # The medium itself is down: nothing is carried, nothing is
            # scheduled, and — unlike probabilistic loss — no randomness
            # is consumed, so fault windows do not shift the RNG stream.
            self.frames_lost += 1
            self._note_lost(frame, "segment-down")
            return
        if self.loss_rate and self.simulator.rng.random() < self.loss_rate:
            self.frames_lost += 1
            # Vanished into the ether; transport recovers.  The loss is
            # traced to keep every datagram's fate observable, and the
            # carried counters are *not* touched: a frame the medium ate
            # never occupied the line, so counting its bytes would
            # inflate link utilization.  The RNG draw stays the first
            # (and only) draw per offered frame, so fault-window
            # determinism is unchanged.
            self._note_lost(frame, "link-loss")
            return
        if self.queue_capacity is None:
            # Historical no-contention model: every frame gets the line
            # to itself.  Kept bit-exact (same float arithmetic, same
            # scheduling) so default-link traces are unchanged.
            size = frame.wire_size
            self.frames_carried += 1
            self.bytes_carried += size
            self.busy_bits += size * 8
            self.simulator.trace.note_link_bytes(self.name, size)
            delay = self.latency + (size * 8) / self.bandwidth
            self.simulator.events.schedule(
                delay, self._deliver, sender, frame, label=f"link:{self.name}"
            )
            return
        if self._line_busy:
            if len(self._queue) >= self.queue_capacity:
                # Tail drop: the transmit buffer is full.  Traced as a
                # ``lost`` with detail ``queue-overflow`` so the
                # invariant monitor accounts for the datagram; never
                # counted as carried (it never reached the line).
                self.queue_dropped += 1
                self.frames_lost += 1
                self._note_lost(frame, "queue-overflow")
                return
            self._queue.append((sender, frame))
            return
        self._start_frame(sender, frame)

    def _start_frame(self, sender: Interface, frame: Frame) -> None:
        """Begin serializing one frame on the (idle) line.

        Carried accounting happens here — at line occupancy, not at
        offer — so queued frames later discarded (queue shrink, segment
        down) never inflate the byte counters.  Delivery lands at
        ``latency + serialization`` from now, the identical float chain
        the no-queue model uses, so an uncontended queueing run is
        trace-identical to a default run.
        """
        size = frame.wire_size
        self.frames_carried += 1
        self.bytes_carried += size
        self.busy_bits += size * 8
        self.simulator.trace.note_link_bytes(self.name, size)
        serialization = (size * 8) / self.bandwidth
        self._line_busy = True
        self.simulator.events.schedule(
            self.latency + serialization, self._deliver, sender, frame,
            label=f"link:{self.name}",
        )
        self.simulator.events.schedule(
            serialization, self._line_free, label=f"link-free:{self.name}"
        )

    def _line_free(self) -> None:
        """The line finished a frame: start the next queued one."""
        self._line_busy = False
        if not self._queue:
            return
        if not self.up:
            # The medium died while frames waited.  Flush them as
            # segment-down losses (no RNG consumed, same as an offer to
            # a downed segment) instead of serializing onto a dead wire.
            while self._queue:
                _sender, frame = self._queue.popleft()
                self.frames_lost += 1
                self._note_lost(frame, "segment-down")
            return
        sender, frame = self._queue.popleft()
        self._start_frame(sender, frame)

    def set_queue_capacity(self, capacity: Optional[int]) -> int:
        """Resize the transmit queue in place (the bufferbloat knob).

        Shrinking below the current depth tail-drops the excess as
        traced ``queue-overflow`` losses — the frames a smaller buffer
        would never have admitted.  Returns the number of frames
        dropped.  Growing (or disabling with ``None``) never drops;
        already-queued frames keep draining through the line even when
        the capacity goes to ``None``, since the line-free chain is
        already scheduled.
        """
        if capacity is not None and capacity < 0:
            raise ValueError("queue_capacity must be >= 0 (or None)")
        self.queue_capacity = capacity
        dropped = 0
        if capacity is not None:
            while len(self._queue) > capacity:
                _sender, frame = self._queue.pop()
                self.queue_dropped += 1
                self.frames_lost += 1
                self._note_lost(frame, "queue-overflow")
                dropped += 1
        return dropped

    def _deliver(self, sender: Interface, frame: Frame) -> None:
        if frame.dst == BROADCAST_LINK_ADDR:
            # Snapshot: receivers may attach/detach interfaces in response.
            for iface in list(self._interfaces.values()):
                if iface is not sender:
                    iface.receive(frame)
            return
        target = self._interfaces.get(frame.dst)
        if target is not None and target is not sender:
            target.receive(frame)
            return
        # Unknown destination: frame lost, like a real switch flushing
        # a stale forwarding entry.  IP-level retransmission recovers.
        self._note_lost(frame, "unknown-link-dest")

    def _note_lost(self, frame: Frame, detail: str) -> None:
        payload = frame.payload
        if isinstance(payload, Packet):
            self.simulator.trace.note(
                self.simulator.clock.now, self.name, "lost", payload,
                detail=detail,
            )

    def __repr__(self) -> str:
        return f"Segment({self.name}, {len(self._interfaces)} ifaces, mtu={self.mtu})"
