"""IP packet model.

Packets are the central currency of the simulator.  A packet carries an
IP header (source, destination, protocol, TTL, identification,
fragmentation fields), a payload, and bookkeeping used by the analysis
layer (a unique trace id and hop records appended by
:mod:`repro.netsim.trace`).

Encapsulation — the heart of the paper — is modelled by letting the
payload of a packet be *another packet*.  ``Packet.wire_size`` then
reports the full on-the-wire size including every nested header, which
is what the size-overhead benchmarks (paper §3.3) measure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import IntEnum
from typing import Any, List, Optional, Tuple

from .addressing import IPAddress

__all__ = [
    "IPProto",
    "IPV4_HEADER_SIZE",
    "HopRecord",
    "Packet",
    "DEFAULT_TTL",
]

IPV4_HEADER_SIZE = 20
DEFAULT_TTL = 64

_packet_ids = itertools.count(1)
_trace_ids = itertools.count(1)


class IPProto(IntEnum):
    """IP protocol numbers used by the simulator (real IANA values)."""

    ICMP = 1
    IPIP = 4        # IP-in-IP encapsulation (RFC 2003)
    TCP = 6
    UDP = 17
    GRE = 47        # Generic Routing Encapsulation (RFC 1702)
    MINENC = 55     # Minimal Encapsulation (Per95)


@dataclass(frozen=True)
class HopRecord:
    """One hop in a packet's journey, recorded for analysis.

    ``node`` is the name of the node the packet visited, ``action`` is
    what happened there (``forward``, ``deliver``, ``drop``,
    ``encapsulate``, ``decapsulate``, ``fragment``...), and ``detail``
    is a human-readable explanation (e.g. the filter rule that fired).
    """

    time: float
    node: str
    action: str
    detail: str = ""


@dataclass
class Packet:
    """A simulated IP packet.

    ``payload`` may be:

    * a transport segment object (from :mod:`repro.transport`),
    * another :class:`Packet` (encapsulation), or
    * any opaque application object.

    ``payload_size`` is the size in bytes of the payload *excluding*
    nested IP headers when the payload is itself a packet — nested
    header bytes are accounted for by :attr:`wire_size` walking the
    encapsulation stack.  ``encap_overhead`` is the size of the
    encapsulating header mechanism in use for *this* layer (0 for a
    plain packet, 20 for IP-in-IP's inner header is counted by the
    nested packet itself, while GRE/minimal-encapsulation shim bytes
    are recorded here by :mod:`repro.netsim.encap`).
    """

    src: IPAddress
    dst: IPAddress
    proto: IPProto
    payload: Any = None
    payload_size: int = 0
    ttl: int = DEFAULT_TTL
    ident: int = field(default_factory=lambda: next(_packet_ids))
    # Fragmentation state (paper §3.3: encapsulation may force fragmentation)
    frag_offset: int = 0
    more_fragments: bool = False
    dont_fragment: bool = False
    # Shim bytes added by non-IPIP encapsulation schemes at this layer.
    shim_size: int = 0
    # Loose source routing (the §4 alternative to encapsulation): the
    # remaining intermediate hops.  ``route_pointer`` counts how many
    # have been consumed.  Routers forward option-bearing packets on a
    # slow path (see Router.option_processing_delay), which is §4's
    # "current IP routers typically handle packets with options much
    # more slowly".
    source_route: Tuple[IPAddress, ...] = ()
    route_pointer: int = 0
    # Analysis bookkeeping.  trace_id survives encapsulation/decapsulation
    # and fragmentation so a logical datagram can be followed end to end.
    trace_id: int = field(default_factory=lambda: next(_trace_ids))
    hops: List[HopRecord] = field(default_factory=list)
    # Cached inner_size.  The encapsulation stack is effectively
    # immutable after construction; the few sites that do mutate
    # size-relevant fields (fragmentation, reassembly) must call
    # invalidate_size_cache().  init=False keeps the cache out of
    # dataclasses.replace(), so copies start cold.
    _inner_size_cache: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.src = IPAddress(self.src)
        self.dst = IPAddress(self.dst)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    @property
    def is_fragment(self) -> bool:
        return self.more_fragments or self.frag_offset != 0

    @property
    def inner_size(self) -> int:
        """Size of everything behind this packet's own IP header.

        A fragment always reports its literal byte count
        (``payload_size``), even when it still carries a structured
        payload object for delivery purposes — otherwise the first
        fragment of an encapsulated packet would claim the whole inner
        packet's size and be re-fragmented at every hop.
        """
        cached = self._inner_size_cache
        if cached is not None:
            return cached
        if self.is_fragment:
            size = self.payload_size
        elif isinstance(self.payload, Packet):
            size = self.shim_size + self.payload.wire_size
        else:
            size = self.shim_size + self.payload_size
        self._inner_size_cache = size
        return size

    def invalidate_size_cache(self) -> None:
        """Drop the cached size after mutating size-relevant fields.

        Must be called by any code that changes ``payload``,
        ``payload_size``, ``shim_size``, or the fragmentation flags
        after construction (see :mod:`repro.netsim.fragmentation`).
        Encapsulating packets cache the *nested* packet's size too, so
        mutate-then-encapsulate, never the reverse.
        """
        self._inner_size_cache = None

    @property
    def options_size(self) -> int:
        """IP options bytes: an LSRR option is 3 bytes plus 4 per hop,
        padded to a 4-byte boundary (RFC 791)."""
        if not self.source_route:
            return 0
        raw = 3 + 4 * len(self.source_route)
        return (raw + 3) // 4 * 4

    @property
    def has_options(self) -> bool:
        return bool(self.source_route)

    @property
    def wire_size(self) -> int:
        """Total on-the-wire size of this packet in bytes."""
        # Fast path: size cache warm and no options (the overwhelmingly
        # common case on forwarding paths, where this is called per hop).
        cached = self._inner_size_cache
        if cached is not None and not self.source_route:
            return IPV4_HEADER_SIZE + cached
        return IPV4_HEADER_SIZE + self.options_size + self.inner_size

    # ------------------------------------------------------------------
    # Encapsulation helpers
    # ------------------------------------------------------------------
    @property
    def is_encapsulated(self) -> bool:
        return isinstance(self.payload, Packet)

    @property
    def innermost(self) -> "Packet":
        """Follow the encapsulation stack to the innermost packet."""
        packet = self
        while isinstance(packet.payload, Packet):
            packet = packet.payload
        return packet

    @property
    def encapsulation_depth(self) -> int:
        depth = 0
        packet = self
        while isinstance(packet.payload, Packet):
            depth += 1
            packet = packet.payload
        return depth

    # ------------------------------------------------------------------
    # Trace helpers
    # ------------------------------------------------------------------
    def record(self, time: float, node: str, action: str, detail: str = "") -> None:
        """Append a hop record (shared with the innermost packet's list)."""
        # Built via __new__ + __dict__: the frozen dataclass __init__
        # routes every field through object.__setattr__, and this runs
        # once per trace event.  Field values match the constructor.
        hop = HopRecord.__new__(HopRecord)
        hop.__dict__.update(time=time, node=node, action=action, detail=detail)
        self.hops.append(hop)

    @property
    def path(self) -> Tuple[str, ...]:
        """Names of nodes that forwarded or delivered this packet."""
        return tuple(
            hop.node for hop in self.hops if hop.action in ("forward", "deliver")
        )

    @property
    def hop_count(self) -> int:
        return sum(1 for hop in self.hops if hop.action == "forward")

    @property
    def was_dropped(self) -> bool:
        return any(hop.action == "drop" for hop in self.hops)

    @property
    def drop_reason(self) -> Optional[str]:
        for hop in self.hops:
            if hop.action == "drop":
                return hop.detail
        return None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def copy_for_fragment(self, offset: int, size: int, more: bool) -> "Packet":
        """Build a fragment sharing identification and trace id."""
        fragment = replace(
            self,
            payload=None,
            payload_size=size,
            frag_offset=offset,
            more_fragments=more,
            hops=list(self.hops),
        )
        # First fragment keeps the payload object so delivery still works
        # after reassembly; continuation fragments carry only bytes.
        if offset == 0:
            fragment.payload = self.payload
            fragment.invalidate_size_cache()
        return fragment

    def __repr__(self) -> str:
        payload = self.payload
        inner = f" [{payload!r}]" if isinstance(payload, Packet) else ""
        frag = ""
        if self.frag_offset or self.more_fragments:
            frag = f" frag(off={self.frag_offset},mf={self.more_fragments})"
        # ``_name_`` is the enum's stored name — same string as ``.name``
        # without the DynamicClassAttribute descriptor overhead; ``!s``
        # reaches the addresses' cached dotted quads without the
        # ``__format__`` indirection.
        return (
            f"Packet({self.src!s}->{self.dst!s} {self.proto._name_}"
            f" {self.wire_size}B ttl={self.ttl}{frag}{inner})"
        )
