"""IP fragmentation and reassembly.

Paper §3.3: "Encapsulation typically adds 20 bytes to the size of the
packet in IPv4 ... If the addition of the extra 20 bytes makes the
packet exceed the IP maximum transmission unit (MTU) for a particular
link, then the packet will be fragmented, doubling the packet count."

Fragmentation here follows IPv4 semantics closely enough for that
claim to be measurable: fragments carry offsets in 8-byte units, every
fragment repeats the 20-byte IP header, the DF bit suppresses
fragmentation (producing a drop + ICMP "fragmentation needed"), and
reassembly at the destination requires *all* fragments, with a timer
that discards incomplete buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .addressing import IPAddress
from .packet import IPV4_HEADER_SIZE, Packet

__all__ = ["FragmentationNeeded", "fragment", "ReassemblyBuffer", "Reassembler"]

FRAGMENT_UNIT = 8          # offsets are in 8-byte blocks
REASSEMBLY_TIMEOUT = 30.0  # seconds (RFC 791 suggests 15-120s)


class FragmentationNeeded(Exception):
    """Raised when a DF packet exceeds the MTU (triggers ICMP type 3/4)."""

    def __init__(self, packet: Packet, mtu: int):
        super().__init__(f"packet of {packet.wire_size}B exceeds MTU {mtu} with DF set")
        self.packet = packet
        self.mtu = mtu


def fragment(packet: Packet, mtu: int) -> List[Packet]:
    """Split ``packet`` into MTU-sized fragments (or return it unchanged).

    The payload object itself rides in the first fragment; continuation
    fragments carry byte counts only.  All fragments share the original
    identification and trace id so the reassembler — and the analysis
    layer — can correlate them.
    """
    if packet.wire_size <= mtu:
        return [packet]
    if packet.dont_fragment:
        raise FragmentationNeeded(packet, mtu)
    if mtu <= IPV4_HEADER_SIZE + FRAGMENT_UNIT:
        raise ValueError(f"mtu {mtu} too small to carry any payload")

    # Refragmentation support (RFC 791): when the input is itself a
    # fragment, new offsets are absolute (base + local offset) and the
    # last piece inherits the original more-fragments bit.
    base = packet.frag_offset
    tail_has_more = packet.more_fragments

    data_size = packet.inner_size
    per_fragment = ((mtu - IPV4_HEADER_SIZE) // FRAGMENT_UNIT) * FRAGMENT_UNIT
    fragments: List[Packet] = []
    offset = 0
    while offset < data_size:
        chunk = min(per_fragment, data_size - offset)
        more = (offset + chunk) < data_size or tail_has_more
        frag = packet.copy_for_fragment(
            offset=base + offset, size=chunk, more=more
        )
        # Continuation fragments must not re-count the shim; the first
        # fragment's `payload_size` also subsumes any nested packet, so
        # zero the structured fields copy_for_fragment preserved.
        frag.shim_size = 0
        frag.invalidate_size_cache()
        fragments.append(frag)
        offset += chunk
    return fragments


@dataclass
class ReassemblyBuffer:
    """Collects the fragments of one datagram."""

    first_seen: float
    fragments: Dict[int, Packet] = field(default_factory=dict)
    total_size: Optional[int] = None   # known once the MF=0 fragment arrives

    def add(self, packet: Packet) -> Optional[str]:
        """Accept a fragment; returns a rejection reason or ``None``.

        Duplicates (same offset seen again — a retransmitted or looped
        fragment) and overlaps (a fragment whose byte range intersects
        an already-held one — the classic teardrop-style confusion) are
        rejected deterministically: the first arrival wins, the buffer
        is never mutated by the rejected fragment, and the caller counts
        the rejection.
        """
        offset = packet.frag_offset
        if offset in self.fragments:
            return "duplicate"
        end = offset + packet.payload_size
        for held_offset, held in self.fragments.items():
            if offset < held_offset + held.payload_size and held_offset < end:
                return "overlap"
        self.fragments[offset] = packet
        if not packet.more_fragments:
            self.total_size = offset + packet.payload_size
        return None

    def complete(self) -> bool:
        if self.total_size is None:
            return False
        covered = 0
        for offset in sorted(self.fragments):
            frag = self.fragments[offset]
            if offset > covered:
                return False  # gap
            covered = max(covered, offset + frag.payload_size)
        return covered >= self.total_size

    def reassemble(self) -> Packet:
        """Rebuild the original packet from the first fragment's payload."""
        if not self.complete():
            raise ValueError("reassembly attempted on incomplete buffer")
        first = self.fragments[0]
        whole = first.copy_for_fragment(offset=0, size=self.total_size or 0, more=False)
        whole.payload = first.payload
        # Restore structured sizing: if the payload is a nested packet the
        # wire size derives from it; otherwise from the byte count.
        if whole.is_encapsulated:
            whole.payload_size = 0
        whole.more_fragments = False
        whole.frag_offset = 0
        whole.invalidate_size_cache()
        return whole


class Reassembler:
    """Per-node reassembly state keyed by (src, dst, proto, ident)."""

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[IPAddress, IPAddress, int, int], ReassemblyBuffer] = {}
        self.timeouts = 0
        self.reassembled = 0
        self.duplicates = 0
        self.overlaps = 0
        # Called with the expired buffer so the owning node can trace a
        # classified drop instead of letting the datagram vanish.
        self.on_expire: Optional[Callable[[ReassemblyBuffer], None]] = None

    def accept(self, packet: Packet, now: float) -> Optional[Packet]:
        """Feed a packet in; returns a whole datagram when complete.

        Unfragmented packets pass straight through.  Expired buffers
        are garbage-collected opportunistically on every call.
        Duplicate and overlapping fragments are rejected (first arrival
        wins) and counted.
        """
        self._expire(now)
        if not packet.more_fragments and packet.frag_offset == 0:
            return packet
        key = (packet.src, packet.dst, int(packet.proto), packet.ident)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = self._buffers[key] = ReassemblyBuffer(first_seen=now)
        rejection = buffer.add(packet)
        if rejection is not None:
            if rejection == "duplicate":
                self.duplicates += 1
            else:
                self.overlaps += 1
            return None
        if buffer.complete():
            del self._buffers[key]
            self.reassembled += 1
            return buffer.reassemble()
        return None

    def _expire(self, now: float) -> None:
        # A buffer dies at *exactly* REASSEMBLY_TIMEOUT after its first
        # fragment (>=), not one event later — RFC 791's "if the timer
        # runs out, all reassembly resources ... are released".
        expired = [
            key
            for key, buffer in self._buffers.items()
            if now - buffer.first_seen >= REASSEMBLY_TIMEOUT
        ]
        for key in expired:
            buffer = self._buffers.pop(key)
            self.timeouts += 1
            if self.on_expire is not None:
                self.on_expire(buffer)

    @property
    def pending(self) -> int:
        return len(self._buffers)
