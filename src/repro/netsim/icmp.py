"""ICMP messages, including the paper's care-of-address advisory.

Beyond the standard types the simulator needs (echo for reachability
probes, destination-unreachable for routing errors, fragmentation-
needed for DF packets), §3.2 of the paper proposes a new message:

    "when the home agent forwards a packet to the mobile host, it may
    also send an ICMP message back to the packet's source, informing
    it of the mobile host's current temporary care-of address."

That advisory — :class:`CareOfAdvisory` — is how a mobile-aware
correspondent host learns a binding and upgrades from In-IE to In-DE
(Figure 5).  Conventional hosts simply ignore ICMP types they do not
understand, preserving interoperability.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional

from .addressing import IPAddress
from .packet import IPProto, Packet

__all__ = [
    "IcmpType",
    "IcmpMessage",
    "EchoData",
    "UnreachableData",
    "CareOfAdvisory",
    "make_icmp_packet",
    "ICMP_HEADER_SIZE",
]

ICMP_HEADER_SIZE = 8


class IcmpType(IntEnum):
    ECHO_REPLY = 0
    DEST_UNREACHABLE = 3
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11
    # Experimental type for the paper's home-agent advisory.  Real
    # deployments would have used a reserved/experimental code point.
    MOBILE_CARE_OF_ADVISORY = 42


class UnreachableCode(IntEnum):
    NET_UNREACHABLE = 0
    HOST_UNREACHABLE = 1
    PROTO_UNREACHABLE = 2
    PORT_UNREACHABLE = 3
    FRAGMENTATION_NEEDED = 4
    ADMIN_PROHIBITED = 13


@dataclass(frozen=True)
class EchoData:
    """Payload of echo request/reply: an opaque token plus size padding."""

    token: int
    size: int = 56


@dataclass(frozen=True)
class UnreachableData:
    """Destination-unreachable details: the offending packet's summary."""

    code: UnreachableCode
    original_src: IPAddress
    original_dst: IPAddress
    mtu: int = 0    # for FRAGMENTATION_NEEDED (RFC 1191 path-MTU style)


@dataclass(frozen=True)
class CareOfAdvisory:
    """The §3.2 advisory: "host X is mobile; its care-of address is Y".

    ``home_address`` is the mobile host's permanent address the
    correspondent was using; ``care_of_address`` is where to tunnel;
    ``lifetime`` bounds how long the binding may be cached, mirroring
    registration lifetimes so stale bindings expire.
    """

    home_address: IPAddress
    care_of_address: IPAddress
    lifetime: float = 60.0


@dataclass(frozen=True)
class IcmpMessage:
    icmp_type: IcmpType
    data: object = None

    @property
    def size(self) -> int:
        if isinstance(self.data, EchoData):
            return ICMP_HEADER_SIZE + self.data.size
        if isinstance(self.data, UnreachableData):
            return ICMP_HEADER_SIZE + 28  # IP header + 8 bytes of original
        if isinstance(self.data, CareOfAdvisory):
            return ICMP_HEADER_SIZE + 12  # two addresses + lifetime
        return ICMP_HEADER_SIZE


def make_icmp_packet(
    src: IPAddress,
    dst: IPAddress,
    message: IcmpMessage,
    ttl: int = 64,
) -> Packet:
    """Build an IP packet carrying an ICMP message."""
    return Packet(
        src=src,
        dst=dst,
        proto=IPProto.ICMP,
        payload=message,
        payload_size=message.size,
        ttl=ttl,
    )


def unreachable_for(
    reporter: IPAddress,
    offending: Packet,
    code: UnreachableCode,
    mtu: int = 0,
) -> Optional[Packet]:
    """Construct a dest-unreachable reply for an offending packet.

    Per RFC 1122, no ICMP error is generated for a non-initial
    fragment, a broadcast/multicast packet, or another ICMP error —
    avoiding error storms.
    """
    if offending.frag_offset != 0:
        return None
    if offending.dst.is_multicast or offending.dst.is_broadcast:
        return None
    if offending.proto is IPProto.ICMP:
        payload = offending.payload
        if isinstance(payload, IcmpMessage) and payload.icmp_type in (
            IcmpType.DEST_UNREACHABLE,
            IcmpType.TIME_EXCEEDED,
        ):
            return None
    message = IcmpMessage(
        IcmpType.DEST_UNREACHABLE,
        UnreachableData(code, offending.src, offending.dst, mtu),
    )
    return make_icmp_packet(reporter, offending.src, message)
