"""Discrete-event engine.

A deterministic event queue drives the whole simulator: link
propagation, transmission serialization, transport retransmission
timers, registration lifetimes, and application think times are all
events.  Determinism matters — every benchmark and test must produce
identical traces run-to-run — so ties are broken by insertion order and
all randomness flows through a single seeded RNG owned by the
:class:`Simulator` (see :mod:`repro.netsim.simulator`).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Event", "EventQueue", "SimClock"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is (time, sequence); the callback and its arguments do not
    participate in comparisons.  ``cancelled`` supports O(1) timer
    cancellation (the queue lazily discards cancelled events on pop).
    """

    time: float
    seq: int
    action: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class SimClock:
    """Monotonic simulation clock, advanced only by the event queue."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def _advance(self, time: float) -> None:
        if time < self._now:
            raise RuntimeError(
                f"time went backwards: {time} < {self._now}"
            )
        self._now = time


class EventQueue:
    """A priority queue of events with deterministic tie-breaking."""

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock or SimClock()
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self.processed = 0

    def schedule(
        self,
        delay: float,
        action: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``action(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        event = Event(self.clock.now + delay, next(self._seq), action, args, label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self,
        time: float,
        action: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``action(*args)`` at absolute simulation time."""
        return self.schedule(max(0.0, time - self.clock.now), action, *args, label=label)

    @property
    def pending(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock._advance(event.time)
            event.action(*event.args)
            self.processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> float:
        """Drain the queue, optionally stopping at time ``until``.

        Returns the clock value when processing stopped.  ``max_events``
        guards against runaway feedback loops in misconfigured
        topologies (e.g. routing loops with no TTL).
        """
        for _ in range(max_events):
            if until is not None:
                # Peek: stop before executing events beyond the horizon.
                while self._heap and self._heap[0].cancelled:
                    heapq.heappop(self._heap)
                if not self._heap or self._heap[0].time > until:
                    self.clock._advance(max(until, self.clock.now))
                    return self.clock.now
            if not self.step():
                return self.clock.now
        raise RuntimeError(f"event budget exhausted ({max_events} events)")
