"""Discrete-event engine.

A deterministic event queue drives the whole simulator: link
propagation, transmission serialization, transport retransmission
timers, registration lifetimes, and application think times are all
events.  Determinism matters — every benchmark and test must produce
identical traces run-to-run — so ties are broken by insertion order and
all randomness flows through a single seeded RNG owned by the
:class:`Simulator` (see :mod:`repro.netsim.simulator`).

Performance notes (this engine bounds the wall time of every figure
benchmark — see ``python -m repro.bench``):

* The heap stores plain ``(time, seq, event)`` tuples, so sift
  comparisons are C-level tuple comparisons instead of dataclass
  ``__lt__`` calls building tuples per comparison.
* :class:`Event` is a ``__slots__`` class; events are allocated on
  every packet hop, so per-instance dict overhead matters.
* ``pending`` is O(1): the queue maintains a live-event counter
  decremented on :meth:`Event.cancel` and on pop.
* Cancelled entries are discarded lazily on pop, and the heap is
  compacted outright when cancelled corpses outnumber live events
  (timer-heavy transports cancel most of what they schedule).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

_heappush = heapq.heappush
_heappop = heapq.heappop

__all__ = ["Event", "EventQueue", "SimClock"]

# Compact the heap when it holds more than this many cancelled entries
# AND they outnumber the live ones.  Small enough that a timer-heavy
# run never carries a mostly-dead heap, large enough that compaction
# cost is amortized over many cancellations.
_COMPACT_MIN_CANCELLED = 256


class Event:
    """A scheduled callback.

    Ordering is (time, sequence); the callback and its arguments do not
    participate in comparisons.  ``cancelled`` supports O(1) timer
    cancellation (the queue lazily discards cancelled events on pop).

    ``done`` marks an event that has already executed.  Cancelling a
    done event is a harmless no-op: callers that keep timer handles
    around (registration retries, refresh timers) would otherwise
    corrupt the queue's O(1) live/cancelled accounting by "cancelling"
    an event that is no longer in the heap.
    """

    __slots__ = ("time", "seq", "action", "args", "label", "cancelled", "done",
                 "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[..., Any],
        args: tuple = (),
        label: str = "",
        queue: Optional["EventQueue"] = None,
    ):
        self.time = time
        self.seq = seq
        self.action = action
        self.args = args
        self.label = label
        self.cancelled = False
        self.done = False
        self._queue = queue

    def cancel(self) -> None:
        if not self.cancelled and not self.done:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        # Kept for API compatibility with the old dataclass(order=True)
        # Event; the queue itself orders tuples, not events.
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        label = f" {self.label!r}" if self.label else ""
        return f"Event(t={self.time}, seq={self.seq}{label}{state})"


class SimClock:
    """Monotonic simulation clock, advanced only by the event queue."""

    __slots__ = ("_now",)

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def _advance(self, time: float) -> None:
        if time < self._now:
            raise RuntimeError(
                f"time went backwards: {time} < {self._now}"
            )
        self._now = time


class EventQueue:
    """A priority queue of events with deterministic tie-breaking."""

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock or SimClock()
        # Heap of (time, seq, event) tuples; seq breaks ties FIFO and
        # guarantees the comparison never reaches the event itself.
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self.processed = 0
        self._live = 0        # scheduled and not yet cancelled or run
        self._cancelled = 0   # cancelled entries still sitting in the heap

    def schedule(
        self,
        delay: float,
        action: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``action(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        time = self.clock._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, action, args, label, self)
        _heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def schedule_at(
        self,
        time: float,
        action: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``action(*args)`` at absolute simulation time.

        Scheduling in the past is a logic error (it used to be silently
        clamped to "now", hiding broken timer arithmetic) and raises
        ``ValueError``, matching :meth:`schedule`'s negative-delay check.
        """
        now = self.clock._now
        if time < now:
            raise ValueError(f"cannot schedule in the past: {time} < now {now}")
        return self.schedule(time - now, action, *args, label=label)

    @property
    def pending(self) -> int:
        """Live (scheduled, not cancelled, not yet run) event count. O(1)."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Raw heap entries, live plus cancelled corpses. O(1)."""
        return len(self._heap)

    @property
    def cancelled_backlog(self) -> int:
        """Cancelled entries still awaiting lazy removal. O(1)."""
        return self._cancelled

    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel`: maintain counters, compact."""
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > _COMPACT_MIN_CANCELLED and self._cancelled > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors.

        In place (slice assignment), because ``run()`` holds a local
        reference to the heap list while actions — which may cancel
        timers and trigger compaction — execute.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._cancelled = 0

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        heap = self._heap
        clock = self.clock
        while heap:
            time, _seq, event = _heappop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._live -= 1
            if time < clock._now:
                raise RuntimeError(f"time went backwards: {time} < {clock._now}")
            clock._now = time
            event.done = True
            event.action(*event.args)
            self.processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> float:
        """Drain the queue, optionally stopping at time ``until``.

        Returns the clock value when processing stopped.  ``max_events``
        guards against runaway feedback loops in misconfigured
        topologies (e.g. routing loops with no TTL).

        The body is the hottest loop in the simulator: two specialized
        loops (with and without a horizon) pop first and push back the
        at-most-one over-horizon event rather than peeking every
        iteration, advance the clock inline instead of through
        ``SimClock._advance``, and batch the ``processed``/live
        counter updates into a ``finally`` (so mid-run actions that
        cancel timers still interleave correctly, but code polling
        ``pending``/``processed`` *from inside an action* sees values
        as of run() entry — no simulator code does).
        """
        heap = self._heap
        clock = self.clock
        pop = _heappop
        processed = 0
        live_popped = 0
        try:
            if until is None:
                while processed < max_events:
                    if not heap:
                        return clock._now
                    time, _seq, event = pop(heap)
                    if event.cancelled:
                        self._cancelled -= 1
                        continue
                    live_popped += 1
                    if time < clock._now:
                        raise RuntimeError(
                            f"time went backwards: {time} < {clock._now}"
                        )
                    clock._now = time
                    event.done = True
                    event.action(*event.args)
                    processed += 1
            else:
                while processed < max_events:
                    if not heap:
                        if until > clock._now:
                            clock._now = until
                        return clock._now
                    entry = pop(heap)
                    event = entry[2]
                    if event.cancelled:
                        self._cancelled -= 1
                        continue
                    time = entry[0]
                    if time > until:
                        _heappush(heap, entry)
                        if until > clock._now:
                            clock._now = until
                        return clock._now
                    live_popped += 1
                    if time < clock._now:
                        raise RuntimeError(
                            f"time went backwards: {time} < {clock._now}"
                        )
                    clock._now = time
                    event.done = True
                    event.action(*event.args)
                    processed += 1
            raise RuntimeError(f"event budget exhausted ({max_events} events)")
        finally:
            self.processed += processed
            self._live -= live_popped
