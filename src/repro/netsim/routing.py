"""IP routing tables with longest-prefix matching.

Routers and hosts both own a :class:`RoutingTable`.  The table is
ordinary and static — the paper explicitly assumes "no special support
from routers, except for normal IP routing" (§3) — so there is no
routing protocol here; topology builders install routes directly, the
way a 1996 network administrator would have.

The mobility framework of the paper does **not** modify this table.
Instead (§7) it *overrides the route lookup routine*: a mobility policy
table is consulted before the normal table.  That hook lives on
:class:`repro.netsim.node.Node` as ``route_overrides``; this module is
only the conventional layer underneath it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from .addressing import IPAddress, Network

__all__ = ["Route", "RoutingTable", "RoutingError"]


class RoutingError(Exception):
    """Raised when no route exists for a destination."""


@dataclass(frozen=True)
class Route:
    """One forwarding entry.

    ``gateway`` is None for directly-attached prefixes (deliver by ARP
    on the segment); otherwise the packet is forwarded to the gateway's
    IP on ``interface``.  Lower ``metric`` wins among equal-length
    prefixes.
    """

    prefix: Network
    interface: str
    gateway: Optional[IPAddress] = None
    metric: int = 0

    def __str__(self) -> str:
        via = f"via {self.gateway}" if self.gateway else "direct"
        return f"{self.prefix} dev {self.interface} {via} metric {self.metric}"


class RoutingTable:
    """A longest-prefix-match routing table."""

    def __init__(self, routes: Iterable[Route] = ()):
        self._routes: List[Route] = list(routes)

    def add(
        self,
        prefix: Network,
        interface: str,
        gateway: Optional[IPAddress] = None,
        metric: int = 0,
    ) -> Route:
        route = Route(Network(prefix) if not isinstance(prefix, Network) else prefix,
                      interface, gateway, metric)
        self._routes.append(route)
        return route

    def add_default(self, interface: str, gateway: IPAddress) -> Route:
        return self.add(Network("0.0.0.0/0"), interface, gateway)

    def remove_prefix(self, prefix: Network) -> int:
        """Remove all routes for an exact prefix; returns removal count."""
        before = len(self._routes)
        self._routes = [r for r in self._routes if r.prefix != prefix]
        return before - len(self._routes)

    def clear(self) -> None:
        self._routes.clear()

    def lookup(self, destination: IPAddress) -> Optional[Route]:
        """Longest-prefix match; ties broken by lowest metric."""
        best: Optional[Route] = None
        for route in self._routes:
            if not route.prefix.contains(destination):
                continue
            if best is None:
                best = route
            elif route.prefix.prefix_len > best.prefix.prefix_len:
                best = route
            elif (
                route.prefix.prefix_len == best.prefix.prefix_len
                and route.metric < best.metric
            ):
                best = route
        return best

    def lookup_or_raise(self, destination: IPAddress) -> Route:
        route = self.lookup(destination)
        if route is None:
            raise RoutingError(f"no route to {destination}")
        return route

    @property
    def routes(self) -> List[Route]:
        return list(self._routes)

    def __len__(self) -> int:
        return len(self._routes)

    def __str__(self) -> str:
        ordered = sorted(
            self._routes, key=lambda r: (-r.prefix.prefix_len, r.metric)
        )
        return "\n".join(str(route) for route in ordered) or "(empty table)"
