"""The simulator: clock, event queue, trace log, node registry, RNG.

One :class:`Simulator` instance owns everything mutable in a run, so
tests and benchmarks can build as many independent scenarios as they
like without global state leaking between them.  All randomness used
anywhere in a run must come from :attr:`Simulator.rng`, which is seeded
at construction — identical seeds give identical traces.
"""

from __future__ import annotations

import itertools
import random
from typing import TYPE_CHECKING, Dict, Optional

from ..obs.metrics import MetricsRegistry
from .events import EventQueue, SimClock
from .fastforward import FastForwarder
from .link import Segment
from .trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Observability
    from ..obs.flightrec import FlightRecorder
    from ..verify.invariants import InvariantMonitor
    from .node import Node

__all__ = ["Simulator"]


class Simulator:
    """Container for one simulation run."""

    def __init__(
        self,
        seed: int = 1996,
        trace_entries: bool = True,
        trace_aggregates: bool = True,
        fast_forward: bool = True,
    ):
        """``trace_entries=False`` drops per-event entries but keeps hop
        records and aggregate counters; additionally passing
        ``trace_aggregates=False`` turns tracing into a true no-op for
        maximum-throughput runs (see :class:`TraceLog`).

        ``fast_forward`` enables the steady-flow replay engine (see
        :class:`~repro.netsim.fastforward.FastForwarder`); it changes
        wall-clock only, never observable behavior, and disengages
        itself whenever observability or invariants are armed."""
        self.clock = SimClock()
        self.events = EventQueue(self.clock)
        self.trace = TraceLog(enabled=trace_entries, aggregates=trace_aggregates)
        self.rng = random.Random(seed)
        self.nodes: Dict[str, "Node"] = {}
        self.segments: Dict[str, Segment] = {}
        self._tokens = itertools.count(1)
        # Every run owns a metrics registry; components register pull
        # metrics into it at construction, so there is no per-event
        # cost (see repro.obs.metrics).  The heavier span/engine layers
        # stay off until enable_observability().
        self.metrics = MetricsRegistry()
        self.obs: Optional["Observability"] = None
        self.invariants: Optional["InvariantMonitor"] = None
        self.flightrec: Optional["FlightRecorder"] = None
        # Attached by repro.netsim.population when the run carries a
        # flyweight host population (pool + timer wheel).
        self.population = None
        self.fast_forward: Optional[FastForwarder] = (
            FastForwarder(self) if fast_forward else None
        )
        trace = self.trace
        self.metrics.counter(
            "trace.events", read=lambda: sum(trace.action_counts.values()))
        self.metrics.counter(
            "trace.delivered", read=lambda: trace.action_counts["deliver"])
        self.metrics.counter(
            "trace.dropped", read=lambda: trace.action_counts["drop"])
        self.metrics.family(
            "trace.drops_by_reason", lambda: dict(trace.drops_by_reason))
        self.metrics.family(
            "trace.losses_by_reason", lambda: dict(trace.losses_by_reason))
        self.metrics.family(
            "trace.bytes_by_link", lambda: dict(trace.bytes_by_link))

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, node: "Node") -> None:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node

    def node(self, name: str) -> "Node":
        return self.nodes[name]

    def segment(
        self,
        name: str,
        latency: float = 0.001,
        bandwidth: float = 10e6,
        mtu: int = 1500,
        loss_rate: float = 0.0,
        queue_capacity: Optional[int] = None,
    ) -> Segment:
        """Create (and register) a named segment."""
        if name in self.segments:
            raise ValueError(f"duplicate segment name {name!r}")
        seg = Segment(name, self, latency=latency, bandwidth=bandwidth,
                      mtu=mtu, loss_rate=loss_rate,
                      queue_capacity=queue_capacity)
        self.segments[name] = seg
        return seg

    def next_token(self) -> int:
        """Monotonic token source for echo requests, idents, etc."""
        return next(self._tokens)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def enable_observability(
        self,
        spans: bool = True,
        engine_cadence: Optional[float] = 0.5,
    ) -> "Observability":
        """Turn on the span recorder and engine sampler for this run.

        The metrics registry is always live (it is pull-based and
        free); this switch adds the per-event span layer and the
        periodic engine gauges.  Returns the :class:`Observability`
        handle, also kept on ``self.obs``.
        """
        if self.obs is not None:
            raise RuntimeError("observability is already enabled for this run")
        from ..obs import Observability

        self.obs = Observability(
            self, spans=spans, engine_cadence=engine_cadence
        ).enable()
        return self.obs

    def enable_invariants(self, **kwargs) -> "InvariantMonitor":
        """Arm the runtime invariant monitor for this run.

        Attaches an :class:`~repro.verify.invariants.InvariantMonitor`
        to the trace stream (keyword arguments pass through to its
        constructor).  Returns the monitor, also kept on
        ``self.invariants``; call ``monitor.finish()`` after the run
        for the end-of-run termination accounting.
        """
        if self.invariants is not None:
            raise RuntimeError("invariants are already enabled for this run")
        from ..verify.invariants import InvariantMonitor

        monitor = InvariantMonitor(self, **kwargs)
        monitor.attach(self.trace)
        self.invariants = monitor
        return monitor

    def enable_flight_recorder(self, limit: Optional[int] = None) -> "FlightRecorder":
        """Arm the postmortem flight recorder for this run.

        Attaches a :class:`~repro.obs.flightrec.FlightRecorder` ring
        buffer to the trace stream (``limit`` entries; see that module
        for the digest-neutrality argument).  Returns the recorder,
        also kept on ``self.flightrec``; the fast-forwarder stands
        aside while one is armed so the ring never misses replayed
        entries.
        """
        if self.flightrec is not None:
            raise RuntimeError(
                "flight recorder is already enabled for this run")
        from ..obs.flightrec import DEFAULT_FLIGHT_LIMIT, FlightRecorder

        recorder = FlightRecorder(
            self, limit=DEFAULT_FLIGHT_LIMIT if limit is None else limit)
        recorder.attach(self.trace)
        self.flightrec = recorder
        return recorder

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> float:
        """Run events (optionally up to an absolute time)."""
        ff = self.fast_forward
        if ff is not None:
            return ff.run(until=until, max_events=max_events)
        return self.events.run(until=until, max_events=max_events)

    def run_for(self, duration: float, max_events: int = 1_000_000) -> float:
        """Run events for a relative duration from the current time."""
        return self.run(until=self.clock.now + duration, max_events=max_events)

    @property
    def now(self) -> float:
        return self.clock.now
