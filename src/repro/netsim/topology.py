"""Topology builders: administrative domains joined by a backbone.

Every figure of the paper plays out on the same kind of stage: a home
domain (containing the home agent), a visited domain (where the mobile
host currently sits), zero or more correspondent domains, and "the
Internet" between them.  :class:`Internet` builds that stage:

* a **backbone** of interior routers in a chain, with configurable
  per-link latency — the chain position of each domain determines the
  "distance" between sites, which is what makes Figure 4's
  nearby-correspondent scenario measurably different from Figure 1's
  distant one;
* **domains**, each a LAN behind a :class:`BoundaryRouter` whose
  security posture (source filtering, transit policy) is set per
  domain — the permissiveness knob of the paper;
* static routes everywhere, computed over the backbone graph —
  "no special support from routers, except for normal IP routing" (§3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .addressing import AddressAllocator, IPAddress, Network
from .filters import FilterRule
from .node import Node
from .router import BoundaryRouter, Router
from .simulator import Simulator

__all__ = ["Domain", "Internet"]

INFRA_SUPERNET = Network("172.16.0.0/12")


@dataclass
class Domain:
    """One administrative domain: a LAN behind a boundary router."""

    name: str
    prefix: Network
    boundary: BoundaryRouter
    lan_segment_name: str
    allocator: AddressAllocator
    attach_index: int
    hosts: List[Node] = field(default_factory=list)
    # Flyweight host pool riding this domain's LAN (see
    # repro.netsim.population): ``pool_size`` care-of addresses are
    # reserved as one contiguous block starting at ``pool_base``.
    pool_size: int = 0
    pool_base: Optional[int] = None

    @property
    def gateway_ip(self) -> IPAddress:
        """The boundary router's inside address (the LAN default gateway)."""
        iface = self.boundary.interfaces["inside"]
        assert iface.ip is not None
        return iface.ip


class Internet:
    """Builder and container for a multi-domain topology."""

    def __init__(self, sim: Simulator, backbone_size: int = 1,
                 backbone_latency: float = 0.010, backbone_bandwidth: float = 45e6):
        """Create a backbone chain of ``backbone_size`` routers.

        ``backbone_latency`` is the one-way delay of each backbone link;
        with a chain, the delay between two domains grows linearly with
        how far apart their attachment points are.
        """
        if backbone_size < 1:
            raise ValueError("backbone needs at least one router")
        self.sim = sim
        self.domains: Dict[str, Domain] = {}
        self.backbone: List[Router] = []
        self._infra_subnets = self._subnet_source()
        self._adjacency: Dict[str, List[Tuple[str, str, IPAddress]]] = {}
        # (router -> list of (neighbor, out_iface, neighbor_ip))
        # Host attachment bookkeeping: node name -> (domain name, index
        # into domain.hosts), kept so detach_host is O(1) instead of a
        # scan over every domain's host list.
        self._host_slots: Dict[str, Tuple[str, int]] = {}
        # Prefix index for domain_of: (masked prefix value, prefix len)
        # -> domain, plus the distinct (len, mask) pairs in use.  Domain
        # prefixes cannot overlap (add_domain enforces it), so at most
        # one entry matches a given address.
        self._prefix_index: Dict[Tuple[int, int], Domain] = {}
        self._prefix_masks: List[Tuple[int, int]] = []  # (len, mask)
        # Attached by repro.netsim.population when the world carries a
        # flyweight host population.
        self.population = None

        previous: Optional[Router] = None
        for index in range(backbone_size):
            router = Router(f"bb{index}", sim)
            self.backbone.append(router)
            self._adjacency[router.name] = []
            if previous is not None:
                self._connect_backbone(
                    previous, router, backbone_latency, backbone_bandwidth
                )
            previous = router

    # ------------------------------------------------------------------
    # Infrastructure plumbing
    # ------------------------------------------------------------------
    def _subnet_source(self):
        """Yield successive /30 subnets for point-to-point infra links."""
        base = INFRA_SUPERNET.prefix
        index = 0
        while True:
            yield Network(IPAddress(base + index * 4), 30)
            index += 1

    def _connect_backbone(
        self, a: Router, b: Router, latency: float, bandwidth: float
    ) -> None:
        subnet = next(self._infra_subnets)
        hosts = list(subnet.hosts())
        ip_a, ip_b = hosts[0], hosts[1]
        seg = self.sim.segment(
            f"p2p-{a.name}-{b.name}", latency=latency, bandwidth=bandwidth
        )
        iface_a = a.add_interface(f"to-{b.name}", seg)
        iface_a.configure(ip_a, subnet)
        iface_b = b.add_interface(f"to-{a.name}", seg)
        iface_b.configure(ip_b, subnet)
        a.routes.add(subnet, iface_a.name)
        b.routes.add(subnet, iface_b.name)
        self._adjacency[a.name].append((b.name, iface_a.name, ip_b))
        self._adjacency[b.name].append((a.name, iface_b.name, ip_a))

    # ------------------------------------------------------------------
    # Domains
    # ------------------------------------------------------------------
    def add_domain(
        self,
        name: str,
        prefix: str | Network,
        attach_at: int = 0,
        source_filtering: bool = True,
        forbid_transit: bool = True,
        lan_latency: float = 0.0005,
        lan_bandwidth: float = 10e6,
        lan_mtu: int = 1500,
        extra_rules: Sequence[FilterRule] = (),
        pool_size: int = 0,
    ) -> Domain:
        """Create a domain LAN behind a boundary router.

        ``attach_at`` picks the backbone router; distance between two
        domains is the chain distance between their attachment points.
        ``source_filtering``/``forbid_transit`` set the §3.1 posture.
        ``pool_size`` reserves that many contiguous care-of addresses
        for a flyweight host pool (see :mod:`repro.netsim.population`);
        the block base lands on ``Domain.pool_base``.
        """
        if name in self.domains:
            raise ValueError(f"duplicate domain {name!r}")
        prefix = Network(prefix) if not isinstance(prefix, Network) else prefix
        for existing in self.domains.values():
            if existing.prefix.overlaps(prefix):
                raise ValueError(
                    f"{prefix} overlaps existing domain {existing.name} "
                    f"({existing.prefix})"
                )
        attach_router = self.backbone[attach_at]

        boundary = BoundaryRouter(
            f"{name}-gw",
            self.sim,
            site=prefix,
            source_filtering=source_filtering,
            forbid_transit=forbid_transit,
            extra_rules=extra_rules,
        )

        # Inside: the domain LAN.
        lan_name = f"{name}-lan"
        lan = self.sim.segment(
            lan_name, latency=lan_latency, bandwidth=lan_bandwidth, mtu=lan_mtu
        )
        allocator = AddressAllocator(prefix, reserve=0)
        inside = boundary.add_interface("inside", lan)
        inside.configure(allocator.allocate(), prefix)
        boundary.mark_inside("inside")
        boundary.routes.add(prefix, "inside")

        # Outside: a p2p link to the attachment backbone router.
        subnet = next(self._infra_subnets)
        hosts = list(subnet.hosts())
        gw_ip, bb_ip = hosts[0], hosts[1]
        uplink = self.sim.segment(f"uplink-{name}", latency=0.002, bandwidth=45e6)
        outside = boundary.add_interface("outside", uplink)
        outside.configure(gw_ip, subnet)
        bb_iface = attach_router.add_interface(f"to-{name}", uplink)
        bb_iface.configure(bb_ip, subnet)
        boundary.routes.add(subnet, "outside")
        boundary.routes.add_default("outside", bb_ip)
        attach_router.routes.add(subnet, bb_iface.name)
        attach_router.routes.add(prefix, bb_iface.name, gateway=gw_ip)

        domain = Domain(
            name=name,
            prefix=prefix,
            boundary=boundary,
            lan_segment_name=lan_name,
            allocator=allocator,
            attach_index=attach_at,
        )
        if pool_size:
            domain.pool_size = pool_size
            domain.pool_base = allocator.reserve_block(pool_size)
        self.domains[name] = domain
        key = (prefix.prefix, prefix.prefix_len)
        self._prefix_index[key] = domain
        mask_entry = (prefix.prefix_len, prefix._mask)
        if mask_entry not in self._prefix_masks:
            self._prefix_masks.append(mask_entry)
        self._install_backbone_routes(domain)
        return domain

    def _install_backbone_routes(self, domain: Domain) -> None:
        """Propagate the new domain's prefix through the backbone chain.

        BFS from the attachment router over the backbone adjacency;
        every other backbone router gets a route pointing one hop back
        toward the attachment point.
        """
        start = self.backbone[domain.attach_index].name
        visited = {start}
        queue: deque[str] = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor, _out_iface, _neighbor_ip in self._adjacency[current]:
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                # The neighbor reaches the domain via `current`.
                for nbr2, out_iface, nbr_ip in self._adjacency[neighbor]:
                    if nbr2 == current:
                        self.sim.nodes[neighbor].routes.add(
                            domain.prefix, out_iface, gateway=nbr_ip
                        )
                        break
                queue.append(neighbor)

    # ------------------------------------------------------------------
    # Hosts
    # ------------------------------------------------------------------
    def add_host(
        self,
        domain_name: str,
        host: Node,
        address: Optional[IPAddress] = None,
        claim: bool = True,
    ) -> IPAddress:
        """Attach an existing node to a domain LAN and configure it.

        Returns the assigned address.  The node gets an ``eth0``
        interface (or ``eth1``, ... if already present), a direct route
        for the LAN prefix, and a default route via the boundary router.
        ``claim=False`` configures a specific ``address`` without
        allocator bookkeeping — used by a mobile host re-attaching with
        an address it permanently owns.
        """
        domain = self.domains[domain_name]
        lan = self.sim.segments[domain.lan_segment_name]
        iface_name = f"eth{len(host.interfaces)}"
        iface = host.add_interface(iface_name, lan)
        if address is not None and not claim:
            ip = IPAddress(address)
        elif address is not None:
            ip = domain.allocator.claim(address)
        else:
            ip = domain.allocator.allocate()
        iface.configure(ip, domain.prefix)
        host.routes.add(domain.prefix, iface_name)
        host.routes.add_default(iface_name, domain.gateway_ip)
        self._host_slots[host.name] = (domain.name, len(domain.hosts))
        domain.hosts.append(host)
        return ip

    def detach_host(self, host: Node, iface_name: str = "eth0") -> None:
        """Unplug a host (it keeps its node identity; routes are cleared).

        O(1): the owning domain and list position were recorded on
        attach, and removal swaps the last host into the vacated slot
        instead of scanning every domain.
        """
        iface = host.interfaces.get(iface_name)
        if iface is None:
            return
        iface.detach()
        iface.deconfigure()
        host.routes.clear()
        host.arp.flush()
        slot = self._host_slots.pop(host.name, None)
        if slot is not None:
            domain_name, index = slot
            hosts = self.domains[domain_name].hosts
            last = hosts.pop()
            if last is not host:
                hosts[index] = last
                self._host_slots[last.name] = (domain_name, index)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def domain_distance(self, a: str, b: str) -> int:
        """Backbone-hop distance between two domains' attachment points."""
        return abs(self.domains[a].attach_index - self.domains[b].attach_index)

    def domain_of(self, address: IPAddress) -> Optional[Domain]:
        """The domain whose prefix contains ``address``, if any.

        Indexed by masked prefix bits: one dict probe per distinct
        prefix length in use, instead of a linear scan over every
        domain.  Semantics match the scan this replaced — ``None`` when
        no domain prefix contains the address.
        """
        value = int(address)
        index = self._prefix_index
        for length, mask in self._prefix_masks:
            domain = index.get((value & mask, length))
            if domain is not None:
                return domain
        return None
