"""Network diagnostics: traceroute and a topology renderer.

:func:`traceroute` is the tool that makes the paper's figures *visible*
in a running simulation: tracing from the correspondent to the mobile
host's home address shows the path bending through the home network
(Figure 1), and tracing to the care-of address shows the direct route a
smart correspondent gets to use (Figure 5).

It works the classic way: probes with increasing TTLs, each eliciting
an ICMP time-exceeded from the router where it died, until the echo
reply from the destination comes back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

from .addressing import IPAddress
from .icmp import EchoData, IcmpMessage, IcmpType, make_icmp_packet
from .node import Node
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .topology import Internet

__all__ = ["TracerouteResult", "traceroute", "render_topology"]

MAX_HOPS = 30
HOP_TIMEOUT = 2.0


@dataclass
class TracerouteResult:
    """The hop list of one trace."""

    destination: IPAddress
    hops: List[Optional[IPAddress]] = field(default_factory=list)
    reached: bool = False

    def render(self, resolver: Optional[Callable[[IPAddress], str]] = None) -> str:
        lines = [f"traceroute to {self.destination}"]
        for index, hop in enumerate(self.hops, start=1):
            if hop is None:
                lines.append(f"  {index:2d}  *")
            else:
                name = f" ({resolver(hop)})" if resolver else ""
                lines.append(f"  {index:2d}  {hop}{name}")
        lines.append("  reached" if self.reached else "  gave up")
        return "\n".join(lines)


def traceroute(
    node: Node,
    destination: IPAddress,
    on_done: Callable[[TracerouteResult], None],
    max_hops: int = MAX_HOPS,
    src: Optional[IPAddress] = None,
) -> TracerouteResult:
    """Start a traceroute from ``node``; ``on_done`` fires when complete.

    Probes run sequentially (one TTL at a time), each with a timeout;
    a hop that never answers is recorded as None, like real traceroute
    prints ``*``.
    """
    destination = IPAddress(destination)
    result = TracerouteResult(destination=destination)
    sim = node.simulator
    source = src or node._preferred_source()
    if source is None:
        raise RuntimeError(f"{node.name} has no address to trace from")

    state = {"ttl": 0, "token": None, "timeout_event": None, "done": False}

    def finish() -> None:
        if not state["done"]:
            state["done"] = True
            node.icmp_hooks.remove(hook)
            on_done(result)

    def probe() -> None:
        if state["done"]:
            return
        state["ttl"] += 1
        if state["ttl"] > max_hops:
            finish()
            return
        token = sim.next_token()
        state["token"] = token
        request = make_icmp_packet(
            source, destination,
            IcmpMessage(IcmpType.ECHO_REQUEST, EchoData(token, size=36)),
            ttl=state["ttl"],
        )
        node.ip_send(request)
        state["timeout_event"] = sim.events.schedule(
            HOP_TIMEOUT, on_timeout, state["ttl"], label="traceroute-timeout"
        )

    def on_timeout(for_ttl: int) -> None:
        if state["done"] or for_ttl != state["ttl"]:
            return
        result.hops.append(None)
        probe()

    def advance(hop: Optional[IPAddress], reached: bool) -> None:
        if state["timeout_event"] is not None:
            state["timeout_event"].cancel()
        result.hops.append(hop)
        if reached:
            result.reached = True
            finish()
        else:
            probe()

    def hook(packet: Packet, message: IcmpMessage) -> None:
        if state["done"]:
            return
        if message.icmp_type is IcmpType.TIME_EXCEEDED:
            data = message.data
            original_dst = getattr(data, "original_dst", None)
            if original_dst == destination:
                advance(packet.src, reached=False)
        elif message.icmp_type is IcmpType.ECHO_REPLY:
            data = message.data
            if isinstance(data, EchoData) and data.token == state["token"]:
                advance(packet.src, reached=True)

    node.icmp_hooks.append(hook)
    probe()
    return result


def render_topology(net: "Internet") -> str:
    """ASCII sketch of an :class:`~repro.netsim.topology.Internet`.

    Shows the backbone chain with each domain hanging off its
    attachment router, its prefix, security posture, and hosts.
    """
    lines = ["backbone: " + " -- ".join(r.name for r in net.backbone)]
    for domain in net.domains.values():
        boundary = domain.boundary
        posture = []
        if boundary.source_filtering:
            posture.append("src-filter")
        if boundary.forbid_transit:
            posture.append("no-transit")
        posture_text = ",".join(posture) if posture else "permissive"
        lines.append(
            f"  {domain.name:<10} {str(domain.prefix):<16} "
            f"@ bb{domain.attach_index}  [{posture_text}]"
        )
        for host in domain.hosts:
            addresses = ", ".join(str(a) for a in host.addresses)
            lines.append(f"      {host.name:<12} {addresses}")
    return "\n".join(lines)
