"""Encapsulation (tunneling) schemes.

The paper (§2, §3.3) discusses three concrete ways to put one IP packet
inside another and notes their byte costs:

* **IP-in-IP** (RFC 2003 / [Per96c]): a full outer IPv4 header is
  prepended — +20 bytes.
* **Minimal Encapsulation** ([Per95]): the inner header is compressed
  into an 8- or 12-byte forwarding header (12 when the original source
  address must be preserved, as in reverse tunneling) — +8/+12 bytes.
* **GRE** (RFC 1702): outer IPv4 header plus a 4-byte GRE shim (plus
  optional key/sequence fields) — +24 bytes in the basic form.

All three are modelled precisely enough that :attr:`Packet.wire_size`
reports the correct on-the-wire size, which the §3.3 size benchmarks
rely on.  Decapsulation restores the original inner packet unchanged
(its trace history is preserved).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from .addressing import IPAddress
from .packet import IPV4_HEADER_SIZE, IPProto, Packet

__all__ = [
    "EncapScheme",
    "EncapError",
    "encapsulate",
    "decapsulate",
    "encap_overhead",
    "MIN_ENC_BASE_SIZE",
    "MIN_ENC_WITH_SOURCE_SIZE",
    "GRE_SHIM_SIZE",
]

# Shim sizes (bytes added beyond the payload) for each scheme.
MIN_ENC_BASE_SIZE = 8
MIN_ENC_WITH_SOURCE_SIZE = 12
GRE_SHIM_SIZE = 4


class EncapError(Exception):
    """Raised on invalid encapsulation/decapsulation operations."""


class EncapScheme(Enum):
    """The tunneling mechanisms of the paper."""

    IPIP = "ipip"          # RFC 2003-style IP-in-IP
    MINIMAL = "minimal"    # Per95 minimal encapsulation
    GRE = "gre"            # RFC 1702 generic routing encapsulation

    @property
    def proto(self) -> IPProto:
        return {
            EncapScheme.IPIP: IPProto.IPIP,
            EncapScheme.MINIMAL: IPProto.MINENC,
            EncapScheme.GRE: IPProto.GRE,
        }[self]


def encap_overhead(scheme: EncapScheme, preserve_source: bool = True) -> int:
    """Bytes added to a packet by ``scheme``.

    For IP-in-IP and GRE the full outer IPv4 header (20 B) is added plus
    any shim.  Minimal encapsulation *replaces* the inner IP header with
    a compressed forwarding header inside a new outer header, so its net
    cost over the original packet is 8 B (12 B when the original source
    is carried, needed for reverse tunnels where outer-src != inner-src).
    """
    if scheme is EncapScheme.IPIP:
        return IPV4_HEADER_SIZE
    if scheme is EncapScheme.GRE:
        return IPV4_HEADER_SIZE + GRE_SHIM_SIZE
    if scheme is EncapScheme.MINIMAL:
        return MIN_ENC_WITH_SOURCE_SIZE if preserve_source else MIN_ENC_BASE_SIZE
    raise EncapError(f"unknown scheme {scheme!r}")


@dataclass(frozen=True)
class _MinimalHeader:
    """Bookkeeping for minimal encapsulation.

    Minimal encapsulation compresses the inner IP header away; to be
    able to reconstruct the inner packet exactly on decapsulation we
    stash it here.  ``carries_source`` records whether the 12-byte form
    (with original source address) was used.
    """

    original: Packet
    carries_source: bool


def encapsulate(
    inner: Packet,
    outer_src: IPAddress,
    outer_dst: IPAddress,
    scheme: EncapScheme = EncapScheme.IPIP,
    ttl: int = 64,
) -> Packet:
    """Wrap ``inner`` in an outer packet addressed ``outer_src -> outer_dst``.

    The returned outer packet shares the inner packet's ``trace_id`` and
    hop list so analysis can follow the logical datagram through the
    tunnel.  Minimal encapsulation refuses to nest (the real mechanism
    cannot carry an already-encapsulated packet, since it has no inner
    IP header to compress).
    """
    if inner.more_fragments or inner.frag_offset:
        raise EncapError("cannot encapsulate an IP fragment")
    outer_src = IPAddress(outer_src)
    outer_dst = IPAddress(outer_dst)

    if scheme is EncapScheme.MINIMAL:
        if inner.is_encapsulated:
            raise EncapError("minimal encapsulation cannot nest tunnels")
        carries_source = outer_src != inner.src
        shim = (
            MIN_ENC_WITH_SOURCE_SIZE if carries_source else MIN_ENC_BASE_SIZE
        )
        outer = Packet(
            src=outer_src,
            dst=outer_dst,
            proto=IPProto.MINENC,
            payload=_MinimalHeader(inner, carries_source),
            # Inner IP header is elided; only its payload plus the
            # compressed forwarding header travel behind the outer header.
            payload_size=inner.inner_size + shim,
            ttl=ttl,
            trace_id=inner.trace_id,
            hops=inner.hops,
        )
        return outer

    shim = GRE_SHIM_SIZE if scheme is EncapScheme.GRE else 0
    outer = Packet(
        src=outer_src,
        dst=outer_dst,
        proto=scheme.proto,
        payload=inner,
        shim_size=shim,
        ttl=ttl,
        trace_id=inner.trace_id,
        hops=inner.hops,
    )
    return outer


def decapsulate(outer: Packet) -> Packet:
    """Extract and return the inner packet of a tunnel packet.

    Raises :class:`EncapError` when the packet is not encapsulated or
    the protocol field does not match a known scheme.
    """
    if outer.proto is IPProto.MINENC:
        header = outer.payload
        if not isinstance(header, _MinimalHeader):
            raise EncapError("minimal-encapsulation packet with bad payload")
        return header.original
    if outer.proto in (IPProto.IPIP, IPProto.GRE):
        if not isinstance(outer.payload, Packet):
            raise EncapError(f"{outer.proto.name} packet without inner packet")
        return outer.payload
    raise EncapError(f"packet protocol {outer.proto.name} is not a tunnel")


def scheme_of(packet: Packet) -> Optional[EncapScheme]:
    """The encapsulation scheme of ``packet``, or None if untunneled."""
    return {
        IPProto.IPIP: EncapScheme.IPIP,
        IPProto.MINENC: EncapScheme.MINIMAL,
        IPProto.GRE: EncapScheme.GRE,
    }.get(packet.proto)
