"""Flow fast-forwarding: replay verified steady-state cascades in bulk.

Between mobility, fault, adversary, and timer events, a registered
traffic flow's per-packet behavior is fully determined: the same route,
the same encapsulation chain, the same per-hop latencies, the same
trace entries shifted in time.  Helmy's state-aggregation observation —
that the long steady tail of mobility workloads is analytically
compressible — applies directly: simulate one packet, then *replay* its
event cascade N times instead of re-executing it.

The :class:`FastForwarder` wraps one :class:`~repro.netsim.simulator.
Simulator` run.  Mechanics:

* **Capture.**  The first dispatch of each flow always runs real and
  uninstrumented (ARP warm-up differs from the steady shape anyway).
  The next two run under instrumentation: every ``schedule`` call
  becomes a child *step* (exact delay, label, callback identity), every
  ``TraceLog.note``/``note_link_bytes`` is snapshotted eagerly (packets
  mutate in place), every transport boundary crossing (source
  selection, send/receive reports, socket delivery) is recorded as a
  live *invoke*, and every counter cell (node/segment/tunnel/agent
  counters, filter hit dicts) is diffed around each step.  Dispatches
  that are neither captured nor replayed run *benign*: real execution
  whose scheduled children are exempt from the horizon scan, so warming
  up never poisons the world.
* **Verification.**  A template forms only from two captures of the
  same flow that are bit-identical: same step tree with exactly equal
  float delays, same emissions (including packet reprs), same invokes,
  same counter deltas, same RNG state before and after, and exactly one
  fresh trace id per cascade whose value advanced by exactly one per
  intervening dispatch (proving no cascade performs hidden id draws).
* **Quiescence.**  A dispatch replays only if the whole cascade window
  fits before the *horizon*: the earliest of the run deadline, any
  pending non-flow event in the heap, and every node's
  ``ff_time_horizon`` (ARP expiry, reassembly timeouts, binding
  lifetimes, advisory rate-limit boundaries).  The flow's
  ``ff_flow_signature`` (source address, binding cache state) must also
  equal the template's.  Any unknown event executing marks the world
  changed and drops all templates; any real flow execution invalidates
  the cached horizon (it may move rate-limit boundaries).
* **Replay.**  The cascade's steps are merged with real events through
  a virtual heap keyed by the same ``(time, seq)`` order the engine
  uses — sequence numbers are drawn from the real queue at the same
  points real scheduling would draw them, and child times are chained
  with the same float additions, so entries, interleaving, and the
  golden digest are byte-identical with fast-forwarding on or off.
  Trace entries are emitted inline; aggregate counters (action counts,
  drop reasons, link bytes, component counters) are applied in bulk
  when the run finishes or the template is invalidated.  Invokes whose
  effect is provably null (source selection with no selector hook,
  send/receive reports with no observers, socket delivery into a
  ``ff_pure`` callback) are pruned from templates at build time.

The forwarder disengages entirely — plain ``EventQueue.run`` — when
observability or invariant monitoring is armed (both watch per-event
state), when no flows are registered, when a run has no deadline, or
when any segment is lossy or down.

Known, deliberate gaps: replayed packets do not exist as objects, so
per-packet hop records (``Packet.record``) are not produced for
replayed datagrams — nothing in the result pipeline reads them for
steady flows, and every mode that does (observability spans,
invariants) disengages the fast path.  Within one replayed event, all
trace emissions are applied before the live invokes; a cascade whose
invokes themselves emit trace entries interleaved with note() calls
would reorder within that single event (none of the registered
transport boundaries do).
"""

from __future__ import annotations

from collections import Counter
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from .filters import FilterEngine
from .packet import _trace_ids
from .trace import TraceEntry

if TYPE_CHECKING:  # pragma: no cover
    from .events import Event
    from .node import Node
    from .simulator import Simulator

__all__ = ["FastForwarder"]

# Slack added to a cascade's span when checking it against the horizon.
# Replayed times are bit-exact (same float chain as real execution), so
# this only errs toward falling back to real execution at boundaries.
_SPAN_MARGIN = 1e-9

# Counter attributes probed on every node (and agent subclasses).  Only
# attributes that exist and are ints become cells; the list covers every
# counter incremented on a packet path (see the capture/replay parity
# argument in the module docstring).
_NODE_COUNTERS = (
    "packets_sent", "packets_received", "packets_forwarded",
    "packets_tunneled", "packets_reverse_forwarded", "advisories_sent",
    "encap_failures", "auth_failures", "replays_rejected",
    "decap_refused", "direct_tunneled", "link_directed",
    "packets_delivered_final_hop", "advertisements_sent",
    "posture_changes",
)
_REASSEMBLER_COUNTERS = ("timeouts", "reassembled", "duplicates", "overlaps")
_TUNNEL_COUNTERS = ("encapsulated_count", "decapsulated_count", "bad_encap_count")
_SEGMENT_COUNTERS = ("frames_carried", "bytes_carried", "frames_lost",
                     "queue_dropped", "busy_bits")
_INTERFACE_COUNTERS = ("frames_dropped",)


class _IntCell:
    """One integer counter attribute watched during capture."""

    __slots__ = ("obj", "attr")

    def __init__(self, obj: Any, attr: str):
        self.obj = obj
        self.attr = attr

    def snap(self) -> int:
        return getattr(self.obj, self.attr)

    def delta(self, before: int):
        d = getattr(self.obj, self.attr) - before
        return d or None

    def apply(self, delta: int, count: int) -> None:
        setattr(self.obj, self.attr, getattr(self.obj, self.attr) + delta * count)


class _DictCell:
    """An int-valued dict counter (e.g. ``FilterEngine.hits``)."""

    __slots__ = ("mapping",)

    def __init__(self, mapping: Dict[str, int]):
        self.mapping = mapping

    def snap(self) -> Dict[str, int]:
        return dict(self.mapping)

    def delta(self, before: Dict[str, int]):
        out = [
            (key, value - before.get(key, 0))
            for key, value in self.mapping.items()
            if value != before.get(key, 0)
        ]
        return tuple(sorted(out)) or None

    def apply(self, delta, count: int) -> None:
        mapping = self.mapping
        for key, dv in delta:
            mapping[key] = mapping.get(key, 0) + dv * count


class _Step:
    """One event of a captured cascade.

    ``ops`` interleaves, in execution order, trace emissions
    ``("e", snapshot_tuple)``, link-byte notes ``("l", name, size)``,
    and transport invokes ``("i", bound_method, args, kwargs)``.
    """

    __slots__ = ("parent", "delay", "label", "fkey", "ops", "delta")

    def __init__(self, parent: int, delay: float, label: str, fkey):
        self.parent = parent
        self.delay = delay
        self.label = label
        self.fkey = fkey
        self.ops: List[tuple] = []
        self.delta: tuple = ()


class _Capture:
    """A cascade being recorded; pairs with its predecessor to form a
    template.  ``record=False`` marks the shared *benign* sentinel:
    real execution whose children are exempt but nothing is recorded.
    """

    __slots__ = ("key", "sig", "rng_state", "steps", "outstanding", "alive",
                 "record", "state", "idx")

    def __init__(self, key, sig, rng_state):
        self.key = key
        self.sig = sig
        self.rng_state = rng_state
        self.steps: List[_Step] = []
        self.outstanding = 0
        self.alive = True
        self.record = True
        self.state: Optional[list] = None
        self.idx = 0


class _Template:
    """A verified cascade, compiled for replay.

    ``steps[i]`` is ``(delay, protos, invokes, children)``: entry
    prototype dicts (time/trace_id filled at replay), live invoke
    triples, and child step indexes.  All aggregate effects (action
    counts, drop reasons, link bytes, counter cells) are summed once
    here and applied ``count`` times at flush.
    """

    __slots__ = ("sig", "steps", "span", "n", "actions", "drops", "losses",
                 "links", "cells", "count")

    def __init__(self, sig, steps, span, actions, drops, losses, links, cells):
        self.sig = sig
        self.steps = steps
        self.span = span
        self.n = len(steps)
        self.actions = actions
        self.drops = drops
        self.losses = losses
        self.links = links
        self.cells = cells
        self.count = 0


def _emission_snapshot(packet, node: str, action: str, detail: str) -> tuple:
    # Eager: packets mutate in place (TTL decrements, encap), so every
    # field a TraceEntry would derive is frozen at note() time.
    return (node, action, repr(packet), packet.trace_id,
            str(packet.src), str(packet.dst), packet.wire_size, detail)


def _prunable_invoke(func) -> bool:
    """True when replaying this recorded invoke can have no effect."""
    owner = getattr(func, "__self__", None)
    name = getattr(func, "__name__", "")
    if name == "_select_source":
        # Pure address computation unless an engine hook is installed.
        return getattr(owner, "source_selector", True) is None
    if name in ("report_send", "report_receive"):
        observers = getattr(owner, "observers", None)
        return observers is not None and len(observers) == 0
    if name == "_deliver":
        callback = getattr(owner, "_callback", False)
        return callback is None or getattr(callback, "ff_pure", False)
    return False


class FastForwarder:
    """Per-simulator fast path; owned by :class:`Simulator`."""

    def __init__(self, sim: "Simulator"):
        self._sim = sim
        self.enabled = True
        # flow dispatch seq -> (flow key, origin node, destination ip)
        self._flows: Dict[int, tuple] = {}
        # seqs the horizon scan must ignore: flow dispatches plus
        # capture/benign child events (our own in-flight machinery).
        self._exempt: Set[int] = set()
        self._stacks: list = []
        self._sockets: list = []
        self._templates: Dict[tuple, _Template] = {}
        self._pending: Dict[tuple, _Capture] = {}
        self._open: Set[_Capture] = set()
        # per-flow warm-up state: [dispatch index, open capture count]
        self._key_state: Dict[tuple, list] = {}
        self._benign = _Capture(None, None, None)
        self._benign.record = False
        self._cells: Optional[list] = None
        # Snapshot fast path: (obj, attr) pairs for the int-cell prefix
        # of ``_cells`` and the dict-cell suffix, kept index-aligned.
        self._snap_pairs: list = []
        self._snap_dicts: list = []
        self._cur: Optional[_Capture] = None
        self._cur_idx = 0
        self._in_invoke = False
        self._horizon: Optional[float] = None
        self._suspect = False
        self._until = 0.0
        self._vheap: list = []
        self._saved: list = []
        self._orig_schedule = None
        self._orig_note = None
        self._orig_link = None
        # True while _run_engaged is on the stack: observers (the
        # engine sampler) use it to tag readings taken mid-replay.
        self.active = False
        # stats
        self.engaged = 0
        self.replayed = 0
        self.captured = 0
        self.fallbacks = 0
        self.world_changes = 0

    # ------------------------------------------------------------------
    # Registration (called by the experiment runner before sim.run)
    # ------------------------------------------------------------------
    def register_traffic(self, stacks, sockets) -> None:
        """Declare the transport stacks and sockets traffic flows use;
        their boundary methods are captured as live invokes."""
        for stack in stacks:
            if stack not in self._stacks:
                self._stacks.append(stack)
        for sock in sockets:
            if sock not in self._sockets:
                self._sockets.append(sock)

    def register_flow_event(self, event: "Event", node: "Node", key: tuple,
                            dst) -> None:
        """Mark a scheduled traffic dispatch as a fast-forwardable flow."""
        self._flows[event.seq] = (key, node, dst)
        self._exempt.add(event.seq)

    def stats(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "engaged_runs": self.engaged,
            "replayed": self.replayed,
            "captured": self.captured,
            "fallbacks": self.fallbacks,
            "world_changes": self.world_changes,
        }

    def register_metrics(self, registry: Any) -> None:
        """Expose the counters as a ``fast_forward`` metrics family.

        Deliberately *not* registered on the simulator's own registry:
        a run's metrics snapshot must be byte-identical with the
        forwarder on or off (the equivalence contract).  Callers that
        want the counters in an observability report — the CLI's
        ``--obs-out`` path — register them on a report-side registry,
        the same pattern :meth:`ResultCache.register_metrics` uses.
        """
        registry.family(
            "fast_forward",
            lambda: {k: float(v) for k, v in self.stats().items()},
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: int = 1_000_000) -> float:
        sim = self._sim
        if (not self.enabled or until is None or not self._flows
                or sim.obs is not None or sim.invariants is not None
                or sim.flightrec is not None
                or not self._segments_clean()):
            # Flight recorders ride note(); replay appends entries
            # directly, so an armed recorder would miss replayed
            # cascades — stand aside, like for obs and invariants.
            return sim.events.run(until=until, max_events=max_events)
        return self._run_engaged(until, max_events)

    # ------------------------------------------------------------------
    # Quiescence
    # ------------------------------------------------------------------
    def _segments_clean(self) -> bool:
        # A queueing segment (queue_capacity set) makes frame timing
        # depend on cross-flow line state, so a per-flow cascade is no
        # longer self-contained — stand aside, like for loss and down.
        return all(
            segment.up and not segment.loss_rate
            and segment.queue_capacity is None
            for segment in self._sim.segments.values()
        )

    def _compute_horizon(self, now: float) -> float:
        horizon = self._until
        exempt = self._exempt
        for time, seq, event in self._sim.events._heap:
            if (time < horizon and seq not in exempt
                    and not event.cancelled
                    and not getattr(event.action, "ff_transparent", False)):
                horizon = time
        for node in self._sim.nodes.values():
            node_horizon = node.ff_time_horizon(now)
            if node_horizon < horizon:
                horizon = node_horizon
        return horizon

    def _world_changed(self) -> None:
        """An event outside the verified flows ran: drop everything."""
        self.world_changes += 1
        if self._templates:
            self._flush()
            self._templates.clear()
        for capture in self._open:
            capture.alive = False
            if capture.state is not None:
                capture.state[1] -= 1
        self._open.clear()
        self._pending.clear()
        self._horizon = None
        self._suspect = True
        self._cells = None

    # ------------------------------------------------------------------
    # The engaged main loop — replicates EventQueue.run bookkeeping
    # ------------------------------------------------------------------
    def _run_engaged(self, until: float, max_events: int) -> float:
        sim = self._sim
        queue = sim.events
        clock = queue.clock
        heap = queue._heap
        vheap: list = []
        self._vheap = vheap
        self._until = until
        self._horizon = None
        self._suspect = False
        self._templates.clear()
        self._pending.clear()
        self._key_state.clear()
        self.engaged += 1
        trace = sim.trace
        entries = trace.entries
        byid = trace._entries_by_id
        new = TraceEntry.__new__
        cls = TraceEntry
        pop = heappop
        push = heappush
        flows = self._flows
        exempt = self._exempt
        templates = self._templates
        key_state = self._key_state
        processed = 0
        live_popped = 0
        self._install()
        self.active = True
        try:
            while True:
                if processed >= max_events:
                    raise RuntimeError(
                        f"event budget exhausted ({max_events} events)")
                rhead = None
                while heap:
                    candidate = heap[0]
                    if candidate[2].cancelled:
                        pop(heap)
                        queue._cancelled -= 1
                    else:
                        rhead = candidate
                        break
                if vheap:
                    vhead = vheap[0]
                    if rhead is None or vhead[0] < rhead[0] or (
                            vhead[0] == rhead[0] and vhead[1] < rhead[1]):
                        # Drain every virtual event due before the real
                        # head.  Replay itself never touches the real
                        # heap; a live invoke may (schedule), which the
                        # length check catches — cancellation only makes
                        # the drain bound conservative.
                        if rhead is not None:
                            rtime, rseq = rhead[0], rhead[1]
                        else:
                            rtime, rseq = float("inf"), 0
                        hlen = len(heap)
                        while True:
                            time, _vseq, ctx, idx = pop(vheap)
                            clock._now = time
                            steps, trace_id, index_list = ctx
                            _delay, protos, invokes, children = steps[idx]
                            if protos:
                                for proto in protos:
                                    entry = new(cls)
                                    # frozen bypass: one update() call
                                    entry.__dict__.update(
                                        proto, time=time, trace_id=trace_id)
                                    index_list.append(len(entries))
                                    entries.append(entry)
                            for func, fargs, fkwargs in invokes:
                                func(*fargs, **fkwargs)
                            if children:
                                seq = queue._seq
                                for child in children:
                                    push(vheap, (time + steps[child][0],
                                                 seq, ctx, child))
                                    seq += 1
                                queue._seq = seq
                            processed += 1
                            if not vheap or processed >= max_events:
                                break
                            vhead = vheap[0]
                            if (vhead[0] > rtime
                                    or (vhead[0] == rtime
                                        and vhead[1] > rseq)
                                    or len(heap) != hlen):
                                break
                        continue
                if rhead is None:
                    if until > clock._now:
                        clock._now = until
                    return clock._now
                time, seq, event = rhead
                if time > until:
                    if until > clock._now:
                        clock._now = until
                    return clock._now
                pop(heap)
                live_popped += 1
                if time < clock._now:
                    raise RuntimeError(
                        f"time went backwards: {time} < {clock._now}")
                clock._now = time
                event.done = True
                meta = flows.get(seq)
                if meta is not None:
                    key, node, dst = meta
                    signature = node.ff_flow_signature(dst)
                    if signature is None:
                        # Unsupported origin (mobile host): its send
                        # machinery mutates state the capture cannot
                        # verify, so it both runs real and invalidates.
                        self._world_changed()
                        event.action(*event.args)
                    else:
                        template = templates.get(key)
                        if template is not None and template.sig != signature:
                            # The steady state shifted (binding learned
                            # or expired): rebuild from scratch.
                            self._flush()
                            del templates[key]
                            self._pending.pop(key, None)
                            template = None
                        if template is not None:
                            ok = template.n <= max_events - processed
                            if ok and self._suspect:
                                if self._segments_clean():
                                    self._suspect = False
                                else:
                                    self._flush()
                                    templates.clear()
                                    self._pending.clear()
                                    ok = False
                            if ok:
                                horizon = self._horizon
                                if horizon is None:
                                    horizon = self._compute_horizon(time)
                                    self._horizon = horizon
                                ok = (time + template.span + _SPAN_MARGIN
                                      <= horizon)
                            if ok:
                                template.count += 1
                                self.replayed += 1
                                # The root replays through the virtual
                                # branch above under the real dispatch's
                                # seq; one fresh trace id per cascade.
                                tid = next(_trace_ids)
                                push(vheap, (time, seq,
                                             (template.steps, tid,
                                              byid[tid]), 0))
                                continue
                            self.fallbacks += 1
                            self._benign_exec(event)
                            self._horizon = None
                        else:
                            state = key_state.get(key)
                            if state is None:
                                state = key_state[key] = [0, 0]
                            idx = state[0]
                            state[0] = idx + 1
                            if idx == 0:
                                # First dispatch warms caches (ARP);
                                # never matches the steady shape.
                                do_capture = False
                            elif key in self._pending:
                                do_capture = state[1] == 0
                            else:
                                do_capture = state[1] < 2
                            if do_capture:
                                self.captured += 1
                                self._capture_dispatch(
                                    key, signature, event, state, idx)
                            else:
                                self._benign_exec(event)
                            self._horizon = None
                elif seq in exempt:
                    event.action(*event.args)  # our own capture child
                elif getattr(event.action, "ff_transparent", False):
                    # Read-only observers (the engine sampler tick):
                    # run benign — real execution, children exempt —
                    # instead of dropping every template on each tick.
                    self._benign_exec(event)
                else:
                    self._world_changed()
                    event.action(*event.args)
                processed += 1
        finally:
            self.active = False
            self._restore()
            self._flush()
            queue.processed += processed
            queue._live -= live_popped

    # ------------------------------------------------------------------
    # Benign real execution (uninstrumented, horizon-exempt children)
    # ------------------------------------------------------------------
    def _benign_exec(self, event: "Event") -> None:
        prev = self._cur
        self._cur = self._benign
        try:
            event.action(*event.args)
        finally:
            self._cur = prev

    def _run_benign(self, action, args) -> None:
        prev = self._cur
        self._cur = self._benign
        try:
            action(*args)
        finally:
            self._cur = prev

    def _flush(self) -> None:
        """Apply every template's deferred aggregate effects."""
        trace = self._sim.trace
        cells = self._cells
        for template in self._templates.values():
            count = template.count
            if not count:
                continue
            template.count = 0
            if trace.aggregates:
                for action, n in template.actions.items():
                    trace.action_counts[action] += n * count
                for reason, n in template.drops.items():
                    trace.drops_by_reason[reason] += n * count
                for reason, n in template.losses.items():
                    trace.losses_by_reason[reason] += n * count
                for link, n in template.links.items():
                    trace.bytes_by_link[link] += n * count
            for cell_index, delta in template.cells:
                cells[cell_index].apply(delta, count)

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    def _capture_dispatch(self, key, signature, event: "Event",
                          state: list, idx: int) -> None:
        if self._cells is None:
            self._cells = self._collect_cells()
            self._snap_pairs = [
                (cell.obj, cell.attr) for cell in self._cells
                if type(cell) is _IntCell
            ]
            self._snap_dicts = self._cells[len(self._snap_pairs):]
        capture = _Capture(key, signature, self._sim.rng.getstate())
        capture.state = state
        capture.idx = idx
        state[1] += 1
        # The root label is the dispatch's own (per-index) label; replay
        # never re-creates the dispatch event, so it must not be compared.
        capture.steps.append(_Step(-1, 0.0, "", None))
        capture.outstanding = 1
        self._open.add(capture)
        self._exec_step(capture, 0, event.action, event.args)

    def _exec_step(self, capture: _Capture, idx: int, action, args) -> None:
        prev, prev_idx = self._cur, self._cur_idx
        self._cur, self._cur_idx = capture, idx
        # Inlined snapshots: one getattr listcomp beats a method call
        # per cell (a scenario has ~120 cells and every captured step
        # brackets all of them twice).
        pairs = self._snap_pairs
        dict_cells = self._snap_dicts
        n_int = len(pairs)
        before_ints = [getattr(obj, attr) for obj, attr in pairs]
        before_dicts = [dict(cell.mapping) for cell in dict_cells]
        try:
            action(*args)
        finally:
            self._cur, self._cur_idx = prev, prev_idx
            delta = []
            after_ints = [getattr(obj, attr) for obj, attr in pairs]
            if after_ints != before_ints:
                for i in range(n_int):
                    d = after_ints[i] - before_ints[i]
                    if d:
                        delta.append((i, d))
            for j, cell in enumerate(dict_cells):
                d = cell.delta(before_dicts[j])
                if d is not None:
                    delta.append((n_int + j, d))
            capture.steps[idx].delta = tuple(delta)
            capture.outstanding -= 1
            if capture.outstanding == 0 and capture.alive:
                self._finalize(capture)

    def _run_child(self, capture: _Capture, idx: int, action, args) -> None:
        if not capture.alive:
            action(*args)
            return
        self._exec_step(capture, idx, action, args)

    def _finalize(self, capture: _Capture) -> None:
        self._open.discard(capture)
        capture.state[1] -= 1
        # The cascade may have moved rate-limit boundaries (advisory
        # gates, cache refreshes): recompute lazily.
        self._horizon = None
        key = capture.key
        previous = self._pending.get(key)
        if self._sim.rng.getstate() != capture.rng_state:
            # The cascade (or anything overlapping it) consumed
            # randomness: not replayable, and it poisons pairing.
            self._pending.pop(key, None)
            return
        self._pending[key] = capture
        if key in self._templates:
            return
        if previous is not None and self._paired(previous, capture):
            self._templates[key] = self._build_template(capture)

    @staticmethod
    def _cascade_trace_id(capture: _Capture) -> Optional[int]:
        ids = {
            op[1][3]
            for step in capture.steps
            for op in step.ops
            if op[0] == "e"
        }
        return ids.pop() if len(ids) == 1 else None

    def _paired(self, a: _Capture, b: _Capture) -> bool:
        """Bit-identical cascades?  (See module docstring.)"""
        if a.sig != b.sig or len(a.steps) != len(b.steps):
            return False
        tid_a = self._cascade_trace_id(a)
        tid_b = self._cascade_trace_id(b)
        if tid_a is None or tid_b is None:
            return False
        # Every dispatch between the two captures (benign real runs)
        # must have drawn exactly one trace id of its own.
        if tid_b - tid_a != b.idx - a.idx:
            return False
        for step_a, step_b in zip(a.steps, b.steps):
            if (step_a.parent != step_b.parent
                    or step_a.delay != step_b.delay
                    or step_a.label != step_b.label
                    or step_a.fkey != step_b.fkey
                    or step_a.delta != step_b.delta
                    or len(step_a.ops) != len(step_b.ops)):
                return False
            for op_a, op_b in zip(step_a.ops, step_b.ops):
                if op_a[0] != op_b[0]:
                    return False
                if op_a[0] == "e":
                    ea, eb = op_a[1], op_b[1]
                    if ea[3] != tid_a or eb[3] != tid_b:
                        return False
                    if ea[:3] != eb[:3] or ea[4:] != eb[4:]:
                        return False
                elif op_a[0] == "i":
                    fa, fb = op_a[1], op_b[1]
                    if (getattr(fa, "__func__", fa)
                            is not getattr(fb, "__func__", fb)
                            or getattr(fa, "__self__", None)
                            is not getattr(fb, "__self__", None)
                            or op_a[2] != op_b[2] or op_a[3] != op_b[3]):
                        return False
                else:
                    if op_a[1:] != op_b[1:]:
                        return False
        return True

    def _build_template(self, capture: _Capture) -> _Template:
        steps = capture.steps
        n = len(steps)
        rel = [0.0] * n
        children: List[List[int]] = [[] for _ in range(n)]
        for i in range(1, n):
            step = steps[i]
            rel[i] = rel[step.parent] + step.delay
            children[step.parent].append(i)
        actions: Counter = Counter()
        drops: Counter = Counter()
        losses: Counter = Counter()
        links: Counter = Counter()
        cell_totals: Dict[int, Any] = {}
        enabled = self._sim.trace.enabled
        compiled = []
        for i, step in enumerate(steps):
            protos = []
            invokes = []
            for op in step.ops:
                if op[0] == "e":
                    e = op[1]
                    actions[e[1]] += 1
                    if e[1] == "drop":
                        drops[e[7]] += 1
                    elif e[1] == "lost":
                        losses[e[7]] += 1
                    if enabled:
                        # time/trace_id are filled per replayed event.
                        # digest_suffix rides along in the instance dict
                        # so trace_digest skips re-formatting the seven
                        # constant fields for every replayed entry.
                        protos.append({
                            "node": e[0], "action": e[1],
                            "packet_repr": e[2], "src": e[4], "dst": e[5],
                            "wire_size": e[6], "detail": e[7],
                            "digest_suffix":
                                f"|{e[0]}|{e[1]}|{e[4]}|{e[5]}|{e[6]}|{e[7]}\n",
                        })
                elif op[0] == "i":
                    if not _prunable_invoke(op[1]):
                        invokes.append((op[1], op[2], op[3]))
                else:
                    links[op[1]] += op[2]
            for cell_index, delta in step.delta:
                existing = cell_totals.get(cell_index)
                if existing is None:
                    cell_totals[cell_index] = delta
                elif isinstance(delta, int):
                    cell_totals[cell_index] = existing + delta
                else:
                    merged = dict(existing)
                    for dkey, dv in delta:
                        merged[dkey] = merged.get(dkey, 0) + dv
                    cell_totals[cell_index] = tuple(sorted(merged.items()))
            compiled.append((step.delay, tuple(protos), tuple(invokes),
                             tuple(children[i])))
        return _Template(capture.sig, compiled, max(rel), actions, drops,
                         losses, links, tuple(cell_totals.items()))

    # ------------------------------------------------------------------
    # Instrumentation wrappers (installed per engaged run)
    # ------------------------------------------------------------------
    def _install(self) -> None:
        sim = self._sim
        saved = self._saved

        def save_and_set(obj, name, replacement):
            d = obj.__dict__
            saved.append((obj, name, name in d, d.get(name)))
            setattr(obj, name, replacement)

        queue = sim.events
        self._orig_schedule = queue.schedule
        save_and_set(queue, "schedule", self._schedule_wrap)
        trace = sim.trace
        self._orig_note = trace.note
        save_and_set(trace, "note", self._note_wrap)
        self._orig_link = trace.note_link_bytes
        save_and_set(trace, "note_link_bytes", self._link_wrap)
        for stack in self._stacks:
            for name in ("_select_source", "report_send", "report_receive"):
                save_and_set(stack, name,
                             self._make_invoke(getattr(stack, name)))
        for sock in self._sockets:
            save_and_set(sock, "_deliver", self._make_invoke(sock._deliver))

    def _restore(self) -> None:
        for obj, name, had, old in reversed(self._saved):
            if had:
                obj.__dict__[name] = old
            else:
                del obj.__dict__[name]
        self._saved = []

    def _schedule_wrap(self, delay, action, *args, label=""):
        capture = self._cur
        if capture is not None and capture.alive and not self._in_invoke:
            if capture.record:
                idx = len(capture.steps)
                capture.steps.append(_Step(
                    self._cur_idx, delay, label,
                    (getattr(action, "__func__", action),
                     id(getattr(action, "__self__", None)))))
                capture.outstanding += 1
                event = self._orig_schedule(
                    delay, self._run_child, capture, idx, action, args,
                    label=label)
                self._exempt.add(event.seq)
                return event
            event = self._orig_schedule(
                delay, self._run_benign, action, args, label=label)
            self._exempt.add(event.seq)
            return event
        event = self._orig_schedule(delay, action, *args, label=label)
        self._horizon = None
        return event

    def _note_wrap(self, time, node, action, packet, detail=""):
        capture = self._cur
        if (capture is not None and capture.record and capture.alive
                and not self._in_invoke):
            capture.steps[self._cur_idx].ops.append(
                ("e", _emission_snapshot(packet, node, action, detail)))
        self._orig_note(time, node, action, packet, detail)

    def _link_wrap(self, link_name, size):
        capture = self._cur
        if (capture is not None and capture.record and capture.alive
                and not self._in_invoke):
            capture.steps[self._cur_idx].ops.append(("l", link_name, size))
        self._orig_link(link_name, size)

    def _make_invoke(self, orig):
        def wrapper(*args, **kwargs):
            capture = self._cur
            if (capture is not None and capture.record and capture.alive
                    and not self._in_invoke):
                capture.steps[self._cur_idx].ops.append(
                    ("i", orig, args, kwargs))
                self._in_invoke = True
                try:
                    return orig(*args, **kwargs)
                finally:
                    self._in_invoke = False
            return orig(*args, **kwargs)
        return wrapper

    # ------------------------------------------------------------------
    # Counter cells
    # ------------------------------------------------------------------
    def _collect_cells(self) -> list:
        # Int cells first, dict cells after: _exec_step snapshots the
        # int prefix with a single getattr listcomp and only the (rare)
        # dict suffix through the cell objects.
        sim = self._sim
        cells: list = []
        dict_cells: list = []
        for node in sim.nodes.values():
            for attr in _NODE_COUNTERS:
                if type(getattr(node, attr, None)) is int:
                    cells.append(_IntCell(node, attr))
            for iface in node.interfaces.values():
                for attr in _INTERFACE_COUNTERS:
                    cells.append(_IntCell(iface, attr))
            reassembler = getattr(node, "reassembler", None)
            if reassembler is not None:
                for attr in _REASSEMBLER_COUNTERS:
                    cells.append(_IntCell(reassembler, attr))
            tunnel = getattr(node, "tunnel", None)
            if tunnel is not None:
                for attr in _TUNNEL_COUNTERS:
                    if type(getattr(tunnel, attr, None)) is int:
                        cells.append(_IntCell(tunnel, attr))
            bindings = getattr(node, "bindings", None)
            if bindings is not None and type(
                    getattr(bindings, "expirations", None)) is int:
                cells.append(_IntCell(bindings, "expirations"))
            engine = getattr(node, "engine", None)
            if isinstance(engine, FilterEngine):
                dict_cells.append(_DictCell(engine.hits))
        for segment in sim.segments.values():
            for attr in _SEGMENT_COUNTERS:
                if type(getattr(segment, attr, None)) is int:
                    cells.append(_IntCell(segment, attr))
        return cells + dict_cells
