"""Deterministic fault injection: the hostile network, scripted.

The paper's recovery machinery — the delivery-method cache's probe
ladder (§7.1.2), the retransmission-feedback detector, registration
retries — exists precisely because real networks fail under a mobile
host: filters appear mid-conversation, tunnels die with the home agent,
access links flap.  This module makes those failures *schedulable*: a
:class:`FaultPlan` is an ordered script of :class:`FaultEvent`\\ s that a
:class:`FaultInjector` turns into ordinary engine events, so the
substrate's determinism contract (same seed ⇒ identical trace) extends
unchanged to chaos runs — a fault plan is just more events in the same
deterministic queue.

Event vocabulary (``FaultKind``):

* ``link-down`` / ``link-up`` / ``link-flap`` — take a whole segment
  down (every frame silently discarded, no RNG consumed) and bring it
  back; a flap is both with a ``duration``.
* ``loss-burst`` — raise a segment's ``loss_rate`` (up to 1.0, a total
  blackout) for a ``duration``, then restore the previous rate.
* ``queue-shrink`` — shrink a segment's transmit queue to
  ``queue_capacity`` frames (tail-dropping any excess already queued as
  traced ``queue-overflow`` losses — bufferbloat relief, or a buffer
  going bad); with a ``duration``, the previous capacity is restored
  afterwards.
* ``filter-toggle`` — flip a boundary router's §3.1 posture
  (``source_filtering`` / ``forbid_transit``) mid-run, the scenario
  where a working Out-DH path dies under new administration.
* ``node-down`` / ``node-up`` — unplug every interface of a node
  (home-agent outage, correspondent crash).
* ``agent-restart`` — restart a node that supports it (the home agent:
  interfaces back up, soft binding state optionally lost).
* ``move`` — force the mobile host to a named domain (or home), the
  §2 movement event under script control.

Targets are plain names resolved against the simulator's registries at
*apply* time (segments by ``Simulator.segments``, nodes by
``Simulator.nodes``), so a plan is serializable JSON and independent of
object identity.  Times are relative to the moment of injection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator
    from .topology import Internet

__all__ = ["FaultKind", "FaultEvent", "FaultPlan", "FaultError", "FaultInjector"]


class FaultError(ValueError):
    """A malformed fault plan or an unresolvable fault target."""


class FaultKind(Enum):
    LINK_DOWN = "link-down"
    LINK_UP = "link-up"
    LINK_FLAP = "link-flap"
    LOSS_BURST = "loss-burst"
    QUEUE_SHRINK = "queue-shrink"
    FILTER_TOGGLE = "filter-toggle"
    NODE_DOWN = "node-down"
    NODE_UP = "node-up"
    AGENT_RESTART = "agent-restart"
    MOVE = "move"


# kind -> (required params, optional params); validated at plan build
# time so a typo fails before the run starts, not 40 simulated seconds
# into it.
_PARAM_SPEC: Dict[FaultKind, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    FaultKind.LINK_DOWN: ((), ()),
    FaultKind.LINK_UP: ((), ()),
    FaultKind.LINK_FLAP: (("duration",), ()),
    FaultKind.LOSS_BURST: (("duration", "loss_rate"), ()),
    FaultKind.QUEUE_SHRINK: (("queue_capacity",), ("duration",)),
    FaultKind.FILTER_TOGGLE: ((), ("source_filtering", "forbid_transit")),
    FaultKind.NODE_DOWN: ((), ()),
    FaultKind.NODE_UP: ((), ()),
    FaultKind.AGENT_RESTART: ((), ("flush_bindings",)),
    FaultKind.MOVE: ((), ("domain", "home")),
}

_SEGMENT_KINDS = frozenset({
    FaultKind.LINK_DOWN, FaultKind.LINK_UP, FaultKind.LINK_FLAP,
    FaultKind.LOSS_BURST, FaultKind.QUEUE_SHRINK,
})


@dataclass
class FaultEvent:
    """One scheduled fault: what happens, to which name, and when."""

    time: float
    kind: FaultKind
    target: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if isinstance(self.kind, str):
            try:
                self.kind = FaultKind(self.kind)
            except ValueError:
                valid = ", ".join(sorted(k.value for k in FaultKind))
                raise FaultError(
                    f"unknown fault kind {self.kind!r} (valid: {valid})"
                ) from None
        if self.time < 0:
            raise FaultError(f"fault time must be >= 0, got {self.time}")
        if not self.target:
            raise FaultError(f"fault {self.kind.value} needs a target name")
        required, optional = _PARAM_SPEC[self.kind]
        allowed = set(required) | set(optional)
        for name in required:
            if name not in self.params:
                raise FaultError(
                    f"fault {self.kind.value} requires param {name!r}"
                )
        for name in self.params:
            if name not in allowed:
                raise FaultError(
                    f"fault {self.kind.value} does not take param {name!r}"
                )
        duration = self.params.get("duration")
        if duration is not None and not duration > 0:
            raise FaultError(
                f"fault {self.kind.value} duration must be > 0, got {duration}"
            )
        loss = self.params.get("loss_rate")
        if loss is not None and not 0.0 <= loss <= 1.0:
            raise FaultError(
                f"fault {self.kind.value} loss_rate must be in [0, 1], got {loss}"
            )
        capacity = self.params.get("queue_capacity")
        if capacity is not None and not (
                isinstance(capacity, int) and not isinstance(capacity, bool)
                and capacity >= 0):
            raise FaultError(
                f"fault {self.kind.value} queue_capacity must be an "
                f"int >= 0, got {capacity!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "time": self.time, "kind": self.kind.value, "target": self.target,
        }
        out.update(self.params)
        return out

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "FaultEvent":
        obj = dict(obj)
        try:
            time = obj.pop("time")
            kind = obj.pop("kind")
            target = obj.pop("target")
        except KeyError as missing:
            raise FaultError(
                f"fault event needs 'time', 'kind' and 'target': missing {missing}"
            ) from None
        return cls(time=float(time), kind=kind, target=str(target), params=obj)


@dataclass
class FaultPlan:
    """An ordered, serializable script of faults.

    Times are seconds relative to :meth:`FaultInjector.inject`; events
    are kept sorted by time (ties stay in authoring order, matching the
    engine's FIFO tie-break) so a plan reads like the timeline it is.
    """

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda event: event.time)

    def add(self, time: float, kind: FaultKind, target: str, **params: Any) -> "FaultPlan":
        """Append one event (kept sorted); returns self for chaining."""
        event = FaultEvent(time=time, kind=kind, target=target, params=params)
        self.events.append(event)
        self.events.sort(key=lambda entry: entry.time)
        return self

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterable[FaultEvent]:
        return iter(self.events)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"events": [event.to_dict() for event in self.events]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "FaultPlan":
        events = obj.get("events")
        if not isinstance(events, list):
            raise FaultError("fault plan must be an object with an 'events' list")
        return cls(events=[FaultEvent.from_dict(entry) for entry in events])

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultError(f"fault plan is not valid JSON: {error}") from None
        return cls.from_dict(obj)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_json(handle.read())


class FaultInjector:
    """Schedules a :class:`FaultPlan` onto a simulator's event queue.

    All mutations happen inside ordinary engine events, in timestamp
    order, interleaved deterministically with the traffic they disturb.
    ``net`` (an :class:`~repro.netsim.topology.Internet`) is only
    needed for ``move`` events.

    The injector registers pull metrics with the run's registry:
    ``fault.total`` plus a ``fault.events`` family keyed by kind, and a
    ``fault.links_down`` gauge counting currently-downed segments.
    """

    def __init__(self, sim: "Simulator", net: Optional["Internet"] = None):
        self.sim = sim
        self.net = net
        self.applied: Dict[str, int] = {}
        self.log: List[Tuple[float, str, str]] = []  # (time, kind, target)
        self._total = 0
        metrics = sim.metrics
        metrics.counter("fault.total", read=lambda: self._total)
        metrics.family("fault.events", lambda: dict(self.applied))
        metrics.gauge(
            "fault.links_down",
            read=lambda: sum(
                1 for seg in self.sim.segments.values() if not seg.up
            ),
        )

    # ------------------------------------------------------------------
    def inject(self, plan: FaultPlan) -> int:
        """Schedule every event of ``plan`` relative to now.

        Targets are validated eagerly — a plan naming a segment or node
        that does not exist fails here, not mid-run.  Returns the
        number of events scheduled.
        """
        for event in plan.events:
            self._resolve(event)  # raises FaultError on a bad target
        for event in plan.events:
            self.sim.events.schedule(
                event.time, self._apply, event,
                label=f"fault:{event.kind.value}:{event.target}",
            )
        return len(plan.events)

    # ------------------------------------------------------------------
    def _resolve(self, event: FaultEvent) -> Any:
        if event.kind in _SEGMENT_KINDS:
            segment = self.sim.segments.get(event.target)
            if segment is None:
                raise FaultError(
                    f"fault {event.kind.value}: no segment named "
                    f"{event.target!r} (have: {sorted(self.sim.segments)})"
                )
            return segment
        node = self.sim.nodes.get(event.target)
        if node is None and self.net is not None:
            population = getattr(self.net, "population", None)
            if population is not None:
                # A fault targeting a pooled flyweight host promotes it
                # to a full node (repro.netsim.population); promotion
                # writes no trace, so eager validation-time promotion
                # is as digest-safe as doing it at fault time.
                node = population.promote_name(event.target)
        if node is None:
            raise FaultError(
                f"fault {event.kind.value}: no node named {event.target!r}"
            )
        if event.kind is FaultKind.FILTER_TOGGLE and not hasattr(node, "set_posture"):
            raise FaultError(
                f"fault filter-toggle: node {event.target!r} is not a boundary router"
            )
        if event.kind is FaultKind.AGENT_RESTART and not hasattr(node, "restart"):
            raise FaultError(
                f"fault agent-restart: node {event.target!r} has no restart()"
            )
        if event.kind is FaultKind.MOVE:
            if not hasattr(node, "move_to"):
                raise FaultError(
                    f"fault move: node {event.target!r} is not a mobile host"
                )
            if self.net is None:
                raise FaultError(
                    "fault move: injector was built without an Internet (net=...)"
                )
        return node

    def _note(self, event: FaultEvent) -> None:
        kind = event.kind.value
        self._total += 1
        self.applied[kind] = self.applied.get(kind, 0) + 1
        self.log.append((self.sim.now, kind, event.target))

    def _apply(self, event: FaultEvent) -> None:
        target = self._resolve(event)
        kind = event.kind
        self._note(event)
        if kind is FaultKind.LINK_DOWN:
            target.up = False
        elif kind is FaultKind.LINK_UP:
            target.up = True
        elif kind is FaultKind.LINK_FLAP:
            target.up = False
            self.sim.events.schedule(
                event.params["duration"], self._restore_link, target,
                label=f"fault:restore:{event.target}",
            )
        elif kind is FaultKind.LOSS_BURST:
            previous = target.loss_rate
            target.loss_rate = event.params["loss_rate"]
            self.sim.events.schedule(
                event.params["duration"], self._restore_loss, target, previous,
                label=f"fault:restore:{event.target}",
            )
        elif kind is FaultKind.QUEUE_SHRINK:
            previous = target.queue_capacity
            target.set_queue_capacity(event.params["queue_capacity"])
            duration = event.params.get("duration")
            if duration is not None:
                self.sim.events.schedule(
                    duration, self._restore_queue, target, previous,
                    label=f"fault:restore:{event.target}",
                )
        elif kind is FaultKind.FILTER_TOGGLE:
            target.set_posture(
                source_filtering=event.params.get("source_filtering"),
                forbid_transit=event.params.get("forbid_transit"),
            )
        elif kind is FaultKind.NODE_DOWN:
            for iface in target.interfaces.values():
                iface.up = False
        elif kind is FaultKind.NODE_UP:
            for iface in target.interfaces.values():
                iface.up = True
        elif kind is FaultKind.AGENT_RESTART:
            target.restart(flush_bindings=event.params.get("flush_bindings", True))
        elif kind is FaultKind.MOVE:
            if event.params.get("home"):
                target.return_home(self.net, event.params.get("domain", "home"))
            else:
                target.move_to(self.net, event.params["domain"])

    def _restore_link(self, segment: Any) -> None:
        segment.up = True

    def _restore_loss(self, segment: Any, previous: float) -> None:
        segment.loss_rate = previous

    def _restore_queue(self, segment: Any, previous: Any) -> None:
        segment.set_queue_capacity(previous)
