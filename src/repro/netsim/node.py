"""Nodes: the base class for hosts, routers, and agents.

A :class:`Node` owns interfaces, an ARP service, a conventional routing
table, per-protocol receive handlers, and — crucially for the paper —
the **route-override hook**.  §7 of the paper:

    "We override the IP route lookup routine and replace it with a
    routine that consults a mobility policy table before the usual
    route table. ... If the packet is to be encapsulated, then the
    routine directs IP to send the packet to our virtual interface,
    which encapsulates the packet and resubmits it to IP."

``route_overrides`` is exactly that: an ordered list of callables
consulted on every originated packet *before* the normal routing table.
An override may return a :class:`PhysicalRoute` (send out a specific
interface), a :class:`VirtualRoute` (hand the packet to a virtual
interface such as the Mobile IP encapsulator, which will re-submit),
or ``None`` to decline.  The base IP machinery below the hook is
completely conventional, which is the point of the paper's design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

from .addressing import IPAddress, UNSPECIFIED
from .arp import ARP_CACHE_LIFETIME, ArpMessage, ArpService
from .fragmentation import (
    REASSEMBLY_TIMEOUT,
    FragmentationNeeded,
    Reassembler,
    fragment,
)
from .icmp import (
    EchoData,
    IcmpMessage,
    IcmpType,
    UnreachableCode,
    UnreachableData,
    make_icmp_packet,
    unreachable_for,
)
from .link import Frame, Interface, Segment
from .packet import IPProto, Packet
from .routing import RoutingTable

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator

__all__ = ["PhysicalRoute", "VirtualRoute", "RouteTarget", "Node"]


@dataclass(frozen=True)
class PhysicalRoute:
    """Send out a named interface, optionally via a gateway, optionally
    forcing the source address (mobility decides source addresses)."""

    interface: str
    next_hop: Optional[IPAddress] = None
    src_override: Optional[IPAddress] = None


@dataclass(frozen=True)
class VirtualRoute:
    """Hand the packet to a virtual interface (e.g. the Mobile IP
    encapsulating interface), which consumes it and may resubmit."""

    handler: Callable[[Packet], None]
    name: str = "virtual"


RouteTarget = Union[PhysicalRoute, VirtualRoute]
RouteOverride = Callable[[Packet], Optional[RouteTarget]]
ProtoHandler = Callable[[Packet], None]
IcmpHook = Callable[[Packet, IcmpMessage], None]


class Node:
    """A host attached to one or more segments."""

    forwarding = False  # routers override this

    def __init__(self, name: str, simulator: "Simulator"):
        self.name = name
        self.simulator = simulator
        self.interfaces: Dict[str, Interface] = {}
        self.arp = ArpService(self)
        self.routes = RoutingTable()
        self.route_overrides: List[RouteOverride] = []
        self.proto_handlers: Dict[IPProto, ProtoHandler] = {}
        self.icmp_hooks: List[IcmpHook] = []
        self.reassembler = Reassembler()
        self.reassembler.on_expire = self._reassembly_expired
        self.multicast_groups: set[IPAddress] = set()
        self._echo_waiters: Dict[int, Callable[[Packet], None]] = {}
        self.packets_sent = 0
        self.packets_received = 0
        simulator.register(self)
        # Pull metrics: the registry reads these attributes on demand,
        # so the per-packet increments above stay bare integers.
        metrics = simulator.metrics
        metrics.counter("node.packets_sent",
                        read=lambda: self.packets_sent, node=name)
        metrics.counter("node.packets_received",
                        read=lambda: self.packets_received, node=name)
        metrics.gauge("node.reassembly_pending",
                      read=lambda: self.reassembler.pending, node=name)
        metrics.counter("node.fragment_duplicates",
                        read=lambda: self.reassembler.duplicates, node=name)
        metrics.counter("node.fragment_overlaps",
                        read=lambda: self.reassembler.overlaps, node=name)
        metrics.counter("node.reassembly_timeouts",
                        read=lambda: self.reassembler.timeouts, node=name)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.simulator.clock._now

    @property
    def trace(self):
        return self.simulator.trace

    def add_interface(self, name: str, segment: Optional[Segment] = None) -> Interface:
        if name in self.interfaces:
            raise ValueError(f"{self.name} already has interface {name}")
        iface = Interface(name, self)
        self.interfaces[name] = iface
        if segment is not None:
            iface.attach(segment)
        return iface

    def interface(self, name: str) -> Interface:
        return self.interfaces[name]

    def owns_address(self, ip: IPAddress) -> bool:
        for iface in self.interfaces.values():
            if iface.owns(ip):
                return True
        return False

    @property
    def addresses(self) -> List[IPAddress]:
        out: List[IPAddress] = []
        for iface in self.interfaces.values():
            out.extend(iface.addresses)
        return out

    def register_proto_handler(self, proto: IPProto, handler: ProtoHandler) -> None:
        self.proto_handlers[proto] = handler

    def join_multicast(self, group: IPAddress) -> None:
        if not IPAddress(group).is_multicast:
            raise ValueError(f"{group} is not a multicast address")
        self.multicast_groups.add(IPAddress(group))

    def leave_multicast(self, group: IPAddress) -> None:
        self.multicast_groups.discard(IPAddress(group))

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def ip_send(self, packet: Packet, bypass_overrides: bool = False) -> None:
        """Originate (or re-submit) an IP packet.

        Consults the route-override chain first (unless the caller is a
        virtual interface re-submitting, which sets
        ``bypass_overrides`` to avoid an encapsulation loop), then the
        normal routing table.
        """
        self.packets_sent += 1
        self.trace.note(self.now, self.name, "send", packet)

        if not bypass_overrides:
            for override in self.route_overrides:
                target = override(packet)
                if target is None:
                    continue
                if isinstance(target, VirtualRoute):
                    self.trace.note(
                        self.now, self.name, "virtual-route", packet,
                        detail=target.name,
                    )
                    target.handler(packet)
                    return
                self._transmit_via(packet, target)
                return

        # Local delivery short-circuit (loopback semantics).
        if self.owns_address(packet.dst):
            self.simulator.events.schedule(
                0.0, self._local_deliver, packet, label=f"{self.name}:loopback"
            )
            return

        # Multicast/broadcast need no route: transmit on the first live
        # interface (hosts here have one; §6.4's point is precisely that
        # the mobile host should use its *current physical* interface).
        if packet.dst.is_multicast or packet.dst.is_broadcast:
            for iface in self.interfaces.values():
                if iface.up and iface.segment is not None:
                    self._link_send(iface, packet, None)
                    return
            self.trace.note(self.now, self.name, "drop", packet, detail="no-interface")
            return

        route = self.routes.lookup(packet.dst)
        if route is None:
            self.trace.note(self.now, self.name, "drop", packet, detail="no-route")
            return
        self._transmit_via(
            packet, PhysicalRoute(route.interface, route.gateway)
        )

    def _transmit_via(self, packet: Packet, target: PhysicalRoute) -> None:
        iface = self.interfaces.get(target.interface)
        if iface is None or iface.segment is None:
            self.trace.note(
                self.now, self.name, "drop", packet, detail="interface-down"
            )
            return
        if target.src_override is not None:
            packet.src = IPAddress(target.src_override)
        if packet.src == UNSPECIFIED and iface.ip is not None:
            packet.src = iface.ip

        mtu = iface.segment.mtu
        try:
            pieces = fragment(packet, mtu)
        except FragmentationNeeded:
            self.trace.note(
                self.now, self.name, "drop", packet, detail="df-mtu-exceeded"
            )
            self._send_frag_needed(packet, mtu)
            return
        if len(pieces) > 1:
            self.trace.note(
                self.now, self.name, "fragment", packet,
                detail=f"into {len(pieces)} pieces (mtu {mtu})",
            )
        for piece in pieces:
            self._link_send(iface, piece, target.next_hop)

    def _link_send(
        self, iface: Interface, packet: Packet, next_hop: Optional[IPAddress]
    ) -> None:
        if packet.dst.is_multicast or packet.dst.is_broadcast:
            from .link import BROADCAST_LINK_ADDR

            iface.transmit(Frame(iface.link_address, BROADCAST_LINK_ADDR, packet))
            return
        hop = next_hop if next_hop is not None else packet.dst
        self.arp.resolve_and_send(iface, hop, packet)

    def link_send_direct(self, iface_name: str, packet: Packet, neighbor_ip: IPAddress) -> None:
        """Deliver a packet in a single link-layer hop to a neighbor.

        This is the In-DH mechanism (paper §5): the IP destination may
        not "belong" on this segment at all; only the frame's link
        destination is the neighbor.  ARP resolves the *neighbor's*
        address, not the packet's IP destination.
        """
        iface = self.interfaces[iface_name]
        self.packets_sent += 1
        self.trace.note(
            self.now, self.name, "send", packet, detail=f"link-direct via {neighbor_ip}"
        )
        self.arp.resolve_and_send(iface, IPAddress(neighbor_ip), packet)

    def _send_frag_needed(self, offending: Packet, mtu: int) -> None:
        src = self._preferred_source()
        if src is None:
            return
        message = IcmpMessage(
            IcmpType.DEST_UNREACHABLE,
            # mtu advertised for path-MTU discovery
            UnreachableData(
                UnreachableCode.FRAGMENTATION_NEEDED, offending.src, offending.dst, mtu
            ),
        )
        self.ip_send(make_icmp_packet(src, offending.src, message))

    def _preferred_source(self) -> Optional[IPAddress]:
        for iface in self.interfaces.values():
            if iface.ip is not None:
                return iface.ip
        return None

    # ------------------------------------------------------------------
    # Fast-forward hooks (see repro.netsim.fastforward)
    # ------------------------------------------------------------------
    def ff_flow_signature(self, dst: IPAddress):
        """State a steady outbound flow to ``dst`` depends on.

        Compared against a flow template's captured signature before
        every replay; any change forces real execution.  ``None`` means
        flows from this node can never be fast-forwarded (overridden by
        the mobile host, whose send path mutates engine state the
        capture cannot verify).
        """
        return ("node", self._preferred_source())

    def ff_time_horizon(self, now: float) -> float:
        """Earliest future time this node's time-dependent state could
        change flow behavior (ARP freshness, reassembly expiry).
        Subclasses extend with their own lifetimes."""
        horizon = float("inf")
        for cache in self.arp._caches.values():
            for entry in cache.values():
                expires = entry.learned_at + ARP_CACHE_LIFETIME
                if expires < horizon:
                    horizon = expires
        for buffer in self.reassembler._buffers.values():
            expires = buffer.first_seen + REASSEMBLY_TIMEOUT
            if expires < horizon:
                horizon = expires
        return horizon

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def frame_received(self, iface: Interface, frame: Frame) -> None:
        if frame.kind == "arp":
            assert isinstance(frame.payload, ArpMessage)
            self.arp.handle(iface, frame.payload)
            return
        packet = frame.payload
        assert isinstance(packet, Packet)
        self.ip_input(iface, packet)

    def ip_input(self, iface: Interface, packet: Packet) -> None:
        if packet.dst.is_multicast:
            if packet.dst in self.multicast_groups:
                self._local_deliver(packet)
            elif self.forwarding:
                pass  # no multicast routing in this simulator
            return
        if packet.dst.is_broadcast or (
            iface.network is not None
            and packet.dst == iface.network.broadcast_address
        ):
            self._local_deliver(packet)
            return
        if self.owns_address(packet.dst):
            self._local_deliver(packet)
            return
        if self.forwarding:
            self.forward(iface, packet)
            return
        # A host received a frame for an IP address it does not own —
        # possible after stale ARP; silently discard like real stacks.
        self.trace.note(self.now, self.name, "drop", packet, detail="not-mine")

    def forward(self, in_iface: Interface, packet: Packet) -> None:
        """Hosts do not forward; routers override."""
        self.trace.note(self.now, self.name, "drop", packet, detail="not-a-router")

    def _reassembly_expired(self, buffer) -> None:
        """Trace an expired reassembly buffer as a classified drop.

        Without this, a datagram whose fragments never all arrived would
        end its trace on ``fragment-held`` — a silent disappearance the
        invariant monitor (repro.verify) would have to special-case.
        """
        fragments = buffer.fragments
        if not fragments:
            return
        first = fragments[min(fragments)]
        self.trace.note(
            self.now, self.name, "drop", first, detail="reassembly-timeout"
        )

    def _local_deliver(self, packet: Packet) -> None:
        whole = self.reassembler.accept(packet, self.now)
        if whole is None:
            self.trace.note(
                self.now, self.name, "fragment-held", packet, detail="awaiting more"
            )
            return
        # Loose source routing (RFC 791 / paper §4): a packet addressed
        # to us with remaining route entries is re-addressed to the
        # next listed hop and re-submitted instead of delivered.
        # Note the source address is never rewritten — which is exactly
        # why LSR cannot evade source-address filtering the way the
        # encapsulating header does (§4).
        if whole.route_pointer < len(whole.source_route):
            next_hop = whole.source_route[whole.route_pointer]
            whole.route_pointer += 1
            whole.dst = next_hop
            self.trace.note(
                self.now, self.name, "source-route", whole,
                detail=f"next hop {next_hop}",
            )
            self.ip_send(whole, bypass_overrides=True)
            return
        self.packets_received += 1
        self.trace.note(self.now, self.name, "deliver", whole)
        handler = self.proto_handlers.get(whole.proto)
        if handler is not None:
            handler(whole)
        elif whole.proto is IPProto.ICMP:
            self._icmp_input(whole)
        else:
            self._send_proto_unreachable(whole)

    # ------------------------------------------------------------------
    # ICMP
    # ------------------------------------------------------------------
    def _icmp_input(self, packet: Packet) -> None:
        message = packet.payload
        if not isinstance(message, IcmpMessage):
            return
        if message.icmp_type is IcmpType.ECHO_REQUEST:
            assert isinstance(message.data, EchoData)
            src = self._source_for_reply(packet)
            if src is not None:
                reply = make_icmp_packet(
                    src, packet.src, IcmpMessage(IcmpType.ECHO_REPLY, message.data)
                )
                self.ip_send(reply)
            return
        if message.icmp_type is IcmpType.ECHO_REPLY:
            assert isinstance(message.data, EchoData)
            waiter = self._echo_waiters.pop(message.data.token, None)
            if waiter is not None:
                waiter(packet)
        for hook in self.icmp_hooks:
            hook(packet, message)

    def ping(
        self,
        dst: IPAddress,
        on_reply: Callable[[Packet], None],
        src: Optional[IPAddress] = None,
        size: int = 56,
        token: Optional[int] = None,
    ) -> int:
        """Send an echo request; ``on_reply`` fires if the reply returns."""
        token = token if token is not None else self.simulator.next_token()
        self._echo_waiters[token] = on_reply
        source = src or self._preferred_source()
        if source is None:
            raise RuntimeError(f"{self.name} has no configured address to ping from")
        request = make_icmp_packet(
            source, IPAddress(dst),
            IcmpMessage(IcmpType.ECHO_REQUEST, EchoData(token, size)),
        )
        self.ip_send(request)
        return token

    def _source_for_reply(self, packet: Packet) -> Optional[IPAddress]:
        # Reply from the address the request was sent to when we own it,
        # else from any configured address.
        if self.owns_address(packet.dst):
            return packet.dst
        return self._preferred_source()

    def _send_proto_unreachable(self, packet: Packet) -> None:
        src = self._source_for_reply(packet)
        if src is None:
            return
        reply = unreachable_for(src, packet, UnreachableCode.PROTO_UNREACHABLE)
        if reply is not None:
            self.ip_send(reply)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"
