"""Packet tracing and evidence collection.

Every claim in the paper is ultimately about what happens to packets:
where they travel (Figures 1, 3, 4, 5), where they are dropped
(Figure 2), and how big they are (§3.3).  The :class:`TraceLog`
collects a global record of packet fates that the analysis layer and
the figure benchmarks query.

Nodes call :meth:`TraceLog.note` as packets pass through them; the
per-packet hop list (see :class:`repro.netsim.packet.HopRecord`) holds
the same information packet-locally.  The global log adds cross-packet
queries: delivery ratios, per-destination drop summaries, and byte
accounting per link.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .packet import Packet

__all__ = ["TraceEntry", "TraceLog"]


@dataclass(frozen=True)
class TraceEntry:
    """A globally-logged packet event."""

    time: float
    node: str
    action: str          # send | forward | deliver | drop | encapsulate | ...
    packet_repr: str
    trace_id: int
    src: str
    dst: str
    wire_size: int
    detail: str = ""


class TraceLog:
    """Global record of packet events for one simulation run.

    Three levels of tracing, cheapest first:

    * ``TraceLog(enabled=False, aggregates=False)`` — a true no-op:
      :meth:`note` is rebound to a do-nothing method, so large
      throughput runs pay only one call per event (no hop records, no
      counter updates, no entry construction).
    * ``TraceLog(enabled=False)`` — keeps the per-packet hop records
      and the incremental aggregates (action counts, drop reasons)
      but skips per-event :class:`TraceEntry` construction.
    * ``TraceLog()`` — full tracing; every event becomes an entry.
    """

    def __init__(self, enabled: bool = True, aggregates: bool = True):
        self.enabled = enabled
        self.aggregates = aggregates or enabled
        self.entries: List[TraceEntry] = []
        # Aggregates maintained incrementally so benches stay cheap even
        # with tracing of individual entries disabled.
        self.bytes_by_link: Counter = Counter()
        self.action_counts: Counter = Counter()
        self.drops_by_reason: Counter = Counter()
        if not self.aggregates:
            # Rebinding on the instance makes the disabled path a plain
            # no-op call — no flag checks on the hot path.
            self.note = self._note_disabled  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def note(
        self,
        time: float,
        node: str,
        action: str,
        packet: Packet,
        detail: str = "",
    ) -> None:
        """Record an event both globally and on the packet itself."""
        packet.record(time, node, action, detail)
        self.action_counts[action] += 1
        if action == "drop":
            self.drops_by_reason[detail] += 1
        if self.enabled:
            self.entries.append(
                TraceEntry(
                    time=time,
                    node=node,
                    action=action,
                    packet_repr=repr(packet),
                    trace_id=packet.trace_id,
                    src=str(packet.src),
                    dst=str(packet.dst),
                    wire_size=packet.wire_size,
                    detail=detail,
                )
            )

    def _note_disabled(
        self,
        time: float,
        node: str,
        action: str,
        packet: Packet,
        detail: str = "",
    ) -> None:
        """No-op :meth:`note` used when tracing is fully off."""

    def note_link_bytes(self, link_name: str, size: int) -> None:
        self.bytes_by_link[link_name] += size

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def entries_for(self, trace_id: int) -> List[TraceEntry]:
        return [entry for entry in self.entries if entry.trace_id == trace_id]

    def path_of(self, trace_id: int) -> Tuple[str, ...]:
        """Node names that forwarded/delivered the logical datagram."""
        return tuple(
            entry.node
            for entry in self.entries_for(trace_id)
            if entry.action in ("forward", "deliver")
        )

    def delivered(self, trace_id: int) -> bool:
        return any(
            entry.action == "deliver" for entry in self.entries_for(trace_id)
        )

    def dropped(self, trace_id: int) -> bool:
        return any(entry.action == "drop" for entry in self.entries_for(trace_id))

    def drop_detail(self, trace_id: int) -> Optional[str]:
        for entry in self.entries_for(trace_id):
            if entry.action == "drop":
                return entry.detail
        return None

    @property
    def total_drops(self) -> int:
        return self.action_counts["drop"]

    @property
    def total_deliveries(self) -> int:
        return self.action_counts["deliver"]

    def delivery_ratio(self, trace_ids: Iterable[int]) -> float:
        """Fraction of the given logical datagrams that were delivered."""
        ids = list(trace_ids)
        if not ids:
            return 0.0
        return sum(1 for tid in ids if self.delivered(tid)) / len(ids)

    def hop_counts(self) -> Dict[int, int]:
        """trace_id -> number of forwarding hops."""
        counts: Dict[int, int] = defaultdict(int)
        for entry in self.entries:
            if entry.action == "forward":
                counts[entry.trace_id] += 1
        return dict(counts)

    def summary(self) -> str:
        """A human-readable one-run summary (used by examples)."""
        lines = [
            f"events: {sum(self.action_counts.values())}",
            f"delivered: {self.total_deliveries}  dropped: {self.total_drops}",
        ]
        for reason, count in self.drops_by_reason.most_common():
            lines.append(f"  drop[{reason}]: {count}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_jsonl(self, path) -> int:
        """Write every recorded entry as one JSON object per line.

        The poor man's pcap: external tooling (jq, pandas, a notebook)
        can reconstruct paths, timings, and drop reasons from the file.
        Returns the number of entries written.
        """
        import json

        with open(path, "w") as handle:
            for entry in self.entries:
                handle.write(json.dumps({
                    "time": entry.time,
                    "node": entry.node,
                    "action": entry.action,
                    "trace_id": entry.trace_id,
                    "src": entry.src,
                    "dst": entry.dst,
                    "wire_size": entry.wire_size,
                    "detail": entry.detail,
                    "packet": entry.packet_repr,
                }) + "\n")
        return len(self.entries)
