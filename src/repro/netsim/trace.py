"""Packet tracing and evidence collection.

Every claim in the paper is ultimately about what happens to packets:
where they travel (Figures 1, 3, 4, 5), where they are dropped
(Figure 2), and how big they are (§3.3).  The :class:`TraceLog`
collects a global record of packet fates that the analysis layer and
the figure benchmarks query.

Nodes call :meth:`TraceLog.note` as packets pass through them; the
per-packet hop list (see :class:`repro.netsim.packet.HopRecord`) holds
the same information packet-locally.  The global log adds cross-packet
queries: delivery ratios, per-destination drop summaries, and byte
accounting per link.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .packet import Packet

__all__ = ["TraceEntry", "TraceLog"]


@dataclass(frozen=True)
class TraceEntry:
    """A globally-logged packet event."""

    time: float
    node: str
    action: str          # send | forward | deliver | drop | encapsulate | ...
    packet_repr: str
    trace_id: int
    src: str
    dst: str
    wire_size: int
    detail: str = ""


class TraceLog:
    """Global record of packet events for one simulation run.

    Three levels of tracing, cheapest first:

    * ``TraceLog(enabled=False, aggregates=False)`` — a true no-op:
      :meth:`note` is rebound to a do-nothing method, so large
      throughput runs pay only one call per event (no hop records, no
      counter updates, no entry construction).
    * ``TraceLog(enabled=False)`` — keeps the per-packet hop records
      and the incremental aggregates (action counts, drop reasons)
      but skips per-event :class:`TraceEntry` construction.
    * ``TraceLog()`` — full tracing; every event becomes an entry.
    """

    def __init__(self, enabled: bool = True, aggregates: bool = True):
        self.enabled = enabled
        self.aggregates = aggregates or enabled
        self.entries: List[TraceEntry] = []
        # trace_id -> indices into ``entries``, maintained incrementally
        # by note() so the per-datagram queries (entries_for, delivered,
        # dropped, delivery_ratio) are O(per-datagram events) instead of
        # a full O(n) scan per call.
        self._entries_by_id: Dict[int, List[int]] = defaultdict(list)
        # Aggregates maintained incrementally so benches stay cheap even
        # with tracing of individual entries disabled.
        self.bytes_by_link: Counter = Counter()
        self.action_counts: Counter = Counter()
        self.drops_by_reason: Counter = Counter()
        # ``lost`` events (link loss, interface/segment down, queue
        # overflow) keyed by detail — the loss-side twin of
        # ``drops_by_reason``, so congestion drops are queryable without
        # scanning entries.
        self.losses_by_reason: Counter = Counter()
        if not self.aggregates:
            # Rebinding on the instance makes the disabled path a plain
            # no-op call — no flag checks on the hot path.
            self.note = self._note_disabled  # type: ignore[method-assign]
            self.note_link_bytes = (  # type: ignore[method-assign]
                self._note_link_bytes_disabled
            )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def note(
        self,
        time: float,
        node: str,
        action: str,
        packet: Packet,
        detail: str = "",
    ) -> None:
        """Record an event both globally and on the packet itself."""
        packet.record(time, node, action, detail)
        self.action_counts[action] += 1
        if action == "drop":
            self.drops_by_reason[detail] += 1
        elif action == "lost":
            self.losses_by_reason[detail] += 1
        if self.enabled:
            entries = self.entries
            self._entries_by_id[packet.trace_id].append(len(entries))
            # Build the frozen entry via __new__ + __dict__: the dataclass
            # __init__ routes every field through object.__setattr__, which
            # dominates the tracing-enabled hot path.  Field values are
            # identical to the constructor call this replaces.
            entry = TraceEntry.__new__(TraceEntry)
            entry.__dict__.update(
                time=time,
                node=node,
                action=action,
                packet_repr=repr(packet),
                trace_id=packet.trace_id,
                src=str(packet.src),
                dst=str(packet.dst),
                wire_size=packet.wire_size,
                detail=detail,
            )
            entries.append(entry)

    def _note_disabled(
        self,
        time: float,
        node: str,
        action: str,
        packet: Packet,
        detail: str = "",
    ) -> None:
        """No-op :meth:`note` used when tracing is fully off."""

    def note_link_bytes(self, link_name: str, size: int) -> None:
        self.bytes_by_link[link_name] += size

    def _note_link_bytes_disabled(self, link_name: str, size: int) -> None:
        """No-op byte accounting for the fully-disabled level."""

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def entries_for(self, trace_id: int) -> List[TraceEntry]:
        entries = self.entries
        return [entries[index] for index in self._entries_by_id.get(trace_id, ())]

    def path_of(self, trace_id: int) -> Tuple[str, ...]:
        """Node names that forwarded/delivered the logical datagram."""
        return tuple(
            entry.node
            for entry in self.entries_for(trace_id)
            if entry.action in ("forward", "deliver")
        )

    def delivered(self, trace_id: int) -> bool:
        return any(
            entry.action == "deliver" for entry in self.entries_for(trace_id)
        )

    def dropped(self, trace_id: int) -> bool:
        return any(entry.action == "drop" for entry in self.entries_for(trace_id))

    def drop_detail(self, trace_id: int) -> Optional[str]:
        for entry in self.entries_for(trace_id):
            if entry.action == "drop":
                return entry.detail
        return None

    @property
    def total_drops(self) -> int:
        return self.action_counts["drop"]

    @property
    def total_deliveries(self) -> int:
        return self.action_counts["deliver"]

    def delivery_ratio(self, trace_ids: Iterable[int]) -> float:
        """Fraction of the given logical datagrams that were delivered."""
        ids = list(trace_ids)
        if not ids:
            return 0.0
        return sum(1 for tid in ids if self.delivered(tid)) / len(ids)

    def hop_counts(self) -> Dict[int, int]:
        """trace_id -> number of forwarding hops."""
        counts: Dict[int, int] = defaultdict(int)
        for entry in self.entries:
            if entry.action == "forward":
                counts[entry.trace_id] += 1
        return dict(counts)

    def summary(self) -> str:
        """A human-readable one-run summary (used by examples)."""
        lines = [
            f"events: {sum(self.action_counts.values())}",
            f"delivered: {self.total_deliveries}  dropped: {self.total_drops}",
        ]
        for reason, count in self.drops_by_reason.most_common():
            lines.append(f"  drop[{reason}]: {count}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_jsonl(self, path, chunk_lines: int = 4096) -> int:
        """Write every recorded entry as one JSON object per line.

        The poor man's pcap: external tooling (jq, pandas, a notebook)
        can reconstruct paths, timings, and drop reasons from the file.
        Lines are batched through a buffer and flushed ``chunk_lines``
        at a time instead of one ``write`` per entry, which matters at
        the hundreds-of-thousands-of-events scale the soak scenarios
        produce.  Returns the number of entries written.
        """
        import json

        dumps = json.dumps
        buffer: List[str] = []
        with open(path, "w") as handle:
            for entry in self.entries:
                buffer.append(dumps({
                    "time": entry.time,
                    "node": entry.node,
                    "action": entry.action,
                    "trace_id": entry.trace_id,
                    "src": entry.src,
                    "dst": entry.dst,
                    "wire_size": entry.wire_size,
                    "detail": entry.detail,
                    "packet": entry.packet_repr,
                }))
                if len(buffer) >= chunk_lines:
                    handle.write("\n".join(buffer) + "\n")
                    buffer.clear()
            if buffer:
                handle.write("\n".join(buffer) + "\n")
        return len(self.entries)

    @classmethod
    def import_jsonl(cls, path) -> "TraceLog":
        """Rebuild a :class:`TraceLog` from an :meth:`export_jsonl` file.

        Entries, the per-datagram index, and the derivable aggregates
        (action counts, drop reasons) are all reconstructed, so the
        query API works identically on an imported log.  Per-link byte
        counters are *not* round-tripped: they are recorded through
        :meth:`note_link_bytes`, not as entries, and do not appear in
        the export.
        """
        import json

        log = cls(enabled=True)
        entries = log.entries
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                entry = TraceEntry(
                    time=obj["time"],
                    node=obj["node"],
                    action=obj["action"],
                    packet_repr=obj.get("packet", ""),
                    trace_id=obj["trace_id"],
                    src=obj["src"],
                    dst=obj["dst"],
                    wire_size=obj["wire_size"],
                    detail=obj.get("detail", ""),
                )
                log._entries_by_id[entry.trace_id].append(len(entries))
                entries.append(entry)
                log.action_counts[entry.action] += 1
                if entry.action == "drop":
                    log.drops_by_reason[entry.detail] += 1
                elif entry.action == "lost":
                    log.losses_by_reason[entry.detail] += 1
        return log
