"""Routers, including the security-conscious boundary routers of §3.1.

Two classes:

* :class:`Router` — a plain interior router: longest-prefix-match
  forwarding, TTL decrement, ICMP errors.  Per the paper's constraint
  (§3), routers have **no** Mobile IP awareness whatsoever.
* :class:`BoundaryRouter` — a router standing between one
  administrative domain ("inside") and the rest of the Internet.
  It applies a :class:`~repro.netsim.filters.FilterEngine` to packets
  crossing the boundary in either direction.  This is the machine that
  makes Figure 2 happen (and whose checks bi-directional tunneling in
  Figure 3 evades, because "the inner packets are protected from
  scrutiny by routers").

Interfaces of a boundary router are marked inside/outside; a packet is
checked only when it *crosses* (inside->outside = OUTBOUND,
outside->inside = INBOUND).  Traffic between two outside interfaces is
transit and is checked by whatever transit rule is installed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from .addressing import Network
from .filters import (
    Direction,
    FilterEngine,
    FilterRule,
    Verdict,
    egress_source_filter,
    ingress_spoof_filter,
    transit_traffic_filter,
)
from .icmp import (
    IcmpMessage,
    IcmpType,
    UnreachableCode,
    UnreachableData,
    make_icmp_packet,
    unreachable_for,
)
from .link import Interface
from .node import Node, PhysicalRoute
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator

__all__ = ["Router", "BoundaryRouter"]


class Router(Node):
    """A conventional IP router."""

    forwarding = True

    # §4: "Current IP routers typically handle packets with options
    # much more slowly than they handle normal unadorned IP packets."
    # Option-bearing packets (loose source routes) take the slow path.
    option_processing_delay = 0.002

    # Sabotage hook for the invariant monitor's own tests: a broken
    # router build that forgets to decrement TTL (set to 0) must be
    # caught by the ttl-decreases invariant.  Never change in real runs.
    ttl_decrement = 1

    def __init__(self, name: str, simulator: "Simulator"):
        super().__init__(name, simulator)
        self.packets_forwarded = 0
        self.send_icmp_errors = True

    def forward(self, in_iface: Interface, packet: Packet) -> None:
        if packet.ttl <= 1:
            self.trace.note(self.now, self.name, "drop", packet, detail="ttl-exceeded")
            if self.send_icmp_errors:
                self._send_time_exceeded(packet)
            return
        verdict, reason = self.check_policy(in_iface, packet)
        if verdict is Verdict.DROP:
            self.trace.note(self.now, self.name, "drop", packet, detail=reason)
            return
        route = self.routes.lookup(packet.dst)
        if route is None:
            self.trace.note(self.now, self.name, "drop", packet, detail="no-route")
            if self.send_icmp_errors:
                self._send_unreachable(packet)
            return
        out_iface = self.interfaces.get(route.interface)
        if out_iface is None:
            self.trace.note(self.now, self.name, "drop", packet, detail="bad-route")
            return
        verdict, reason = self.check_egress(in_iface, out_iface, packet)
        if verdict is Verdict.DROP:
            self.trace.note(self.now, self.name, "drop", packet, detail=reason)
            return
        packet.ttl -= self.ttl_decrement
        self.packets_forwarded += 1
        self.trace.note(self.now, self.name, "forward", packet)
        target = PhysicalRoute(route.interface, route.gateway)
        if packet.has_options and self.option_processing_delay > 0:
            # Slow path for option-bearing packets (§4).
            self.simulator.events.schedule(
                self.option_processing_delay, self._transmit_via, packet,
                target, label=f"{self.name}:slow-path",
            )
        else:
            self._transmit_via(packet, target)

    # Policy hooks — plain routers accept everything.
    def check_policy(
        self, in_iface: Interface, packet: Packet
    ) -> tuple[Verdict, str]:
        return Verdict.ACCEPT, ""

    def check_egress(
        self, in_iface: Interface, out_iface: Interface, packet: Packet
    ) -> tuple[Verdict, str]:
        return Verdict.ACCEPT, ""

    def _send_unreachable(self, packet: Packet) -> None:
        src = self._preferred_source()
        if src is None:
            return
        reply = unreachable_for(src, packet, UnreachableCode.HOST_UNREACHABLE)
        if reply is not None:
            self.ip_send(reply)

    def _send_time_exceeded(self, packet: Packet) -> None:
        """ICMP time-exceeded — what traceroute listens for."""
        src = self._preferred_source()
        if src is None or packet.dst.is_multicast or packet.dst.is_broadcast:
            return
        if packet.frag_offset != 0:
            return
        message = IcmpMessage(
            IcmpType.TIME_EXCEEDED,
            UnreachableData(
                UnreachableCode.NET_UNREACHABLE, packet.src, packet.dst
            ),
        )
        self.ip_send(make_icmp_packet(src, packet.src, message))


class BoundaryRouter(Router):
    """A router at the edge of an administrative domain.

    ``site`` is the domain's prefix.  The security posture is
    configurable per the paper's spectrum:

    * ``source_filtering`` — enable the §3.1 spoof/egress checks (the
      common case: "most network administrators, concerned about
      security, will configure boundary routers to drop such packets").
    * ``forbid_transit`` — enforce the no-transit policy of tail
      circuits.
    * ``extra_rules`` — additional firewall rules (see
      :func:`repro.netsim.filters.firewall_allow_only`).
    """

    def __init__(
        self,
        name: str,
        simulator: "Simulator",
        site: Network,
        source_filtering: bool = True,
        forbid_transit: bool = True,
        extra_rules: Sequence[FilterRule] = (),
    ):
        super().__init__(name, simulator)
        self.site = site
        self.source_filtering = source_filtering
        self.forbid_transit = forbid_transit
        self._extra_rules = list(extra_rules)
        self._inside_ifaces: set[str] = set()
        self.engine = FilterEngine(name=f"{name}-boundary")
        self.posture_changes = 0
        self._install_rules()

    def _install_rules(self) -> None:
        """(Re)build the rule list from the current posture knobs.

        Rules are rewritten in place so the engine object — and its
        accumulated per-rule hit counters — survives a mid-run posture
        change (see :meth:`set_posture`).
        """
        rules = []
        if self.source_filtering:
            rules.append(ingress_spoof_filter(self.site))
            rules.append(egress_source_filter(self.site))
        if self.forbid_transit:
            rules.append(transit_traffic_filter(self.site))
        rules.extend(self._extra_rules)
        self.engine.rules[:] = rules

    def set_posture(
        self,
        source_filtering: Optional[bool] = None,
        forbid_transit: Optional[bool] = None,
    ) -> None:
        """Change the security posture mid-run.

        Real sites do this: an administrator tightens egress filtering,
        or a tail circuit starts enforcing its no-transit policy, and a
        visiting mobile host's working Out-DH path dies under it.  The
        fault-injection layer (:mod:`repro.netsim.faults`) drives this
        from scheduled events.  Passing ``None`` leaves a knob as is.
        """
        if source_filtering is not None:
            self.source_filtering = source_filtering
        if forbid_transit is not None:
            self.forbid_transit = forbid_transit
        self.posture_changes += 1
        self._install_rules()

    def mark_inside(self, iface_name: str) -> None:
        """Declare an interface as facing the protected domain."""
        if iface_name not in self.interfaces:
            raise ValueError(f"no interface {iface_name} on {self.name}")
        self._inside_ifaces.add(iface_name)

    def is_inside(self, iface: Interface) -> bool:
        return iface.name in self._inside_ifaces

    def _crossing(
        self, in_iface: Interface, out_iface: Optional[Interface]
    ) -> Optional[Direction]:
        """Direction of boundary crossing, or None when not crossing."""
        if out_iface is None:
            # Ingress check happens before the route lookup; classify by
            # the arrival side only.
            return Direction.INBOUND if not self.is_inside(in_iface) else Direction.OUTBOUND
        arriving_inside = self.is_inside(in_iface)
        leaving_inside = self.is_inside(out_iface)
        if arriving_inside == leaving_inside:
            return None  # stays on one side: no boundary crossing
        return Direction.OUTBOUND if arriving_inside else Direction.INBOUND

    def check_policy(
        self, in_iface: Interface, packet: Packet
    ) -> tuple[Verdict, str]:
        direction = self._crossing(in_iface, None)
        if direction is None:
            return Verdict.ACCEPT, ""
        return self.engine.evaluate(packet, direction)

    def check_egress(
        self, in_iface: Interface, out_iface: Interface, packet: Packet
    ) -> tuple[Verdict, str]:
        direction = self._crossing(in_iface, out_iface)
        if direction is None:
            return Verdict.ACCEPT, ""
        return self.engine.evaluate(packet, direction)
